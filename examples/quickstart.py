"""Quickstart: run the Grover pass on the paper's Fig. 1 kernel.

Compiles the NVIDIA-SDK Matrix Transpose kernel (which stages a 16x16
tile in local memory), disables the local memory usage automatically,
prints the before/after IR and the index analysis, then executes both
versions on the built-in OpenCL runtime and verifies they produce the
same (correct) result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import disable_local_memory
from repro.frontend import compile_kernel
from repro.ir import print_function
from repro.runtime import Memory, launch

KERNEL = r"""
#define S 16
__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H)
{
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wx*S + ly)*W + (wy*S + lx)];   /* GL + LS */
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];                          /* LL */
    out[get_global_id(1)*H + get_global_id(0)] = val;
}
"""


def run_transpose(kernel, n=256):
    rng = np.random.default_rng(0)
    a = rng.random((n, n), dtype=np.float32)
    mem = Memory()
    inb = mem.from_array(a, "in")
    outb = mem.alloc(a.nbytes, "out")
    launch(kernel, (n, n), (16, 16), {"in": inb, "out": outb, "W": n, "H": n})
    return a, outb.read(np.float32, n * n).reshape(n, n)


def main():
    print("=== original kernel (with local memory) ===")
    original = compile_kernel(KERNEL)
    print(print_function(original))

    a, out1 = run_transpose(original)
    assert np.array_equal(out1, a.T), "original kernel is wrong?!"
    print("\noriginal executes correctly (out == in.T)")

    print("\n=== running the Grover pass ===")
    transformed = compile_kernel(KERNEL)
    report = disable_local_memory(transformed)
    print(report)

    print("\n=== transformed kernel (local memory disabled) ===")
    print(print_function(transformed))

    a, out2 = run_transpose(transformed)
    assert np.array_equal(out2, a.T), "transformed kernel broke!"
    print("\ntransformed kernel still executes correctly (out == in.T)")
    print(
        "\nlocal arrays left:",
        transformed.local_arrays or "none — local memory fully disabled",
    )


if __name__ == "__main__":
    main()
