"""Deep-dive: how Grover reverses a halo-staged stencil (Section III/IV).

The Parboil-style 5-point stencil stages a 16x16 tile *plus halo* in
local memory, so one local array has several (GL, LS) pairs (the halo
loads) and five local loads with different constant offsets.  Grover
solves one linear system per local load; this example prints every
system's solution and the symbolic new-global-load index — the data the
paper shows in Table III — and validates the transformed kernel against
a numpy stencil.

Run:  python examples/stencil_analysis.py
"""

import numpy as np

from repro.apps.registry import get_app
from repro.apps.harness import compile_app, validate_app
from repro.ir import print_function


def main():
    app = get_app("PAB-ST")
    print(f"application: {app.id} — {app.title} ({app.suite})")
    print(f"dataset: {app.dataset_note}\n")

    kernel, report = compile_app(app, "without")

    for rec in report.records:
        print(f"local array {rec.name!r}: {rec.status}")
        print(f"  GL index: {rec.gl_index}")
        print(f"  LS data index: ({', '.join(d.render() for d in rec.ls_dims)})")
        for i, ll in enumerate(rec.lls):
            dims = ", ".join(d.render() for d in ll.ll_dims)
            print(f"  LL#{i}: ({dims})")
            print(f"     solved writer index: {ll.solution.render()}")
            print(f"     nGL: {ll.ngl_index}")
    print(f"\ncleanup: {report.cleanup_stats}")
    print(f"local arrays left: {kernel.local_arrays or 'none'}")

    print("\nvalidating both versions against the numpy reference...")
    validate_app(app, "with", "test")
    print("  with local memory: OK")
    validate_app(app, "without", "test")
    print("  without local memory (Grover): OK")

    print("\n=== transformed kernel IR ===")
    print(print_function(kernel))


if __name__ == "__main__":
    main()
