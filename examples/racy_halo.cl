/* Adversarial kernel for the analyzer's CI smoke job: a halo-style
 * staging pattern with an off-by-one — every work-item stores lm[lx]
 * AND lm[lx+1], so neighbouring work-items write the same local slot
 * before the barrier (a write-write race lm[lx] vs lm[lx+1] at
 * lx' = lx+1).  The static pair analysis must flag it:
 *
 *   python -m repro.cli analyze examples/racy_halo.cl \
 *       --global-size 256 --local-size 64
 */
#define WG 64

__kernel void racy_halo(__global float* out, __global const float* in)
{
    __local float lm[WG + 1];
    int lx = get_local_id(0);
    int gid = get_global_id(0);
    lm[lx] = in[gid];
    lm[lx + 1] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gid] = lm[lx] + lm[lx + 1];
}
