"""Auto-tuning matrix multiplication across platforms (paper Section I).

The paper's pitch: the performance effect of local memory is
unpredictable, so generate both kernel versions with Grover, measure,
and keep the winner *per platform*.  This example tunes the
NVIDIA-SDK-style tiled matmul on the three cache-only platforms of the
evaluation (SNB, Nehalem, MIC) and one GPU (Fermi), showing that the
best version genuinely differs across devices.

Run:  python examples/autotune_matmul.py
"""

import numpy as np

from repro.autotune import autotune
from repro.reporting import ascii_table

KERNEL = r"""
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A,
                        __global float* B, int wA, int wB)
{
    __local float As[BS*BS];
    __local float Bs[BS*BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    float acc = 0.0f;
    for (int t = 0; t < wA / BS; ++t) {
        As[ty*BS + tx] = A[(get_group_id(1)*BS + ty)*wA + (t*BS + tx)];
        Bs[ty*BS + tx] = B[(t*BS + ty)*wB + (get_group_id(0)*BS + tx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k)
            acc += As[ty*BS + k] * Bs[k*BS + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[get_global_id(1)*wB + get_global_id(0)] = acc;
}
"""


def main():
    m, k, n = 32, 128, 512
    rng = np.random.default_rng(5)
    inputs = {
        "A": rng.random((m, k), dtype=np.float32),
        "B": rng.random((k, n), dtype=np.float32),
        "C": np.zeros((m, n), dtype=np.float32),
        "wA": k,
        "wB": n,
    }

    rows = []
    for device in ("SNB", "Nehalem", "MIC", "Fermi"):
        # tune the removal of the A tile only (the paper's NVD-MM-A case)
        result = autotune(
            KERNEL,
            device,
            global_size=(n, m),
            local_size=(16, 16),
            inputs=inputs,
            arrays=["As"],
        )
        rows.append(
            [
                device,
                result.best,
                f"{result.normalized_perf:.3f}",
                f"{result.cycles_with:,.0f}",
                f"{result.cycles_without:,.0f}",
            ]
        )

    print(
        ascii_table(
            ["device", "best version", "np (no-local/with-local)",
             "cycles with", "cycles without"],
            rows,
            title="auto-tuning NVD-MM-A: remove matrix A's local tile?",
        )
    )
    print("\nnp > 1 means the Grover-transformed (no local memory) kernel wins.")


if __name__ == "__main__":
    main()
