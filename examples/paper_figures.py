"""Regenerate the paper's headline results at a reduced scale.

Produces ASCII renderings of:

* Fig. 2  — normalised performance of MT and MM on all six platforms,
* Fig. 10 — per-benchmark normalised performance on SNB/Nehalem/MIC,
* Table IV — the gain/loss/similar distribution over the 33 test cases.

This uses the 'small' problem scale so it finishes in well under a
minute; the benchmarks/ directory runs the full 'bench' scale.

Run:  python examples/paper_figures.py
"""

from repro.apps.registry import TABLE_ORDER
from repro.experiments import figure2, figure10, table4
from repro.reporting import ascii_table, bar_series, normalized_perf_table

SCALE = "small"


def main():
    print("=" * 64)
    print("Figure 2 — motivation: removing local memory on 6 platforms")
    print("=" * 64)
    f2 = figure2(scale=SCALE)
    for app, values in f2.items():
        print(f"\n{app}:")
        print(bar_series(values))

    print()
    print("=" * 64)
    print("Figure 10 — normalised performance per benchmark (3 CPUs)")
    print("=" * 64)
    per_device = {}
    for dev in ("SNB", "Nehalem", "MIC"):
        per_device[dev] = figure10(dev, scale=SCALE).values
    print(normalized_perf_table(per_device, TABLE_ORDER))

    print()
    print("=" * 64)
    print("Table IV — gain/loss distribution (5% similarity threshold)")
    print("=" * 64)
    t4 = table4(scale=SCALE)
    rows = [
        [verdict] + [t4.per_device[d][verdict] for d in t4.per_device]
        + [f"{t4.totals[verdict]} ({100 * t4.totals[verdict] / t4.cases:.0f}%)"]
        for verdict in ("gain", "loss", "similar")
    ]
    print(ascii_table(["", *t4.per_device, "total"], rows))
    print(f"\n{t4.cases} test cases (11 applications x 3 platforms)")
    print("paper reports: gain 12 (36%), loss 9 (27%), similar 12 (36%)")


if __name__ == "__main__":
    main()
