"""Extensions: static prediction + per-platform specialisation.

Implements both items of the paper's future-work list:

1. *"model the performance benefits/losses due to local memory usage on
   CPUs"* — the static predictor explains, without executing, why
   removing a staged tile will win or lose (staging overhead removed vs
   cache-set conflicts of the replacement access);
2. *"incorporate Grover into a high-level auto-tuning framework ...
   code specialization automated for different classes of platforms"* —
   the subset tuner enumerates every combination of removable local
   arrays and picks the best per device.

Run:  python examples/predict_and_specialize.py
"""

import numpy as np

from repro.autotune import specialize_per_platform
from repro.perf.devices import MIC, NEHALEM, SNB
from repro.predict import predict

MM = r"""
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A,
                        __global float* B, int wA, int wB)
{
    __local float As[BS*BS];
    __local float Bs[BS*BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    float acc = 0.0f;
    for (int t = 0; t < wA / BS; ++t) {
        As[ty*BS + tx] = A[(get_group_id(1)*BS + ty)*wA + (t*BS + tx)];
        Bs[ty*BS + tx] = B[(t*BS + ty)*wB + (get_group_id(0)*BS + tx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k)
            acc += As[ty*BS + k] * Bs[k*BS + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[get_global_id(1)*wB + get_global_id(0)] = acc;
}
"""


def main():
    m, k, n = 32, 256, 1024  # power-of-two row stride: the pathological case

    print("=== static prediction (no execution) ===")
    for arrays, label in ((["As"], "remove As"), (["Bs"], "remove Bs"), (None, "remove both")):
        p = predict(
            MM, SNB, arrays=arrays, arg_values={"wA": k, "wB": n}
        )
        print(f"\n{label}:")
        print(p)

    print("\n=== per-platform specialisation (measured on the models) ===")
    rng = np.random.default_rng(1)
    inputs = {
        "A": rng.random((m, k), dtype=np.float32),
        "B": rng.random((k, n), dtype=np.float32),
        "C": np.zeros((m, n), dtype=np.float32),
        "wA": k,
        "wB": n,
    }
    results = specialize_per_platform(
        MM, ["SNB", "Nehalem", "MIC", "Fermi"], (n, m), (16, 16), inputs
    )
    for dev, res in results.items():
        print()
        print(res.render())

    print("\nbest specialisation per platform:")
    for dev, res in results.items():
        print(f"  {dev:8s} -> remove {res.best.label} ({res.best.speedup:.3f}x)")


if __name__ == "__main__":
    main()
