/* Adversarial kernel for the analyzer's CI smoke job: the barrier sits
 * inside a branch on the thread id, so only half the work-group ever
 * reaches it — barrier divergence, undefined behaviour in OpenCL.  The
 * divergence analysis proves it statically (the barrier's block does
 * not post-dominate the varying branch) and the interpreter traps it at
 * runtime:
 *
 *   python -m repro.cli analyze examples/divergent_barrier.cl \
 *       --global-size 256 --local-size 64
 */
#define WG 64

__kernel void divergent_barrier(__global float* out, __global const float* in)
{
    __local float lm[WG];
    int lx = get_local_id(0);
    int gid = get_global_id(0);
    lm[lx] = in[gid];
    if (lx < WG / 2) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gid] = lm[lx];
}
