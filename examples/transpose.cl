/* The paper's Fig. 1(a) kernel: tiled matrix transpose staging through
 * __local memory.  Used by the CI smoke job:
 *
 *   python -m repro.cli examples/transpose.cl --trace-out events.jsonl
 *   python -m repro.cli passes --run examples/transpose.cl
 */
#define S 16

__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H)
{
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wx*S + ly)*W + (wy*S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[get_global_id(1)*H + get_global_id(0)] = val;
}
