"""Table IV — the gain/loss/similar distribution over 33 test cases.

Paper (5% similarity threshold): 12 gains (36%), 9 losses (27%),
12 similar (36%).  Our model reproduces the qualitative conclusion —
a large fraction of cases benefit from disabling local memory, a
comparable fraction loses, and MIC concentrates the "similar" verdicts —
with somewhat more mass in the similar bucket (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments import table4
from repro.reporting import ascii_table

from conftest import SCALE


@pytest.fixture(scope="module")
def dist():
    return table4(scale=SCALE)


@pytest.mark.paper
def test_table4_distribution(benchmark, dist):
    t = benchmark(lambda: table4(scale=SCALE))
    rows = [
        [v] + [t.per_device[d][v] for d in t.per_device] + [t.totals[v]]
        for v in ("gain", "loss", "similar")
    ]
    print("\n" + ascii_table(["", *t.per_device, "total"], rows,
                             title="Table IV — gain/loss distribution (5% threshold)"))
    print("paper: gain 12 (36%), loss 9 (27%), similar 12 (36%)")

    assert t.cases == 33
    totals = t.totals
    # the paper's headline: a substantial fraction of cases improves
    assert totals["gain"] >= 7, f"too few gains: {totals}"
    # and a comparable fraction loses — the effect is genuinely two-sided
    assert totals["loss"] >= 6, f"too few losses: {totals}"
    assert totals["gain"] + totals["loss"] + totals["similar"] == 33


@pytest.mark.paper
def test_table4_every_device_has_gains_and_losses(benchmark, dist):
    benchmark(lambda: dist.totals)
    for dev, counts in dist.per_device.items():
        assert counts["gain"] >= 1, f"{dev} shows no gains"
        assert counts["loss"] >= 1, f"{dev} shows no losses"


@pytest.mark.paper
def test_table4_mic_concentrates_similar(benchmark, dist):
    benchmark(lambda: dist.totals)
    """Paper: MIC has the largest 'similar' bucket (6 of 11)."""
    mic = dist.per_device["MIC"]["similar"]
    assert mic >= max(
        dist.per_device["SNB"]["similar"], dist.per_device["Nehalem"]["similar"]
    )
    assert mic >= 5
