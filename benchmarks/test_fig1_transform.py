"""Figure 1 — the Grover transformation itself on Matrix Transpose.

Benchmarks the full pipeline (compile + analyse + rewrite) on the
paper's running example, and checks that the automatic transformation
produces exactly the manually-written Fig. 1(b) kernel: identical
outputs and an identical global-access pattern.
"""

import numpy as np
import pytest

from repro.core import disable_local_memory
from repro.frontend import compile_kernel
from repro.runtime import Memory, launch

FIG1A = r"""
#define S 16
__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H)
{
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wx*S + ly)*W + (wy*S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[get_global_id(1)*H + get_global_id(0)] = val;
}
"""

#: the manual removal of Fig. 1(b)
FIG1B = r"""
#define S 16
__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H)
{
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    float val = in[(wx*S + lx)*W + (wy*S + ly)];
    out[get_global_id(1)*H + get_global_id(0)] = val;
}
"""


def _run(kernel, n=64):
    rng = np.random.default_rng(0)
    a = rng.random((n, n), dtype=np.float32)
    mem = Memory()
    inb, outb = mem.from_array(a), mem.alloc(a.nbytes)
    res = launch(
        kernel,
        (n, n),
        (16, 16),
        {"in": inb, "out": outb, "W": n, "H": n},
        collect_trace=True,
    )
    return a, outb.read(np.float32, n * n).reshape(n, n), res.trace


@pytest.mark.paper
def test_fig1_grover_equals_manual_removal(benchmark):
    def transform():
        kernel = compile_kernel(FIG1A)
        report = disable_local_memory(kernel)
        return kernel, report

    kernel, report = benchmark(transform)
    assert report.fully_disabled
    assert not kernel.local_arrays

    # execution equivalence with the manual Fig. 1(b)
    a, out_auto, trace_auto = _run(kernel)
    manual = compile_kernel(FIG1B)
    _, out_manual, trace_manual = _run(manual)
    np.testing.assert_array_equal(out_auto, a.T)
    np.testing.assert_array_equal(out_auto, out_manual)

    # identical global memory behaviour: same per-group access multiset
    def global_offsets(trace):
        out = []
        for g in trace.groups:
            offs = np.sort(
                np.concatenate([e.offsets for e in g.events])
            )
            out.append(offs)
        return out

    for oa, om in zip(global_offsets(trace_auto), global_offsets(trace_manual)):
        np.testing.assert_array_equal(oa, om)

    print("\nFig. 1: Grover output is access-identical to the manual removal")
    print(report)
