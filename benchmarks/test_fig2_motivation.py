"""Figure 2 — the motivation study: MT and MM on six platforms.

The paper's headline observation: removing local memory *loses* on GPUs
but *wins* on the cache-only processors for Matrix Transpose, while the
Matrix Multiplication case (removing the A tile) splits differently —
proof that the effect is unpredictable and worth auto-tuning.

Shape assertions (who wins / loses); absolute factors are model
estimates, not the authors' wall-clock numbers.
"""

import pytest

from repro.experiments import figure2
from repro.reporting import bar_series

from conftest import SCALE


@pytest.fixture(scope="module")
def fig2():
    return figure2(scale=SCALE)


@pytest.mark.paper
def test_fig2_matrix_transpose_shape(benchmark, fig2):
    mt = benchmark(lambda: figure2(scale=SCALE)["MT"])
    print("\nFig. 2 MT (np > 1: removing local memory wins):")
    print(bar_series(mt))

    # paper: "removing the local memory usage leads to performance losses
    # on GPUs (Fermi, Kepler, and Tahiti), but improves performance for
    # the cache-only processors (SNB, Nehalem, and MIC)"
    for gpu in ("Fermi", "Kepler", "Tahiti"):
        assert mt[gpu] < 1.0, f"MT should lose on {gpu}"
    for cpu in ("SNB", "Nehalem", "MIC"):
        assert mt[cpu] > 1.0, f"MT should gain on {cpu}"

    # magnitudes: paper reports up to 1.3x (SNB) and 1.6x (Nehalem);
    # our model lands in the same >1.2x band on both
    assert mt["SNB"] > 1.2
    assert mt["Nehalem"] > 1.2


@pytest.mark.paper
def test_fig2_matrix_multiplication_shape(benchmark, fig2):
    mm = benchmark(lambda: figure2(scale=SCALE)["MM"])
    print("\nFig. 2 MM (remove matrix A tile only, per Section II-C):")
    print(bar_series(mm))

    # paper: gains on Tahiti, SNB, MIC; losses on Fermi, Kepler, Nehalem.
    # Our model reproduces the GPU split (the cache-less Kepler pays the
    # most, Tahiti's vector L1 absorbs the re-reads); the CPU side lands
    # at parity rather than the paper's 1.6x (see EXPERIMENTS.md).
    assert mm["Kepler"] < 0.8, "Kepler must pay for losing the staged tile"
    assert mm["Fermi"] < 1.0
    assert mm["Tahiti"] > mm["Kepler"]
    assert mm["Tahiti"] >= 0.95
    for cpu in ("SNB", "MIC"):
        assert mm[cpu] >= 0.95, f"MM-A must not lose on {cpu}"


@pytest.mark.paper
def test_fig2_unpredictability(benchmark, fig2):
    benchmark(lambda: None)
    """The core motivation: the best version differs across platforms."""
    mt = fig2["MT"]
    winners = {d: ("without" if v > 1 else "with") for d, v in mt.items()}
    assert set(winners.values()) == {"with", "without"}, (
        "local memory must win on some platforms and lose on others"
    )
