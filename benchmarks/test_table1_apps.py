"""Table I — the benchmark applications and datasets.

Prints the application inventory and asserts the paper's structural
claims: 11 rows drawn from the AMD SDK, NVIDIA SDK, Rodinia and Parboil,
all using local memory in their original form.
"""

import pytest

from repro.apps.harness import compile_app
from repro.apps.registry import TABLE_ORDER, table_apps
from repro.reporting import ascii_table


@pytest.mark.paper
def test_table1_inventory(benchmark):
    apps = benchmark(table_apps)
    rows = [
        [a.id, a.title, a.suite, a.dataset_note]
        for a in apps
    ]
    print("\n" + ascii_table(["ID", "application", "suite", "dataset"], rows,
                             title="Table I — selected benchmarks"))

    assert [a.id for a in apps] == sorted(TABLE_ORDER) or len(apps) == 11
    assert len(apps) == 11
    suites = {a.suite for a in apps}
    assert suites == {"AMD APP SDK", "NVIDIA SDK", "Rodinia", "Parboil"}


@pytest.mark.paper
def test_table1_all_use_local_memory(benchmark):
    def check():
        flags = {}
        for a in table_apps():
            kernel, _ = compile_app(a, "with")
            flags[a.id] = bool(kernel.local_arrays) or any(
                getattr(arg.type, "addrspace", None) is not None
                and arg.type.addrspace.name == "LOCAL"
                for arg in kernel.args
            )
        return flags

    flags = benchmark(check)
    assert all(flags.values()), f"apps without local memory: {flags}"
