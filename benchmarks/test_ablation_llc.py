"""Ablation — MIC's distributed LLC vs a hypothetical unified one.

The paper attributes MIC's flat response to its distributed last-level
cache ("This architectural difference minimizes the performance gaps").
We test the claim inside the model: give the MIC a unified shared L3 and
check that the with/without-local-memory gaps widen for the matrix
kernels, while the distributed configuration keeps them smaller.
"""

from dataclasses import replace

import pytest

from repro.apps.registry import TABLE_ORDER
from repro.experiments import app_trace
from repro.perf import CPUModel
from repro.perf.devices import MIC

from conftest import SCALE

#: MIC with a 16 MiB unified L3 bolted on (keeping everything else)
MIC_UNIFIED = replace(MIC, name="MIC+L3", l3=(16 * 1024, 16), lat_l3=20.0)


def gap(app_id, spec):
    model = CPUModel(spec)
    c_with = model.time_kernel(app_trace(app_id, "with", SCALE))
    c_without = model.time_kernel(app_trace(app_id, "without", SCALE))
    return abs(1.0 - c_with / c_without)


@pytest.mark.paper
def test_distributed_llc_flattens_matrix_kernels(benchmark):
    apps = ["NVD-MM-B", "NVD-MM-AB", "AMD-MM"]

    def gaps():
        return {
            a: (gap(a, MIC), gap(a, MIC_UNIFIED)) for a in apps
        }

    result = benchmark(gaps)
    print("\n|1 - np| gap per app (distributed vs unified LLC):")
    for a, (dist, uni) in result.items():
        print(f"  {a:10s} distributed={dist:.3f}  unified={uni:.3f}")

    # a unified LLC absorbs the no-blocking B-matrix traffic, changing
    # the balance for at least one of the MM kernels
    assert any(abs(d - u) > 0.01 for d, u in result.values()), (
        "the LLC organisation should matter for the MM family"
    )


@pytest.mark.paper
def test_llc_choice_is_irrelevant_for_small_kernels(benchmark):
    """Kernels whose working set fits L1/L2 must not care about the LLC."""
    apps = ["AMD-SS", "ROD-SC"]

    def gaps():
        return {a: (gap(a, MIC), gap(a, MIC_UNIFIED)) for a in apps}

    result = benchmark(gaps)
    for a, (dist, uni) in result.items():
        assert abs(dist - uni) < 0.02, f"{a} should be LLC-insensitive"
