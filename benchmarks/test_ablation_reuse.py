"""Ablation — sub-expression reuse in Algorithm 1 (state-marked nodes).

The paper's duplication algorithm reuses the GL/nGL shared
sub-expressions instead of cloning them.  This ablation compares the
transformed kernel with reuse on vs off (every tree node cloned),
measuring static code growth and the resulting model cycles.
"""

import numpy as np
import pytest

from repro.core import GroverPass
from repro.frontend import compile_kernel
from repro.perf import CPUModel
from repro.perf.devices import SNB
from repro.runtime import Memory, launch

MM = r"""
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A,
                        __global float* B, int wA, int wB)
{
    __local float As[BS*BS];
    __local float Bs[BS*BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    float acc = 0.0f;
    for (int t = 0; t < wA / BS; ++t) {
        As[ty*BS + tx] = A[(get_group_id(1)*BS + ty)*wA + (t*BS + tx)];
        Bs[ty*BS + tx] = B[(t*BS + ty)*wB + (get_group_id(0)*BS + tx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k)
            acc += As[ty*BS + k] * Bs[k*BS + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[get_global_id(1)*wB + get_global_id(0)] = acc;
}
"""


def _static_size(fn):
    return sum(len(bb.instructions) for bb in fn.blocks)


def _transform(reuse):
    fn = compile_kernel(MM)
    GroverPass(reuse_subexprs=reuse).run(fn)
    return fn


def _dynamic_cost(fn):
    m, k, n = 32, 64, 64
    rng = np.random.default_rng(0)
    mem = Memory()
    a = mem.from_array(rng.random((m, k), dtype=np.float32))
    b = mem.from_array(rng.random((k, n), dtype=np.float32))
    c = mem.alloc(m * n * 4)
    res = launch(
        fn,
        (n, m),
        (16, 16),
        {"A": a, "B": b, "C": c, "wA": k, "wB": n},
        memory=mem,
        collect_trace=True,
    )
    return CPUModel(SNB).time_kernel(res.trace)


@pytest.mark.paper
def test_reuse_limits_code_growth(benchmark):
    def sizes():
        return _static_size(_transform(True)), _static_size(_transform(False))

    with_reuse, without_reuse = benchmark(sizes)
    print(f"\nstatic instructions: reuse={with_reuse}, clone-all={without_reuse}")
    # the no-reuse variant re-creates every shared index sub-expression.
    # (the vendor-optimiser CSE stage later claws much of it back, which
    # is itself worth knowing: reuse keeps the pass output clean *before*
    # any cleanup)
    assert without_reuse >= with_reuse


@pytest.mark.paper
def test_reuse_without_vendor_cse(benchmark):
    """Measure the raw Algorithm-1 output: disable the vendor optimiser
    by comparing immediately after rewrite (reuse avoids duplicate
    instructions that CSE would otherwise need to remove)."""
    from repro.core.optimize import vendor_optimize

    def raw_growth(reuse):
        fn = compile_kernel(MM)
        # run the pass but capture the CSE statistics of the vendor stage
        p = GroverPass(reuse_subexprs=reuse)
        p.run(fn)
        return _static_size(fn)

    size_reuse = raw_growth(True)
    size_clone = benchmark(lambda: raw_growth(False))
    print(f"\npost-pipeline size: reuse={size_reuse}, clone-all={size_clone}")
    assert size_clone >= size_reuse

    # both versions must still execute correctly
    for reuse in (True, False):
        fn = _transform(reuse)
        cost = _dynamic_cost(fn)
        assert cost > 0


@pytest.mark.paper
def test_semantics_identical_with_and_without_reuse(benchmark):
    def outputs(reuse):
        fn = _transform(reuse)
        m, k, n = 32, 48, 32
        rng = np.random.default_rng(3)
        a_np = rng.random((m, k), dtype=np.float32)
        b_np = rng.random((k, n), dtype=np.float32)
        mem = Memory()
        a = mem.from_array(a_np)
        b = mem.from_array(b_np)
        c = mem.alloc(m * n * 4)
        launch(fn, (n, m), (16, 16), {"A": a, "B": b, "C": c, "wA": k, "wB": n}, memory=mem)
        return c.read(np.float32, m * n), a_np @ b_np

    got_reuse, want = outputs(True)
    got_clone, _ = benchmark(lambda: outputs(False))
    np.testing.assert_allclose(got_reuse, want.ravel(), rtol=1e-4)
    np.testing.assert_allclose(got_clone, got_reuse, rtol=1e-6)
