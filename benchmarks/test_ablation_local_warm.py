"""Ablation — modelling the __local arena as cache-warm vs cold.

On a CPU the local-memory arena is ordinary memory owned by the
executing thread and reused by every work-group it runs; treating its
lines as cold per-group would charge the with-local-memory versions
phantom DRAM misses and bias the comparison toward removal.  This
ablation quantifies that bias.
"""

import pytest

from repro.apps.registry import TABLE_ORDER
from repro.experiments import app_trace
from repro.perf import CPUModel
from repro.perf.devices import SNB

from conftest import SCALE


def np_ratio(app_id, warm):
    model = CPUModel(SNB, warm_local=warm)
    c_with = model.time_kernel(app_trace(app_id, "with", SCALE))
    c_without = model.time_kernel(app_trace(app_id, "without", SCALE))
    return c_with / c_without


@pytest.mark.paper
def test_cold_local_biases_toward_removal(benchmark):
    def ratios():
        return {
            a: (np_ratio(a, warm=True), np_ratio(a, warm=False))
            for a in ("NVD-MT", "AMD-RG", "NVD-MM-B")
        }

    result = benchmark(ratios)
    print("\nnormalised perf, warm vs cold local arena:")
    for a, (warm, cold) in result.items():
        print(f"  {a:10s} warm={warm:.3f}  cold={cold:.3f}")

    # cold modelling charges extra misses to the with-local version, so
    # the normalised ratio (with/without) can only grow
    for a, (warm, cold) in result.items():
        assert cold >= warm - 1e-9, f"{a}: cold model should inflate np"

    # and for at least one kernel the bias is material (> 2%)
    assert any(cold - warm > 0.02 for warm, cold in result.values())


@pytest.mark.paper
def test_warm_modelling_keeps_losses_visible(benchmark):
    """The MM-B loss (the paper's key counter-example) must survive the
    warm-arena model — it is a *global-traffic* effect, not an arena
    artefact."""
    ratio = benchmark(lambda: np_ratio("NVD-MM-B", warm=True))
    assert ratio < 0.95
