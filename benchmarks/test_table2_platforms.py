"""Table II — the experimental platforms.

Prints the device models standing in for the paper's hardware and
asserts the architectural properties the evaluation narrative relies on.
"""

import pytest

from repro.perf.devices import CPU_DEVICES, GPU_DEVICES, MIC, NEHALEM, SNB
from repro.reporting import ascii_table


@pytest.mark.paper
def test_table2_platforms(benchmark):
    def build():
        rows = []
        for d in CPU_DEVICES.values():
            llc = "distributed" if d.l3 is None else f"{d.l3[0]/1024:.0f} MB shared"
            rows.append(
                [d.name, "CPU", d.cores, f"{d.l1[0]:.0f}K", f"{d.l2[0]:.0f}K", llc]
            )
        for d in GPU_DEVICES.values():
            rows.append(
                [
                    d.name,
                    "GPU",
                    d.compute_units,
                    f"L1 {'on' if d.global_l1 else 'off'}",
                    f"{d.l2_kb:.0f}K L2",
                    f"warp {d.warp_size}",
                ]
            )
        return rows

    rows = benchmark(build)
    print("\n" + ascii_table(
        ["device", "kind", "cores/CUs", "L1", "L2", "LLC / notes"],
        rows,
        title="Table II — platform models",
    ))

    # architectural facts the analysis (Section VI-C) relies on:
    assert MIC.l3 is None, "MIC has a distributed last-level cache"
    assert SNB.l3 is not None and NEHALEM.l3 is not None
    assert MIC.l2[0] > SNB.l2[0], "per-core L2 is larger on MIC"
    assert MIC.ipc < SNB.ipc, "KNC cores are in-order / low-ILP"
    assert len(CPU_DEVICES) == 3 and len(GPU_DEVICES) == 3
