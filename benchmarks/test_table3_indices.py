"""Table III — determining the data index of nGL for every benchmark.

Runs the Grover analysis over all 11 applications, prints the GL/LS/LL
indices and the solved nGL index per local array, and asserts the
solutions the paper's Table III reports (in our symbolic rendering).
"""

import pytest

from repro.apps.harness import compile_app
from repro.apps.registry import TABLE_ORDER, get_app
from repro.reporting import ascii_table


@pytest.fixture(scope="module")
def reports():
    out = {}
    for app_id in TABLE_ORDER:
        _, report = compile_app(get_app(app_id), "without")
        out[app_id] = report
    return out


@pytest.mark.paper
def test_table3_all_benchmarks_reversed(benchmark, reports):
    def analyse_all():
        result = {}
        for app_id in TABLE_ORDER:
            _, report = compile_app(get_app(app_id), "without")
            result[app_id] = report
        return result

    reps = benchmark(analyse_all)

    rows = []
    for app_id in TABLE_ORDER:
        rep = reps[app_id]
        for rec in rep.records:
            ls = ", ".join(d.render() for d in rec.ls_dims)
            for ll in rec.lls:
                lld = ", ".join(d.render() for d in ll.ll_dims)
                rows.append([app_id, rec.name, f"({ls})", f"({lld})",
                             ll.solution.render()])
    print("\n" + ascii_table(
        ["benchmark", "array", "LS", "LL", "solved writer index"],
        rows,
        title="Table III — data-index correspondence per benchmark",
    ))

    # the paper: "We have validated Grover with 11 applications, and found
    # that it can successfully disable local memory usage for all of them."
    for app_id, rep in reps.items():
        assert rep.transformed, f"{app_id} was not reversed"
        assert not rep.rejected, f"{app_id} had rejected arrays"


@pytest.mark.paper
def test_table3_specific_solutions(benchmark, reports):
    def solutions():
        out = {}
        for app_id, rep in reports.items():
            for rec in rep.records:
                for i, ll in enumerate(rec.lls):
                    out[(app_id, rec.name, i)] = ll.solution.render()
        return out

    sols = benchmark(solutions)

    # the transpose swap (both MT kernels)
    assert sols[("NVD-MT", "lm", 0)] == "lx = ly, ly = lx"
    assert sols[("AMD-MT", "lm", 0)] == "lx = ly, ly = lx"
    # the MM tiles resolve the inner-loop counter
    assert "lx = k" in sols[("NVD-MM-A", "As", 0)]
    assert "ly = k" in sols[("NVD-MM-B", "Bs", 0)]
    assert "ly = k" in sols[("AMD-MM", "Bs", 0)]
    # shared-block kernels: the writer is the scan index
    assert "lx = j" in sols[("AMD-SS", "lp", 0)]
    assert "lx = j" in sols[("NVD-NBody", "sh", 0)]
    assert "lx = d" in sols[("ROD-SC", "cc", 0)]


@pytest.mark.paper
def test_table3_group_component_zero_for_shared_blocks(benchmark, reports):
    """AMD-SS, NVD-NBody and ROD-SC share one data block across all
    work-groups: their GL index has no work-group component (the rows
    the paper prints with (0, 0, 0) group indices)."""

    def group_free():
        out = {}
        for app_id in ("AMD-SS", "ROD-SC"):
            rep = reports[app_id]
            out[app_id] = all(
                "get_group_id" not in rec.gl_index for rec in rep.records
            )
        return out

    flags = benchmark(group_free)
    assert all(flags.values()), flags
