"""Extension — static predictor vs the trace-driven model.

The paper's stated future work: "using Grover, we want to model the
performance benefits/losses due to local memory usage on CPUs".  This
benchmark evaluates our static predictor against the trace-driven
models over all 11 applications x 3 CPU platforms, reporting the
agreement matrix.
"""

import pytest

from repro.apps.registry import TABLE_ORDER, get_app
from repro.experiments import normalized_perf
from repro.perf.devices import CPU_DEVICES
from repro.perf.timing import classify
from repro.predict import predict
from repro.reporting import ascii_table

from conftest import SCALE


def _arg_values(app):
    problem = app.make_problem(SCALE)
    return {k: v for k, v in problem.inputs.items() if isinstance(v, int)}


@pytest.fixture(scope="module")
def verdict_pairs():
    pairs = {}
    for app_id in TABLE_ORDER:
        app = get_app(app_id)
        for dev_name, spec in CPU_DEVICES.items():
            measured = classify(normalized_perf(app_id, dev_name, SCALE))
            predicted = predict(
                app.source,
                spec,
                kernel_name=app.kernel_name,
                defines=app.defines,
                arrays=app.arrays,
                arg_values=_arg_values(app),
            ).verdict
            pairs[(app_id, dev_name)] = (predicted, measured)
    return pairs


@pytest.mark.paper
def test_predictor_agreement(benchmark, verdict_pairs):
    def tally():
        exact = loose = 0
        for predicted, measured in verdict_pairs.values():
            exact += predicted == measured
            # 'loose' = never predicts the opposite sign
            loose += not (
                (predicted, measured) in (("gain", "loss"), ("loss", "gain"))
            )
        return exact, loose

    exact, loose = benchmark(tally)
    n = len(verdict_pairs)

    rows = [
        [app, dev, p, m, "OK" if p == m else ("~" if "similar" in (p, m) else "X")]
        for (app, dev), (p, m) in sorted(verdict_pairs.items())
    ]
    print("\n" + ascii_table(
        ["app", "device", "predicted", "measured", ""],
        rows,
        title="static predictor vs trace-driven model",
    ))
    print(f"exact agreement: {exact}/{n}, sign-safe: {loose}/{n}")

    # the predictor must be sign-safe (never calls a loss a gain) on at
    # least 90% of cases and exactly right on a solid majority
    assert loose >= int(0.9 * n)
    assert exact >= n // 2


@pytest.mark.paper
def test_predictor_catches_the_flagship_cases(benchmark, verdict_pairs):
    benchmark(lambda: None)
    # the two behaviours the paper leads with:
    assert verdict_pairs[("NVD-MT", "SNB")][0] == "gain"
    assert verdict_pairs[("NVD-MM-B", "SNB")][0] == "loss"
    assert verdict_pairs[("AMD-MM", "SNB")][0] == "loss"
