"""Perf regression harness for the measurement pipeline itself.

Runs the ``repro bench`` machinery at test scale and checks the two
properties the fast path must keep forever:

* **exactness** — the vectorised cache backend reproduces the reference
  oracle's per-group hit/miss/prefetch counts bit-for-bit (enforced
  inside ``bench_app``; an ``EquivalenceError`` fails the benchmark);
* **speed** — the fast path with memoization beats the per-access
  oracle on the trace→cycles stage (a loose >1x bound here so CI noise
  cannot flake; the committed ``BENCH_pipeline.json`` records the real
  bench-scale speedups, which must stay >= 5x for MT and MM).
"""

import json
from pathlib import Path

import pytest

from repro.perf.bench import (
    DEFAULT_APPS,
    SCHEMA_VERSION,
    bench_app,
    bench_smoke,
    run_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def small_bench():
    return run_bench(
        apps=["NVD-MT", "NVD-MM-B"], scale="test", sample_groups=4, smoke=False
    )


def test_schema(small_bench):
    assert small_bench["schema"] == SCHEMA_VERSION
    assert small_bench["exec_backend"] in ("tape", "reference")
    for app_id in ["NVD-MT", "NVD-MM-B"]:
        r = small_bench["apps"][app_id]
        stages = r["stages"]
        for key in (
            "compile_cold_s",
            "compile_cached_s",
            "launch_trace_s",
            "launch_trace_tape_s",
            "launch_trace_codegen_s",
            "cycles_reference_s",
            "cycles_fast_s",
        ):
            assert stages[key] >= 0.0
        assert r["equivalence"] == "exact"
        assert r["exec_backend"] in ("tape", "reference")
        assert r["trace_to_cycles_speedup"] > 0
        assert r["launch_trace_tape_speedup"] > 0
        assert r["launch_trace_codegen_speedup"] > 0
        assert r["codegen_vs_tape_speedup"] > 0


def test_compile_cache_speedup(small_bench):
    for app_id, r in small_bench["apps"].items():
        assert r["stages"]["compile_cached_s"] < r["stages"]["compile_cold_s"], app_id


def test_fast_path_beats_reference(small_bench):
    # deliberately loose (>1x) so CI machines can't flake; real numbers
    # live in BENCH_pipeline.json
    for app_id, r in small_bench["apps"].items():
        assert r["trace_to_cycles_speedup"] > 1.0, (
            app_id,
            r["trace_to_cycles_speedup"],
        )


def test_stencil_equivalence():
    # PAB-ST covered separately to keep the module fixture small
    r = bench_app("PAB-ST", scale="test", sample_groups=4)
    assert r["equivalence"] == "exact"


def test_smoke_sweep_covers_all_table_apps():
    """Every Table III app passes the tape-vs-reference trace diff."""
    smoke = bench_smoke(sample_groups=4)
    assert len(smoke["apps"]) == 11
    for app_id, entry in smoke["apps"].items():
        assert entry["equivalence"] == "exact", app_id


def test_committed_baseline_records_acceptance():
    """The committed bench-scale baseline must exist and show the >=5x
    trace->cycles speedup for transpose and matmul, plus the >=5x
    tape-backend launch+trace speedup for all three timed apps."""
    path = REPO_ROOT / "BENCH_pipeline.json"
    data = json.loads(path.read_text())
    assert data["schema"] == SCHEMA_VERSION
    for app_id in DEFAULT_APPS:
        assert app_id in data["apps"]
    for app_id in ("NVD-MT", "NVD-MM-B"):
        assert data["apps"][app_id]["trace_to_cycles_speedup"] >= 5.0
        assert data["apps"][app_id]["equivalence"] == "exact"
    for app_id in DEFAULT_APPS:
        assert data["apps"][app_id]["launch_trace_tape_speedup"] >= 5.0
        assert data["apps"][app_id]["exec_backend"] == "tape"
    assert len(data["smoke"]["apps"]) == 11


def test_committed_baseline_records_codegen_acceptance():
    """The codegen tier's acceptance: every timed app records the
    codegen launch+trace stage with the differential gate passed, and
    the generated module beats the tape replay >=3x on at least two of
    the three headline apps (at bench scale; a loose floor elsewhere so
    machine noise can't flake the committed numbers)."""
    path = REPO_ROOT / "BENCH_pipeline.json"
    data = json.loads(path.read_text())
    for app_id in DEFAULT_APPS:
        r = data["apps"][app_id]
        assert r["stages"]["launch_trace_codegen_s"] > 0
        assert r["equivalence"] == "exact"
        assert r["codegen_vs_tape_speedup"] >= 1.0
    fast = [
        app_id for app_id in DEFAULT_APPS
        if data["apps"][app_id]["codegen_vs_tape_speedup"] >= 3.0
    ]
    assert len(fast) >= 2, {
        a: data["apps"][a]["codegen_vs_tape_speedup"] for a in DEFAULT_APPS
    }


def test_app_id_validation_rejects_unknown_ids():
    from repro.perf.bench import validate_app_ids

    assert validate_app_ids(["NVD-MT", "PAB-ST"]) == ["NVD-MT", "PAB-ST"]
    with pytest.raises(ValueError) as exc:
        validate_app_ids(["NVD-MT", "NVD-TYPO"])
    assert "NVD-TYPO" in str(exc.value)
    assert "valid ids" in str(exc.value)
