"""Extension — Grover's impact on GPUs (the paper's first future-work item).

"In the near future, we will further investigate Grover's impact on
other types of devices (e.g., GPUs)."  The traces already exist for the
CPU evaluation, so the GPU models can score the full 11-application
matrix as well.  Expected physics: the kernels that use local memory for
*coalescing* (the transposes) must lose badly on GPUs when it is
removed; kernels whose staging only exploits *reuse* (string search,
nbody) should be closer to neutral because the GPU caches can serve
broadcast reuse.
"""

import pytest

from repro.apps.registry import TABLE_ORDER
from repro.experiments import app_trace
from repro.perf import GPUModel
from repro.perf.devices import GPU_DEVICES
from repro.reporting import normalized_perf_table

from conftest import SCALE


@pytest.fixture(scope="module")
def gpu_matrix():
    out = {}
    for dev_name, spec in GPU_DEVICES.items():
        model = GPUModel(spec)
        vals = {}
        for app_id in TABLE_ORDER:
            c_with = model.time_kernel(app_trace(app_id, "with", SCALE))
            c_without = model.time_kernel(app_trace(app_id, "without", SCALE))
            vals[app_id] = c_with / c_without
        out[dev_name] = vals
    return out


@pytest.mark.paper
def test_gpu_matrix(benchmark, gpu_matrix):
    values = benchmark(lambda: gpu_matrix)
    print("\n" + normalized_perf_table(values, TABLE_ORDER))


@pytest.mark.paper
def test_transposes_lose_on_every_gpu(benchmark, gpu_matrix):
    benchmark(lambda: None)
    for dev, vals in gpu_matrix.items():
        assert vals["NVD-MT"] < 0.95, f"NVD-MT must lose on {dev}"


@pytest.mark.paper
def test_gpus_prefer_local_memory_more_than_cpus(benchmark, gpu_matrix):
    """Across the suite, the average normalised performance of removal is
    lower on GPUs than on SNB — the cross-platform asymmetry that
    motivates the paper."""
    from repro.experiments import figure10

    benchmark(lambda: None)
    snb = figure10("SNB", scale=SCALE).values
    snb_mean = sum(snb.values()) / len(snb)
    for dev, vals in gpu_matrix.items():
        gpu_mean = sum(vals.values()) / len(vals)
        assert gpu_mean < snb_mean + 0.05, (
            f"{dev} should benefit from local memory at least as much as SNB"
        )


@pytest.mark.paper
def test_reuse_only_kernels_are_milder_than_coalescing_kernels(benchmark, gpu_matrix):
    """Staging for reuse (AMD-SS, NVD-NBody: broadcast access the caches
    can serve) costs less to remove than staging for coalescing
    (NVD-MT's layout change)."""
    benchmark(lambda: None)
    for dev, vals in gpu_matrix.items():
        assert vals["AMD-SS"] > vals["NVD-MT"], dev
        assert vals["NVD-NBody"] > vals["NVD-MT"], dev
