"""Figure 10 — normalised performance per benchmark on SNB/Nehalem/MIC.

Asserts the per-case shapes the paper's Section VI-C narrates.  Absolute
factors are model estimates; EXPERIMENTS.md records paper-vs-measured
per case, including the known deviations (NVD-MM-A magnitude,
NVD-MM-AB sign on SNB, ROD-SC spread).
"""

import pytest

from repro.apps.registry import TABLE_ORDER
from repro.experiments import figure10
from repro.reporting import normalized_perf_table

from conftest import SCALE


@pytest.fixture(scope="module")
def series():
    return {dev: figure10(dev, scale=SCALE) for dev in ("SNB", "Nehalem", "MIC")}


@pytest.mark.paper
def test_fig10_table(benchmark, series):
    values = benchmark(lambda: {d: figure10(d, scale=SCALE).values for d in series})
    print("\n" + normalized_perf_table(values, TABLE_ORDER))


@pytest.mark.paper
def test_fig10a_snb_shapes(benchmark, series):
    benchmark(lambda: series['SNB'].classify_all())
    snb = series["SNB"].values
    # paper §VI-C: "we observe speedups of 1.67x ... for NVD-MT"
    assert snb["NVD-MT"] > 1.3, "NVD-MT must be the big SNB winner"
    # "speedups ... 1.12x (AMD-RG) ... 1.16x (PAB-ST)"
    assert snb["AMD-RG"] > 1.05
    assert snb["PAB-ST"] > 1.1
    # "the kernel performance drops by 44% for AMD-MM" — our model shows a
    # clear loss, and the ordering vs NVD-MM-B (-19%) matches the paper
    assert snb["AMD-MM"] < 0.85, "AMD-MM must lose on SNB"
    assert snb["AMD-MM"] < snb["NVD-MM-B"], "AMD-MM loses more than NVD-MM-B"
    # "19% for NVD-MM-B"
    assert 0.7 < snb["NVD-MM-B"] < 0.95
    # "For AMD-SS, AMD-MT ... the performance is only marginally affected"
    assert 0.9 < snb["AMD-SS"] < 1.1
    assert 0.9 < snb["AMD-MT"] < 1.1
    # NBody keeps its tiled skeleton; effect stays within a few percent
    assert 0.9 < snb["NVD-NBody"] < 1.1


@pytest.mark.paper
def test_fig10b_nehalem_tracks_snb(benchmark, series):
    benchmark(lambda: series['Nehalem'].classify_all())
    """Paper: "Nehalem and SNB show similar performance trends ... with
    the exception of the number for NVD-MM-AB"."""
    snb = series["SNB"].values
    neh = series["Nehalem"].values
    agree = 0
    for app in TABLE_ORDER:
        s = "gain" if snb[app] > 1.05 else ("loss" if snb[app] < 0.95 else "similar")
        n = "gain" if neh[app] > 1.05 else ("loss" if neh[app] < 0.95 else "similar")
        agree += s == n
    assert agree >= 9, f"SNB/Nehalem should agree on most apps (got {agree}/11)"
    assert neh["NVD-MT"] > 1.3, "paper: ~1.6x for NVD-MT on Nehalem"


@pytest.mark.paper
def test_fig10c_mic_is_flat(benchmark, series):
    benchmark(lambda: series['MIC'].classify_all())
    """Paper: "MIC behaves significantly different: most applications
    have similar performance with and without using local memory; only
    minor differences can be observed for NVD-MM-A/B/AB" (the MM family
    is where MIC's losses concentrate)."""
    mic = series["MIC"].values
    snb = series["SNB"].values

    flat = [a for a in TABLE_ORDER if 0.85 <= mic[a] <= 1.15]
    assert len(flat) >= 7, f"MIC should be mostly flat, got {sorted(flat)}"

    # the spread of effects is narrower on MIC than on SNB
    def spread(vals):
        inner = [vals[a] for a in TABLE_ORDER if a not in ("AMD-MM", "NVD-MM-AB")]
        return max(inner) - min(inner)

    assert spread(mic) < spread(snb)


@pytest.mark.paper
def test_fig10_losses_match_paper_cases(benchmark, series):
    benchmark(lambda: None)
    """The column-major-layout cases lose on every CPU once local memory
    is removed — the paper's central counter-example to 'local memory is
    useless on CPUs'."""
    for dev, s in series.items():
        assert s.values["AMD-MM"] < 0.95, f"AMD-MM must lose on {dev}"
        assert s.values["NVD-MM-B"] < 0.95, f"NVD-MM-B must lose on {dev}"
