"""Shared fixtures for the paper-reproduction benchmarks.

Traces are expensive (interpreting kernels at bench scale); they are
computed once per session through the module-level caches in
``repro.experiments`` and shared by every benchmark.  The ``benchmark``
fixture then measures the analysis/model stage, which is what varies
between runs.
"""

from __future__ import annotations

import pytest

from repro.experiments import BENCH_SAMPLE_GROUPS  # noqa: F401  (re-export)

#: the scale every paper benchmark runs at
SCALE = "bench"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return SCALE


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: benchmark reproducing a specific paper table/figure"
    )
