"""Ablation — the derived '+ -> + -> *' index pattern (Fig. 7(b)).

The paper extends the plain '+ -> *' matcher with a derived pattern that
tolerates extra low-dimension terms (loop-dependent offsets, halo
constants).  This ablation disables the derived handling
(``strict_patterns=True``) and shows that flattened kernels with
multi-term dimensions stop being reversible, while simple kernels still
work — quantifying how much kernel coverage the derived pattern buys.
"""

import pytest

from repro.core import GroverPass, NotReversible
from repro.frontend import compile_kernel

#: flat 1-D local array indexed as a 2-D tile *with halo offsets* —
#: the '+ -> + -> *' shape: ((ly+1) * W + (lx+1))
FLAT_HALO = r"""
#define S 8
#define W (S + 2)
__kernel void flathalo(__global float* out, __global const float* in, int Wp)
{
    __local float lm[(S + 2) * (S + 2)];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    lm[(ly + 1)*W + (lx + 1)] = in[(gy + 1)*Wp + (gx + 1)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gy*Wp + gx] = lm[ly*W + (lx + 1)] + lm[(ly + 1)*W + lx];
}
"""

#: plain '+ -> *' kernel — works under both modes
FLAT_PLAIN = r"""
#define S 8
__kernel void flatplain(__global float* out, __global const float* in, int Wp)
{
    __local float lm[S * S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[ly*S + lx] = in[(int)get_global_id(1)*Wp + (int)get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(int)get_global_id(1)*Wp + (int)get_global_id(0)] = lm[lx*S + ly];
}
"""


@pytest.mark.paper
def test_derived_pattern_enables_halo_kernels(benchmark):
    def both_modes():
        ok = {}
        k1 = compile_kernel(FLAT_HALO)
        GroverPass(strict_patterns=False).run(k1)
        ok["derived"] = not k1.local_arrays
        k2 = compile_kernel(FLAT_HALO)
        try:
            GroverPass(strict_patterns=True).run(k2)
            ok["strict"] = not k2.local_arrays
        except NotReversible:
            ok["strict"] = False
        return ok

    ok = benchmark(both_modes)
    print(f"\nflat halo kernel reversible: {ok}")
    assert ok["derived"], "the derived pattern must handle halo offsets"
    assert not ok["strict"], "the plain pattern alone cannot"


@pytest.mark.paper
def test_plain_pattern_still_works_in_strict_mode(benchmark):
    def strict_ok():
        k = compile_kernel(FLAT_PLAIN)
        GroverPass(strict_patterns=True).run(k)
        return not k.local_arrays

    assert benchmark(strict_ok)


@pytest.mark.paper
def test_app_coverage_with_and_without_derived_pattern(benchmark):
    """How many of the 11 applications stay reversible in strict mode?"""
    from repro.apps.harness import compile_app
    from repro.apps.registry import TABLE_ORDER, get_app
    from repro.core import GroverError

    def coverage(strict):
        ok = 0
        for app_id in TABLE_ORDER:
            app = get_app(app_id)
            try:
                _, report = compile_app(app, "without", strict_patterns=strict)
                ok += bool(report.transformed) and not report.rejected
            except GroverError:
                pass
        return ok

    full = coverage(False)
    strict = benchmark(lambda: coverage(True))
    print(f"\nreversible apps: derived={full}/11, strict={strict}/11")
    assert full == 11
    assert strict <= full
