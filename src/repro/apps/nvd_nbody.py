"""NVD-NBody — oclNbody from the NVIDIA SDK.

Each work-item integrates one body; tiles of ``p`` bodies are staged in
local memory and every work-item interacts with the whole tile.  All
work-items of a group read the *same* local element simultaneously
(broadcast) — a pattern hardware caches also recognise, which is why the
paper expected (and on Nehalem/MIC measured) a small gain from removing
the staging; the paper keeps the tiled skeleton after the
transformation (Section VI-D), as does Grover.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

P = 64          # tile size = work-group size
SOFTENING = 1e-2


SOURCE = r"""
#define P 64
#define EPS2 0.0001f
__kernel void nbodyForces(__global float* fx, __global float* fy,
                          __global float* fz, __global const float* pos4,
                          int n)
{
    /* pos4: n bodies as (x, y, z, mass) float4s */
    __local float4 sh[P];
    int gid = get_global_id(0);
    int lx = get_local_id(0);
    float4 me = vload4(gid, pos4);
    float ax = 0.0f;
    float ay = 0.0f;
    float az = 0.0f;
    for (int tile = 0; tile < n / P; ++tile) {
        sh[lx] = vload4(tile*P + lx, pos4);
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int j = 0; j < P; ++j) {
            float4 b = sh[j];
            float dx = b.x - me.x;
            float dy = b.y - me.y;
            float dz = b.z - me.z;
            float d2 = dx*dx + dy*dy + dz*dz + EPS2;
            float inv = rsqrt(d2);
            float s = b.w * inv * inv * inv;
            ax += dx * s;
            ay += dy * s;
            az += dz * s;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    fx[gid] = ax;
    fy[gid] = ay;
    fz[gid] = az;
}
"""

_SIZES = {"test": 128, "smoke": 128, "small": 256, "bench": 512}


def _reference(pos: np.ndarray) -> np.ndarray:
    """O(n^2) softened gravitational acceleration, float32 like the kernel."""
    p = pos[:, :3].astype(np.float32)
    m = pos[:, 3].astype(np.float32)
    d = p[None, :, :] - p[:, None, :]            # d[i, j] = p[j] - p[i]
    r2 = (d**2).sum(axis=2) + np.float32(1e-4)
    inv = (1.0 / np.sqrt(r2)).astype(np.float32)
    s = m[None, :] * inv * inv * inv
    return (d * s[:, :, None]).sum(axis=1).astype(np.float32)


def make_problem(scale: str) -> Problem:
    n = _SIZES[scale]
    rng = np.random.default_rng(29)
    pos = rng.standard_normal((n, 4)).astype(np.float32)
    pos[:, 3] = rng.random(n, dtype=np.float32) + 0.5  # masses
    acc = _reference(pos)
    return Problem(
        global_size=(n,),
        local_size=(P,),
        inputs={"pos4": pos, "n": n},
        expected={
            "fx": acc[:, 0].copy(),
            "fy": acc[:, 1].copy(),
            "fz": acc[:, 2].copy(),
        },
        atol=5e-3,
        rtol=5e-3,
    )


APP = register(
    App(
        id="NVD-NBody",
        title="oclNbody",
        suite="NVIDIA SDK",
        source=SOURCE,
        kernel_name="nbodyForces",
        arrays=None,
        make_problem=make_problem,
        dataset_note="all-pairs forces, 64-body tiles in local memory",
    )
)
