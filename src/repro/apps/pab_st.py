"""PAB-ST — the Parboil stencil benchmark (5-point Jacobi step).

A 2-D tile plus halo is staged in local memory; each work-item then
reads its 4 neighbours and centre from the tile.  Each local load has a
*different* constant offset, so Grover solves one linear system per LL
(five systems here) — the richest per-kernel exercise of Equation 3.
On CPUs the neighbour reuse is served by the caches anyway, so the
paper measures a gain from removing the tile (1.16x on SNB).
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

S = 16

SOURCE = r"""
#define S 16
__kernel void stencil5(__global float* out, __global const float* in,
                       int Wp, int W, float c0, float c1)
{
    /* `in` is padded by 1 on every side: Wp = W + 2 */
    __local float lm[S + 2][S + 2];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    lm[ly + 1][lx + 1] = in[(gy + 1)*Wp + (gx + 1)];
    if (ly == 0)
        lm[0][lx + 1] = in[gy*Wp + (gx + 1)];
    if (ly == S - 1)
        lm[S + 1][lx + 1] = in[(gy + 2)*Wp + (gx + 1)];
    if (lx == 0)
        lm[ly + 1][0] = in[(gy + 1)*Wp + gx];
    if (lx == S - 1)
        lm[ly + 1][S + 1] = in[(gy + 1)*Wp + (gx + 2)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float v = c0 * lm[ly + 1][lx + 1]
            + c1 * (lm[ly][lx + 1] + lm[ly + 2][lx + 1]
                    + lm[ly + 1][lx] + lm[ly + 1][lx + 2]);
    out[gy*W + gx] = v;
}
"""

_SIZES = {"test": (64, 64), "smoke": (64, 64), "small": (128, 128), "bench": (512, 1024)}

C0, C1 = np.float32(0.5), np.float32(0.125)


def make_problem(scale: str) -> Problem:
    h, w = _SIZES[scale]
    rng = np.random.default_rng(31)
    grid = rng.random((h + 2, w + 2), dtype=np.float32)
    inner = grid[1:-1, 1:-1]
    expected = (
        C0 * inner
        + C1 * (grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:])
    ).astype(np.float32)
    return Problem(
        global_size=(w, h),
        local_size=(S, S),
        inputs={"in": grid, "Wp": w + 2, "W": w, "c0": float(C0), "c1": float(C1)},
        expected={"out": expected},
        atol=1e-4,
        rtol=1e-3,
    )


APP = register(
    App(
        id="PAB-ST",
        title="stencil",
        suite="Parboil",
        source=SOURCE,
        kernel_name="stencil5",
        arrays=None,
        make_problem=make_problem,
        dataset_note="5-point stencil, 16x16 tile + halo in local memory",
    )
)
