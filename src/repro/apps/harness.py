"""Compile-launch-check harness shared by tests, benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.registry import App, Problem
from repro.core import GroverPass, GroverReport
from repro.frontend import compile_kernel
from repro.ir.function import Function
from repro.runtime import KernelTrace, Memory, launch


@dataclass
class AppRun:
    app_id: str
    variant: str                    # 'with' | 'without'
    outputs: Dict[str, np.ndarray]
    trace: Optional[KernelTrace]
    report: Optional[GroverReport]  # set for the 'without' variant


def compile_app(app: App, variant: str = "with", **grover_kwargs) -> Tuple[Function, Optional[GroverReport]]:
    """Compile an app's kernel; for ``variant='without'`` run Grover."""
    kernel = compile_kernel(app.source, app.kernel_name, defines=app.defines)
    report = None
    if variant == "without":
        report = GroverPass(arrays=app.arrays, **grover_kwargs).run(kernel)
    elif variant != "with":
        raise ValueError(f"variant must be 'with' or 'without', got {variant!r}")
    return kernel, report


def run_app(
    app: App,
    variant: str = "with",
    scale: str = "test",
    collect_trace: bool = False,
    sample_groups: Optional[int] = None,
    workers: Optional[int] = None,
    **grover_kwargs,
) -> AppRun:
    """Compile (optionally transform) and execute one application.

    ``workers`` shards the launch over processes; see ``launch``.
    """
    kernel, report = compile_app(app, variant, **grover_kwargs)
    return execute_app(
        app,
        kernel,
        variant=variant,
        scale=scale,
        collect_trace=collect_trace,
        sample_groups=sample_groups,
        workers=workers,
        report=report,
    )


def execute_app(
    app: App,
    kernel: Function,
    variant: str = "with",
    scale: str = "test",
    collect_trace: bool = False,
    sample_groups: Optional[int] = None,
    workers: Optional[int] = None,
    report: Optional[GroverReport] = None,
) -> AppRun:
    """Execute an already-compiled kernel for ``app``.

    Splitting execution from :func:`compile_app` lets the differential
    suite launch one kernel object serially *and* sharded — transformed
    kernels get fresh instruction ids at every compile, so event-stream
    bit-identity is only defined per compiled kernel.
    """
    problem = app.make_problem(scale)

    mem = Memory()
    args: Dict[str, object] = {}
    buffers: Dict[str, object] = {}
    for name, value in problem.inputs.items():
        if isinstance(value, np.ndarray):
            buf = mem.from_array(value, name)
            buffers[name] = buf
            args[name] = buf
        else:
            args[name] = value
    out_arrays: Dict[str, np.ndarray] = {}
    for name, expected in problem.expected.items():
        if name not in buffers:
            buf = mem.alloc(expected.nbytes, name)
            buffers[name] = buf
            args[name] = buf

    res = launch(
        kernel,
        problem.global_size,
        problem.local_size,
        args,
        memory=mem,
        local_arg_sizes=problem.local_arg_sizes or None,
        collect_trace=collect_trace,
        sample_groups=sample_groups,
        workers=workers,
    )
    for name, expected in problem.expected.items():
        out_arrays[name] = (
            buffers[name]
            .read(expected.dtype, expected.size)
            .reshape(expected.shape)
        )
    return AppRun(app.id, variant, out_arrays, res.trace, report)


def validate_app(app: App, variant: str = "with", scale: str = "test", **kw) -> None:
    """Run the app at full fidelity and compare against the reference.

    Raises ``AssertionError`` with a useful message on mismatch — this is
    the paper's "each benchmark still runs correctly" check.
    """
    run = run_app(app, variant, scale, **kw)
    problem = app.make_problem(scale)
    for name, expected in problem.expected.items():
        got = run.outputs[name]
        if expected.dtype.kind in "fc":
            np.testing.assert_allclose(
                got,
                expected,
                atol=problem.atol,
                rtol=problem.rtol,
                err_msg=f"{app.id} [{variant}] output {name!r} mismatch",
            )
        else:
            np.testing.assert_array_equal(
                got, expected, err_msg=f"{app.id} [{variant}] output {name!r} mismatch"
            )
