"""ROD-SC — the Rodinia streamcluster distance kernel.

Point coordinates are stored dimension-major (``coord[d*num + i]``), so
one point's 16 coordinates live on 16 *different* cache lines ("stored
far from each other, not in a cacheline" — the paper's words).  The
kernel gathers the candidate centre's coordinates into contiguous local
memory once per group; every work-item then computes its distance to
the centre.  The paper groups this with NVD-MM-B: gathering improves
cache utilisation, so removing local memory tends to cost performance
on Nehalem/MIC.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

D = 16       # dimensionality
GROUP = 64

SOURCE = r"""
#define D 16
__kernel void distKernel(__global float* dist, __global const float* coord,
                         int num, int center)
{
    __local float cc[D];
    int li = get_local_id(0);
    int gid = get_global_id(0);
    if (li < D)
        cc[li] = coord[li*num + center];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int d = 0; d < D; ++d) {
        float diff = coord[d*num + gid] - cc[d];
        acc += diff * diff;
    }
    dist[gid] = acc;
}
"""

#: point counts chosen so the dimension-major stride is not a multiple of
#: 1024 floats (which would alias every dimension into one cache set and
#: dominate both kernel versions with the same pathology)
_SIZES = {"test": 512, "smoke": 512, "small": 4160, "bench": 65600}


def make_problem(scale: str) -> Problem:
    n = _SIZES[scale]
    rng = np.random.default_rng(37)
    coord = rng.random((D, n), dtype=np.float32)  # dimension-major
    center = n // 3
    diff = coord - coord[:, center : center + 1]
    expected = (diff**2).sum(axis=0).astype(np.float32)
    return Problem(
        global_size=(n,),
        local_size=(GROUP,),
        inputs={"coord": coord, "num": n, "center": center},
        expected={"dist": expected},
        atol=1e-4,
        rtol=1e-3,
    )


APP = register(
    App(
        id="ROD-SC",
        title="streamcluster (pgain distance)",
        suite="Rodinia",
        source=SOURCE,
        kernel_name="distKernel",
        arrays=None,
        make_problem=make_problem,
        dataset_note="16-D centre coordinates gathered into local memory",
    )
)
