"""AMD-MM — MatrixMultiplication from the AMD APP SDK.

The AMD kernel is ``float4``-vectorised: each work-item produces a
1x4 sliver of C, staging the B tile in local memory as ``float4`` rows.
Removing the tile turns the inner loop's B access into a column of
vector loads with a power-of-two stride — the paper reports a 44%
slowdown on SNB for this case ("it exploits vector data types, which
changes the memory access pattern to be column-major").
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

BS = 16

SOURCE = r"""
#define BS 16
__kernel void mmmKernel(__global float* C, __global const float* A,
                        __global const float* B, int K, int N4)
{
    /* C: M x N floats (N = 4*N4); each work-item computes C[gy, 4*gx..] */
    __local float4 Bs[BS][BS];
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    int wx = get_group_id(0);
    int gy = get_global_id(1);
    float4 acc = make_float4(0.0f, 0.0f, 0.0f, 0.0f);
    for (int t = 0; t < K / BS; ++t) {
        /* stage B rows t*BS .. t*BS+BS, vector columns wx*BS.. */
        Bs[ty][tx] = vload4((t*BS + ty)*N4 + (wx*BS + tx), B);
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k) {
            float a = A[gy*K + (t*BS + k)];
            acc = acc + a * Bs[k][tx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    vstore4(acc, gy*N4 + get_global_id(0), C);
}
"""

#: (M, K, N) with N divisible by 4*BS
_SIZES = {
    "test": (32, 48, 64),
    "smoke": (32, 48, 64),
    "small": (32, 128, 256),
    "bench": (32, 256, 1024),
}


def make_problem(scale: str) -> Problem:
    m, k, n = _SIZES[scale]
    rng = np.random.default_rng(17)
    a = rng.random((m, k), dtype=np.float32) - 0.5
    b = rng.random((k, n), dtype=np.float32) - 0.5
    c = (a @ b).astype(np.float32)
    return Problem(
        global_size=(n // 4, m),
        local_size=(BS, BS),
        inputs={"A": a, "B": b, "K": k, "N4": n // 4},
        expected={"C": c},
        atol=1e-3,
        rtol=1e-3,
    )


APP = register(
    App(
        id="AMD-MM",
        title="MatrixMultiplication (float4)",
        suite="AMD APP SDK",
        source=SOURCE,
        kernel_name="mmmKernel",
        arrays=None,
        make_problem=make_problem,
        dataset_note="vectorised MM, B tile in local memory",
    )
)
