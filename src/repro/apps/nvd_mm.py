"""NVD-MM — oclMatrixMul from the NVIDIA SDK.

The SDK kernel stages one 16x16 tile of matrix A and one of matrix B in
flat local arrays (``AS(i,j) = As[i*16+j]`` in the original macro form —
this is the kernel that exercises the paper's ``+ -> *`` flattened-index
pattern of Fig. 7).

The paper's Table III removes the tiles selectively, giving the three
test cases NVD-MM-A (remove the A tile), NVD-MM-B (remove the B tile),
and NVD-MM-AB (remove both).  Removing A is cheap on CPUs (row access,
cache-friendly) while removing B hurts (column access whose power-of-two
stride conflicts in the set-indexed caches).
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

BS = 16

SOURCE = r"""
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A,
                        __global float* B, int wA, int wB)
{
    __local float As[BS*BS];
    __local float Bs[BS*BS];
    int bx = get_group_id(0);
    int by = get_group_id(1);
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    float acc = 0.0f;
    for (int t = 0; t < wA / BS; ++t) {
        As[ty*BS + tx] = A[(by*BS + ty)*wA + (t*BS + tx)];
        Bs[ty*BS + tx] = B[(t*BS + ty)*wB + (bx*BS + tx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; ++k)
            acc += As[ty*BS + k] * Bs[k*BS + tx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[get_global_id(1)*wB + get_global_id(0)] = acc;
}
"""

#: (M, K, N): C is MxN, A is MxK, B is KxN.  The bench shape keeps the
#: paper-typical power-of-two row stride (N=1024) that makes column
#: access conflict-prone, while M stays small so interpretation is fast.
_SIZES = {
    "test": (32, 48, 32),
    "smoke": (32, 48, 32),
    "small": (32, 128, 256),
    "bench": (32, 256, 1024),
}


def make_problem(scale: str) -> Problem:
    m, k, n = _SIZES[scale]
    rng = np.random.default_rng(11)
    a = rng.random((m, k), dtype=np.float32) - 0.5
    b = rng.random((k, n), dtype=np.float32) - 0.5
    c = (a @ b).astype(np.float32)
    return Problem(
        global_size=(n, m),
        local_size=(BS, BS),
        inputs={"A": a, "B": b, "wA": k, "wB": n},
        expected={"C": c},
        atol=1e-3,
        rtol=1e-3,
    )


def _mk(app_id: str, arrays, note: str) -> App:
    return register(
        App(
            id=app_id,
            title="oclMatrixMul",
            suite="NVIDIA SDK",
            source=SOURCE,
            kernel_name="matrixMul",
            arrays=arrays,
            make_problem=make_problem,
            dataset_note=note,
        )
    )


APP_A = _mk("NVD-MM-A", ["As"], "remove local tile of matrix A")
APP_B = _mk("NVD-MM-B", ["Bs"], "remove local tile of matrix B")
APP_AB = _mk("NVD-MM-AB", None, "remove both local tiles")
