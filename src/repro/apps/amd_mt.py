"""AMD-MT — MatrixTranspose from the AMD APP SDK.

The AMD kernel is vectorised: each work-item moves a ``float4`` through
local memory (a 4x1 sliver of a 16x64-float tile).  Because each
work-item already handles several elements, the per-element staging
overhead is small — the paper sees only a marginal effect from removing
local memory here ("due to the explicit usage of vector data types").
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

S = 16

SOURCE = r"""
#define S 16
__kernel void transpose_vec(__global float* out, __global const float* in,
                            int W4, int H)
{
    /* W4 = row length of `in` in float4 units; H = number of rows.    */
    __local float4 lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    /* stage: row (wy*S+ly), vector column (wx*S+lx) */
    float4 v = vload4((wy*S + ly)*W4 + (wx*S + lx), in);
    lm[ly][lx] = v;
    barrier(CLK_LOCAL_MEM_FENCE);
    /* read transposed within the tile: row (wy*S+lx), vcol (wx*S+ly) */
    float4 w = lm[lx][ly];
    int row = wy*S + lx;
    int col = (wx*S + ly)*4;
    out[(col + 0)*H + row] = w.x;
    out[(col + 1)*H + row] = w.y;
    out[(col + 2)*H + row] = w.z;
    out[(col + 3)*H + row] = w.w;
}
"""

#: (H, W) of the input matrix; W must be divisible by 4*S
_SIZES = {"test": (64, 64), "smoke": (64, 64), "small": (128, 256), "bench": (512, 1024)}


def make_problem(scale: str) -> Problem:
    h, w = _SIZES[scale]
    rng = np.random.default_rng(13)
    a = rng.random((h, w), dtype=np.float32)
    return Problem(
        global_size=(w // 4, h),
        local_size=(S, S),
        inputs={"in": a, "W4": w // 4, "H": h},
        expected={"out": a.T.copy()},
    )


APP = register(
    App(
        id="AMD-MT",
        title="MatrixTranspose (float4)",
        suite="AMD APP SDK",
        source=SOURCE,
        kernel_name="transpose_vec",
        arrays=None,
        make_problem=make_problem,
        dataset_note="vectorised transpose, 512x1024 (paper: 1024x1024)",
    )
)
