"""AMD-RG — RecursiveGaussian-style row filter from the AMD APP SDK.

A work-group stages one block of an image row (plus a halo of radius R
on both sides) in local memory, then every work-item reads 2R+1 taps
from the staged block.  The halo loads create *multiple* (GL, LS) pairs
for the same local array — the multi-pass staging case of Section IV-A;
Grover picks the main (dominating) pair, and any pair yields the same
correspondence.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

S = 64      # work-group size (block of output pixels per group)
R = 4       # filter radius

SOURCE = r"""
#define S 64
#define R 4
__kernel void rowFilter(__global float* out, __global const float* in,
                        __global const float* weights, int Wp, int W)
{
    /* `in` rows are padded with R pixels on both sides: Wp = W + 2R. */
    __local float lm[S + 2*R];
    int lx = get_local_id(0);
    int wx = get_group_id(0);
    /* the work-group is (S, 1): the row equals the y group index */
    int row = get_group_id(1);
    int base = row*Wp + wx*S + lx;
    lm[lx + R] = in[base + R];
    if (lx < R)
        lm[lx] = in[base];
    if (lx >= S - R)
        lm[lx + 2*R] = in[base + 2*R];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int k = 0; k < 2*R + 1; ++k)
        acc += weights[k] * lm[lx + k];
    out[row*W + wx*S + lx] = acc;
}
"""

#: (H, W) of the image; W divisible by S
_SIZES = {"test": (8, 128), "smoke": (8, 128), "small": (32, 256), "bench": (64, 1024)}


def make_problem(scale: str) -> Problem:
    h, w = _SIZES[scale]
    rng = np.random.default_rng(23)
    img = rng.random((h, w), dtype=np.float32)
    weights = np.exp(-0.5 * (np.arange(-R, R + 1) / 2.0) ** 2).astype(np.float32)
    weights /= weights.sum()
    padded = np.zeros((h, w + 2 * R), dtype=np.float32)
    padded[:, R : R + w] = img
    expected = np.zeros_like(img)
    for k in range(2 * R + 1):
        expected += weights[k] * padded[:, k : k + w]
    return Problem(
        global_size=(w, h),
        local_size=(S, 1),
        inputs={"in": padded, "weights": weights, "Wp": w + 2 * R, "W": w},
        expected={"out": expected.astype(np.float32)},
        atol=1e-4,
        rtol=1e-3,
    )


APP = register(
    App(
        id="AMD-RG",
        title="RecursiveGaussian (row filter)",
        suite="AMD APP SDK",
        source=SOURCE,
        kernel_name="rowFilter",
        arrays=None,
        make_problem=make_problem,
        dataset_note="radius-4 Gaussian row filter with halo staging",
    )
)
