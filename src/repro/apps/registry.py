"""Application registry: id -> :class:`App`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Problem:
    """One concrete dataset + launch geometry for an application."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    #: kernel argument name -> numpy array (buffer) or python scalar
    inputs: Dict[str, object]
    #: names of output buffer arguments -> expected arrays
    expected: Dict[str, np.ndarray]
    #: absolute tolerance for float comparisons
    atol: float = 1e-4
    rtol: float = 1e-4
    #: byte sizes for __local pointer arguments, if any
    local_arg_sizes: Dict[str, int] = field(default_factory=dict)


@dataclass
class App:
    """One benchmark application (a row of the paper's Table I/III)."""

    id: str                        # e.g. "NVD-MT"
    title: str                     # e.g. "oclTranspose"
    suite: str                     # AMD SDK / NVIDIA SDK / Rodinia / Parboil
    source: str                    # OpenCL C
    kernel_name: str
    #: local data structures Grover should remove (None = all)
    arrays: Optional[List[str]]
    #: dataset descriptions per scale
    make_problem: Callable[[str], Problem]
    #: paper-reported dataset note (Table I)
    dataset_note: str = ""
    #: compile-time defines
    defines: Dict[str, object] = field(default_factory=dict)


APPS: Dict[str, App] = {}


def register(app: App) -> App:
    if app.id in APPS:
        raise ValueError(f"duplicate app id {app.id}")
    APPS[app.id] = app
    return app


def get_app(app_id: str) -> App:
    if not APPS:
        _ensure_loaded()
    try:
        return APPS[app_id]
    except KeyError:
        raise KeyError(f"unknown app {app_id!r}; known: {sorted(APPS)}") from None


def _ensure_loaded() -> None:
    # importing the modules populates the registry
    from repro.apps import (  # noqa: F401
        amd_mm,
        amd_mt,
        amd_rg,
        amd_ss,
        ext_st3d,
        nvd_mm,
        nvd_mt,
        nvd_nbody,
        pab_st,
        rod_sc,
    )


def all_apps() -> List[App]:
    _ensure_loaded()
    return [APPS[k] for k in sorted(APPS)]


#: the paper's Table III row order
TABLE_ORDER = [
    "AMD-SS",
    "AMD-MT",
    "NVD-MT",
    "AMD-RG",
    "AMD-MM",
    "NVD-MM-A",
    "NVD-MM-B",
    "NVD-MM-AB",
    "NVD-NBody",
    "PAB-ST",
    "ROD-SC",
]


def table_apps() -> List[App]:
    _ensure_loaded()
    return [APPS[k] for k in TABLE_ORDER]
