"""EXT-ST3D — 3-D 7-point stencil (extension, not a paper Table I row).

Exercises the full 3-D paths of the system: a 3-D NDRange, a 3-D local
tile with halos in every dimension, ``get_local_id(2)`` symbols, and
3x3 linear systems per local load.  The Parboil suite's full stencil is
3-D; the paper's PAB-ST row is covered by the 2-D plane kernel, and this
app extends it.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

S = 4  # tile edge (4x4x4 work-groups keep interpretation fast)

SOURCE = r"""
#define S 4
__kernel void stencil7(__global float* out, __global const float* in,
                       int Wp, int Hp, float c0, float c1)
{
    /* `in` is padded by 1 on every face: Wp = W + 2, Hp = H + 2 */
    __local float lm[S + 2][S + 2][S + 2];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int lz = get_local_id(2);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    int gz = get_global_id(2);
    int base = ((gz + 1)*Hp + (gy + 1))*Wp + (gx + 1);
    lm[lz + 1][ly + 1][lx + 1] = in[base];
    if (lx == 0)     lm[lz + 1][ly + 1][0]     = in[base - 1];
    if (lx == S - 1) lm[lz + 1][ly + 1][S + 1] = in[base + 1];
    if (ly == 0)     lm[lz + 1][0][lx + 1]     = in[base - Wp];
    if (ly == S - 1) lm[lz + 1][S + 1][lx + 1] = in[base + Wp];
    if (lz == 0)     lm[0][ly + 1][lx + 1]     = in[base - Wp*Hp];
    if (lz == S - 1) lm[S + 1][ly + 1][lx + 1] = in[base + Wp*Hp];
    barrier(CLK_LOCAL_MEM_FENCE);
    float v = c0 * lm[lz + 1][ly + 1][lx + 1]
            + c1 * (lm[lz + 1][ly + 1][lx] + lm[lz + 1][ly + 1][lx + 2]
                    + lm[lz + 1][ly][lx + 1] + lm[lz + 1][ly + 2][lx + 1]
                    + lm[lz][ly + 1][lx + 1] + lm[lz + 2][ly + 1][lx + 1]);
    int W = Wp - 2;
    int H = Hp - 2;
    out[(gz*H + gy)*W + gx] = v;
}
"""

_SIZES = {"test": (8, 8, 8), "smoke": (8, 8, 8), "small": (16, 16, 16), "bench": (16, 32, 64)}

C0, C1 = np.float32(0.4), np.float32(0.1)


def make_problem(scale: str) -> Problem:
    d, h, w = _SIZES[scale]
    rng = np.random.default_rng(41)
    grid = rng.random((d + 2, h + 2, w + 2), dtype=np.float32)
    inner = grid[1:-1, 1:-1, 1:-1]
    expected = (
        C0 * inner
        + C1
        * (
            grid[1:-1, 1:-1, :-2]
            + grid[1:-1, 1:-1, 2:]
            + grid[1:-1, :-2, 1:-1]
            + grid[1:-1, 2:, 1:-1]
            + grid[:-2, 1:-1, 1:-1]
            + grid[2:, 1:-1, 1:-1]
        )
    ).astype(np.float32)
    return Problem(
        global_size=(w, h, d),
        local_size=(S, S, S),
        inputs={"in": grid, "Wp": w + 2, "Hp": h + 2, "c0": float(C0), "c1": float(C1)},
        expected={"out": expected},
        atol=1e-4,
        rtol=1e-3,
    )


APP = register(
    App(
        id="EXT-ST3D",
        title="stencil3d (extension)",
        suite="Parboil",
        source=SOURCE,
        kernel_name="stencil7",
        arrays=None,
        make_problem=make_problem,
        dataset_note="7-point 3-D stencil, (S+2)^3 tile in local memory",
    )
)
