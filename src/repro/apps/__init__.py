"""The 11 benchmark applications of the paper's Table I.

Every application provides: its OpenCL C kernel source (re-implemented
from the documented SDK/suite kernels, all using local memory as a
software cache), launch geometry, dataset generators at two scales
(``test`` for exact correctness checks, ``bench`` for the performance
experiments), and a numpy reference implementation.

The three NVD-MM rows of the paper's Table III (removing the A tile, the
B tile, or both) are registry variants of one application.
"""

from repro.apps.harness import AppRun, run_app, validate_app
from repro.apps.registry import APPS, App, Problem, get_app

__all__ = ["APPS", "App", "Problem", "get_app", "AppRun", "run_app", "validate_app"]
