"""AMD-SS — StringSearch from the AMD APP SDK.

The pattern string is staged into local memory once per work-group and
then read by *every* work-item while scanning its text position.  All
work-items share the same data block, so the global-load index has no
work-group component — the Table III row with group index ``(0,0,0)``.
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

GROUP = 64
PATTERN_LEN = 64

SOURCE = r"""
#define M 64
__kernel void stringSearch(__global uint* match, __global const uchar* text,
                           __global const uchar* pattern, int n)
{
    __local uchar lp[M];
    int li = get_local_id(0);
    int gid = get_global_id(0);
    lp[li] = pattern[li];
    barrier(CLK_LOCAL_MEM_FENCE);
    uint ok = 1;
    for (int j = 0; j < M; ++j) {
        uchar c = lp[j];
        if (text[gid + j] != c)
            ok = 0;
    }
    match[gid] = ok;
}
"""

#: number of searchable positions
_SIZES = {"test": 1024, "smoke": 1024, "small": 8192, "bench": 65536}


def make_problem(scale: str) -> Problem:
    n = _SIZES[scale]
    rng = np.random.default_rng(19)
    text = rng.integers(ord("a"), ord("e"), size=n + PATTERN_LEN, dtype=np.uint8)
    pattern = rng.integers(ord("a"), ord("e"), size=PATTERN_LEN, dtype=np.uint8)
    # plant a handful of guaranteed matches
    for pos in range(0, n, max(1, n // 7)):
        text[pos : pos + PATTERN_LEN] = pattern
    windows = np.lib.stride_tricks.sliding_window_view(text, PATTERN_LEN)[:n]
    expected = (windows == pattern).all(axis=1).astype(np.uint32)
    return Problem(
        global_size=(n,),
        local_size=(GROUP,),
        inputs={"text": text, "pattern": pattern, "n": n},
        expected={"match": expected},
    )


APP = register(
    App(
        id="AMD-SS",
        title="StringSearch",
        suite="AMD APP SDK",
        source=SOURCE,
        kernel_name="stringSearch",
        arrays=None,
        make_problem=make_problem,
        dataset_note="64-byte pattern over 64K text positions",
    )
)
