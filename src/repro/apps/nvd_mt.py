"""NVD-MT — Matrix Transpose from the NVIDIA SDK (the paper's Fig. 1).

Local memory stages a 16x16 tile so that both global reads and writes
are coalesced on GPUs.  On CPUs the staging is pure overhead — this is
the kernel with the paper's largest CPU-side gain from Grover
(1.67x on SNB, ~1.6x on Nehalem).
"""

from __future__ import annotations

import numpy as np

from repro.apps.registry import App, Problem, register

TILE = 16

SOURCE = r"""
#define S 16
__kernel void transpose(__global float* out, __global const float* in,
                        int W, int H)
{
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wx*S + ly)*W + (wy*S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[get_global_id(1)*H + get_global_id(0)] = val;
}
"""

_SIZES = {"test": 64, "smoke": 64, "bench": 1024, "small": 128}


def make_problem(scale: str) -> Problem:
    n = _SIZES[scale]
    rng = np.random.default_rng(7)
    a = rng.random((n, n), dtype=np.float32)
    return Problem(
        global_size=(n, n),
        local_size=(TILE, TILE),
        inputs={"in": a, "W": n, "H": n},
        expected={"out": a.T.copy()},
    )


APP = register(
    App(
        id="NVD-MT",
        title="oclTranspose",
        suite="NVIDIA SDK",
        source=SOURCE,
        kernel_name="transpose",
        arrays=None,
        make_problem=make_problem,
        dataset_note="1024x1024 matrix (paper: 2048x2048)",
    )
)
