"""The Session: one object that owns configuration, caches and observability.

A :class:`Session` resolves every ``REPRO_*`` knob through the layered
registry of :mod:`repro.session.config` (defaults < config dict/file <
environment < explicit keywords), owns the LRU compile cache, chooses the
cache-simulation backend and the default worker count, and exposes every
pipeline entry point — ``compile_source``, ``disable_local_memory``,
``run_app``, ``launch``, ``run_matrix``, ``autotune``, ``figure10``,
``table4``, ``bench`` — as methods that run with the session active, so
config lookups deep inside ``perf/fastcache.py`` or ``parallel/engine.py``
see *this* session's values.

The historical module-level functions remain as thin shims that delegate
to :func:`current_session`, so existing code and the test suite keep
working unchanged (and produce bit-identical results — asserted by
``tests/test_session_entrypoints.py``).
"""

from __future__ import annotations

import copy
import hashlib
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.session import events
from repro.session.config import (
    REGISTRY,
    ConfigError,
    coerce_value,
    load_config_file,
    validate_environ,
)
from repro.session.events import JsonlSink
from repro.session.passes import PassManager

__all__ = [
    "Session",
    "current_session",
    "reset_default_session",
    "session_from_flags",
]


class Session:
    """Layered configuration + owned caches + structured observability.

    Parameters
    ----------
    config:
        A dict of registry-named settings (``{"workers": 4}``) — the
        layer between registry defaults and environment variables.
    config_file:
        Path of a JSON file holding the same (loaded below ``config``).
    env:
        The environment mapping to consult (default ``os.environ``);
        unknown ``REPRO_*`` names in it are rejected here, at
        construction, so typos fail loudly.
    **overrides:
        Explicit per-session settings — the highest-precedence layer
        (``Session(cache_backend="reference", workers=2)``).
    """

    def __init__(
        self,
        config: Optional[Mapping[str, object]] = None,
        config_file: Optional[str] = None,
        env: Optional[Mapping[str, str]] = None,
        **overrides: object,
    ) -> None:
        self._env: Mapping[str, str] = os.environ if env is None else env
        validate_environ(self._env)
        layer: Dict[str, object] = {}
        if config_file is not None:
            layer.update(load_config_file(config_file))
        for name, value in (config or {}).items():
            layer[name] = coerce_value(name, value, source="config dict")
        self._config: Dict[str, object] = layer
        self._overrides: Dict[str, object] = {
            name: coerce_value(name, value, source=f"Session({name}=...)")
            for name, value in overrides.items()
        }
        self._compile_cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._jsonl: Optional[JsonlSink] = None
        trace_out = self.get("trace_out")
        if trace_out:
            self._jsonl = JsonlSink(trace_out)
            events.attach(self._jsonl)

    # -- configuration ---------------------------------------------------------
    def get(self, name: str) -> object:
        """Resolve one setting: overrides > environment > config > default."""
        var = REGISTRY.get(name)
        if var is None:
            raise ConfigError(f"unknown config key {name!r}; known: {sorted(REGISTRY)}")
        if name in self._overrides:
            return self._overrides[name]
        raw = self._env.get(var.env)
        # an empty string unsets a str/bool variable (historical
        # behaviour) but is a parse error for ints ($REPRO_WORKERS="")
        if raw is not None and (raw != "" or var.type == "int"):
            return var.parse_env(raw)
        if name in self._config:
            return self._config[name]
        return var.default

    def set_config(self, name: str, value: object) -> object:
        """Set a config-layer value (still below env vars); returns the
        previous config-layer-or-default value."""
        prev = (
            self._config[name]
            if name in self._config
            else REGISTRY[name].default
            if name in REGISTRY
            else None
        )
        self._config[name] = coerce_value(name, value, source="set_config")
        return prev

    def as_dict(self) -> Dict[str, object]:
        """Every registered setting at its resolved value."""
        return {name: self.get(name) for name in REGISTRY}

    # -- lifecycle -------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["Session"]:
        """Make this the session that shims and config lookups resolve to."""
        _STACK.append(self)
        try:
            yield self
        finally:
            _STACK.remove(self)

    def close(self) -> None:
        """Detach and close the session's JSONL sink, if any, and tear
        down the shared worker pool when this session owns it (the
        session that first acquired it; see :mod:`repro.parallel.pool`)."""
        from repro.parallel import pool as worker_pool

        worker_pool.session_closed(self)
        if self._jsonl is not None:
            events.detach(self._jsonl)
            self._jsonl.close()
            self._jsonl = None

    def __enter__(self) -> "Session":
        _STACK.append(self)
        return self

    def __exit__(self, *exc: object) -> None:
        _STACK.remove(self)
        self.close()

    # -- compile pipeline ------------------------------------------------------
    def pass_manager(
        self,
        names: Optional[List[str]] = None,
        verify_between: bool = False,
        pipeline: str = "default",
    ) -> PassManager:
        return PassManager(names=names, verify_between=verify_between, pipeline=pipeline)

    def compile_source(
        self,
        source: str,
        defines: Optional[Dict[str, object]] = None,
        module_name: str = "kernel_module",
        optimize: bool = True,
        cache: bool = True,
    ):
        """Compile OpenCL C source text into a verified IR module.

        The implementation behind ``repro.frontend.compile_source``:
        session-owned LRU cache (every hit hands out a private deepcopy),
        default pass pipeline via the :class:`PassManager`, and
        ``compile_*`` events on the bus.
        """
        from pycparser import CParser
        from pycparser.c_parser import ParseError

        from repro.frontend.errors import FrontendError
        from repro.frontend.lower import lower_translation_unit
        from repro.frontend.preprocess import preprocess
        from repro.ir.verifier import verify_module

        with self.activate():
            key = (
                source,
                tuple(sorted((str(k), str(v)) for k, v in (defines or {}).items())),
                module_name,
                optimize,
            )
            sha = hashlib.sha1(source.encode()).hexdigest()[:12]
            events.emit("compile_start", module=module_name, source_sha1=sha)
            if cache:
                hit = self._compile_cache.get(key)
                if hit is not None:
                    self._compile_cache.move_to_end(key)
                    events.emit("compile_cache_hit", module=module_name, source_sha1=sha)
                    return copy.deepcopy(hit)
                events.emit("compile_cache_miss", module=module_name, source_sha1=sha)
            t0 = time.perf_counter()
            pre = preprocess(source, defines)
            parser = CParser()
            try:
                ast = parser.parse(pre.text, filename=module_name)
            except ParseError as exc:
                raise FrontendError(f"parse error: {exc}") from exc
            module = lower_translation_unit(ast, pre.kernel_names, module_name)
            PassManager().run(module)
            if optimize:
                # the vendor-compiler stage of the paper's Fig. 9 pipeline
                from repro.core.optimize import vendor_optimize

                for fn in module:
                    vendor_optimize(fn)
            verify_module(module)
            events.emit(
                "compile_end",
                module=module_name,
                kernels=[fn.name for fn in module if fn.is_kernel],
                wall_ms=(time.perf_counter() - t0) * 1e3,
            )
            if cache:
                self._compile_cache[key] = copy.deepcopy(module)
                limit = int(self.get("compile_cache_size"))
                while len(self._compile_cache) > limit:
                    self._compile_cache.popitem(last=False)
            return module

    def compile_kernel(
        self,
        source: str,
        name: Optional[str] = None,
        defines: Optional[Dict[str, object]] = None,
        optimize: bool = True,
        cache: bool = True,
    ):
        return self.compile_source(
            source, defines, optimize=optimize, cache=cache
        ).kernel(name)

    def clear_compile_cache(self) -> None:
        self._compile_cache.clear()

    # -- transform -------------------------------------------------------------
    def disable_local_memory(
        self, kernel_or_module, kernel_name=None, local_size=None, **kwargs
    ):
        """Run the Grover pass on a kernel in place; returns the report.

        With ``analyze=True`` (``$REPRO_ANALYZE``) the static race
        analyzer vets the kernel as an independent arbiter: a decided
        intra-group race or barrier divergence — before *or* after the
        transformation — raises :class:`~repro.analysis.RaceDetected`
        instead of silently transforming an already-undefined kernel
        (Grover's Eq. 3 reasons per local array; it cannot see, e.g.,
        two individually-invertible stores that collide with each
        other).  ``local_size`` refines the check with concrete
        work-group geometry (defaults to ``reqd_work_group_size``).
        """
        from repro.core.grover import GroverPass
        from repro.ir.function import Module

        with self.activate():
            if isinstance(kernel_or_module, Module):
                kernel = kernel_or_module.kernel(kernel_name)
            else:
                kernel = kernel_or_module
            analyze = bool(self.get("analyze"))
            if analyze:
                self._veto_races(kernel, local_size, stage="pre-transform")
            report = GroverPass(**kwargs).run(kernel)
            if analyze:
                self._veto_races(kernel, local_size, stage="post-transform")
            return report

    def _veto_races(self, kernel, local_size, stage: str) -> None:
        from repro.analysis import RaceDetected, analyze_kernel

        geometry = local_size or kernel.reqd_work_group_size
        rep = analyze_kernel(kernel, geometry)
        blocking = rep.races + rep.divergences
        if blocking:
            raise RaceDetected(
                f"analyzer veto ({stage}) for kernel {kernel.name!r}: "
                + "; ".join(f.render() for f in blocking)
            )
        if rep.verdict == "undecided":
            # the gate must not pretend to have checked what it could
            # not decide (typically: no work-group geometry was given)
            import warnings

            from repro.analysis import AnalysisUndecidedWarning

            warnings.warn(
                f"analyze gate ({stage}): {rep.pairs_undecided} access "
                f"pair(s) of kernel {kernel.name!r} are statically "
                "undecided; pass local_size= (or declare "
                "reqd_work_group_size) for a decisive check",
                AnalysisUndecidedWarning,
                stacklevel=3,
            )

    # -- runtime ---------------------------------------------------------------
    def launch(self, *args, **kwargs):
        """Session-configured ``repro.runtime.launch`` (workers default,
        backend choice and events resolve against this session)."""
        from repro.runtime.ndrange import launch

        with self.activate():
            return launch(*args, **kwargs)

    # -- applications ----------------------------------------------------------
    def compile_app(self, app, variant: str = "with", **grover_kwargs):
        from repro.apps.harness import compile_app

        with self.activate():
            return compile_app(app, variant, **grover_kwargs)

    def execute_app(self, app, kernel, **kwargs):
        from repro.apps.harness import execute_app

        with self.activate():
            return execute_app(app, kernel, **kwargs)

    def run_app(self, app, variant: str = "with", scale: str = "test", **kwargs):
        from repro.apps.harness import run_app

        with self.activate():
            return run_app(app, variant, scale, **kwargs)

    # -- experiments -----------------------------------------------------------
    def run_matrix(self, **kwargs):
        from repro.parallel.matrix import run_matrix

        with self.activate():
            return run_matrix(**kwargs)

    def autotune(self, *args, **kwargs):
        from repro.autotune.tuner import autotune

        with self.activate():
            return autotune(*args, **kwargs)

    def figure10(self, device_name: str, **kwargs):
        from repro.experiments import figure10

        with self.activate():
            return figure10(device_name, **kwargs)

    def table4(self, **kwargs):
        from repro.experiments import table4

        with self.activate():
            return table4(**kwargs)

    def bench(self, **kwargs):
        from repro.perf.bench import run_bench

        with self.activate():
            return run_bench(**kwargs)

    def search(self, options=None, **kwargs):
        """Beam-search rewrite-rule pipelines (see :mod:`repro.search`).

        Accepts a prebuilt :class:`~repro.search.SearchOptions` or its
        keyword fields (``session.search(apps=("NVD-MT",), depth=2)``);
        unset knobs resolve against this session's ``search_*`` config.
        """
        from repro.search import SearchOptions, run_search

        if options is None:
            options = SearchOptions(**kwargs)
        elif kwargs:
            raise TypeError("pass either options or keyword fields, not both")
        with self.activate():
            return run_search(options)

    def tune(self, action: str = "train", **kwargs):
        """Drive the go/no-go autotuner (see :mod:`repro.tune`).

        ``action="train"`` labels the corpus with the search's scoring
        oracle and returns ``(tree, training_meta)`` —
        ``session.tune("train", sources=("corpus",), fuzz_count=0)``;
        pass ``out=`` to also write the sha256-versioned artifact.
        ``action="predict"`` returns the loaded
        :class:`~repro.tune.model.TunePredictor` for the session's
        ``tune_model`` (or the committed default artifact).
        """
        from repro.tune import label_corpus, train_model
        from repro.tune.model import default_model_path, load_model, save_model

        with self.activate():
            if action == "predict":
                if kwargs:
                    raise TypeError(f"predict takes no kwargs, got {kwargs}")
                path = self.get("tune_model") or default_model_path()
                return load_model(str(path))
            if action != "train":
                raise ValueError(f"unknown tune action {action!r}")
            out = kwargs.pop("out", None)
            fit = {
                k: kwargs.pop(k)
                for k in ("train_sources", "max_depth", "min_leaf")
                if k in kwargs
            }
            examples = label_corpus(**kwargs)
            tree, meta = train_model(examples, **fit)
            if out:
                save_model(tree, str(out), training=meta)
            return tree, meta


#: activation stack; the top is what ``current_session()`` returns
_STACK: List[Session] = []
_DEFAULT: Optional[Session] = None


def current_session() -> Session:
    """The active session (innermost ``activate()``), else the process
    default — created lazily on first use."""
    if _STACK:
        return _STACK[-1]
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Session()
    return _DEFAULT


def reset_default_session() -> None:
    """Drop the lazily-created default session (tests)."""
    global _DEFAULT
    if _DEFAULT is not None:
        _DEFAULT.close()
    _DEFAULT = None


def session_from_flags(
    config_path: Optional[str] = None,
    trace_out: Optional[str] = None,
    **overrides: object,
) -> Session:
    """Build a Session from the shared CLI flags (``--config``/``--trace-out``)."""
    if trace_out:
        overrides["trace_out"] = trace_out
    return Session(config_file=config_path, **overrides)
