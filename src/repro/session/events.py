"""Structured observability: the typed event bus threaded through every layer.

Every stage of the compile -> transform -> launch -> model pipeline emits
*typed* events (``compile_start``, ``pass_applied``, ``cache_hit``,
``launch_sharded``, ``pool_fallback``, ``model_memo_hit``, ...) through a
single process-wide :class:`EventBus`.  Emission is a no-op unless a sink
is attached, so instrumented hot paths cost one predicate when nobody is
listening.

Two sinks ship with the bus:

* :class:`CollectorSink` — an in-memory list, for tests and interactive
  inspection;
* :class:`JsonlSink` — one JSON object per line, schema-validated on the
  way out (``repro ... --trace-out events.jsonl``).

Every event kind carries a declared payload schema in :data:`EVENT_SCHEMA`;
:func:`validate_event` / :func:`validate_jsonl` check conformance (the CI
smoke job validates an emitted trace end to end).

Fork safety: the bus records the attaching process id and goes inactive in
forked workers, so a sharded launch never interleaves worker writes into
the parent's JSONL stream (worker-side stages are reported by the parent
as ``launch_sharded`` / shard summaries instead).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Tuple

__all__ = [
    "EVENT_SCHEMA",
    "Event",
    "EventBus",
    "EventSchemaError",
    "CollectorSink",
    "JsonlSink",
    "bus",
    "bus_active",
    "emit",
    "attach",
    "detach",
    "collect",
    "validate_event",
    "validate_jsonl",
]


class EventSchemaError(ValueError):
    """An event (or an emitted JSONL line) does not match its schema."""


#: ``kind -> {payload field -> allowed types}``.  ``float`` fields accept
#: ints (JSON round-trips do not preserve the distinction); ``list``
#: fields hold JSON-serialisable scalars only.
EVENT_SCHEMA: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # -- frontend -----------------------------------------------------------
    "compile_start": {"module": (str,), "source_sha1": (str,)},
    "compile_cache_hit": {"module": (str,), "source_sha1": (str,)},
    "compile_cache_miss": {"module": (str,), "source_sha1": (str,)},
    "compile_end": {"module": (str,), "kernels": (list,), "wall_ms": (int, float)},
    # -- pass pipeline ------------------------------------------------------
    "pass_applied": {
        "function": (str,),
        "pass": (str,),
        "pipeline": (str,),
        "rewrites": (int,),
        "insts_before": (int,),
        "insts_after": (int,),
        "wall_ms": (int, float),
    },
    "verify_ok": {"function": (str,), "stage": (str,)},
    # -- the Grover pass ----------------------------------------------------
    "grover_start": {"kernel": (str,)},
    "grover_candidate": {
        "kernel": (str,),
        "name": (str,),
        "status": (str,),
        "reason": (str,),
    },
    "grover_end": {
        "kernel": (str,),
        "transformed": (int,),
        "rejected": (int,),
        "wall_ms": (int, float),
    },
    # -- runtime ------------------------------------------------------------
    "launch_start": {
        "kernel": (str,),
        "global_size": (list,),
        "local_size": (list,),
        "total_groups": (int,),
        "workers": (int,),
    },
    "launch_sharded": {"kernel": (str,), "shards": (int,), "workers": (int,)},
    "pool_fallback": {"where": (str,), "reason": (str,), "error": (str,)},
    # persistent worker pool: forked once, reused across fan-outs
    "pool_start": {"workers": (int,), "wall_ms": (int, float)},
    "pool_recycle": {"reason": (str,), "workers": (int,)},
    # one dispatched shard: queue time (submit -> worker pickup) and
    # worker-side execution wall separately, so dispatch overhead is
    # visible next to useful work
    "pool_task": {
        "kernel": (str,),
        "shard": (int,),
        "groups": (int,),
        "dispatch_ms": (int, float),
        "wall_ms": (int, float),
    },
    # launch buffers published once into a shared-memory arena
    "shm_publish": {
        "kernel": (str,),
        "buffers": (int,),
        "bytes": (int,),
        "wall_ms": (int, float),
    },
    "group_executed": {"group_id": (list,), "work_items": (int,)},
    "launch_end": {
        "kernel": (str,),
        "groups_executed": (int,),
        "work_items": (int,),
        "wall_ms": (int, float),
        # "" on success; "ExcType: message" when the launch raised (the
        # event is emitted either way, so a sweep that dies mid-launch
        # still closes its launch_start bracket in the JSONL stream)
        "error": (str,),
    },
    "tape_compile": {
        "kernel": (str,),
        "steps": (int,),
        "closures": (int,),
        "wall_ms": (int, float),
    },
    "tape_replay": {
        "kernel": (str,),
        "groups": (int,),
        "batches": (int,),
        "evicted": (int,),
        "wall_ms": (int, float),
    },
    "tape_evict": {
        "kernel": (str,),
        "group_id": (list,),
        "step": (int,),
        "reason": (str,),
    },
    "codegen_compile": {
        "kernel": (str,),
        "steps": (int,),
        "source_bytes": (int,),
        "wall_ms": (int, float),
    },
    "codegen_cache_hit": {
        "kernel": (str,),
        # "memory" (in-process module cache) or "disk" (artifact dir)
        "tier": (str,),
        "key": (str,),
    },
    "codegen_replay": {
        "kernel": (str,),
        "groups": (int,),
        "batches": (int,),
        "evicted": (int,),
        "wall_ms": (int, float),
    },
    "trace_spill": {
        "kernel": (str,),
        # bytes written to the spill file by this spill step, and the
        # resident event-buffer bytes left after it
        "bytes": (int,),
        "resident_bytes": (int,),
        "wall_ms": (int, float),
    },
    # -- performance models -------------------------------------------------
    "model_memo_hit": {"device": (str,), "fingerprint_sha1": (str,)},
    "model_kernel_timed": {
        "device": (str,),
        "cycles": (int, float),
        "groups": (int,),
    },
    # -- static/dynamic analyzer --------------------------------------------
    "analysis_start": {"kernel": (str,), "mode": (str,)},
    "analysis_finding": {
        "kernel": (str,),
        "finding": (str,),
        "space": (str,),
        "object": (str,),
        "decided_by": (str,),
        "detail": (str,),
    },
    "analysis_end": {
        "kernel": (str,),
        "verdict": (str,),
        "findings": (int,),
        "pairs_static": (int,),
        "pairs_dynamic": (int,),
        "pairs_undecided": (int,),
        "wall_ms": (int, float),
    },
    "analysis_deferral": {
        "kernel": (str,),
        # one of repro.analysis.DEFERRAL_CATEGORIES
        "category": (str,),
        "space": (str,),
        "object": (str,),
        "a_inst": (int,),
        # -1 for single-site deferrals
        "b_inst": (int,),
        # True when a full-trace replay later decided the pair
        "resolved": (bool,),
        "why": (str,),
    },
    # -- generative kernel fuzzer -------------------------------------------
    "fuzz_case": {
        "index": (int,),
        "case_seed": (int,),
        "kernel": (str,),
        # 'agree' | 'mismatch' | 'skip:<reason>'
        "outcome": (str,),
        # execution outcome: 'ok' | 'error:<ExcType>'
        "exec": (str,),
        # analyzer verdict ('clean'/'race'/...), '+deferred' suffixed
        "analyzer": (str,),
        # Grover summary, e.g. 't1r2' / 'veto' / 'no-local'
        "grover": (str,),
        "features": (list,),
        "wall_ms": (int, float),
    },
    "fuzz_mismatch": {
        "index": (int,),
        "case_seed": (int,),
        # which cross-check disagreed ('exec-diff', 'veto-miss', ...)
        "check": (str,),
        "detail": (str,),
        # path of the minimized reproducer ("" when --minimize is off)
        "minimized": (str,),
    },
    "fuzz_promote": {
        "index": (int,),
        "case_seed": (int,),
        "path": (str,),
        # the verdict shape that made the case corpus-worthy
        "shape": (str,),
    },
    "fuzz_end": {
        "cases": (int,),
        "mismatches": (int,),
        "promoted": (int,),
        "workers": (int,),
        "wall_ms": (int, float),
    },
    # -- pipeline search ----------------------------------------------------
    "search_start": {
        "app": (str,),
        "rules": (list,),
        "beam": (int,),
        "depth": (int,),
        "device": (str,),
    },
    "search_candidate": {
        "app": (str,),
        "pipeline": (list,),
        "rewrites": (list,),
        # -1.0 for candidates whose evaluation failed or was pruned
        "cycles": (int, float),
        # survived the keep filter (no error, last rule rewrote something)
        "kept": (bool,),
        # "" when the candidate evaluated cleanly; the failure reason
        # ("ExcType: message") when it raised, or "pruned: ..." when the
        # learned go/no-go predictor skipped its full scoring
        "error": (str,),
    },
    "search_verified": {
        "app": (str,),
        "pipeline": (list,),
        "ok": (bool,),
        # "" when ok; the failing gate's message otherwise
        "reason": (str,),
    },
    "search_end": {
        "app": (str,),
        "pipeline": (list,),
        "cycles": (int, float),
        "baseline_cycles": (int, float),
        "evaluated": (int,),
        # candidates the go/no-go predictor skipped before scoring
        # (always 0 when the search runs without --tune)
        "pruned": (int,),
        "verified": (bool,),
        "wall_ms": (int, float),
    },
    # -- learned go/no-go autotuner (repro tune) ----------------------------
    "tune_label": {
        # "app:NVD-MT" / "corpus:fuzz_....cl" / "fuzz:<seed>:<index>"
        "kernel": (str,),
        "pipeline": (list,),
        "device": (str,),
        # ground-truth go/no-go: modelled cycles strictly beat baseline
        "win": (bool,),
        "cycles": (int, float),
        "baseline_cycles": (int, float),
    },
    "tune_train": {
        "examples": (int,),
        "features": (int,),
        "depth": (int,),
        # accuracy on the held-out Table III apps (-1.0: no holdout)
        "holdout_accuracy": (int, float),
        "sha256": (str,),
        "wall_ms": (int, float),
    },
    "tune_predict": {
        "kernel": (str,),
        "pipeline": (list,),
        "p_win": (int, float),
        "threshold": (int, float),
        # True: the search skips this candidate's trace-driven scoring
        "prune": (bool,),
    },
    # -- experiment matrix --------------------------------------------------
    "matrix_start": {"apps": (list,), "devices": (list,), "workers": (int,)},
    "matrix_case_retried": {"app": (str,), "reason": (str,)},
    "matrix_end": {"cases": (int,), "wall_ms": (int, float)},
}


@dataclass(frozen=True)
class Event:
    """One typed pipeline event: a kind, a monotonic sequence number and
    a schema-conforming payload."""

    kind: str
    seq: int
    payload: Mapping[str, object]

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {"seq": self.seq, "kind": self.kind}
        d.update(self.payload)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def validate_event(kind: str, payload: Mapping[str, object]) -> None:
    """Raise :class:`EventSchemaError` unless ``payload`` matches ``kind``."""
    schema = EVENT_SCHEMA.get(kind)
    if schema is None:
        raise EventSchemaError(
            f"unknown event kind {kind!r}; known: {sorted(EVENT_SCHEMA)}"
        )
    missing = set(schema) - set(payload)
    if missing:
        raise EventSchemaError(f"{kind}: missing payload fields {sorted(missing)}")
    extra = set(payload) - set(schema)
    if extra:
        raise EventSchemaError(f"{kind}: unexpected payload fields {sorted(extra)}")
    for name, types in schema.items():
        value = payload[name]
        # bools satisfy isinstance(..., int); only accept one where the
        # schema explicitly declares bool
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            raise EventSchemaError(
                f"{kind}.{name}: expected {'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__} ({value!r})"
            )


class CollectorSink:
    """In-memory sink for tests: records every event in order."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def close(self) -> None:  # sink protocol
        pass


class JsonlSink:
    """Appends one JSON object per event to ``path`` (line-buffered)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w", buffering=1)
        self.count = 0

    def __call__(self, event: Event) -> None:
        self._fh.write(event.to_json() + "\n")
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class EventBus:
    """Process-wide dispatcher: ``emit`` fans a typed event to every sink.

    Inactive (zero-cost apart from one predicate) when no sink is
    attached or when running in a forked child of the attaching process.
    """

    def __init__(self) -> None:
        self._sinks: List[Callable[[Event], None]] = []
        self._seq = 0
        self._pid = os.getpid()

    @property
    def active(self) -> bool:
        return bool(self._sinks) and os.getpid() == self._pid

    def attach(self, sink: Callable[[Event], None]) -> Callable[[Event], None]:
        self._pid = os.getpid()
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Callable[[Event], None]) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, kind: str, **payload: object) -> None:
        if not self.active:
            return
        validate_event(kind, payload)
        self._seq += 1
        event = Event(kind, self._seq, payload)
        for sink in list(self._sinks):
            sink(event)


#: the process-wide bus every layer emits into
_BUS = EventBus()


def bus() -> EventBus:
    return _BUS


def bus_active() -> bool:
    return _BUS.active


def emit(kind: str, **payload: object) -> None:
    """Emit one typed event on the process bus (no-op without sinks)."""
    _BUS.emit(kind, **payload)


def attach(sink: Callable[[Event], None]) -> Callable[[Event], None]:
    return _BUS.attach(sink)


def detach(sink: Callable[[Event], None]) -> None:
    _BUS.detach(sink)


@contextmanager
def collect() -> Iterator[CollectorSink]:
    """``with collect() as sink:`` — capture events for the block."""
    sink = CollectorSink()
    _BUS.attach(sink)
    try:
        yield sink
    finally:
        _BUS.detach(sink)


def validate_jsonl(path: str) -> int:
    """Validate a ``--trace-out`` file line by line; returns event count.

    Checks that every line is a JSON object, its ``kind`` is registered,
    its payload matches the kind's schema, and ``seq`` is strictly
    increasing.  Raises :class:`EventSchemaError` on the first violation.
    """
    count = 0
    last_seq = 0
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventSchemaError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(obj, dict):
                raise EventSchemaError(f"{path}:{lineno}: not a JSON object")
            kind = obj.get("kind")
            seq = obj.get("seq")
            if not isinstance(kind, str):
                raise EventSchemaError(f"{path}:{lineno}: missing 'kind'")
            if not isinstance(seq, int) or isinstance(seq, bool) or seq <= last_seq:
                raise EventSchemaError(
                    f"{path}:{lineno}: 'seq' must be a strictly increasing int, "
                    f"got {seq!r} after {last_seq}"
                )
            last_seq = seq
            payload = {k: v for k, v in obj.items() if k not in ("kind", "seq")}
            try:
                validate_event(kind, payload)
            except EventSchemaError as exc:
                raise EventSchemaError(f"{path}:{lineno}: {exc}") from exc
            count += 1
    return count
