"""Uniform named passes and the instrumented PassManager.

Every IR transformation the pipeline runs — the post-lowering clean-ups,
the "vendor compiler" pipeline of paper Fig. 9, the Grover pass itself —
is registered here under a stable name with a one-line description.  A
:class:`PassManager` runs a named sequence over a function or module and
records, per pass: rewrite count, before/after IR size, and wall time —
emitting a ``pass_applied`` event for each application and (optionally)
running the verifier as a checkpoint between stages.

The default pipeline is ordering-identical to the historical
``repro.ir.passes.run_default_passes`` (asserted bit-for-bit by
``tests/test_pass_manager.py``), and ``run_default_passes`` itself is now
a shim over ``PassManager().run(module)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function, Module
from repro.ir.verifier import verify_function

__all__ = [
    "PassInfo",
    "PassResult",
    "PassManager",
    "PASS_REGISTRY",
    "DEFAULT_PIPELINE",
    "VENDOR_PIPELINE",
    "PIPELINES",
    "register_pass",
    "get_pass",
]


@dataclass(frozen=True)
class PassInfo:
    """One registered pass: a name, a per-function body, a description.

    The body takes a :class:`Function` and returns its rewrite count
    (instructions promoted / folded / eliminated / hoisted / local loads
    rewritten — whatever "applications" means for that pass).

    Passes backed by a :class:`repro.rules.RewriteRule` additionally
    carry the rule object and its legality-arbiter metadata, so
    ``repro passes`` and the search engine can introspect them; plain
    passes leave ``rule`` as ``None``.
    """

    name: str
    run: Callable[[Function], int]
    description: str
    legality_arbiter: str = ""
    legality: str = ""
    rule: object = None


@dataclass(frozen=True)
class PassResult:
    """Instrumentation record for one pass applied to one function."""

    pass_name: str
    function: str
    rewrites: int
    insts_before: int
    insts_after: int
    blocks_before: int
    blocks_after: int
    wall_s: float


PASS_REGISTRY: Dict[str, PassInfo] = {}


def register_pass(
    name: str, description: str
) -> Callable[[Callable[[Function], int]], Callable[[Function], int]]:
    """Register ``fn`` as the named pass (decorator form)."""

    def deco(fn: Callable[[Function], int]) -> Callable[[Function], int]:
        if name in PASS_REGISTRY:
            raise ValueError(f"pass {name!r} already registered")
        PASS_REGISTRY[name] = PassInfo(name, fn, description)
        return fn

    return deco


def get_pass(name: str) -> PassInfo:
    info = PASS_REGISTRY.get(name)
    if info is None:
        raise KeyError(f"unknown pass {name!r}; known: {sorted(PASS_REGISTRY)}")
    return info


def _register_rule_pass(rule: object) -> None:
    """Register a :class:`repro.rules.RewriteRule` as a named pass.

    The pass body applies the rule under a default :class:`RuleContext`
    (geometry from ``reqd_work_group_size`` when the kernel pins one) so
    ``PassManager`` pipelines see rules exactly like any other pass.
    """
    from repro.rules import RuleContext

    if rule.name in PASS_REGISTRY:
        raise ValueError(f"pass {rule.name!r} already registered")

    def run(fn: Function, _rule=rule) -> int:
        return int(_rule.apply(fn, RuleContext()))

    PASS_REGISTRY[rule.name] = PassInfo(
        name=rule.name,
        run=run,
        description=rule.description,
        legality_arbiter=rule.legality_arbiter,
        legality=rule.legality,
        rule=rule,
    )


def _register_builtin_passes() -> None:
    from repro.core.dce import eliminate_dead_code
    from repro.core.normalize import normalize_gep_indices
    from repro.ir.passes import (
        common_subexpression_elimination,
        fold_constants,
        loop_invariant_code_motion,
        promote_single_store_slots,
    )
    from repro.rules import RULE_REGISTRY

    register_pass(
        "promote-single-store-slots",
        "mem2reg-lite: forward loads of single-store entry-block stack slots",
    )(promote_single_store_slots)
    register_pass(
        "fold-constants",
        "fold binops/casts whose operands are all constants",
    )(fold_constants)
    register_pass(
        "cse",
        "dominator-scoped common-subexpression elimination over pure instructions",
    )(common_subexpression_elimination)
    register_pass(
        "licm",
        "hoist loop-invariant pure computation into loop preheaders",
    )(loop_invariant_code_motion)
    register_pass(
        "normalize-gep",
        "canonicalise GEP index arithmetic before DCE/CSE",
    )(normalize_gep_indices)
    register_pass(
        "dce",
        "eliminate instructions whose results are never used",
    )(eliminate_dead_code)

    def _verify_checkpoint(fn: Function) -> int:
        verify_function(fn)
        return 0

    register_pass(
        "verify",
        "verifier checkpoint: structural well-formedness, no rewrites",
    )(_verify_checkpoint)

    # the paper's pass, now a rewrite rule — registered here so it keeps
    # its historical position in the registry listing
    _register_rule_pass(RULE_REGISTRY["grover"])

    def _analyze_races(fn: Function) -> int:
        from repro.analysis import analyze_races_static, check_staging
        from repro.analysis.model import AnalysisReport

        if not fn.is_kernel:
            return 0
        report = AnalysisReport(fn.name, fn.reqd_work_group_size)
        analyze_races_static(fn, fn.reqd_work_group_size, report)
        check_staging(fn, report)
        return len(report.findings)

    register_pass(
        "analyze-races",
        "static intra-group race + Grover-legality analysis; pure "
        "diagnosis (rewrites = findings), exact geometry only with "
        "reqd_work_group_size",
    )(_analyze_races)

    def _analyze_divergence(fn: Function) -> int:
        from repro.analysis import analyze_divergence

        if not fn.is_kernel:
            return 0
        return len(analyze_divergence(fn).findings)

    register_pass(
        "analyze-divergence",
        "static barrier-divergence analysis; pure diagnosis "
        "(rewrites = divergent barriers found)",
    )(_analyze_divergence)

    # the remaining rewrite rules (padding, barrier elimination, global
    # load hoisting, ...) — every registered rule is a pass
    for rule in RULE_REGISTRY.values():
        if rule.name not in PASS_REGISTRY:
            _register_rule_pass(rule)


_register_builtin_passes()

#: ordering-identical to the historical ``run_default_passes``
DEFAULT_PIPELINE: Tuple[str, ...] = (
    "promote-single-store-slots",
    "fold-constants",
    "cse",
    "licm",
    "cse",
)

#: ordering-identical to ``repro.core.optimize.vendor_optimize``
VENDOR_PIPELINE: Tuple[str, ...] = (
    "fold-constants",
    "normalize-gep",
    "dce",
    "cse",
    "licm",
    "cse",
    "dce",
)

PIPELINES: Dict[str, Tuple[str, ...]] = {
    "default": DEFAULT_PIPELINE,
    "vendor": VENDOR_PIPELINE,
}


def _fn_stats(fn: Function) -> Tuple[int, int]:
    return sum(len(bb.instructions) for bb in fn.blocks), len(fn.blocks)


class PassManager:
    """Run a named pass sequence with per-pass instrumentation.

    ``verify_between=True`` runs the IR verifier after every pass and
    emits a ``verify_ok`` checkpoint event — the pipeline-invariant mode
    the test suite uses; production compiles keep it off and verify once
    at the end (exactly the historical behaviour).
    """

    def __init__(
        self,
        names: Optional[Sequence[str]] = None,
        verify_between: bool = False,
        pipeline: str = "default",
    ) -> None:
        if names is None:
            names = PIPELINES.get(pipeline)
            if names is None:
                raise KeyError(
                    f"unknown pipeline {pipeline!r}; known: {sorted(PIPELINES)}"
                )
        self.pipeline = pipeline
        self.passes: List[PassInfo] = [get_pass(n) for n in names]
        self.verify_between = verify_between

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.passes]

    def run_function(self, fn: Function) -> List[PassResult]:
        from repro.session import events

        results: List[PassResult] = []
        for info in self.passes:
            insts_before, blocks_before = _fn_stats(fn)
            t0 = time.perf_counter()
            rewrites = int(info.run(fn))
            wall = time.perf_counter() - t0
            insts_after, blocks_after = _fn_stats(fn)
            results.append(
                PassResult(
                    pass_name=info.name,
                    function=fn.name,
                    rewrites=rewrites,
                    insts_before=insts_before,
                    insts_after=insts_after,
                    blocks_before=blocks_before,
                    blocks_after=blocks_after,
                    wall_s=wall,
                )
            )
            events.emit(
                "pass_applied",
                function=fn.name,
                **{"pass": info.name},
                pipeline=self.pipeline,
                rewrites=rewrites,
                insts_before=insts_before,
                insts_after=insts_after,
                wall_ms=wall * 1e3,
            )
            if self.verify_between:
                verify_function(fn)
                events.emit("verify_ok", function=fn.name, stage=f"after:{info.name}")
        return results

    def run(self, module: Module) -> List[PassResult]:
        results: List[PassResult] = []
        for fn in module:
            results.extend(self.run_function(fn))
        return results
