"""Session + PassManager + event bus: the pipeline's control plane.

* :mod:`repro.session.config` — the single registry of every ``REPRO_*``
  variable, with layered resolution and loud rejection of typos;
* :mod:`repro.session.events` — the typed event bus (JSONL /
  in-memory sinks) threaded through compile, passes, launch and models;
* :mod:`repro.session.passes` — uniform named passes and the
  instrumented :class:`PassManager`;
* :mod:`repro.session.core` — the :class:`Session` object tying the
  three together and backing every public entry point.

See DESIGN.md §10 for the architecture diagram, the event taxonomy and
the configuration precedence table.
"""

from repro.session.config import ConfigError, REGISTRY as CONFIG_REGISTRY
from repro.session.core import (
    Session,
    current_session,
    reset_default_session,
    session_from_flags,
)
from repro.session.events import (
    CollectorSink,
    EventBus,
    EventSchemaError,
    JsonlSink,
    collect,
    emit,
    validate_jsonl,
)
from repro.session.passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    PIPELINES,
    VENDOR_PIPELINE,
    PassManager,
)

__all__ = [
    "ConfigError",
    "CONFIG_REGISTRY",
    "Session",
    "current_session",
    "reset_default_session",
    "session_from_flags",
    "CollectorSink",
    "EventBus",
    "EventSchemaError",
    "JsonlSink",
    "collect",
    "emit",
    "validate_jsonl",
    "DEFAULT_PIPELINE",
    "PASS_REGISTRY",
    "PIPELINES",
    "VENDOR_PIPELINE",
    "PassManager",
]
