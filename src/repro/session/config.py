"""The single registry of every ``REPRO_*`` configuration variable.

Historically each subsystem read its own environment variable deep
inside the module that used it (``REPRO_CACHE_BACKEND`` in
``perf/fastcache.py``, ``REPRO_WORKERS`` in ``parallel/engine.py``, ...),
which made typos silent: ``REPRO_PREF_MEMO=0`` simply did nothing.
Every variable is now declared here — name, environment variable, type,
default, docstring — and :func:`validate_environ` rejects unknown
``REPRO_`` names at :class:`~repro.session.Session` construction, so a
typo fails loudly instead of silently running with defaults.

Resolution order for each variable (lowest to highest precedence)::

    registry default  <  config dict / --config file  <  REPRO_* env var
                      <  explicit Session(...) keyword

Environment values are read *live* (at lookup time), so test fixtures
that monkeypatch ``os.environ`` keep working; names are validated once,
at construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "ConfigError",
    "ConfigVar",
    "REGISTRY",
    "ENV_REGISTRY",
    "validate_environ",
    "coerce_value",
    "parse_env_value",
    "load_config_file",
    "describe_registry",
]


class ConfigError(ValueError):
    """Invalid configuration: unknown variable or unparseable value."""


_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


@dataclass(frozen=True)
class ConfigVar:
    """One configuration knob: registry name, env spelling, type, default."""

    name: str
    env: str
    type: str  # 'str' | 'bool' | 'int' | 'float'
    default: object
    doc: str
    choices: Optional[Tuple[str, ...]] = None
    minimum: Optional[int] = None

    def parse_env(self, raw: str) -> object:
        """Parse an environment-variable string into the typed value."""
        if self.type == "int":
            try:
                value = int(raw)
            except ValueError:
                raise ConfigError(
                    f"${self.env} must be a positive integer, got {raw!r}"
                ) from None
            return self._check(value, source=f"${self.env}")
        if self.type == "float":
            try:
                value = float(raw)
            except ValueError:
                raise ConfigError(
                    f"${self.env} must be a number, got {raw!r}"
                ) from None
            return self._check(value, source=f"${self.env}")
        if self.type == "bool":
            lowered = raw.strip().lower()
            if lowered in _TRUE_WORDS:
                return True
            if lowered in _FALSE_WORDS:
                return False
            raise ConfigError(
                f"${self.env} must be a boolean "
                f"({'/'.join(_TRUE_WORDS)} or {'/'.join(_FALSE_WORDS)}), got {raw!r}"
            )
        return self._check(raw, source=f"${self.env}")

    def coerce(self, value: object, source: str) -> object:
        """Validate a python-level value (config dict / Session kwarg)."""
        if self.type == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"{source}: {self.name} must be an int, got {value!r}"
                )
            return self._check(value, source=source)
        if self.type == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigError(
                    f"{source}: {self.name} must be a number, got {value!r}"
                )
            return self._check(float(value), source=source)
        if self.type == "bool":
            if not isinstance(value, bool):
                raise ConfigError(
                    f"{source}: {self.name} must be a bool, got {value!r}"
                )
            return value
        if value is not None and not isinstance(value, str):
            raise ConfigError(
                f"{source}: {self.name} must be a string, got {value!r}"
            )
        return self._check(value, source=source) if value is not None else None

    def _check(self, value: object, source: str) -> object:
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                f"{source}: {self.name} must be one of {self.choices}, got {value!r}"
            )
        if self.minimum is not None and isinstance(value, int) and value < self.minimum:
            raise ConfigError(
                f"{source} must be a positive integer, got {value!r}"
            )
        return value


_VARS = (
    ConfigVar(
        name="cache_backend",
        env="REPRO_CACHE_BACKEND",
        type="str",
        default="fast",
        choices=("fast", "reference"),
        doc="Cache-simulation backend: 'fast' (vectorised stack-distance) "
        "or 'reference' (per-access LRU oracle).",
    ),
    ConfigVar(
        name="perf_memo",
        env="REPRO_PERF_MEMO",
        type="bool",
        default=True,
        doc="Memoize per-group model costs by trace fingerprint "
        "(0 disables, e.g. when debugging the models).",
    ),
    ConfigVar(
        name="workers",
        env="REPRO_WORKERS",
        type="int",
        default=1,
        minimum=1,
        doc="Default worker-process count for sharded launches and the "
        "experiment matrix; 1 forces serial execution everywhere.",
    ),
    ConfigVar(
        name="pool_persist",
        env="REPRO_POOL_PERSIST",
        type="bool",
        default=True,
        doc="Keep one warm worker pool alive across launches, the "
        "experiment matrix, search scoring, tune labeling and fuzz "
        "sharding (0 reverts to a fresh pool per fan-out).",
    ),
    ConfigVar(
        name="pool_shm",
        env="REPRO_POOL_SHM",
        type="bool",
        default=True,
        doc="Publish launch buffers into POSIX shared memory so worker "
        "shards attach zero-copy views and write their owned output "
        "ranges in place (0 reverts to the pickled-copy + sparse-diff "
        "plane; use it for kernels whose work-groups overlap writes).",
    ),
    ConfigVar(
        name="compile_cache_size",
        env="REPRO_COMPILE_CACHE_SIZE",
        type="int",
        default=32,
        minimum=1,
        doc="Entries kept in the session's LRU compile cache.",
    ),
    ConfigVar(
        name="update_golden",
        env="REPRO_UPDATE_GOLDEN",
        type="bool",
        default=False,
        doc="Regenerate tests/golden/*.txt instead of asserting against them.",
    ),
    ConfigVar(
        name="analyze",
        env="REPRO_ANALYZE",
        type="bool",
        default=False,
        doc="Run the static race analyzer as an independent arbiter around "
        "Session.disable_local_memory: a kernel with a decided race is "
        "refused (RaceDetected) before and after the transformation.",
    ),
    ConfigVar(
        name="trace_out",
        env="REPRO_TRACE_OUT",
        type="str",
        default=None,
        doc="Path of a JSONL event-trace file; when set, a Session attaches "
        "a JSONL sink for its lifetime (same as --trace-out).",
    ),
    ConfigVar(
        name="exec_backend",
        env="REPRO_EXEC_BACKEND",
        type="str",
        default="tape",
        choices=("tape", "reference", "codegen"),
        doc="Interpreter execution backend: 'tape' (pilot-group schedule "
        "compiled once, replayed group-batched), 'codegen' (the tape "
        "emitted as one generated fused-numpy module) or 'reference' "
        "(the per-group SIMT scheduler). Results are bit-identical.",
    ),
    ConfigVar(
        name="tape_batch",
        env="REPRO_TAPE_BATCH",
        type="int",
        default=256,
        minimum=1,
        doc="Work-groups stacked per batched tape replay (the leading "
        "axis size of the batched value arrays).",
    ),
    ConfigVar(
        name="trace_spill_mb",
        env="REPRO_TRACE_SPILL_MB",
        type="int",
        default=4096,
        minimum=1,
        doc="High-water mark (MiB) for resident traced memory events; "
        "past it, completed batches spill to compressed on-disk "
        "segments and stream back transparently on access.",
    ),
    ConfigVar(
        name="search_beam",
        env="REPRO_SEARCH_BEAM",
        type="int",
        default=2,
        minimum=1,
        doc="Beam width of the rewrite-pipeline search (repro search); "
        "1 is the greedy baseline.",
    ),
    ConfigVar(
        name="search_depth",
        env="REPRO_SEARCH_DEPTH",
        type="int",
        default=3,
        minimum=1,
        doc="Maximum pipeline length the search explores (one rule "
        "appended per depth level).",
    ),
    ConfigVar(
        name="search_sample_groups",
        env="REPRO_SEARCH_SAMPLE_GROUPS",
        type="int",
        default=8,
        minimum=1,
        doc="Work-groups traced per candidate-scoring launch; outputs "
        "and verification always run the full grid.",
    ),
    ConfigVar(
        name="search_device",
        env="REPRO_SEARCH_DEVICE",
        type="str",
        default="Fermi",
        choices=("SNB", "Nehalem", "MIC", "Fermi", "Kepler", "Tahiti"),
        doc="Device model whose predicted cycles score search candidates.",
    ),
    ConfigVar(
        name="tune_model",
        env="REPRO_TUNE_MODEL",
        type="str",
        default=None,
        doc="Path of the serialized go/no-go autotuner model (repro tune "
        "train); unset resolves to the committed artifact "
        "tests/golden/tune_model.json.",
    ),
    ConfigVar(
        name="tune_threshold",
        env="REPRO_TUNE_THRESHOLD",
        type="float",
        default=0.25,
        doc="Prune a search candidate when the predictor's win "
        "probability falls below this value (0 never prunes, 1 prunes "
        "everything the model is not certain about); the pruned "
        "pipeline is skipped before trace-driven scoring, never "
        "before verification.",
    ),
    ConfigVar(
        name="codegen_cache_dir",
        env="REPRO_CODEGEN_CACHE_DIR",
        type="str",
        default=None,
        doc="Directory for on-disk codegen artifacts (generated replay "
        "modules, content-hash validated); unset disables the disk "
        "tier, the in-process cache always applies.",
    ),
)

#: by registry name ("workers")
REGISTRY: Dict[str, ConfigVar] = {v.name: v for v in _VARS}
#: by environment spelling ("REPRO_WORKERS")
ENV_REGISTRY: Dict[str, ConfigVar] = {v.env: v for v in _VARS}


#: variables whose *values* are parsed eagerly at Session construction
#: (the REPRO_WORKERS fix made bad worker counts fail at lookup with a
#: ConfigError naming the variable; these two fail even earlier, before
#: a long launch gets to the point of reading them)
_EAGER_VALUE_VARS = ("REPRO_TAPE_BATCH", "REPRO_TRACE_SPILL_MB")


def validate_environ(environ: Mapping[str, str]) -> None:
    """Reject unknown ``REPRO_*`` variables (the config-drift guard) and
    unparseable values of the eagerly-checked integer variables."""
    unknown = sorted(
        k for k in environ if k.startswith("REPRO_") and k not in ENV_REGISTRY
    )
    if unknown:
        raise ConfigError(
            f"unknown REPRO_* environment variable(s) {unknown}; "
            f"known: {sorted(ENV_REGISTRY)}"
        )
    for env_name in _EAGER_VALUE_VARS:
        raw = environ.get(env_name)
        if raw is not None:
            ENV_REGISTRY[env_name].parse_env(raw)


def coerce_value(name: str, value: object, source: str) -> object:
    """Validate one python-level setting; raises on unknown names."""
    var = REGISTRY.get(name)
    if var is None:
        raise ConfigError(
            f"{source}: unknown config key {name!r}; known: {sorted(REGISTRY)}"
        )
    return var.coerce(value, source)


def parse_env_value(var: ConfigVar, raw: str) -> object:
    return var.parse_env(raw)


def load_config_file(path: str) -> Dict[str, object]:
    """Load a ``--config`` JSON file ({"workers": 4, ...}) and validate it."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read config file {path!r}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"config file {path!r} must hold a JSON object")
    return {
        name: coerce_value(name, value, source=f"config file {path!r}")
        for name, value in data.items()
    }


def describe_registry() -> str:
    """Human-readable table of every variable (``repro passes --config-help``)."""
    lines = ["name                 env                        type  default   doc"]
    for var in _VARS:
        lines.append(
            f"{var.name:<20} {var.env:<26} {var.type:<5} "
            f"{str(var.default):<9} {var.doc}"
        )
    return "\n".join(lines)
