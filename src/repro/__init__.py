"""repro — reproduction of *Grover: Looking for Performance Improvement
by Disabling Local Memory Usage in OpenCL Kernels* (Fang, Sips,
Jaaskelainen, Varbanescu — ICPP 2014).

Layers (bottom-up):

* :mod:`repro.ir` — SPIR-like IR with OpenCL address spaces;
* :mod:`repro.frontend` — OpenCL C (subset) compiler built on pycparser;
* :mod:`repro.runtime` — NDRange SIMT interpreter + memory tracing;
* :mod:`repro.core` — **the Grover pass** (the paper's contribution);
* :mod:`repro.perf` — trace-driven CPU/GPU performance models for the
  paper's six platforms;
* :mod:`repro.apps` — the 11 benchmark applications of Table I;
* :mod:`repro.autotune` — the with/without auto-tuner;
* :mod:`repro.experiments` — drivers regenerating every table & figure.

Quick start::

    from repro.frontend import compile_kernel
    from repro.core import disable_local_memory

    kernel = compile_kernel(OPENCL_SOURCE)
    report = disable_local_memory(kernel)   # rewrites the IR in place
    print(report)
"""

__version__ = "1.0.0"

from repro.core import GroverPass, disable_local_memory
from repro.frontend import compile_kernel, compile_source

__all__ = [
    "GroverPass",
    "disable_local_memory",
    "compile_kernel",
    "compile_source",
    "__version__",
]
