"""Minimal OpenCL-C preprocessor.

Responsibilities:

1. strip comments;
2. evaluate ``#define`` / ``#undef`` / ``#ifdef`` / ``#ifndef`` /
   ``#else`` / ``#endif`` (object-like macros only) and merge
   host-supplied ``-D``-style definitions;
3. translate OpenCL address-space qualifiers into C99 qualifiers that
   pycparser preserves in the AST (``__global`` -> ``volatile``,
   ``__local`` -> ``_Atomic``, ``__constant`` -> ``volatile const``),
   recording that this translation happened;
4. find ``__kernel`` entry points (OpenCL kernels return ``void``);
5. prepend a typedef prelude so pycparser accepts OpenCL type names.

The output is plain C99 text suitable for :mod:`pycparser` plus the list
of kernel names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.errors import FrontendError

#: qualifier translation table (OpenCL -> C99 marker qualifiers)
QUAL_MAP = {
    "__global": "volatile",
    "__local": "_Atomic",
    "__constant": "volatile const",
    "__private": "",
    "__read_only": "",
    "__write_only": "",
}

#: prelude typedefs — names only; the lowering resolves semantics itself.
PRELUDE = """
typedef unsigned long size_t;
typedef unsigned char uchar;
typedef unsigned short ushort;
typedef unsigned int uint;
typedef unsigned long ulong;
typedef float float2;
typedef float float3;
typedef float float4;
typedef float float8;
typedef float float16;
typedef int int2;
typedef int int4;
typedef unsigned int uint2;
typedef unsigned int uint4;
typedef double double2;
typedef double double4;
"""

PRELUDE_DEFINES = {
    "CLK_LOCAL_MEM_FENCE": "1",
    "CLK_GLOBAL_MEM_FENCE": "2",
    "NULL": "0",
    "M_PI_F": "3.14159274101257f",
}

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_KERNEL_RE = re.compile(r"\b(?:__kernel|kernel)\b\s+(?:\w+\s+)*?void\s+([A-Za-z_]\w*)\s*\(")


@dataclass
class PreprocessResult:
    text: str
    kernel_names: List[str]
    macros: Dict[str, str] = field(default_factory=dict)
    #: lines of prelude prepended (to offset diagnostics)
    prelude_lines: int = 0


def strip_comments(src: str) -> str:
    """Remove // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(src)
    while i < n:
        c = src[i]
        if c == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and src[i + 1] == "*":
            j = src.find("*/", i + 2)
            if j < 0:
                raise FrontendError("unterminated block comment")
            out.append("\n" * src.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            # copy string/char literal verbatim
            quote = c
            j = i + 1
            while j < n:
                if src[j] == "\\":
                    j += 2
                    continue
                if src[j] == quote:
                    break
                j += 1
            out.append(src[i : j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclass
class FuncMacro:
    """A function-like macro: ``#define AS(i, j) As[(i)*BS + (j)]``."""

    params: List[str]
    body: str


def _find_call(line: str, name: str, start: int = 0):
    """Locate ``name(...)`` at a token boundary; returns
    (name_start, args, end_index) or None."""
    pos = start
    while True:
        i = line.find(name, pos)
        if i < 0:
            return None
        before = line[i - 1] if i > 0 else " "
        after_idx = i + len(name)
        if before.isalnum() or before == "_":
            pos = i + 1
            continue
        j = after_idx
        while j < len(line) and line[j].isspace():
            j += 1
        if j >= len(line) or line[j] != "(":
            pos = i + 1
            continue
        # scan balanced parens, splitting top-level commas
        depth = 0
        args: List[str] = []
        cur: List[str] = []
        k = j
        while k < len(line):
            ch = line[k]
            if ch == "(":
                depth += 1
                if depth == 1:
                    k += 1
                    continue
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(cur).strip())
                    return (i, args, k + 1)
            elif ch == "," and depth == 1:
                args.append("".join(cur).strip())
                cur = []
                k += 1
                continue
            cur.append(ch)
            k += 1
        raise FrontendError(f"unbalanced parentheses in macro call {name!r}")


def _expand_func_macros(line: str, funcs: Dict[str, FuncMacro]) -> str:
    for _ in range(32):
        changed = False
        for name, macro in funcs.items():
            hit = _find_call(line, name)
            if hit is None:
                continue
            i, args, end = hit
            if len(args) != len(macro.params) and not (
                len(macro.params) == 0 and args == [""]
            ):
                raise FrontendError(
                    f"macro {name} expects {len(macro.params)} argument(s), "
                    f"got {len(args)}"
                )
            body = macro.body
            for p, a in zip(macro.params, args):
                body = re.sub(rf"\b{re.escape(p)}\b", f"({a})", body)
            line = line[:i] + f"({body})" + line[end:]
            changed = True
        if not changed:
            return line
    raise FrontendError(f"macro expansion did not converge on line: {line!r}")


def _expand_macros(
    line: str,
    macros: Dict[str, str],
    funcs: Optional[Dict[str, FuncMacro]] = None,
) -> str:
    """Repeatedly substitute macros (token-boundary aware)."""
    if funcs:
        line = _expand_func_macros(line, funcs)
    for _ in range(32):
        changed = False

        def sub(m: "re.Match[str]") -> str:
            nonlocal changed
            name = m.group(0)
            if name in macros:
                changed = True
                return macros[name]
            return name

        line = _TOKEN_RE.sub(sub, line)
        if funcs:
            line = _expand_func_macros(line, funcs)
        if not changed:
            return line
    raise FrontendError(f"macro expansion did not converge on line: {line!r}")


def run_directives(src: str, defines: Optional[Dict[str, object]] = None) -> Tuple[str, Dict[str, str]]:
    """Process # directives and expand object-like macros."""
    macros: Dict[str, str] = dict(PRELUDE_DEFINES)
    funcs: Dict[str, FuncMacro] = {}
    for k, v in (defines or {}).items():
        macros[k] = str(v)

    out_lines: List[str] = []
    # conditional-inclusion stack: each entry is (taking, seen_else)
    stack: List[List[bool]] = []

    def active() -> bool:
        return all(s[0] for s in stack)

    # join continued lines
    src = src.replace("\\\n", " ")

    for raw in src.split("\n"):
        stripped = raw.strip()
        if stripped.startswith("#"):
            body = stripped[1:].strip()
            if body.startswith("define"):
                if active():
                    rest = body[len("define") :].strip()
                    m = re.match(r"([A-Za-z_]\w*)(\(.*?\))?\s*(.*)", rest)
                    if not m:
                        raise FrontendError(f"malformed #define: {raw!r}")
                    name, params, repl = m.groups()
                    if params:
                        plist = [
                            p.strip()
                            for p in params[1:-1].split(",")
                            if p.strip()
                        ]
                        funcs[name] = FuncMacro(plist, repl.strip())
                    else:
                        macros[name] = _expand_macros(repl.strip(), macros)
            elif body.startswith("undef"):
                if active():
                    target = body[len("undef") :].strip()
                    macros.pop(target, None)
                    funcs.pop(target, None)
            elif body.startswith("ifdef"):
                name = body[len("ifdef") :].strip()
                stack.append([name in macros, False])
            elif body.startswith("ifndef"):
                name = body[len("ifndef") :].strip()
                stack.append([name not in macros, False])
            elif body.startswith("if "):
                # constant-expression #if: resolve defined(X) *before*
                # macro expansion, then expand the remaining names
                expr = re.sub(
                    r"\bdefined\s*\(\s*(\w+)\s*\)",
                    lambda m: "1" if m.group(1) in macros else "0",
                    body[3:].strip(),
                )
                expr = _expand_macros(expr, macros)
                try:
                    val = bool(eval(expr, {"__builtins__": {}}, {}))
                except Exception as exc:
                    raise FrontendError(f"cannot evaluate #if {expr!r}: {exc}") from exc
                stack.append([val, False])
            elif body.startswith("else"):
                if not stack or stack[-1][1]:
                    raise FrontendError("#else without matching #if")
                stack[-1][0] = not stack[-1][0]
                stack[-1][1] = True
            elif body.startswith("endif"):
                if not stack:
                    raise FrontendError("#endif without matching #if")
                stack.pop()
            elif body.startswith("pragma") or body.startswith("include"):
                pass  # ignored
            else:
                raise FrontendError(f"unsupported preprocessor directive: {raw!r}")
            out_lines.append("")  # keep line numbering
            continue
        if active():
            out_lines.append(_expand_macros(raw, macros, funcs))
        else:
            out_lines.append("")

    if stack:
        raise FrontendError("unterminated #if/#ifdef")
    return "\n".join(out_lines), macros


def translate_qualifiers(src: str) -> str:
    """Map OpenCL address-space qualifiers onto C99 marker qualifiers."""

    def sub(m: "re.Match[str]") -> str:
        return QUAL_MAP[m.group(0)]

    src = re.sub(r"\b(?:%s)\b" % "|".join(QUAL_MAP), sub, src)
    # __kernel / kernel markers are recorded separately; strip them here
    # (the bare form only when it clearly marks an entry point).
    src = re.sub(r"\b(?:__kernel|__attribute__\s*\(\(.*?\)\))\b", "", src)
    src = re.sub(r"\bkernel\b(?=\s+void\b)", "", src)
    return src


def find_kernels(src: str) -> List[str]:
    return _KERNEL_RE.findall(src)


def preprocess(source: str, defines: Optional[Dict[str, object]] = None) -> PreprocessResult:
    """Full preprocessing pipeline; returns C99 text ready for pycparser."""
    text = strip_comments(source)
    text, macros = run_directives(text, defines)
    kernels = find_kernels(text)
    if not kernels:
        raise FrontendError(
            "no __kernel entry point found (kernels must be '__kernel void name(...)')"
        )
    text = translate_qualifiers(text)
    prelude = PRELUDE.strip("\n")
    prelude_lines = prelude.count("\n") + 1
    return PreprocessResult(
        text=prelude + "\n" + text,
        kernel_names=kernels,
        macros=macros,
        prelude_lines=prelude_lines,
    )
