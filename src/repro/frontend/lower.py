"""Lowering: pycparser AST -> repro IR.

Mutable C variables become ``alloca`` stack slots (clang -O0 style), so the
IR never needs phi nodes; loop-carried variables appear to later analyses
as loads from a named stack slot, which is exactly where the paper's index
expression trees stop ("a phi node" in their LLVM implementation,
Section IV-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from pycparser import c_ast

from repro.frontend.errors import FrontendError, UnsupportedFeature
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Alloca, CastKind, CmpPred, Opcode
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    BoolType,
    DOUBLE,
    FLOAT,
    FloatType,
    HALF,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    Type,
    U8,
    U16,
    U32,
    U64,
    VectorType,
    VOID,
)
from repro.ir.values import Argument, Constant, LocalArray, Value

# ---------------------------------------------------------------------------
# type resolution
# ---------------------------------------------------------------------------

_SCALAR_NAMES: Dict[str, Type] = {
    "void": VOID,
    "char": I8,
    "signed char": I8,
    "unsigned char": U8,
    "uchar": U8,
    "short": I16,
    "short int": I16,
    "unsigned short": U16,
    "ushort": U16,
    "int": I32,
    "signed": I32,
    "signed int": I32,
    "unsigned": U32,
    "unsigned int": U32,
    "uint": U32,
    "long": I64,
    "long int": I64,
    "long long": I64,
    "unsigned long": U64,
    "unsigned long long": U64,
    "ulong": U64,
    "size_t": U64,
    "float": FLOAT,
    "double": DOUBLE,
    "half": HALF,
    "bool": I32,
    "_Bool": I32,
}

_VECTOR_NAMES: Dict[str, VectorType] = {
    "float2": VectorType(FLOAT, 2),
    "float3": VectorType(FLOAT, 3),
    "float4": VectorType(FLOAT, 4),
    "float8": VectorType(FLOAT, 8),
    "float16": VectorType(FLOAT, 16),
    "int2": VectorType(I32, 2),
    "int4": VectorType(I32, 4),
    "uint2": VectorType(U32, 2),
    "uint4": VectorType(U32, 4),
    "double2": VectorType(DOUBLE, 2),
    "double4": VectorType(DOUBLE, 4),
}

_VEC_MEMBERS = {"x": 0, "y": 1, "z": 2, "w": 3,
                "s0": 0, "s1": 1, "s2": 2, "s3": 3,
                "s4": 4, "s5": 5, "s6": 6, "s7": 7}

#: work-item builtins -> dimensionality-indexed query names
WORK_ITEM_BUILTINS = frozenset(
    {
        "get_global_id",
        "get_local_id",
        "get_group_id",
        "get_global_size",
        "get_local_size",
        "get_num_groups",
        "get_global_offset",
    }
)

#: pure float builtins of one argument
_UNARY_MATH = frozenset(
    {
        "sqrt", "rsqrt", "native_sqrt", "native_rsqrt", "fabs", "floor",
        "ceil", "exp", "native_exp", "log", "native_log", "log2", "exp2",
        "sin", "cos", "native_sin", "native_cos", "tan", "trunc", "round",
        "sign",
    }
)
_BINARY_MATH = frozenset({"fmin", "fmax", "pow", "native_powr", "fmod", "atan2", "hypot"})
_TERNARY_MATH = frozenset({"fma", "mad", "clamp", "mix"})
_INT_BUILTINS = frozenset({"min", "max", "abs", "mul24", "mad24"})


def _quals_to_addrspace(quals: Sequence[str]) -> AddressSpace:
    if "_Atomic" in quals:
        return AddressSpace.LOCAL
    if "volatile" in quals:
        return AddressSpace.GLOBAL
    return AddressSpace.PRIVATE


class ConstEvaluator:
    """Evaluate integer constant expressions (array dims etc.)."""

    def eval(self, node: c_ast.Node) -> int:
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "unsigned int", "char"):
                return _parse_int_literal(node.value)
            raise FrontendError(f"non-integer constant {node.value!r}", node.coord)
        if isinstance(node, c_ast.BinaryOp):
            a, b = self.eval(node.left), self.eval(node.right)
            ops = {
                "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
                "/": lambda: a // b, "%": lambda: a % b,
                "<<": lambda: a << b, ">>": lambda: a >> b,
                "&": lambda: a & b, "|": lambda: a | b, "^": lambda: a ^ b,
            }
            if node.op not in ops:
                raise FrontendError(f"operator {node.op} in constant expr", node.coord)
            return ops[node.op]()
        if isinstance(node, c_ast.UnaryOp):
            v = self.eval(node.expr)
            if node.op == "-":
                return -v
            if node.op == "+":
                return v
            if node.op == "~":
                return ~v
        raise FrontendError(
            f"expression is not an integer constant: {type(node).__name__}", node.coord
        )


def _parse_int_literal(text: str) -> int:
    t = text.lower().rstrip("ul")
    return int(t, 0)


def _parse_float_literal(text: str) -> Tuple[float, Type]:
    t = text.lower()
    ty: Type = DOUBLE
    if t.endswith("f"):
        t = t[:-1]
        ty = FLOAT
    return float(t), ty


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------


class _Binding:
    """A name in scope: argument, stack slot, or local array."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Value) -> None:
        self.kind = kind  # 'arg' | 'slot' | 'local_array'
        self.value = value


class FunctionLowering:
    def __init__(self, module: Module, funcdef: c_ast.FuncDef, kernel_names: Sequence[str]):
        self.module = module
        self.funcdef = funcdef
        self.kernel_names = set(kernel_names)
        self.consteval = ConstEvaluator()
        self.scopes: List[Dict[str, _Binding]] = []
        self.builder = IRBuilder()
        self.fn: Optional[Function] = None
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []
        self.terminated = False

    # -- scope helpers --------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, binding: _Binding) -> None:
        self.scopes[-1][name] = binding

    def lookup(self, name: str, coord=None) -> _Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise FrontendError(f"use of undeclared identifier {name!r}", coord)

    # -- type resolution -------------------------------------------------------
    def resolve_type(self, node: c_ast.Node) -> Tuple[Type, List[str]]:
        """Resolve a declarator type node -> (type, qualifiers-at-this-level)."""
        if isinstance(node, c_ast.TypeDecl):
            inner = node.type
            quals = list(node.quals or [])
            if isinstance(inner, c_ast.IdentifierType):
                name = " ".join(inner.names)
                if name in _VECTOR_NAMES:
                    return _VECTOR_NAMES[name], quals
                if name in _SCALAR_NAMES:
                    return _SCALAR_NAMES[name], quals
                raise FrontendError(f"unknown type name {name!r}", node.coord)
            raise UnsupportedFeature(
                f"type {type(inner).__name__} not supported", node.coord
            )
        if isinstance(node, c_ast.PtrDecl):
            pointee, pointee_quals = self.resolve_type(node.type)
            space = _quals_to_addrspace(pointee_quals)
            return PointerType(pointee, space), list(node.quals or [])
        if isinstance(node, c_ast.ArrayDecl):
            elem, quals = self.resolve_type(node.type)
            if node.dim is None:
                raise UnsupportedFeature("arrays must have explicit dimensions", node.coord)
            count = self.consteval.eval(node.dim)
            return ArrayType(elem, count), quals
        raise UnsupportedFeature(f"declarator {type(node).__name__}", node.coord)

    def resolve_typename(self, node: c_ast.Typename) -> Type:
        ty, _ = self.resolve_type(node.type)
        return ty

    # -- entry point -----------------------------------------------------------
    def run(self) -> Function:
        decl = self.funcdef.decl
        name = decl.name
        ftype = decl.type  # FuncDecl
        ret_type, _ = self.resolve_type(ftype.type)

        arg_types: List[Type] = []
        arg_names: List[str] = []
        params = []
        if ftype.args:
            params = [
                p
                for p in ftype.args.params
                if not (
                    isinstance(p, c_ast.Typename)
                    and isinstance(p.type, c_ast.TypeDecl)
                    and isinstance(p.type.type, c_ast.IdentifierType)
                    and p.type.type.names == ["void"]
                )
            ]
        for p in params:
            if not isinstance(p, c_ast.Decl):
                raise UnsupportedFeature("unnamed parameter", getattr(p, "coord", None))
            pty, _ = self.resolve_type(p.type)
            # kernel pointer params default to __global when unqualified
            if (
                isinstance(pty, PointerType)
                and pty.addrspace == AddressSpace.PRIVATE
                and name in self.kernel_names
            ):
                pty = PointerType(pty.pointee, AddressSpace.GLOBAL)
            arg_types.append(pty)
            arg_names.append(p.name)

        fn = Function(
            name,
            arg_types,
            arg_names,
            ret_type,
            is_kernel=name in self.kernel_names,
        )
        self.fn = fn
        self.module.add_function(fn)

        entry = fn.add_block("entry")
        self.builder.position_at_end(entry)
        self.push_scope()

        assigned = _assigned_names(self.funcdef.body)
        for arg in fn.args:
            if arg.name in assigned:
                slot = self.builder.alloca(arg.type, arg.name)
                self.builder.store(arg, slot)
                self.bind(arg.name, _Binding("slot", slot))
            else:
                self.bind(arg.name, _Binding("arg", arg))

        self.lower_stmt(self.funcdef.body)
        if not self.terminated:
            if fn.ret_type != VOID:
                raise FrontendError(f"missing return in non-void function {name}")
            self.builder.ret()
        self.pop_scope()
        return fn

    # -- statements --------------------------------------------------------------
    def lower_stmt(self, node: c_ast.Node) -> None:
        if self.terminated:
            return  # unreachable code after break/continue/return
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise UnsupportedFeature(f"statement {type(node).__name__}", node.coord)
        method(node)

    def _stmt_Compound(self, node: c_ast.Compound) -> None:
        self.push_scope()
        for item in node.block_items or []:
            self.lower_stmt(item)
        self.pop_scope()

    def _stmt_EmptyStatement(self, node: c_ast.EmptyStatement) -> None:
        pass

    def _stmt_ExprList(self, node: c_ast.ExprList) -> None:
        # comma-operator statement (e.g. a for-loop init `a = 0, b = n`)
        for e in node.exprs:
            self.lower_expr(e)

    def _stmt_Decl(self, node: c_ast.Decl) -> None:
        if isinstance(node.type, c_ast.FuncDecl):
            return  # forward declaration; ignore
        ty, quals = self.resolve_type(node.type)
        all_quals = set(quals) | set(node.quals or [])
        space = _quals_to_addrspace(list(all_quals))

        if space == AddressSpace.LOCAL:
            if not isinstance(ty, ArrayType):
                raise UnsupportedFeature(
                    "__local variables must be arrays in this subset", node.coord
                )
            if node.init is not None:
                raise FrontendError("__local arrays cannot have initialisers", node.coord)
            la = self.fn.add_local_array(ty, node.name)
            self.bind(node.name, _Binding("local_array", la))
            return

        slot = self.builder.alloca(ty, node.name)
        self.bind(node.name, _Binding("slot", slot))
        if node.init is not None:
            if isinstance(node.init, c_ast.InitList):
                if not isinstance(ty, ArrayType):
                    raise UnsupportedFeature("initialiser list on non-array", node.coord)
                for i, expr in enumerate(node.init.exprs):
                    v = self.coerce(self.lower_expr(expr), ty.element, node.coord)
                    p = self.builder.gep(slot, [Constant(I32, i)])
                    self.builder.store(v, p)
            else:
                v = self.coerce(self.lower_expr(node.init), ty, node.coord)
                self.builder.store(v, slot)

    def _stmt_Assignment(self, node: c_ast.Assignment) -> None:
        self.lower_assignment(node)

    def _stmt_UnaryOp(self, node: c_ast.UnaryOp) -> None:
        if node.op in ("p++", "++", "p--", "--"):
            self.lower_expr(node)
        else:
            self.lower_expr(node)  # expression statement with side effects only

    def _stmt_FuncCall(self, node: c_ast.FuncCall) -> None:
        self.lower_expr(node, void_ok=True)

    def _stmt_Return(self, node: c_ast.Return) -> None:
        if node.expr is not None:
            v = self.coerce(self.lower_expr(node.expr), self.fn.ret_type, node.coord)
            self.builder.ret(v)
        else:
            self.builder.ret()
        self.terminated = True

    def _stmt_If(self, node: c_ast.If) -> None:
        cond = self.to_bool(self.lower_expr(node.cond), node.coord)
        then_bb = self.fn.add_block("if.then")
        merge_bb = self.fn.add_block("if.end")
        else_bb = self.fn.add_block("if.else") if node.iffalse is not None else merge_bb
        self.builder.cond_br(cond, then_bb, else_bb)

        self.builder.position_at_end(then_bb)
        self.terminated = False
        self.lower_stmt(node.iftrue)
        if not self.terminated:
            self.builder.br(merge_bb)
        then_terminated = self.terminated

        else_terminated = False
        if node.iffalse is not None:
            self.builder.position_at_end(else_bb)
            self.terminated = False
            self.lower_stmt(node.iffalse)
            if not self.terminated:
                self.builder.br(merge_bb)
            else_terminated = self.terminated

        self.builder.position_at_end(merge_bb)
        self.terminated = then_terminated and else_terminated
        if self.terminated:
            # merge block is unreachable but must still be well-formed
            self.builder.ret()

    def _stmt_For(self, node: c_ast.For) -> None:
        self.push_scope()
        if node.init is not None:
            if isinstance(node.init, c_ast.DeclList):
                for d in node.init.decls:
                    self._stmt_Decl(d)
            else:
                self.lower_stmt(node.init)

        cond_bb = self.fn.add_block("for.cond")
        body_bb = self.fn.add_block("for.body")
        inc_bb = self.fn.add_block("for.inc")
        end_bb = self.fn.add_block("for.end")

        self.builder.br(cond_bb)
        self.builder.position_at_end(cond_bb)
        if node.cond is not None:
            cond = self.to_bool(self.lower_expr(node.cond), node.coord)
            self.builder.cond_br(cond, body_bb, end_bb)
        else:
            self.builder.br(body_bb)

        self.builder.position_at_end(body_bb)
        self.break_targets.append(end_bb)
        self.continue_targets.append(inc_bb)
        self.terminated = False
        if node.stmt is not None:
            self.lower_stmt(node.stmt)
        if not self.terminated:
            self.builder.br(inc_bb)
        self.break_targets.pop()
        self.continue_targets.pop()

        self.builder.position_at_end(inc_bb)
        self.terminated = False
        if node.next is not None:
            self.lower_stmt(node.next)
        self.builder.br(cond_bb)

        self.builder.position_at_end(end_bb)
        self.terminated = False
        self.pop_scope()

    def _stmt_While(self, node: c_ast.While) -> None:
        cond_bb = self.fn.add_block("while.cond")
        body_bb = self.fn.add_block("while.body")
        end_bb = self.fn.add_block("while.end")
        self.builder.br(cond_bb)
        self.builder.position_at_end(cond_bb)
        cond = self.to_bool(self.lower_expr(node.cond), node.coord)
        self.builder.cond_br(cond, body_bb, end_bb)
        self.builder.position_at_end(body_bb)
        self.break_targets.append(end_bb)
        self.continue_targets.append(cond_bb)
        self.terminated = False
        self.lower_stmt(node.stmt)
        if not self.terminated:
            self.builder.br(cond_bb)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.position_at_end(end_bb)
        self.terminated = False

    def _stmt_DoWhile(self, node: c_ast.DoWhile) -> None:
        body_bb = self.fn.add_block("do.body")
        cond_bb = self.fn.add_block("do.cond")
        end_bb = self.fn.add_block("do.end")
        self.builder.br(body_bb)
        self.builder.position_at_end(body_bb)
        self.break_targets.append(end_bb)
        self.continue_targets.append(cond_bb)
        self.terminated = False
        self.lower_stmt(node.stmt)
        if not self.terminated:
            self.builder.br(cond_bb)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.builder.position_at_end(cond_bb)
        self.terminated = False
        cond = self.to_bool(self.lower_expr(node.cond), node.coord)
        self.builder.cond_br(cond, body_bb, end_bb)
        self.builder.position_at_end(end_bb)

    def _stmt_Break(self, node: c_ast.Break) -> None:
        if not self.break_targets:
            raise FrontendError("break outside of a loop", node.coord)
        self.builder.br(self.break_targets[-1])
        self.terminated = True

    def _stmt_Continue(self, node: c_ast.Continue) -> None:
        if not self.continue_targets:
            raise FrontendError("continue outside of a loop", node.coord)
        self.builder.br(self.continue_targets[-1])
        self.terminated = True

    # -- lvalues -------------------------------------------------------------
    def lower_lvalue(self, node: c_ast.Node):
        """Return ('ptr', pointer) or ('veclane', slot_ptr, lane)."""
        if isinstance(node, c_ast.ID):
            b = self.lookup(node.name, node.coord)
            if b.kind == "slot":
                return ("ptr", b.value)
            if b.kind == "arg":
                raise FrontendError(
                    f"internal: argument {node.name} should have a stack slot",
                    node.coord,
                )
            raise FrontendError(f"{node.name} is not assignable", node.coord)
        if isinstance(node, c_ast.ArrayRef):
            return ("ptr", self.lower_arrayref_ptr(node))
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            ptr = self.lower_expr(node.expr)
            if not isinstance(ptr.type, PointerType):
                raise FrontendError("cannot dereference a non-pointer", node.coord)
            return ("ptr", ptr)
        if isinstance(node, c_ast.StructRef):
            base = node.name
            member = node.field.name
            if member not in _VEC_MEMBERS:
                raise UnsupportedFeature(f"member .{member}", node.coord)
            kind_ptr = self.lower_lvalue(base)
            if kind_ptr[0] != "ptr":
                raise UnsupportedFeature("nested vector member lvalue", node.coord)
            ptr = kind_ptr[1]
            if not isinstance(ptr.type.pointee, VectorType):
                raise FrontendError(".member on a non-vector", node.coord)
            return ("veclane", ptr, _VEC_MEMBERS[member])
        raise UnsupportedFeature(
            f"lvalue {type(node).__name__}", getattr(node, "coord", None)
        )

    def store_lvalue(self, lv, value: Value, coord=None) -> None:
        if lv[0] == "ptr":
            ptr = lv[1]
            self.builder.store(self.coerce(value, ptr.type.pointee, coord), ptr)
        else:
            _, ptr, lane = lv
            vec_ty: VectorType = ptr.type.pointee
            old = self.builder.load(ptr)
            elem = self.coerce(value, vec_ty.element, coord)
            new = self.builder.insert(old, elem, Constant(I32, lane))
            self.builder.store(new, ptr)

    def load_lvalue(self, lv) -> Value:
        if lv[0] == "ptr":
            return self.builder.load(lv[1])
        _, ptr, lane = lv
        vec = self.builder.load(ptr)
        return self.builder.extract(vec, Constant(I32, lane))

    def lower_arrayref_ptr(self, node: c_ast.ArrayRef) -> Value:
        # collect subscript chain: a[i][j] -> base a, indices [i, j]
        indices: List[c_ast.Node] = []
        base = node
        while isinstance(base, c_ast.ArrayRef):
            indices.append(base.subscript)
            base = base.name
        indices.reverse()

        base_val: Value
        if isinstance(base, c_ast.ID):
            b = self.lookup(base.name, node.coord)
            if b.kind == "local_array":
                base_val = b.value
            elif b.kind == "arg":
                base_val = b.value
            else:  # slot
                slot = b.value
                if isinstance(slot.type.pointee, ArrayType):
                    base_val = slot  # private array: GEP peels array dims
                else:
                    base_val = self.builder.load(slot)  # pointer variable
        else:
            base_val = self.lower_expr(base)

        if not isinstance(base_val.type, PointerType):
            raise FrontendError("subscript on a non-pointer", node.coord)

        idx_vals = [self.lower_expr(i) for i in indices]
        for v in idx_vals:
            if not isinstance(v.type, (IntType,)):
                raise FrontendError("array subscript must be an integer", node.coord)
        return self.builder.gep(base_val, idx_vals)

    # -- assignments -----------------------------------------------------------
    _COMPOUND_OPS = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^",
    }

    def lower_assignment(self, node: c_ast.Assignment) -> Value:
        lv = self.lower_lvalue(node.lvalue)
        rhs = self.lower_expr(node.rvalue)
        if node.op == "=":
            self.store_lvalue(lv, rhs, node.coord)
            return rhs
        if node.op in self._COMPOUND_OPS:
            cur = self.load_lvalue(lv)
            result = self.binary(self._COMPOUND_OPS[node.op], cur, rhs, node.coord)
            self.store_lvalue(lv, result, node.coord)
            return result
        raise UnsupportedFeature(f"assignment operator {node.op}", node.coord)

    # -- expressions ------------------------------------------------------------
    def lower_expr(self, node: c_ast.Node, void_ok: bool = False) -> Value:
        if isinstance(node, c_ast.Constant):
            return self.lower_constant(node)
        if isinstance(node, c_ast.ID):
            b = self.lookup(node.name, node.coord)
            if b.kind == "arg":
                return b.value
            if b.kind == "slot":
                slot = b.value
                if isinstance(slot.type.pointee, ArrayType):
                    return slot  # array decays to its slot pointer
                return self.builder.load(slot, node.name)
            if b.kind == "local_array":
                return b.value
            raise AssertionError(b.kind)
        if isinstance(node, c_ast.ArrayRef):
            ptr = self.lower_arrayref_ptr(node)
            return self.builder.load(ptr)
        if isinstance(node, c_ast.StructRef):
            if node.field.name in _VEC_MEMBERS:
                vec = self.lower_expr(node.name)
                if not isinstance(vec.type, VectorType):
                    raise FrontendError(".member on non-vector value", node.coord)
                return self.builder.extract(
                    vec, Constant(I32, _VEC_MEMBERS[node.field.name])
                )
            raise UnsupportedFeature(f"member .{node.field.name}", node.coord)
        if isinstance(node, c_ast.BinaryOp):
            if node.op in ("&&", "||"):
                a = self.to_bool(self.lower_expr(node.left), node.coord)
                b = self.to_bool(self.lower_expr(node.right), node.coord)
                opc = Opcode.AND if node.op == "&&" else Opcode.OR
                return self.builder.binop(opc, a, b)
            a = self.lower_expr(node.left)
            b = self.lower_expr(node.right)
            return self.binary(node.op, a, b, node.coord)
        if isinstance(node, c_ast.UnaryOp):
            return self.lower_unary(node)
        if isinstance(node, c_ast.TernaryOp):
            cond = self.to_bool(self.lower_expr(node.cond), node.coord)
            t = self.lower_expr(node.iftrue)
            f = self.lower_expr(node.iffalse)
            t, f = self.usual_arith(t, f, node.coord)
            return self.builder.select(cond, t, f)
        if isinstance(node, c_ast.Cast):
            to_type = self.resolve_typename(node.to_type)
            # pointer casts with address-space qualifiers
            val = self.lower_expr(node.expr)
            return self.coerce(val, to_type, node.coord, explicit=True)
        if isinstance(node, c_ast.FuncCall):
            return self.lower_call(node, void_ok=void_ok)
        if isinstance(node, c_ast.Assignment):
            return self.lower_assignment(node)
        if isinstance(node, c_ast.ExprList):
            last: Optional[Value] = None
            for e in node.exprs:
                last = self.lower_expr(e)
            assert last is not None
            return last
        raise UnsupportedFeature(f"expression {type(node).__name__}", node.coord)

    def lower_constant(self, node: c_ast.Constant) -> Value:
        if node.type in ("int", "long int", "unsigned int", "long long int"):
            v = _parse_int_literal(node.value)
            suffix = node.value.lower()
            if suffix.endswith("ul") or suffix.endswith("lu") or suffix.endswith("u"):
                ty: Type = U32 if v <= 0xFFFFFFFF else U64
            else:
                ty = I32 if -(2**31) <= v < 2**31 else I64
            return Constant(ty, v)
        if node.type in ("float", "double", "long double"):
            v, ty = _parse_float_literal(node.value)
            return Constant(ty, v)
        if node.type == "char":
            text = node.value[1:-1]
            value = ord(bytes(text, "utf-8").decode("unicode_escape"))
            return Constant(I8, value)
        raise UnsupportedFeature(f"literal of type {node.type}", node.coord)

    def lower_unary(self, node: c_ast.UnaryOp) -> Value:
        op = node.op
        if op in ("p++", "++", "p--", "--"):
            lv = self.lower_lvalue(node.expr)
            old = self.load_lvalue(lv)
            one = Constant(old.type, 1) if isinstance(old.type, IntType) else Constant(old.type, 1.0)
            opc = Opcode.ADD if "+" in op else Opcode.SUB
            if isinstance(old.type, FloatType):
                opc = Opcode.FADD if "+" in op else Opcode.FSUB
            new = self.builder.binop(opc, old, one)
            self.store_lvalue(lv, new, node.coord)
            return old if op.startswith("p") else new
        if op == "-":
            v = self.lower_expr(node.expr)
            v = self.promote(v)
            zero = Constant(v.type, 0 if isinstance(v.type, IntType) else 0.0)
            opc = Opcode.FSUB if isinstance(v.type, FloatType) else Opcode.SUB
            return self.builder.binop(opc, zero, v)
        if op == "+":
            return self.promote(self.lower_expr(node.expr))
        if op == "~":
            v = self.promote(self.lower_expr(node.expr))
            return self.builder.binop(Opcode.XOR, v, Constant(v.type, -1))
        if op == "!":
            v = self.to_bool(self.lower_expr(node.expr), node.coord)
            true = Constant(BOOL, True)
            # !x == x xor true — BoolType xor
            return self.builder.binop(Opcode.XOR, v, true)
        if op == "*":
            ptr = self.lower_expr(node.expr)
            if not isinstance(ptr.type, PointerType):
                raise FrontendError("dereference of non-pointer", node.coord)
            return self.builder.load(ptr)
        if op == "&":
            lv = self.lower_lvalue(node.expr)
            if lv[0] != "ptr":
                raise UnsupportedFeature("&(vector member)", node.coord)
            return lv[1]
        if op == "sizeof":
            if isinstance(node.expr, c_ast.Typename):
                ty = self.resolve_typename(node.expr)
            else:
                raise UnsupportedFeature("sizeof(expression)", node.coord)
            return Constant(U32, ty.size)
        raise UnsupportedFeature(f"unary operator {op}", node.coord)

    # -- calls ------------------------------------------------------------------
    def lower_call(self, node: c_ast.FuncCall, void_ok: bool = False) -> Value:
        if not isinstance(node.name, c_ast.ID):
            raise UnsupportedFeature("indirect calls", node.coord)
        name = node.name.name
        args = [self.lower_expr(a) for a in (node.args.exprs if node.args else [])]

        if name in WORK_ITEM_BUILTINS:
            if len(args) != 1:
                raise FrontendError(f"{name} takes one argument", node.coord)
            dim = self.coerce(args[0], U32, node.coord)
            return self.builder.call(name, [dim], I64)
        if name == "get_work_dim":
            return self.builder.call(name, [], U32)
        if name in ("barrier", "mem_fence", "read_mem_fence", "write_mem_fence"):
            arg = args[0] if args else Constant(I32, 1)
            return self.builder.call("barrier", [self.coerce(arg, I32, node.coord)], VOID)

        # vector load/store: lowered to real Load/Store instructions so the
        # Grover candidate detection sees them as memory operations.
        if name.startswith("vload") and name[5:].isdigit():
            n = int(name[5:])
            off, ptr = args
            return self._vector_mem(ptr, off, n, node.coord, store_value=None)
        if name.startswith("vstore") and name[6:].isdigit():
            n = int(name[6:])
            value, off, ptr = args
            return self._vector_mem(ptr, off, n, node.coord, store_value=value)

        if name.startswith("make_") and name[5:] in _VECTOR_NAMES:
            vty = _VECTOR_NAMES[name[5:]]
            if len(args) != vty.count:
                raise FrontendError(
                    f"{name} takes {vty.count} arguments", node.coord
                )
            args = [self.coerce(a, vty.element, node.coord) for a in args]
            return self.builder.call(name, args, vty)

        if name in _UNARY_MATH:
            (a,) = args
            a = self._to_floatish(a, node.coord)
            return self.builder.call(name, [a], a.type)
        if name in _BINARY_MATH:
            a, b = args
            a = self._to_floatish(a, node.coord)
            b = self.coerce(b, a.type, node.coord)
            return self.builder.call(name, [a, b], a.type)
        if name in _TERNARY_MATH:
            a, b, c = args
            a = self._to_floatish(a, node.coord)
            b = self.coerce(b, a.type, node.coord)
            c = self.coerce(c, a.type, node.coord)
            return self.builder.call(name, [a, b, c], a.type)
        if name in _INT_BUILTINS:
            if name == "abs":
                (a,) = args
                return self.builder.call(name, [a], a.type)
            a, b = args[0], args[1]
            a, b = self.usual_arith(a, b, node.coord)
            rest = [self.coerce(x, a.type, node.coord) for x in args[2:]]
            return self.builder.call(name, [a, b, *rest], a.type)
        if name == "dot":
            a, b = args
            if not isinstance(a.type, VectorType):
                raise FrontendError("dot() needs vectors", node.coord)
            return self.builder.call(name, [a, b], a.type.element)

        raise UnsupportedFeature(f"call to unknown function {name!r}", node.coord)

    def _vector_mem(self, ptr: Value, off: Value, n: int, coord, store_value: Optional[Value]) -> Value:
        if not isinstance(ptr.type, PointerType) or not isinstance(
            ptr.type.pointee, (IntType, FloatType)
        ):
            raise FrontendError("vload/vstore need a scalar element pointer", coord)
        vty = VectorType(ptr.type.pointee, n)
        vptr = self.builder.cast(
            CastKind.BITCAST, ptr, PointerType(vty, ptr.type.addrspace)
        )
        elem_ptr = self.builder.gep(vptr, [off])
        if store_value is None:
            return self.builder.load(elem_ptr)
        if store_value.type != vty:
            raise FrontendError(
                f"vstore{n} value has type {store_value.type}, expected {vty}", coord
            )
        return self.builder.store(store_value, elem_ptr)

    def _to_floatish(self, v: Value, coord) -> Value:
        if isinstance(v.type, (FloatType, VectorType)):
            return v
        return self.coerce(v, FLOAT, coord)

    # -- conversions -------------------------------------------------------------
    def promote(self, v: Value) -> Value:
        """Integer promotion: sub-int types widen to i32."""
        if isinstance(v.type, IntType) and v.type.bits < 32:
            return self.coerce(v, I32 if v.type.signed else U32, None)
        if isinstance(v.type, BoolType):
            return self.coerce(v, I32, None)
        return v

    def to_bool(self, v: Value, coord) -> Value:
        if isinstance(v.type, BoolType):
            return v
        if isinstance(v.type, IntType):
            return self.builder.icmp(CmpPred.NE, v, Constant(v.type, 0))
        if isinstance(v.type, FloatType):
            return self.builder.fcmp(CmpPred.ONE, v, Constant(v.type, 0.0))
        raise FrontendError(f"cannot convert {v.type} to bool", coord)

    _RANKS = {U64: 8, I64: 7, U32: 6, I32: 5}

    def usual_arith(self, a: Value, b: Value, coord) -> Tuple[Value, Value]:
        """C usual arithmetic conversions (restricted to our types)."""
        if isinstance(a.type, VectorType) or isinstance(b.type, VectorType):
            if isinstance(a.type, VectorType) and isinstance(b.type, VectorType):
                if a.type != b.type:
                    raise FrontendError(
                        f"vector type mismatch {a.type} vs {b.type}", coord
                    )
                return a, b
            # scalar op vector -> splat
            if isinstance(a.type, VectorType):
                b = self.splat(self.coerce(b, a.type.element, coord), a.type)
            else:
                a = self.splat(self.coerce(a, b.type.element, coord), b.type)
            return a, b
        a, b = self.promote(a), self.promote(b)
        if a.type == b.type:
            return a, b
        if isinstance(a.type, FloatType) or isinstance(b.type, FloatType):
            target = a.type if isinstance(a.type, FloatType) else b.type
            if isinstance(a.type, FloatType) and isinstance(b.type, FloatType):
                target = a.type if a.type.bits >= b.type.bits else b.type
            return self.coerce(a, target, coord), self.coerce(b, target, coord)
        # both integers
        ra = self._RANKS.get(a.type, 0)
        rb = self._RANKS.get(b.type, 0)
        target = a.type if ra >= rb else b.type
        return self.coerce(a, target, coord), self.coerce(b, target, coord)

    def splat(self, scalar: Value, vty: VectorType) -> Value:
        return self.builder.call("splat", [scalar], vty)

    def coerce(self, v: Value, to_type: Type, coord, explicit: bool = False) -> Value:
        """Convert ``v`` to ``to_type``, emitting a cast if needed."""
        ty = v.type
        if ty == to_type:
            return v
        if isinstance(v, Constant) and isinstance(to_type, (IntType, FloatType)):
            # constant-fold conversions so index trees keep literal leaves
            return Constant(to_type, v.value)
        if isinstance(ty, BoolType) and isinstance(to_type, IntType):
            return self.builder.cast(CastKind.BOOL_TO_INT, v, to_type)
        if isinstance(ty, IntType) and isinstance(to_type, BoolType):
            return self.to_bool(v, coord)
        if isinstance(ty, IntType) and isinstance(to_type, IntType):
            if ty.bits == to_type.bits:
                return self.builder.cast(CastKind.BITCAST, v, to_type)
            if ty.bits > to_type.bits:
                return self.builder.cast(CastKind.TRUNC, v, to_type)
            kind = CastKind.SEXT if ty.signed else CastKind.ZEXT
            return self.builder.cast(kind, v, to_type)
        if isinstance(ty, IntType) and isinstance(to_type, FloatType):
            kind = CastKind.SITOFP if ty.signed else CastKind.UITOFP
            return self.builder.cast(kind, v, to_type)
        if isinstance(ty, FloatType) and isinstance(to_type, IntType):
            kind = CastKind.FPTOSI if to_type.signed else CastKind.FPTOUI
            return self.builder.cast(kind, v, to_type)
        if isinstance(ty, FloatType) and isinstance(to_type, FloatType):
            kind = CastKind.FPEXT if to_type.bits > ty.bits else CastKind.FPTRUNC
            return self.builder.cast(kind, v, to_type)
        if isinstance(ty, PointerType) and isinstance(to_type, PointerType):
            # address space is preserved from the source pointer: a cast
            # never moves data between memory spaces.
            target = PointerType(to_type.pointee, ty.addrspace)
            return self.builder.cast(CastKind.BITCAST, v, target)
        if isinstance(ty, VectorType) and isinstance(to_type, VectorType):
            if ty.count == to_type.count:
                return self.builder.call("convert", [v], to_type)
        raise FrontendError(f"cannot convert {ty} to {to_type}", coord)

    def binary(self, op: str, a: Value, b: Value, coord) -> Value:
        # pointer arithmetic
        if isinstance(a.type, PointerType) and isinstance(b.type, IntType):
            if op == "+":
                return self.builder.gep(a, [b])
            if op == "-":
                zero = Constant(b.type, 0)
                neg = self.builder.binop(Opcode.SUB, zero, b)
                return self.builder.gep(a, [neg])
        if isinstance(b.type, PointerType) and isinstance(a.type, IntType) and op == "+":
            return self.builder.gep(b, [a])

        if op in ("==", "!=", "<", "<=", ">", ">="):
            a, b = self.usual_arith(a, b, coord)
            if isinstance(a.type, FloatType):
                pred = {
                    "==": CmpPred.OEQ, "!=": CmpPred.ONE, "<": CmpPred.OLT,
                    "<=": CmpPred.OLE, ">": CmpPred.OGT, ">=": CmpPred.OGE,
                }[op]
                return self.builder.fcmp(pred, a, b)
            signed = not (isinstance(a.type, IntType) and not a.type.signed)
            pred = {
                "==": CmpPred.EQ,
                "!=": CmpPred.NE,
                "<": CmpPred.SLT if signed else CmpPred.ULT,
                "<=": CmpPred.SLE if signed else CmpPred.ULE,
                ">": CmpPred.SGT if signed else CmpPred.UGT,
                ">=": CmpPred.SGE if signed else CmpPred.UGE,
            }[op]
            return self.builder.icmp(pred, a, b)

        a, b = self.usual_arith(a, b, coord)
        elem = a.type.element if isinstance(a.type, VectorType) else a.type
        is_f = isinstance(elem, FloatType)
        if is_f:
            opc = {"+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL, "/": Opcode.FDIV}.get(op)
            if opc is None:
                raise FrontendError(f"operator {op} on float operands", coord)
            return self.builder.binop(opc, a, b)
        signed = not (isinstance(elem, IntType) and not elem.signed)
        table = {
            "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
            "/": Opcode.SDIV if signed else Opcode.UDIV,
            "%": Opcode.SREM if signed else Opcode.UREM,
            "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
            "<<": Opcode.SHL, ">>": Opcode.ASHR if signed else Opcode.LSHR,
        }
        if op not in table:
            raise FrontendError(f"unsupported operator {op}", coord)
        return self.builder.binop(table[op], a, b)


def _assigned_names(body: c_ast.Node) -> set:
    """Names assigned anywhere in a function body (params needing slots)."""
    names = set()

    class V(c_ast.NodeVisitor):
        def visit_Assignment(self, node: c_ast.Assignment) -> None:
            tgt = node.lvalue
            if isinstance(tgt, c_ast.ID):
                names.add(tgt.name)
            self.generic_visit(node)

        def visit_UnaryOp(self, node: c_ast.UnaryOp) -> None:
            if node.op in ("p++", "++", "p--", "--") and isinstance(node.expr, c_ast.ID):
                names.add(node.expr.name)
            self.generic_visit(node)

    V().visit(body)
    return names


def lower_translation_unit(
    ast: c_ast.FileAST, kernel_names: Sequence[str], module_name: str = "kernel_module"
) -> Module:
    module = Module(module_name)
    for ext in ast.ext:
        if isinstance(ext, c_ast.FuncDef):
            FunctionLowering(module, ext, kernel_names).run()
        elif isinstance(ext, c_ast.Typedef):
            continue  # prelude typedefs
        elif isinstance(ext, c_ast.Decl):
            continue  # forward declarations / extern decls
        else:
            raise UnsupportedFeature(
                f"top-level {type(ext).__name__}", getattr(ext, "coord", None)
            )
    return module
