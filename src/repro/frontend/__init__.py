"""OpenCL-C (subset) frontend: kernel source -> repro IR.

The pipeline mirrors the paper's Figure 9 (Clang -> SPIR): our
:func:`compile_kernel` plays the role of Clang producing SPIR, after which
the Grover pass (``repro.core``) analyses and rewrites the IR, and the
runtime (``repro.runtime``) executes it.

Supported language subset (everything the 11 benchmark kernels need):

* scalar types: ``char uchar short ushort int uint long ulong float double
  size_t bool``;  vector typedefs ``float2 float4 int4`` etc. with
  ``.x/.y/.z/.w`` member access;
* address-space qualifiers ``__global __local __constant __private`` on
  pointer parameters and on in-kernel array declarations;
* expressions: full C arithmetic/logic/comparison/ternary, array
  subscripts (multi-dimensional), pointer arithmetic, casts;
* statements: declarations with initialisers, assignments (incl.
  compound), ``if/else``, ``for``, ``while``, ``do``, ``break``,
  ``continue``, ``return``;
* object-like ``#define`` macros, ``#ifdef/#ifndef/#else/#endif``,
  host-supplied ``-D``-style definitions via the ``defines`` argument;
* OpenCL builtins: work-item functions, ``barrier``, a math subset,
  ``vload2/4``, ``vstore2/4``, ``make_floatN``, ``mad``, ``clamp`` etc.
"""

from repro.frontend.errors import FrontendError
from repro.frontend.compile import (
    clear_compile_cache,
    compile_kernel,
    compile_source,
)

__all__ = [
    "FrontendError",
    "clear_compile_cache",
    "compile_kernel",
    "compile_source",
]
