"""Top-level frontend driver: OpenCL C source -> IR module / kernel.

Compilation results are memoized in a small LRU cache keyed on
``(source, defines, module_name, optimize)``: benchmarks and
experiments re-compile the same handful of kernels hundreds of times,
and re-parsing dominates their setup cost.  Because downstream passes
(notably :class:`repro.core.GroverPass`) mutate IR in place, every
cache hit hands out a ``deepcopy`` of the cached module — callers own
their module, exactly as if it had been compiled fresh.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from pycparser import CParser
from pycparser.c_parser import ParseError

from repro.frontend.errors import FrontendError
from repro.frontend.lower import lower_translation_unit
from repro.frontend.preprocess import preprocess
from repro.ir.function import Function, Module
from repro.ir.passes import run_default_passes
from repro.ir.verifier import verify_module

_COMPILE_CACHE_SIZE = 32
_compile_cache: "OrderedDict[Tuple, Module]" = OrderedDict()


def clear_compile_cache() -> None:
    """Drop all memoized modules (mainly for tests and memory pressure)."""
    _compile_cache.clear()


def compile_source(
    source: str,
    defines: Optional[Dict[str, object]] = None,
    module_name: str = "kernel_module",
    optimize: bool = True,
    cache: bool = True,
) -> Module:
    """Compile OpenCL C source text into a verified IR module.

    ``cache=False`` bypasses the compile cache (used by benchmarks to
    measure cold compiles).
    """
    key = (
        source,
        tuple(sorted((str(k), str(v)) for k, v in (defines or {}).items())),
        module_name,
        optimize,
    )
    if cache:
        hit = _compile_cache.get(key)
        if hit is not None:
            _compile_cache.move_to_end(key)
            return copy.deepcopy(hit)
    pre = preprocess(source, defines)
    parser = CParser()
    try:
        ast = parser.parse(pre.text, filename=module_name)
    except ParseError as exc:
        raise FrontendError(f"parse error: {exc}") from exc
    module = lower_translation_unit(ast, pre.kernel_names, module_name)
    run_default_passes(module)
    if optimize:
        # the vendor-compiler stage of the paper's Fig. 9 pipeline
        from repro.core.optimize import vendor_optimize

        for fn in module:
            vendor_optimize(fn)
    verify_module(module)
    if cache:
        _compile_cache[key] = copy.deepcopy(module)
        while len(_compile_cache) > _COMPILE_CACHE_SIZE:
            _compile_cache.popitem(last=False)
    return module


def compile_kernel(
    source: str,
    name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    optimize: bool = True,
    cache: bool = True,
) -> Function:
    """Compile source and return one kernel (the only one, or by name)."""
    return compile_source(source, defines, optimize=optimize, cache=cache).kernel(name)
