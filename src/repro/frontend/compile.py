"""Top-level frontend driver: OpenCL C source -> IR module / kernel.

These are thin shims over the session layer: the actual compile
pipeline — preprocess, parse, lower, the default pass pipeline, the
vendor-optimise stage, verification — lives in
:meth:`repro.session.Session.compile_source`, which also owns the LRU
compile cache (keyed on ``(source, defines, module_name, optimize)``)
and emits ``compile_start`` / ``compile_cache_hit`` /
``compile_cache_miss`` / ``compile_end`` events.

Because downstream passes (notably :class:`repro.core.GroverPass`)
mutate IR in place, every cache hit hands out a ``deepcopy`` of the
cached module — callers own their module, exactly as if it had been
compiled fresh.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function, Module

#: default size of a session's LRU compile cache (see the
#: ``compile_cache_size`` / ``REPRO_COMPILE_CACHE_SIZE`` config variable)
_COMPILE_CACHE_SIZE = 32


def __getattr__(name: str):
    # legacy introspection point: the module-level ``_compile_cache``
    # now lives on the current session
    if name == "_compile_cache":
        from repro.session import current_session

        return current_session()._compile_cache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def clear_compile_cache() -> None:
    """Drop all memoized modules (mainly for tests and memory pressure)."""
    from repro.session import current_session

    current_session().clear_compile_cache()


def compile_source(
    source: str,
    defines: Optional[Dict[str, object]] = None,
    module_name: str = "kernel_module",
    optimize: bool = True,
    cache: bool = True,
) -> Module:
    """Compile OpenCL C source text into a verified IR module.

    ``cache=False`` bypasses the compile cache (used by benchmarks to
    measure cold compiles).
    """
    from repro.session import current_session

    return current_session().compile_source(
        source, defines, module_name=module_name, optimize=optimize, cache=cache
    )


def compile_kernel(
    source: str,
    name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    optimize: bool = True,
    cache: bool = True,
) -> Function:
    """Compile source and return one kernel (the only one, or by name)."""
    return compile_source(source, defines, optimize=optimize, cache=cache).kernel(name)
