"""Top-level frontend driver: OpenCL C source -> IR module / kernel."""

from __future__ import annotations

from typing import Dict, Optional

from pycparser import CParser
from pycparser.c_parser import ParseError

from repro.frontend.errors import FrontendError
from repro.frontend.lower import lower_translation_unit
from repro.frontend.preprocess import preprocess
from repro.ir.function import Function, Module
from repro.ir.passes import run_default_passes
from repro.ir.verifier import verify_module


def compile_source(
    source: str,
    defines: Optional[Dict[str, object]] = None,
    module_name: str = "kernel_module",
    optimize: bool = True,
) -> Module:
    """Compile OpenCL C source text into a verified IR module."""
    pre = preprocess(source, defines)
    parser = CParser()
    try:
        ast = parser.parse(pre.text, filename=module_name)
    except ParseError as exc:
        raise FrontendError(f"parse error: {exc}") from exc
    module = lower_translation_unit(ast, pre.kernel_names, module_name)
    run_default_passes(module)
    if optimize:
        # the vendor-compiler stage of the paper's Fig. 9 pipeline
        from repro.core.optimize import vendor_optimize

        for fn in module:
            vendor_optimize(fn)
    verify_module(module)
    return module


def compile_kernel(
    source: str,
    name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    optimize: bool = True,
) -> Function:
    """Compile source and return one kernel (the only one, or by name)."""
    return compile_source(source, defines, optimize=optimize).kernel(name)
