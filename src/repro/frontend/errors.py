"""Frontend diagnostics."""

from __future__ import annotations

from typing import Optional


class FrontendError(Exception):
    """A diagnostic raised while preprocessing, parsing or lowering."""

    def __init__(self, message: str, coord: Optional[object] = None) -> None:
        self.coord = coord
        if coord is not None:
            message = f"{coord}: {message}"
        super().__init__(message)


class UnsupportedFeature(FrontendError):
    """A construct outside the supported OpenCL-C subset."""
