"""Static race & barrier-divergence analyzer (the second Grover arbiter).

The package checks, independently of :mod:`repro.core.grover`, whether a
kernel's ``__local``/``__global`` accesses are free of intra-group data
races and barrier divergence, and whether every local byte a kernel
reads was staged from global memory — the exact properties Grover's
reversibility argument rests on.  Static affine analysis decides most
access pairs; a dynamic replay of the interpreter's traces resolves the
rest.  See DESIGN.md §11.
"""

from repro.analysis.divergence import (
    analyze_divergence,
    find_divergent_barriers,
    uniform_analysis,
)
from repro.analysis.driver import (
    DifferentialResult,
    analyze_app,
    analyze_kernel,
    analyze_source,
    differential_check,
)
from repro.analysis.dynamic import apply_replay, replay_trace
from repro.analysis.model import (
    DEFERRAL_CATEGORIES,
    LEGALITY_KINDS,
    RACE_KINDS,
    AnalysisReport,
    AnalysisUndecidedWarning,
    Deferral,
    Finding,
    RaceDetected,
)
from repro.analysis.races import analyze_races_static, check_staging, collect_accesses

__all__ = [
    "AnalysisReport",
    "Finding",
    "Deferral",
    "RaceDetected",
    "AnalysisUndecidedWarning",
    "RACE_KINDS",
    "LEGALITY_KINDS",
    "DEFERRAL_CATEGORIES",
    "analyze_kernel",
    "analyze_app",
    "analyze_source",
    "differential_check",
    "DifferentialResult",
    "analyze_races_static",
    "check_staging",
    "collect_accesses",
    "analyze_divergence",
    "find_divergent_barriers",
    "uniform_analysis",
    "apply_replay",
    "replay_trace",
]
