"""Static barrier-divergence analysis.

OpenCL requires that every work-item of a work-group reach each
``barrier`` the same number of times; a barrier that is
control-dependent on a *thread-id-dependent* branch violates that (the
interpreter catches the violation at runtime —
:class:`~repro.runtime.errors.BarrierDivergenceError`; this module
proves it before any launch).

The analysis has two halves:

* **Uniformity**: a fixed point classifying every IR value as uniform
  (identical across the work-items of a group: constants, arguments,
  ``get_group_id``/``get_local_size``/... , and pure ops over uniform
  inputs) or varying (``get_local_id``/``get_global_id``, loads from
  memory, and anything derived from them).  Stack slots are uniform only
  if every store to them stores a uniform value *from a uniformly
  executed block* — the mutual recursion with control flow is resolved
  by iterating both halves to a joint fixed point.
* **Control dependence**: block ``B`` executes non-uniformly if some
  varying conditional branch ``X`` reaches ``B`` and ``B`` does not
  post-dominate ``X``'s block (work-items that take the other edge may
  never arrive).  A ``barrier`` in such a block is a divergence finding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.cfg import post_dominators
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    Call,
    CondBr,
    Instruction,
    Load,
    Store,
    is_barrier,
)

from repro.analysis.model import AnalysisReport, Finding

__all__ = ["uniform_analysis", "find_divergent_barriers", "analyze_divergence"]

#: builtins whose result differs between work-items of one group
_VARYING_CALLS = {"get_local_id", "get_global_id"}
#: builtins whose result is identical across a work-group
_UNIFORM_CALLS = {
    "get_group_id",
    "get_local_size",
    "get_global_size",
    "get_num_groups",
    "get_work_dim",
    "get_global_offset",
}


def _reachable(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """blocks reachable from each block through one or more CFG edges."""
    succ = {bb: list(bb.successors()) for bb in fn.blocks}
    out: Dict[BasicBlock, Set[BasicBlock]] = {}
    for start in fn.blocks:
        seen: Set[BasicBlock] = set()
        stack = list(succ[start])
        while stack:
            bb = stack.pop()
            if bb in seen:
                continue
            seen.add(bb)
            stack.extend(succ[bb])
        out[start] = seen
    return out


def uniform_analysis(
    fn: Function,
) -> Tuple[Set[Instruction], Dict[BasicBlock, Optional[Instruction]]]:
    """Joint fixed point of value uniformity and block uniformity.

    Returns ``(varying_values, nonuniform_blocks)`` where
    ``nonuniform_blocks`` maps each non-uniformly-executed block to a
    witness: the varying conditional branch it is control-dependent on.
    """
    pdom = post_dominators(fn)
    reach = _reachable(fn)
    slot_stores: Dict[Alloca, List[Store]] = {}
    for inst in fn.instructions():
        if isinstance(inst, Store) and isinstance(inst.ptr, Alloca):
            slot_stores.setdefault(inst.ptr, []).append(inst)

    varying: Set[Instruction] = set()
    nonuniform: Dict[BasicBlock, Optional[Instruction]] = {}

    def value_varying(v) -> bool:
        return isinstance(v, Instruction) and v in varying

    changed = True
    while changed:
        changed = False
        # control half: which blocks execute non-uniformly right now?
        for bb in fn.blocks:
            term = bb.terminator
            if not isinstance(term, CondBr) or not value_varying(term.cond):
                continue
            for target in reach[bb]:
                if target not in pdom[bb] and target not in nonuniform:
                    nonuniform[target] = term
                    changed = True
        # data half
        for inst in fn.instructions():
            if inst in varying:
                continue
            if isinstance(inst, Call):
                if inst.callee in _VARYING_CALLS:
                    v = True
                elif inst.callee in _UNIFORM_CALLS or is_barrier(inst):
                    v = False
                else:  # math builtins etc.: uniform iff inputs are
                    v = any(value_varying(a) for a in inst.operands)
            elif isinstance(inst, Load):
                if isinstance(inst.ptr, Alloca):
                    stores = slot_stores.get(inst.ptr, [])
                    v = any(
                        value_varying(st.value) or st.parent in nonuniform
                        for st in stores
                    )
                else:
                    v = True  # data loaded from memory may differ per lane
            elif isinstance(inst, Alloca):
                v = False
            else:
                v = any(value_varying(op) for op in inst.operands)
            if v:
                varying.add(inst)
                changed = True
    return varying, nonuniform


def find_divergent_barriers(fn: Function) -> List[Tuple[Call, Instruction]]:
    """(barrier, witness varying branch) pairs, in program order."""
    _, nonuniform = uniform_analysis(fn)
    out: List[Tuple[Call, Instruction]] = []
    for bb in fn.blocks:
        witness = nonuniform.get(bb)
        if witness is None:
            continue
        for inst in bb.instructions:
            if is_barrier(inst):
                out.append((inst, witness))
    return out


def analyze_divergence(fn: Function, report: Optional[AnalysisReport] = None) -> AnalysisReport:
    report = report or AnalysisReport(fn.name)
    for barrier, branch in find_divergent_barriers(fn):
        assert barrier.parent is not None and branch.parent is not None
        report.add(
            Finding(
                kind="barrier-divergence",
                space="cfg",
                obj=fn.name,
                detail=(
                    f"barrier %{barrier.id} in block {barrier.parent.name!r} is "
                    f"control-dependent on the thread-id-dependent branch in "
                    f"block {branch.parent.name!r}; work-items taking the other "
                    "edge never reach it"
                ),
                decided_by="static",
                a_inst=barrier.id,
                b_inst=branch.id,
            )
        )
    return report
