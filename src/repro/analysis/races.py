"""Static intra-group data-race analysis over the affine index machinery.

Two work-items of one work-group race when they touch overlapping bytes
of the same ``__local`` or ``__global`` object, at least one access is a
store, and no barrier separates the accesses.  This module decides that
question *statically* for the kernel class the paper targets:

1. The kernel body is cut into **barrier segments** (a block is split at
   every ``barrier`` call).  Two segments that are connected by plain
   control-flow edges — never crossing a barrier — can execute
   concurrently for different work-items, so they form one **phase
   region** (connected components of the segment graph, undirected,
   because work-items of a group proceed independently between
   barriers).
2. Every local/global access is abstracted as an exact byte-offset
   :class:`~repro.core.linexpr.LinExpr` using the very
   :class:`~repro.core.affine.AffineContext` the Grover solver uses
   (Equation 2 of the paper).
3. For each pair of same-region, same-object accesses with at least one
   store, the offsets are split into a per-work-item part (terms in the
   local id), a group-uniform part (group id / sizes / scalar
   arguments) and the rest.  When the group-uniform parts cancel and
   the per-work-item parts have known coefficients, the pair is decided
   *exactly* by enumerating the work-group index box (bounded, so this
   is a decision procedure, not a heuristic).  Anything else —
   loop-counter ("slot") indices, opaque values, symbolic strides — is
   reported *undecided* and left to the dynamic trace replay
   (:mod:`repro.analysis.dynamic`).

Distinct pointer *arguments* are assumed not to alias (the OpenCL
kernels of the paper never pass the same buffer twice); the dynamic
replay works on concrete buffer ids and needs no such assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import lcm, prod
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.affine import AffineContext
from repro.core.candidates import strip_casts
from repro.core.linexpr import ONE, LinExpr, Symbol, lid, render_symbol, wid
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    GEP,
    Cast,
    Instruction,
    Load,
    Store,
    is_barrier,
)
from repro.ir.types import AddressSpace
from repro.ir.values import Value

from repro.analysis.model import AnalysisReport, Deferral, Finding

__all__ = [
    "Access",
    "PairDecision",
    "collect_accesses",
    "phase_regions",
    "decide_pair",
    "analyze_races_static",
    "check_staging",
]

#: largest work-group index box the exact enumeration will walk
BOX_LIMIT = 4096

_SPACE_NAMES = {AddressSpace.LOCAL: "local", AddressSpace.GLOBAL: "global"}


# ---------------------------------------------------------------------------
# phase regions
# ---------------------------------------------------------------------------


def phase_regions(fn: Function) -> Tuple[Dict[Instruction, int], int]:
    """Map every non-barrier instruction to its phase-region id.

    Returns ``(region_of_inst, barrier_count)``.  Region ids are dense
    and deterministic (ordered by first appearance in block order).
    """
    # segment nodes: (block, k) = the k-th barrier-free run of the block
    seg_of_inst: Dict[Instruction, Tuple[BasicBlock, int]] = {}
    last_seg: Dict[BasicBlock, int] = {}
    barriers = 0
    for bb in fn.blocks:
        k = 0
        for inst in bb.instructions:
            if is_barrier(inst):
                k += 1
                barriers += 1
            else:
                seg_of_inst[inst] = (bb, k)
        last_seg[bb] = k

    # union-find over segments; plain CFG edges connect the last segment
    # of a block to the first segment of each successor
    parent: Dict[Tuple[BasicBlock, int], Tuple[BasicBlock, int]] = {}

    def find(x):
        parent.setdefault(x, x)
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for bb in fn.blocks:
        for k in range(last_seg[bb] + 1):
            find((bb, k))
        for succ in bb.successors():
            union((bb, last_seg[bb]), (succ, 0))

    region_ids: Dict[Tuple[BasicBlock, int], int] = {}
    region_of_inst: Dict[Instruction, int] = {}
    for bb in fn.blocks:
        for inst in bb.instructions:
            seg = seg_of_inst.get(inst)
            if seg is None:
                continue
            root = find(seg)
            region_of_inst[inst] = region_ids.setdefault(root, len(region_ids))
    return region_of_inst, barriers


# ---------------------------------------------------------------------------
# access collection
# ---------------------------------------------------------------------------


@dataclass
class Access:
    """One static local/global memory access site."""

    inst: Instruction
    is_store: bool
    space: AddressSpace
    base: Optional[Value]
    offset: LinExpr          # byte offset from the base object
    elem_size: int
    region: int

    @property
    def obj_name(self) -> str:
        if self.base is None:
            return "?"
        return getattr(self.base, "name", None) or str(self.base)

    def describe(self) -> str:
        verb = "store" if self.is_store else "load"
        return (
            f"{verb} {self.obj_name}[byte {self.offset.render()}] "
            f"(%{self.inst.id}, {self.elem_size}B)"
        )


def _pointer_offset(ctx: AffineContext, ptr: Value) -> Tuple[Optional[Value], LinExpr]:
    """Root object and exact byte offset of a pointer value."""
    off = LinExpr.zero()
    for _ in range(64):
        if isinstance(ptr, GEP):
            for idx, stride in zip(ptr.indices, ptr.strides()):
                off = off + ctx.to_linexpr(idx).scale(stride)
            ptr = ptr.base
        elif isinstance(ptr, Cast):
            ptr = ptr.value
        else:
            return ptr, off
    return None, off


def collect_accesses(fn: Function, ctx: Optional[AffineContext] = None) -> List[Access]:
    """Every ``__local``/``__global`` load and store of the kernel.

    ``__constant`` and ``__private`` accesses cannot race (read-only /
    per-work-item) and are skipped.
    """
    ctx = ctx or AffineContext(fn)
    regions, _ = phase_regions(fn)
    out: List[Access] = []
    for bb in fn.blocks:
        for inst in bb.instructions:
            if isinstance(inst, Load):
                space, elem = inst.addrspace, inst.type.size
            elif isinstance(inst, Store):
                space, elem = inst.addrspace, inst.value.type.size
            else:
                continue
            if space not in (AddressSpace.LOCAL, AddressSpace.GLOBAL):
                continue
            base, off = _pointer_offset(ctx, inst.ptr)
            out.append(
                Access(
                    inst=inst,
                    is_store=isinstance(inst, Store),
                    space=space,
                    base=base,
                    offset=off,
                    elem_size=int(elem),
                    region=regions[inst],
                )
            )
    return out


# ---------------------------------------------------------------------------
# pair decision
# ---------------------------------------------------------------------------


def _substitute(expr: LinExpr, local_size: Optional[Sequence[int]]) -> LinExpr:
    """Expand ``gid_d -> wid_d * L_d + lid_d`` and fold known sizes."""
    if local_size is None:
        return expr
    ndim = len(local_size)
    out: Dict[Symbol, Fraction] = {}

    def add(sym: Symbol, c: Fraction) -> None:
        out[sym] = out.get(sym, Fraction(0)) + c

    for sym, c in expr.terms.items():
        kind = sym[0]
        if kind == "gid":
            d = sym[1]
            if d < ndim:
                add(lid(d), c)
                add(wid(d), c * local_size[d])
            # gid_d == 0 for d >= ndim
        elif kind == "lsize":
            d = sym[1]
            add(ONE, c * (local_size[d] if d < ndim else 1))
        elif kind in ("lid", "wid"):
            if sym[1] < ndim:
                add(sym, c)
            # lid_d == wid_d == 0 for d >= ndim
        else:
            add(sym, c)
    return LinExpr(out)


def _sym_class(sym: Symbol) -> str:
    """'thread' (varies per work-item, known coefficient), 'shared'
    (group-uniform), or 'unknown' (slots, opaques, products with ids)."""
    kind = sym[0]
    if kind == "lid":
        return "thread"
    if kind in ("wid", "arg", "lsize"):
        return "shared"
    if kind == "prod":
        parts = {_sym_class(s) for s in sym[1:]}
        return "shared" if parts == {"shared"} else "unknown"
    return "unknown"  # gid (no geometry), slot, opaque


def _split(expr: LinExpr) -> Tuple[Dict[int, Fraction], Dict[Symbol, Fraction], Fraction, List[Symbol]]:
    """Split into (lid-dim -> coeff, shared-sym -> coeff, const, unknowns)."""
    thread: Dict[int, Fraction] = {}
    shared: Dict[Symbol, Fraction] = {}
    const = Fraction(0)
    unknown: List[Symbol] = []
    for sym, c in expr.terms.items():
        if sym == ONE:
            const += c
            continue
        cls = _sym_class(sym)
        if cls == "thread":
            thread[sym[1]] = thread.get(sym[1], Fraction(0)) + c
        elif cls == "shared":
            shared[sym] = shared.get(sym, Fraction(0)) + c
        else:
            unknown.append(sym)
    return thread, shared, const, unknown


@dataclass(frozen=True)
class PairDecision:
    status: str  # 'safe' | 'race' | 'undecided'
    reason: str
    #: for 'undecided': one of DEFERRAL_CATEGORIES (see analysis.model)
    category: str = ""


def _lane_offsets(thread: Dict[int, Fraction], scale: int, local_size: Sequence[int]) -> np.ndarray:
    grids = np.indices(tuple(local_size)).reshape(len(local_size), -1).astype(np.int64)
    out = np.zeros(grids.shape[1], dtype=np.int64)
    for d, c in thread.items():
        out += int(c * scale) * grids[d]
    return out


def decide_pair(a: Access, b: Access, local_size: Optional[Sequence[int]]) -> PairDecision:
    """Decide whether accesses ``a`` and ``b`` (same region, same base,
    at least one store) can touch overlapping bytes from *different*
    work-items of one group."""
    off_a = _substitute(a.offset, local_size)
    off_b = _substitute(b.offset, local_size)
    ta, sa, ca, ua = _split(off_a)
    tb, sb, cb, ub = _split(off_b)
    if ua or ub:
        syms = ", ".join(sorted({render_symbol(s) for s in ua + ub}))
        # a gid term is affine; it only stays unknown because no geometry
        # was given to expand it — report that as such, not as non-affine
        if local_size is None and all(s[0] == "gid" for s in ua + ub):
            return PairDecision(
                "undecided",
                f"no work-group geometry to expand ({syms})",
                "no-geometry",
            )
        return PairDecision(
            "undecided", f"non-affine index terms ({syms})", "non-affine"
        )
    if local_size is None:
        return PairDecision("undecided", "no work-group geometry", "no-geometry")

    # group-uniform parts must cancel for a decidable constant delta
    delta: Dict[Symbol, Fraction] = dict(sa)
    for sym, c in sb.items():
        delta[sym] = delta.get(sym, Fraction(0)) - c
    leftover = {s: c for s, c in delta.items() if c != 0}
    if leftover:
        syms = ", ".join(sorted(render_symbol(s) for s in leftover))
        return PairDecision(
            "undecided",
            f"offset delta depends on group-uniform value(s) {syms}",
            "group-uniform-delta",
        )

    n = prod(int(s) for s in local_size)
    if n > BOX_LIMIT:
        return PairDecision(
            "undecided", f"work-group box {n} exceeds {BOX_LIMIT}", "box-limit"
        )

    # exact enumeration of the index box, scaled to clear denominators
    dens = [c.denominator for c in ta.values()] + [c.denominator for c in tb.values()]
    dens += [(ca - cb).denominator]
    scale = lcm(*dens) if dens else 1
    va = _lane_offsets(ta, scale, local_size)
    vb = _lane_offsets(tb, scale, local_size) + int((cb - ca) * scale)
    size_a = a.elem_size * scale
    size_b = b.elem_size * scale
    overlap = (va[:, None] < vb[None, :] + size_b) & (vb[None, :] < va[:, None] + size_a)
    np.fill_diagonal(overlap, False)  # same work-item: program order, no race
    if overlap.any():
        i, j = np.argwhere(overlap)[0]
        return PairDecision(
            "race",
            f"work-items {int(i)} and {int(j)} overlap at byte "
            f"{int(va[i])}/{scale} of {a.obj_name!r}",
        )
    return PairDecision("safe", "index maps disjoint across work-items")


# ---------------------------------------------------------------------------
# whole-kernel static analysis
# ---------------------------------------------------------------------------


def _pair_key(a: Access, b: Access) -> tuple:
    return tuple(sorted((a.inst.id, b.inst.id)))


def analyze_races_static(
    fn: Function,
    local_size: Optional[Sequence[int]] = None,
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    """Run the static race analysis; undecided pairs are recorded on the
    report (``pairs_undecided``) for the dynamic replay to resolve."""
    from repro.analysis.divergence import uniform_analysis

    report = report or AnalysisReport(
        fn.name, tuple(local_size) if local_size else None
    )
    accesses = collect_accesses(fn)
    _, report.barriers = phase_regions(fn)
    # Accesses in non-uniformly-executed blocks (e.g. guarded halo
    # stores) run only for a lane subset the index box cannot model;
    # deciding them statically would report phantom overlaps, so their
    # pairs go to the dynamic replay instead.
    _, nonuniform = uniform_analysis(fn)

    def guarded(acc: Access) -> bool:
        return acc.inst.parent in nonuniform

    groups: Dict[tuple, List[Access]] = {}
    for acc in accesses:
        # unknown-base pointers (never produced by the frontend) all fall
        # into one conservative bucket so they still pair up
        key = (acc.space, id(acc.base) if acc.base is not None else None, acc.region)
        groups.setdefault(key, []).append(acc)

    for (_, _, _), members in sorted(
        groups.items(), key=lambda kv: min(a.inst.id for a in kv[1])
    ):
        for i, a in enumerate(members):
            for b in members[i:]:
                if not (a.is_store or b.is_store):
                    continue
                if a is b and not a.is_store:
                    continue
                if guarded(a) or guarded(b):
                    decision = PairDecision(
                        "undecided",
                        "access under a thread-id-dependent guard "
                        "(lane subset unknown statically)",
                        "guarded",
                    )
                else:
                    decision = decide_pair(a, b, local_size)
                if decision.status == "safe":
                    report.pairs_static += 1
                elif decision.status == "race":
                    report.pairs_static += 1
                    kind = "race-ww" if (a.is_store and b.is_store) else "race-rw"
                    report.add(
                        Finding(
                            kind=kind,
                            space=_SPACE_NAMES[a.space],
                            obj=a.obj_name,
                            detail=f"{a.describe()} vs {b.describe()}: {decision.reason}",
                            decided_by="static",
                            a_inst=a.inst.id,
                            b_inst=b.inst.id,
                        )
                    )
                else:
                    report.pairs_undecided += 1
                    report.undecided.append((a, b, decision.reason))
                    report.add_deferral(Deferral(
                        kernel=fn.name,
                        category=decision.category or "non-affine",
                        why=decision.reason,
                        obj=a.obj_name,
                        space=_SPACE_NAMES[a.space],
                        a_inst=a.inst.id,
                        b_inst=b.inst.id,
                    ))
    return report


def check_staging(fn: Function, report: AnalysisReport) -> AnalysisReport:
    """Grover-legality check: every ``__local`` store must stage a value
    loaded from global/constant memory (the software-cache pattern the
    transformation reverses).  A computed value staged into local memory
    — a reduction accumulator, a read-modify-write — is *irreversible*:
    no global address holds that value, which is exactly why the solver
    rejects such kernels."""
    for bb in fn.blocks:
        for inst in bb.instructions:
            if not isinstance(inst, Store) or inst.addrspace != AddressSpace.LOCAL:
                continue
            src = strip_casts(inst.value)
            if isinstance(src, Load) and src.addrspace in (
                AddressSpace.GLOBAL,
                AddressSpace.CONSTANT,
            ):
                continue
            base, _ = _pointer_offset(AffineContext(fn), inst.ptr)
            obj = getattr(base, "name", None) or "?"
            report.add(
                Finding(
                    kind="non-global-staging",
                    space="local",
                    obj=obj,
                    detail=(
                        f"store %{inst.id} stages a computed value "
                        f"({type(src).__name__}) into {obj!r}; no global "
                        "address holds it, so the access is irreversible"
                    ),
                    decided_by="static",
                    a_inst=inst.id,
                )
            )
    return report
