"""``repro analyze``: run the race / divergence analyzer from the shell.

Targets are registered app ids (``--apps`` / ``--all-apps``) and/or
``.cl`` source files.  Each analyzed kernel prints one stable summary
line; ``--golden FILE`` compares the lines against a checked-in golden
summary and exits non-zero on drift (CI's ``analyze`` smoke job), and
``--update-golden`` rewrites it.

Examples::

    python -m repro.cli analyze --all-apps --variant both
    python -m repro.cli analyze examples/racy_halo.cl \
        --global-size 256 --local-size 64
    python -m repro.cli analyze --all-apps --variant both \
        examples/racy_halo.cl examples/divergent_barrier.cl \
        --global-size 256 --local-size 64 --golden tests/golden/analyze.txt
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.frontend import FrontendError

from repro.analysis.driver import analyze_app, analyze_source


def _parse_size(text: Optional[str]) -> Optional[List[int]]:
    if not text:
        return None
    return [int(t) for t in text.replace("x", ",").split(",") if t]


def _parse_scalar(text: str):
    try:
        return int(text, 0)
    except ValueError:
        return float(text)


def build_parser() -> argparse.ArgumentParser:
    from repro.cli import add_session_flags

    p = argparse.ArgumentParser(
        prog="repro analyze",
        description="Static + dynamic race and barrier-divergence analysis "
        "of OpenCL kernels (the independent arbiter of Grover legality).",
    )
    p.add_argument("files", nargs="*", help="OpenCL C source files to analyze")
    p.add_argument("--apps", default=None,
                   help="comma-separated registered app ids (e.g. AMD-MM)")
    p.add_argument("--all-apps", action="store_true",
                   help="analyze every registered application")
    p.add_argument("--variant", default="with",
                   choices=("with", "without", "both"),
                   help="app variant(s): original, Grover-transformed, or both")
    p.add_argument("--scale", default="test",
                   help="app problem scale for the trace replay (default: test)")
    p.add_argument("--static-only", action="store_true",
                   help="skip kernel execution / dynamic trace replay")
    p.add_argument("--kernel", default=None,
                   help="kernel name within a source file (default: the only one)")
    p.add_argument("-D", dest="defines", action="append", default=[],
                   metavar="NAME=VALUE", help="preprocessor definition")
    p.add_argument("--global-size", default=None, metavar="GX[,GY[,GZ]]",
                   help="NDRange global size for source-file targets")
    p.add_argument("--local-size", default=None, metavar="LX[,LY[,LZ]]",
                   help="work-group size for source-file targets")
    p.add_argument("--arg", dest="scalar_args", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="scalar kernel argument for source-file targets")
    p.add_argument("--local-arg", dest="local_args", action="append", default=[],
                   metavar="NAME=BYTES",
                   help="byte size of a __local pointer argument")
    p.add_argument("--buffer-bytes", type=int, default=None,
                   help="size of each synthetic global buffer "
                   "(default: 16 bytes per work-item)")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="print every finding, not just the summary lines")
    p.add_argument("--golden", default=None, metavar="FILE",
                   help="compare summary lines against FILE; exit 1 on drift")
    p.add_argument("--update-golden", action="store_true",
                   help="rewrite --golden FILE with the current summary")
    add_session_flags(p)
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.update_golden and not args.golden:
        print("error: --update-golden requires --golden FILE", file=sys.stderr)
        return 2
    if not args.files and not args.apps and not args.all_apps:
        print("error: nothing to analyze (pass files, --apps or --all-apps)",
              file=sys.stderr)
        return 2

    defines: Dict[str, object] = {}
    for d in args.defines:
        name, _, value = d.partition("=")
        defines[name] = value or "1"
    scalar_args = {}
    for a in args.scalar_args:
        name, _, value = a.partition("=")
        scalar_args[name] = _parse_scalar(value)
    local_args = {}
    for a in args.local_args:
        name, _, value = a.partition("=")
        local_args[name] = int(value)

    from repro.session import session_from_flags

    reports = []  # (label, AnalysisReport)
    with session_from_flags(args.config, args.trace_out) as session:
        with session.activate():
            if args.apps or args.all_apps:
                from repro.apps.registry import all_apps, get_app

                apps = (
                    all_apps()
                    if args.all_apps
                    else [get_app(i) for i in args.apps.split(",")]
                )
                variants = (
                    ["with", "without"] if args.variant == "both" else [args.variant]
                )
                for app in apps:
                    for variant in variants:
                        label = f"{app.id}/{variant}"
                        rep = analyze_app(
                            app, variant, scale=args.scale,
                            execute=not args.static_only,
                        )
                        reports.append((label, rep))
            for path in args.files:
                label = Path(path).name
                try:
                    rep = analyze_source(
                        Path(path).read_text(),
                        kernel_name=args.kernel,
                        defines=defines,
                        global_size=_parse_size(args.global_size),
                        local_size=_parse_size(args.local_size),
                        scalar_args=scalar_args,
                        buffer_bytes=args.buffer_bytes,
                        local_arg_sizes=local_args or None,
                        execute=not args.static_only,
                        label=label,
                    )
                except FrontendError as exc:
                    print(f"error: {path}: {exc}", file=sys.stderr)
                    return 1
                reports.append((label, rep))

    lines = [rep.summary_line(label) for label, rep in reports]
    for (label, rep), line in zip(reports, lines):
        print(line)
        if args.verbose:
            for f in rep.findings:
                print(f"    {f.render()}")

    if args.golden:
        golden_path = Path(args.golden)
        if args.update_golden:
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text("\n".join(lines) + "\n")
            print(f"wrote {len(lines)} summary line(s) to {golden_path}")
            return 0
        if not golden_path.exists():
            print(f"error: golden file {golden_path} does not exist "
                  "(run with --update-golden)", file=sys.stderr)
            return 1
        expected = golden_path.read_text().splitlines()
        if lines != expected:
            print(f"\nANALYSIS DRIFT against {golden_path}:", file=sys.stderr)
            for line in expected:
                if line not in lines:
                    print(f"  - {line}", file=sys.stderr)
            for line in lines:
                if line not in expected:
                    print(f"  + {line}", file=sys.stderr)
            return 1
        print(f"\nverdicts match {golden_path} ({len(lines)} line(s))")

    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
