"""Result model of the static/dynamic kernel analyzer.

The analyzer produces :class:`Finding` records — data races, barrier
divergence, and Grover-legality violations (reads of never-staged local
bytes, local stores whose value does not originate in global memory) —
collected into an :class:`AnalysisReport` whose ``verdict`` summarises
one kernel.  Reports render to stable one-line summaries so a golden
file can pin the verdicts of the whole app table (CI's ``analyze`` job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.grover import GroverError

__all__ = [
    "RACE_KINDS",
    "LEGALITY_KINDS",
    "DEFERRAL_CATEGORIES",
    "Finding",
    "Deferral",
    "AnalysisReport",
    "RaceDetected",
]

#: finding kinds that are intra-group data races (or their runtime twin)
RACE_KINDS = ("race-ww", "race-rw", "barrier-divergence")
#: finding kinds that break Grover's reversibility contract without
#: necessarily being races
LEGALITY_KINDS = ("uninit-read", "non-global-staging")
#: why the static pair analysis can decline to decide an access pair
DEFERRAL_CATEGORIES = (
    "non-affine",           # opaque / product-with-id index terms
    "group-uniform-delta",  # offset delta depends on a group-uniform value
    "no-geometry",          # no work-group size to enumerate
    "box-limit",            # index box larger than the enumeration cap
    "guarded",              # access under a thread-id-dependent guard
)


class RaceDetected(GroverError):
    """The analyzer vetoed a transformation (``Session(analyze=True)``)."""


class AnalysisUndecidedWarning(UserWarning):
    """The analyze gate ran but could not decide every access pair —
    typically because no work-group geometry was available.  The
    transform proceeds; the warning keeps the gate from silently
    degrading into a no-op."""


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnosis, attributed to IR instruction ids.

    ``decided_by`` records which arbiter produced it: ``"static"`` (the
    affine pair analysis / divergence analysis) or ``"dynamic"`` (the
    GroupTrace replay).  ``a_inst``/``b_inst`` are instruction ids; for
    single-site findings ``b_inst`` is ``None``.
    """

    kind: str            # 'race-ww' | 'race-rw' | 'barrier-divergence' | ...
    space: str           # 'local' | 'global' | 'cfg'
    obj: str             # array / buffer / function name the finding is on
    detail: str
    decided_by: str      # 'static' | 'dynamic'
    a_inst: Optional[int] = None
    b_inst: Optional[int] = None
    group_id: Optional[Tuple[int, ...]] = None
    phase: Optional[int] = None

    def key(self) -> tuple:
        """Deduplication key: same defect found twice is one finding."""
        pair = tuple(sorted(i for i in (self.a_inst, self.b_inst) if i is not None))
        return (self.kind, self.obj, pair)

    def render(self) -> str:
        where = f" [group {self.group_id}]" if self.group_id is not None else ""
        return f"{self.kind} on {self.space} {self.obj!r} ({self.decided_by}){where}: {self.detail}"


@dataclass(frozen=True)
class Deferral:
    """One access pair the static analysis declined to decide, with a
    machine-readable reason.

    Historically an undecided pair only bumped ``pairs_undecided`` — a
    bare skip a caller could not attribute to anything.  The fuzzer
    oracle (and the CLI report) need to distinguish "deferred because
    the index is non-affine" from "clean": every deferral now carries
    the kernel, the instruction pair, the object, and a ``category``
    from :data:`DEFERRAL_CATEGORIES` plus the human-readable ``why``.
    """

    kernel: str
    category: str        # one of DEFERRAL_CATEGORIES
    why: str
    obj: str             # array / buffer the pair touches
    space: str           # 'local' | 'global'
    a_inst: int
    b_inst: Optional[int] = None

    def key(self) -> tuple:
        pair = tuple(sorted(i for i in (self.a_inst, self.b_inst) if i is not None))
        return (self.category, self.obj, pair)

    def render(self) -> str:
        pair = f"%{self.a_inst}" + (
            f"/%{self.b_inst}" if self.b_inst is not None else ""
        )
        return (
            f"deferred [{self.category}] {self.space} {self.obj!r} "
            f"({pair}): {self.why}"
        )


@dataclass
class AnalysisReport:
    """Everything the analyzer concluded about one kernel."""

    kernel: str
    local_size: Optional[Tuple[int, ...]] = None
    findings: List[Finding] = field(default_factory=list)
    #: access pairs the affine machinery decided outright
    pairs_static: int = 0
    #: pairs the static analysis could not decide but the trace replay did
    pairs_dynamic: int = 0
    #: pairs neither arbiter decided (no trace available)
    pairs_undecided: int = 0
    #: barriers seen in the kernel body
    barriers: int = 0
    #: True once a full (unsampled) trace replay ran over every group
    replayed: bool = False
    #: statically undecided (Access, Access, reason) triples, kept for the
    #: dynamic replay to resolve (not part of the rendered report)
    undecided: list = field(default_factory=list, repr=False)
    #: structured reasons for the still-undecided pairs (one per pair);
    #: emptied by a full-trace replay, which moves them to
    #: ``deferrals_resolved`` (the pairs were decided dynamically, but
    #: callers like the fuzzer oracle still need the static-time reason)
    deferrals: List["Deferral"] = field(default_factory=list)
    deferrals_resolved: List["Deferral"] = field(default_factory=list)

    def add(self, finding: Finding) -> bool:
        """Record ``finding`` unless an equivalent one exists."""
        seen = {f.key() for f in self.findings}
        if finding.key() in seen:
            return False
        self.findings.append(finding)
        return True

    def add_deferral(self, deferral: "Deferral") -> bool:
        """Record ``deferral`` unless an equivalent one exists."""
        seen = {d.key() for d in self.deferrals}
        if deferral.key() in seen:
            return False
        self.deferrals.append(deferral)
        return True

    def deferrals_on(self, obj: str) -> List["Deferral"]:
        """Every deferral (live or replay-resolved) touching ``obj``."""
        return [
            d
            for d in list(self.deferrals) + list(self.deferrals_resolved)
            if d.obj == obj
        ]

    @property
    def deferral_categories(self) -> List[str]:
        """Sorted unique categories across live + resolved deferrals."""
        return sorted(
            {d.category for d in list(self.deferrals) + list(self.deferrals_resolved)}
        )

    # -- summaries ---------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[Finding]:
        return [f for f in self.findings if f.kind in kinds]

    @property
    def races(self) -> List[Finding]:
        return self.of_kind("race-ww", "race-rw")

    @property
    def divergences(self) -> List[Finding]:
        return self.of_kind("barrier-divergence")

    @property
    def legality(self) -> List[Finding]:
        return self.of_kind(*LEGALITY_KINDS)

    @property
    def verdict(self) -> str:
        """``race`` > ``divergent`` > ``irreversible`` > ``clean``/``undecided``."""
        if self.races:
            return "race"
        if self.divergences:
            return "divergent"
        if self.legality:
            return "irreversible"
        return "clean" if self.pairs_undecided == 0 else "undecided"

    def findings_on(self, obj: str) -> List[Finding]:
        return [f for f in self.findings if f.obj == obj]

    def summary_line(self, label: Optional[str] = None) -> str:
        kinds = ",".join(sorted({f.kind for f in self.findings})) or "-"
        return (
            f"{label or self.kernel:<34} verdict={self.verdict:<12} "
            f"findings={len(self.findings)} kinds={kinds} "
            f"pairs={self.pairs_static}/{self.pairs_dynamic}/{self.pairs_undecided}"
        )

    def __str__(self) -> str:
        lines = [
            f"analysis of {self.kernel!r} "
            f"(local_size={self.local_size}, barriers={self.barriers}): "
            f"verdict={self.verdict}",
            f"  pairs: {self.pairs_static} static, {self.pairs_dynamic} dynamic, "
            f"{self.pairs_undecided} undecided",
        ]
        for f in self.findings:
            lines.append(f"  - {f.render()}")
        for d in self.deferrals:
            lines.append(f"  - {d.render()}")
        return "\n".join(lines)
