"""Dynamic fallback: replay interpreter traces and check them for races.

When the static pair analysis cannot decide an access pair (loop-counter
indices, symbolic strides, opaque values), the analyzer replays the
interpreter's :class:`~repro.runtime.trace.GroupTrace` instead: the trace
records, per vectorised access, the concrete byte offsets and the lane
(work-item) ids, stamped with the barrier phase.  Within one phase the
work-items of a group are unordered, so

* two *stores* from different lanes to the same byte in one phase are a
  write-write race;
* a *store* and a *load* from different lanes touching the same byte in
  one phase are a read-write race (checked in both program orders);
* a ``__local`` load of a byte no store ever wrote is an uninitialised
  read — legal OpenCL (local memory is just uninitialised) but fatal to
  Grover's reversibility contract: there is no staging store, hence no
  global address, to redirect the load to.

The replay is exact for the traced input; it complements (and is checked
against) the static verdicts, never replaces them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.function import Function
from repro.ir.types import AddressSpace
from repro.runtime.trace import GroupTrace, KernelTrace

from repro.analysis.model import AnalysisReport, Finding

__all__ = ["replay_group", "replay_trace", "apply_replay"]

_SPACE_NAMES = {AddressSpace.LOCAL: "local", AddressSpace.GLOBAL: "global",
                AddressSpace.CONSTANT: "constant"}

#: per-(group, buffer) cap so a pathological kernel cannot flood a report
_MAX_FINDINGS_PER_BUFFER = 8


def _expand(offsets: np.ndarray, lanes: np.ndarray, size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Element offsets -> per-byte offsets with matching lane ids."""
    offs = np.asarray(offsets, np.int64)
    span = np.arange(size, dtype=np.int64)
    return (offs[:, None] + span[None, :]).ravel(), np.repeat(
        np.asarray(lanes, np.int64), size
    )


def _obj_names(kernel: Optional[Function]) -> Dict[int, str]:
    """inst id -> the name of the object the access targets (best effort)."""
    if kernel is None:
        return {}
    from repro.analysis.races import collect_accesses

    return {acc.inst.id: acc.obj_name for acc in collect_accesses(kernel)}


def replay_group(
    gt: GroupTrace,
    report: AnalysisReport,
    kernel: Optional[Function] = None,
) -> None:
    """Check one work-group's trace; findings are added to ``report``."""
    names = _obj_names(kernel)

    def obj(inst_id: int, buffer_id: int) -> str:
        return names.get(inst_id, f"buffer#{buffer_id}")

    # per-buffer byte maps; "phase" arrays reset at each barrier phase,
    # "ever" arrays persist for the staging checks
    extents: Dict[int, int] = {}
    spaces: Dict[int, AddressSpace] = {}
    for e in gt.events:
        if len(e.offsets) == 0:
            continue
        hi = int(np.asarray(e.offsets).max()) + e.elem_size
        extents[e.buffer_id] = max(extents.get(e.buffer_id, 0), hi)
        spaces[e.buffer_id] = e.space

    writer_lane: Dict[int, np.ndarray] = {}
    writer_inst: Dict[int, np.ndarray] = {}
    reader_lane: Dict[int, np.ndarray] = {}
    reader_inst: Dict[int, np.ndarray] = {}
    ever_written: Dict[int, np.ndarray] = {}
    last_inst: Dict[int, np.ndarray] = {}
    counts: Dict[int, int] = {}
    for buf, n in extents.items():
        writer_lane[buf] = np.full(n, -1, np.int64)
        writer_inst[buf] = np.full(n, -1, np.int64)
        reader_lane[buf] = np.full(n, -1, np.int64)
        reader_inst[buf] = np.full(n, -1, np.int64)
        ever_written[buf] = np.zeros(n, bool)
        last_inst[buf] = np.full(n, -1, np.int64)
        counts[buf] = 0

    def emit(buf: int, finding: Finding) -> None:
        if counts[buf] >= _MAX_FINDINGS_PER_BUFFER:
            return
        if report.add(finding):
            counts[buf] += 1

    current_phase = 0
    for e in gt.events:
        if e.phase != current_phase:
            current_phase = e.phase
            for buf in extents:
                writer_lane[buf][:] = -1
                writer_inst[buf][:] = -1
                reader_lane[buf][:] = -1
                reader_inst[buf][:] = -1
        if len(e.offsets) == 0:
            continue
        buf = e.buffer_id
        space = _SPACE_NAMES.get(e.space, str(e.space))
        bytes_, lanes = _expand(e.offsets, e.lanes, e.elem_size)
        if e.is_store:
            # intra-event: two lanes of one vectorised store on one byte
            order = np.argsort(bytes_, kind="stable")
            sb, sl = bytes_[order], lanes[order]
            dup = sb[1:] == sb[:-1]
            clash = dup & (sl[1:] != sl[:-1])
            if clash.any():
                k = int(np.flatnonzero(clash)[0])
                emit(buf, Finding(
                    kind="race-ww",
                    space=space,
                    obj=obj(e.inst_id, buf),
                    detail=(
                        f"lanes {int(sl[k])} and {int(sl[k + 1])} both store "
                        f"byte {int(sb[k])} in phase {e.phase} (store %{e.inst_id})"
                    ),
                    decided_by="dynamic",
                    a_inst=e.inst_id,
                    b_inst=e.inst_id,
                    group_id=gt.group_id,
                    phase=e.phase,
                ))
            # against earlier same-phase stores from other lanes
            prev = writer_lane[buf][bytes_]
            clash = (prev != -1) & (prev != lanes)
            if clash.any():
                k = int(np.flatnonzero(clash)[0])
                emit(buf, Finding(
                    kind="race-ww",
                    space=space,
                    obj=obj(e.inst_id, buf),
                    detail=(
                        f"lane {int(lanes[k])} (store %{e.inst_id}) and lane "
                        f"{int(prev[k])} (store %{int(writer_inst[buf][bytes_[k]])}) "
                        f"both store byte {int(bytes_[k])} in phase {e.phase}"
                    ),
                    decided_by="dynamic",
                    a_inst=e.inst_id,
                    b_inst=int(writer_inst[buf][bytes_[k]]),
                    group_id=gt.group_id,
                    phase=e.phase,
                ))
            # against earlier same-phase loads from other lanes
            prev = reader_lane[buf][bytes_]
            clash = (prev != -1) & (prev != lanes)
            if clash.any():
                k = int(np.flatnonzero(clash)[0])
                emit(buf, Finding(
                    kind="race-rw",
                    space=space,
                    obj=obj(e.inst_id, buf),
                    detail=(
                        f"lane {int(lanes[k])} stores byte {int(bytes_[k])} that "
                        f"lane {int(prev[k])} loads (%{int(reader_inst[buf][bytes_[k]])}) "
                        f"in the same phase {e.phase}"
                    ),
                    decided_by="dynamic",
                    a_inst=e.inst_id,
                    b_inst=int(reader_inst[buf][bytes_[k]]),
                    group_id=gt.group_id,
                    phase=e.phase,
                ))
            writer_lane[buf][bytes_] = lanes
            writer_inst[buf][bytes_] = e.inst_id
            ever_written[buf][bytes_] = True
            last_inst[buf][bytes_] = e.inst_id
        else:
            # load vs earlier same-phase stores from other lanes
            prev = writer_lane[buf][bytes_]
            clash = (prev != -1) & (prev != lanes)
            if clash.any():
                k = int(np.flatnonzero(clash)[0])
                emit(buf, Finding(
                    kind="race-rw",
                    space=space,
                    obj=obj(e.inst_id, buf),
                    detail=(
                        f"lane {int(lanes[k])} loads byte {int(bytes_[k])} that "
                        f"lane {int(prev[k])} stores (%{int(writer_inst[buf][bytes_[k]])}) "
                        f"in the same phase {e.phase}"
                    ),
                    decided_by="dynamic",
                    a_inst=e.inst_id,
                    b_inst=int(writer_inst[buf][bytes_[k]]),
                    group_id=gt.group_id,
                    phase=e.phase,
                ))
            if e.space == AddressSpace.LOCAL:
                unwritten = ~ever_written[buf][bytes_]
                if unwritten.any():
                    k = int(np.flatnonzero(unwritten)[0])
                    emit(buf, Finding(
                        kind="uninit-read",
                        space=space,
                        obj=obj(e.inst_id, buf),
                        detail=(
                            f"load %{e.inst_id} reads byte {int(bytes_[k])} of "
                            f"local memory that no store ever staged "
                            f"(phase {e.phase}); there is no global source "
                            "to redirect this read to"
                        ),
                        decided_by="dynamic",
                        a_inst=e.inst_id,
                        group_id=gt.group_id,
                        phase=e.phase,
                    ))
            reader_lane[buf][bytes_] = lanes
            reader_inst[buf][bytes_] = e.inst_id


def replay_trace(
    trace: KernelTrace,
    report: Optional[AnalysisReport] = None,
    kernel: Optional[Function] = None,
) -> AnalysisReport:
    """Replay every traced group (intra-group checks only)."""
    report = report or AnalysisReport(kernel.name if kernel else "<trace>")
    for gt in trace.groups:
        replay_group(gt, report, kernel)
    return report


def apply_replay(report: AnalysisReport, trace: KernelTrace, kernel: Function) -> None:
    """Resolve the report's statically undecided pairs with a replay.

    When the trace covers every launched group (no sampling), a clean
    replay is an exact verdict for that input: the undecided pairs are
    moved to the dynamically-decided bucket.  A sampled trace keeps them
    undecided (the replay findings still land on the report).
    """
    replay_trace(trace, report, kernel)
    report.replayed = trace.sampled_groups == trace.total_groups
    if report.replayed:
        report.pairs_dynamic += report.pairs_undecided
        report.pairs_undecided = 0
        report.undecided = []
        # the pairs are decided now, but the static-time reasons stay
        # reachable (report.deferrals_on consults both lists)
        report.deferrals_resolved.extend(report.deferrals)
        report.deferrals = []
