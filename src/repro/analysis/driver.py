"""Analyzer entry points: whole-kernel analysis and the Grover arbiter.

``analyze_kernel`` is the core: static race + staging + divergence
analysis, optionally sharpened by a dynamic trace replay.  ``analyze_app``
runs it over a registered application (launching the kernel at a given
scale to obtain the trace); ``analyze_source`` does the same for an
arbitrary ``.cl`` file with synthetic buffers.  ``differential_check``
is the second arbiter of Grover's legality: the transformed kernel must
analyze race-free, and every candidate Grover *rejected* must carry an
analyzer finding on that same array — two independent code paths
agreeing on which kernels are reversible.

Every entry point emits typed ``analysis_*`` events on the session bus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ir.function import Function
from repro.ir.types import AddressSpace, PointerType
from repro.runtime.buffers import Memory
from repro.runtime.errors import BarrierDivergenceError
from repro.runtime.ndrange import launch
from repro.session import events

from repro.analysis.divergence import analyze_divergence
from repro.analysis.dynamic import apply_replay
from repro.analysis.model import AnalysisReport, Finding
from repro.analysis.races import analyze_races_static, check_staging

__all__ = [
    "analyze_kernel",
    "analyze_app",
    "analyze_source",
    "differential_check",
    "DifferentialResult",
]


def analyze_kernel(
    fn: Function,
    local_size: Optional[Sequence[int]] = None,
    trace=None,
    extra_findings: Optional[List[Finding]] = None,
    label: Optional[str] = None,
) -> AnalysisReport:
    """Static analysis of ``fn``; a :class:`KernelTrace` sharpens it."""
    mode = "static" if trace is None else "hybrid"
    t0 = time.perf_counter()
    events.emit("analysis_start", kernel=fn.name, mode=mode)
    report = AnalysisReport(fn.name, tuple(local_size) if local_size else None)
    analyze_races_static(fn, local_size, report)
    check_staging(fn, report)
    analyze_divergence(fn, report)
    for f in extra_findings or []:
        report.add(f)
    if trace is not None:
        apply_replay(report, trace, fn)
    for f in report.findings:
        events.emit(
            "analysis_finding",
            kernel=fn.name,
            finding=f.kind,
            space=f.space,
            object=f.obj,
            decided_by=f.decided_by,
            detail=f.detail,
        )
    for d in list(report.deferrals) + list(report.deferrals_resolved):
        events.emit(
            "analysis_deferral",
            kernel=fn.name,
            category=d.category,
            space=d.space,
            object=d.obj,
            a_inst=d.a_inst,
            b_inst=-1 if d.b_inst is None else d.b_inst,
            resolved=d in report.deferrals_resolved,
            why=d.why,
        )
    events.emit(
        "analysis_end",
        kernel=label or fn.name,
        verdict=report.verdict,
        findings=len(report.findings),
        pairs_static=report.pairs_static,
        pairs_dynamic=report.pairs_dynamic,
        pairs_undecided=report.pairs_undecided,
        wall_ms=(time.perf_counter() - t0) * 1e3,
    )
    return report


def _divergence_finding(fn: Function, exc: BarrierDivergenceError) -> Finding:
    return Finding(
        kind="barrier-divergence",
        space="cfg",
        obj=fn.name,
        detail=str(exc),
        decided_by="dynamic",
        group_id=getattr(exc, "group_id", None),
        phase=getattr(exc, "phase", None),
    )


# ---------------------------------------------------------------------------
# registered applications
# ---------------------------------------------------------------------------


def analyze_app(
    app_or_id,
    variant: str = "with",
    scale: str = "test",
    execute: bool = True,
) -> AnalysisReport:
    """Analyze one registered app's kernel (optionally traced at ``scale``)."""
    from repro.apps.harness import compile_app, execute_app
    from repro.apps.registry import App, get_app

    app = app_or_id if isinstance(app_or_id, App) else get_app(app_or_id)
    kernel, _report = compile_app(app, variant)
    problem = app.make_problem(scale)
    trace = None
    extra: List[Finding] = []
    if execute:
        try:
            run = execute_app(app, kernel, variant=variant, scale=scale, collect_trace=True)
            trace = run.trace
        except BarrierDivergenceError as exc:
            extra.append(_divergence_finding(kernel, exc))
    return analyze_kernel(
        kernel,
        problem.local_size,
        trace,
        extra_findings=extra,
        label=f"{app.id}/{variant}",
    )


# ---------------------------------------------------------------------------
# arbitrary sources (the CLI's file mode)
# ---------------------------------------------------------------------------


def analyze_source(
    source: str,
    kernel_name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    global_size: Optional[Sequence[int]] = None,
    local_size: Optional[Sequence[int]] = None,
    scalar_args: Optional[Dict[str, object]] = None,
    buffer_bytes: Optional[int] = None,
    local_arg_sizes: Optional[Dict[str, int]] = None,
    execute: bool = True,
    label: Optional[str] = None,
) -> AnalysisReport:
    """Compile a ``.cl`` source and analyze one kernel.

    For the dynamic replay, every global pointer argument is bound to a
    synthetic buffer of ``buffer_bytes`` bytes (default: 16 bytes per
    work-item) filled with a deterministic byte pattern; scalar
    arguments come from ``scalar_args``.
    """
    from repro.frontend import compile_kernel

    kernel = compile_kernel(source, kernel_name, defines=defines or {})
    trace = None
    extra: List[Finding] = []
    if execute and global_size and local_size:
        nbytes = buffer_bytes or int(np.prod(tuple(global_size))) * 16
        mem = Memory()
        args: Dict[str, object] = {}
        for a in kernel.args:
            if isinstance(a.type, PointerType):
                if a.type.addrspace == AddressSpace.LOCAL:
                    continue  # bound via local_arg_sizes
                buf = mem.alloc(nbytes, a.name)
                buf.data[:] = (np.arange(nbytes, dtype=np.int64) % 251).astype(np.uint8)
                args[a.name] = buf
            else:
                if scalar_args is None or a.name not in scalar_args:
                    raise ValueError(
                        f"kernel scalar argument {a.name!r} needs a value "
                        "(pass --arg name=value)"
                    )
                args[a.name] = scalar_args[a.name]
        try:
            res = launch(
                kernel,
                tuple(global_size),
                tuple(local_size),
                args,
                memory=mem,
                local_arg_sizes=local_arg_sizes,
                collect_trace=True,
                workers=1,
            )
            trace = res.trace
        except BarrierDivergenceError as exc:
            extra.append(_divergence_finding(kernel, exc))
    return analyze_kernel(
        kernel, local_size, trace, extra_findings=extra, label=label
    )


# ---------------------------------------------------------------------------
# the differential Grover arbiter
# ---------------------------------------------------------------------------


@dataclass
class DifferentialResult:
    """Verdict of the analyzer-vs-Grover cross check on one kernel."""

    kernel: str
    #: candidate names Grover transformed / rejected
    transformed: List[str] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    #: analysis of the original kernel (local memory still in place)
    pre: Optional[AnalysisReport] = None
    #: analysis of the kernel after the transformation
    post: Optional[AnalysisReport] = None
    #: contract violations (empty = the two arbiters agree)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def check_reports(
    result: DifferentialResult,
) -> DifferentialResult:
    """Apply the differential contract to the filled-in result:

    * a transformed kernel must analyze **race-free** afterwards (the
      transformation may not have introduced an intra-group race);
    * every candidate Grover rejected for irreversibility must carry an
      analyzer finding on that array in the *original* kernel — the
      analyzer independently flags the irreversible access.
    """
    post = result.post
    if result.transformed and post is not None:
        if post.races or post.divergences:
            kinds = sorted({f.kind for f in post.races + post.divergences})
            result.problems.append(
                f"transformed kernel {result.kernel!r} is not race-free "
                f"post-transform: {kinds}"
            )
        elif post.verdict == "undecided":
            result.problems.append(
                f"transformed kernel {result.kernel!r} left "
                f"{post.pairs_undecided} access pair(s) undecided "
                "(no full trace replay)"
            )
    pre = result.pre
    if result.rejected and pre is not None:
        for name in result.rejected:
            if not pre.findings_on(name):
                result.problems.append(
                    f"Grover rejected {name!r} but the analyzer found no "
                    "irreversible access on it"
                )
    return result


def differential_check(
    app_or_id,
    scale: str = "test",
    execute: bool = True,
) -> DifferentialResult:
    """Run the two arbiters over one registered app and cross-check them."""
    from repro.apps.harness import compile_app, execute_app
    from repro.apps.registry import App, get_app

    app = app_or_id if isinstance(app_or_id, App) else get_app(app_or_id)
    problem = app.make_problem(scale)

    # original kernel: analyzed with its local memory in place
    kernel_with, _ = compile_app(app, "with")
    trace = None
    extra: List[Finding] = []
    if execute:
        try:
            run = execute_app(app, kernel_with, variant="with", scale=scale,
                              collect_trace=True)
            trace = run.trace
        except BarrierDivergenceError as exc:
            extra.append(_divergence_finding(kernel_with, exc))
    pre = analyze_kernel(kernel_with, problem.local_size, trace,
                         extra_findings=extra, label=f"{app.id}/pre")

    # transformed kernel: Grover, partial transforms allowed
    kernel_wo, greport = compile_app(app, "without", allow_partial=True)
    trace = None
    extra = []
    if execute:
        try:
            run = execute_app(app, kernel_wo, variant="without", scale=scale,
                              collect_trace=True)
            trace = run.trace
        except BarrierDivergenceError as exc:
            extra.append(_divergence_finding(kernel_wo, exc))
    post = analyze_kernel(kernel_wo, problem.local_size, trace,
                          extra_findings=extra, label=f"{app.id}/post")

    result = DifferentialResult(
        kernel=kernel_with.name,
        transformed=[r.name for r in greport.transformed] if greport else [],
        rejected=[r.name for r in greport.rejected] if greport else [],
        pre=pre,
        post=post,
    )
    return check_reports(result)
