"""Device descriptions for the paper's six platforms (Table II).

Cache geometries are the published ones for the respective
microarchitectures.  Latency/throughput parameters are model
calibration values in cycles — they set the *relative* weight of
compute, cache hits and memory traffic the way the paper's measured
behaviour implies (e.g. MIC's in-order cores and distributed L2 make it
latency-tolerant and compute-bound, flattening the local-memory effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union


@dataclass(frozen=True)
class CPUSpec:
    """A cache-only processor (no programmable scratch-pad)."""

    name: str
    cores: int
    #: (size_kb, assoc) per private level, closest first
    l1: Tuple[float, int]
    l2: Tuple[float, int]
    #: shared last-level cache; None for a distributed LLC (MIC)
    l3: Union[Tuple[float, int], None]
    line_size: int = 64
    #: load-to-use latencies per level + memory, in cycles
    lat_l1: float = 1.0
    lat_l2: float = 10.0
    lat_l3: float = 30.0
    lat_mem: float = 200.0
    #: fraction of memory latency paid by a prefetched access
    prefetch_factor: float = 0.25
    #: average dynamic instructions retired per cycle (per thread)
    ipc: float = 2.0
    #: memory-level parallelism: outstanding-miss overlap divisor
    mlp: float = 2.0
    #: cycles per barrier per work-item (work-item loop restart cost)
    barrier_cost: float = 4.0

    @property
    def is_gpu(self) -> bool:
        return False


@dataclass(frozen=True)
class GPUSpec:
    """A GPU with programmable local memory (scratch-pad)."""

    name: str
    compute_units: int
    warp_size: int
    #: per-warp global memory transaction segment size (bytes)
    segment: int = 128
    #: does the L1 cache global loads? (Fermi yes, Kepler no, GCN yes)
    global_l1: bool = True
    l1_kb: float = 16.0
    l1_assoc: int = 4
    l2_kb: float = 768.0
    l2_assoc: int = 16
    line_size: int = 128
    #: cycles per transaction at each level
    cost_l1: float = 4.0
    cost_l2: float = 30.0
    cost_mem: float = 180.0
    #: cycles per (conflict-free) scratch-pad access per warp
    cost_spm: float = 2.0
    spm_banks: int = 32
    #: instruction issue throughput: work-item instructions per cycle
    issue_width: float = 32.0
    #: fraction of memory time hidden by multithreading (0..1)
    latency_hiding: float = 0.6

    @property
    def is_gpu(self) -> bool:
        return True


# -- the paper's platforms ----------------------------------------------------

SNB = CPUSpec(
    name="SNB",          # dual Intel Xeon E5-2650 (Sandy Bridge)
    cores=16,
    l1=(32, 8),
    l2=(256, 8),
    l3=(20 * 1024, 20),
    lat_l1=1.0,
    lat_l2=8.0,
    lat_l3=12.0,
    lat_mem=200.0,
    ipc=2.2,
    mlp=2.5,
    barrier_cost=12.0,
)

NEHALEM = CPUSpec(
    name="Nehalem",      # dual Intel Xeon X5550 (Nehalem)
    cores=8,
    l1=(32, 8),
    l2=(256, 8),
    l3=(8 * 1024, 16),
    lat_l1=1.0,
    lat_l2=9.0,
    lat_l3=16.0,
    lat_mem=220.0,
    ipc=1.8,
    mlp=2.0,
    barrier_cost=14.0,
)

MIC = CPUSpec(
    name="MIC",          # Intel Xeon Phi 5110P (Knights Corner)
    cores=60,
    l1=(32, 8),
    l2=(512, 8),
    l3=None,             # distributed tag directory — no unified LLC
    lat_l1=3.0,
    lat_l2=24.0,
    lat_l3=0.0,
    lat_mem=300.0,
    ipc=0.6,             # in-order, low scalar ILP: kernels are compute-bound
    mlp=5.0,             # 4 hardware threads/core hide memory latency
    barrier_cost=7.0,
    prefetch_factor=0.4,
)

FERMI = GPUSpec(
    name="Fermi",        # NVIDIA GTX580 (GF110)
    compute_units=16,
    warp_size=32,
    global_l1=True,
    l1_kb=16.0,
    l1_assoc=4,
    l2_kb=768.0,
    cost_l1=6.0,
    cost_l2=35.0,
    cost_mem=200.0,
    cost_spm=2.0,
    issue_width=32.0,
    latency_hiding=0.6,
)

KEPLER = GPUSpec(
    name="Kepler",       # NVIDIA K20 (GK110) — global loads bypass L1
    compute_units=13,
    warp_size=32,
    global_l1=False,
    l1_kb=16.0,
    l1_assoc=4,
    l2_kb=1536.0,
    cost_l1=6.0,
    cost_l2=30.0,
    cost_mem=190.0,
    cost_spm=1.5,
    issue_width=64.0,
    latency_hiding=0.65,
)

TAHITI = GPUSpec(
    name="Tahiti",       # AMD HD7970 (GCN) — 16 KiB vector L1 per CU
    compute_units=32,
    warp_size=64,
    global_l1=True,
    l1_kb=16.0,
    l1_assoc=4,
    l2_kb=768.0,
    cost_l1=4.0,
    cost_l2=28.0,
    cost_mem=180.0,
    cost_spm=2.5,        # LDS access on GCN is comparatively expensive
    issue_width=64.0,
    latency_hiding=0.65,
)

CPU_DEVICES: Dict[str, CPUSpec] = {d.name: d for d in (SNB, NEHALEM, MIC)}
GPU_DEVICES: Dict[str, GPUSpec] = {d.name: d for d in (FERMI, KEPLER, TAHITI)}
DEVICES: Dict[str, Union[CPUSpec, GPUSpec]] = {**CPU_DEVICES, **GPU_DEVICES}


def device(name: str) -> Union[CPUSpec, GPUSpec]:
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None
