"""Perf regression harness for the compile→launch→trace→cycles pipeline.

``python -m repro.cli bench`` (the ``repro bench`` subcommand) times
every stage of the measurement pipeline for the three headline
workloads — matrix transpose, tiled matrix multiply and a stencil —
and writes the results to ``BENCH_pipeline.json`` so successive PRs
have a wall-clock trajectory to compare against.

For the trace→cycles stage, each device is timed twice: the
**reference** oracle (per-access python LRU walk, no memoization) and
the **fast** path (vectorised stack-distance simulation plus
group-trace memoization).  Before timing, the harness asserts that the
fast backend — with memoization off — reproduces the oracle's per-group
hit/miss/prefetch counts exactly; a mismatch is a hard failure, not a
recorded number.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional, Sequence

from repro.apps.harness import run_app
from repro.apps.registry import get_app
from repro.frontend import clear_compile_cache, compile_kernel
from repro.perf import devices
from repro.perf.cpumodel import CPUModel
from repro.perf.gpumodel import GPUModel
from repro.runtime.trace import KernelTrace

#: app ids benchmarked by default: transpose, tiled matmul, stencil
DEFAULT_APPS = ("NVD-MT", "NVD-MM-B", "PAB-ST")
DEFAULT_SAMPLE_GROUPS = 16
SCHEMA_VERSION = 1


class EquivalenceError(AssertionError):
    """Fast path and reference oracle disagreed on simulated counts."""


def _check_equivalence(trace: KernelTrace, cpu_spec, gpu_spec) -> None:
    """Exact per-group comparison of fast vs reference (memoization off)."""
    ref_cpu = CPUModel(cpu_spec, memoize=False, backend="reference")
    fast_cpu = CPUModel(cpu_spec, memoize=False, backend="fast")
    for g in trace.groups:
        a, b = ref_cpu.time_group(g), fast_cpu.time_group(g)
        if (a.level_hits, a.memory_misses, a.prefetched) != (
            b.level_hits, b.memory_misses, b.prefetched
        ):
            raise EquivalenceError(
                f"CPU {cpu_spec.name} group {g.group_id}: "
                f"reference {a.level_hits}/{a.memory_misses}/{a.prefetched} "
                f"!= fast {b.level_hits}/{b.memory_misses}/{b.prefetched}"
            )
    ref_gpu = GPUModel(gpu_spec, memoize=False, backend="reference")
    fast_gpu = GPUModel(gpu_spec, memoize=False, backend="fast")
    for g in trace.groups:
        a, b = ref_gpu.time_group(g), fast_gpu.time_group(g)
        if (a.transactions, a.mem_cycles) != (b.transactions, b.mem_cycles):
            raise EquivalenceError(
                f"GPU {gpu_spec.name} group {g.group_id}: "
                f"reference {a.transactions}/{a.mem_cycles} "
                f"!= fast {b.transactions}/{b.mem_cycles}"
            )


def bench_app(
    app_id: str,
    scale: str = "bench",
    sample_groups: int = DEFAULT_SAMPLE_GROUPS,
    variants: Sequence[str] = ("with", "without"),
) -> Dict:
    """Time each pipeline stage for one app; returns a JSON-ready dict."""
    app = get_app(app_id)
    out: Dict = {"scale": scale, "sample_groups": sample_groups, "stages": {}}

    # -- compile: cold (cache bypassed) vs cached -----------------------------
    clear_compile_cache()
    t0 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines, cache=False)
    t1 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines)  # warm
    t2 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines)
    t3 = time.perf_counter()
    out["stages"]["compile_cold_s"] = t1 - t0
    out["stages"]["compile_cached_s"] = t3 - t2

    # -- launch + trace -------------------------------------------------------
    traces: Dict[str, KernelTrace] = {}
    t0 = time.perf_counter()
    for var in variants:
        run = run_app(
            app, var, scale, collect_trace=True, sample_groups=sample_groups
        )
        traces[var] = run.trace
    t1 = time.perf_counter()
    out["stages"]["launch_trace_s"] = t1 - t0

    # -- trace -> cycles ------------------------------------------------------
    cpu_spec, gpu_spec = devices.SNB, devices.FERMI
    for var in variants:
        _check_equivalence(traces[var], cpu_spec, gpu_spec)

    def time_models(memoize: bool, backend: str) -> float:
        start = time.perf_counter()
        for var in variants:
            CPUModel(cpu_spec, memoize=memoize, backend=backend).time_kernel(
                traces[var]
            )
            GPUModel(gpu_spec, memoize=memoize, backend=backend).time_kernel(
                traces[var]
            )
        return time.perf_counter() - start

    ref_s = time_models(memoize=False, backend="reference")
    fast_s = time_models(memoize=True, backend="fast")
    out["stages"]["cycles_reference_s"] = ref_s
    out["stages"]["cycles_fast_s"] = fast_s
    out["trace_to_cycles_speedup"] = ref_s / fast_s if fast_s > 0 else float("inf")
    out["equivalence"] = "exact"
    return out


def run_bench(
    apps: Sequence[str] = DEFAULT_APPS,
    scale: str = "bench",
    sample_groups: int = DEFAULT_SAMPLE_GROUPS,
) -> Dict:
    results = {
        "schema": SCHEMA_VERSION,
        "description": "wall-clock seconds per pipeline stage "
        "(compile / launch+trace / trace->cycles, reference vs fast path)",
        "devices": {"cpu": devices.SNB.name, "gpu": devices.FERMI.name},
        "apps": {},
    }
    for app_id in apps:
        results["apps"][app_id] = bench_app(app_id, scale, sample_groups)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the compile->launch->trace->cycles pipeline "
        "and check fast-path equivalence.",
    )
    p.add_argument("--apps", default=",".join(DEFAULT_APPS),
                   help="comma-separated app ids")
    p.add_argument("--scale", default="bench", help="problem scale")
    p.add_argument("--sample-groups", type=int, default=DEFAULT_SAMPLE_GROUPS)
    p.add_argument("--json", dest="json_path", default="BENCH_pipeline.json",
                   help="output file ('-' for stdout only)")
    args = p.parse_args(argv)

    results = run_bench(
        [a.strip() for a in args.apps.split(",") if a.strip()],
        args.scale,
        args.sample_groups,
    )
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.json_path != "-":
        with open(args.json_path, "w") as f:
            f.write(text + "\n")
    print(text)
    for app_id, r in results["apps"].items():
        print(
            f"# {app_id}: trace->cycles {r['trace_to_cycles_speedup']:.1f}x "
            f"(ref {r['stages']['cycles_reference_s']:.3f}s -> "
            f"fast {r['stages']['cycles_fast_s']:.3f}s)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
