"""Perf regression harness for the compile→launch→trace→cycles pipeline.

``python -m repro.cli bench`` (the ``repro bench`` subcommand) times
every stage of the measurement pipeline for the three headline
workloads — matrix transpose, tiled matrix multiply and a stencil —
and writes the results to ``BENCH_pipeline.json`` so successive PRs
have a wall-clock trajectory to compare against.

For the trace→cycles stage, each device is timed twice: the
**reference** oracle (per-access python LRU walk, no memoization) and
the **fast** path (vectorised stack-distance simulation plus
group-trace memoization).  Before timing, the harness asserts that the
fast backend — with memoization off — reproduces the oracle's per-group
hit/miss/prefetch counts exactly; a mismatch is a hard failure, not a
recorded number.

With ``--workers N`` (N > 1) two parallel stages are added, both
differentially verified before their wall-clock is recorded: a sharded
launch per app (``launch_trace_parallel_s``, traces asserted
bit-identical to the serial ones) and the Table IV experiment matrix
serial-vs-fanned-out (``parallel_matrix``, values asserted equal
float-for-float).  ``host_cpus`` is recorded alongside — on a
single-core host the parallel numbers measure overhead, not speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.apps.harness import compile_app, execute_app
from repro.apps.registry import get_app
from repro.frontend import clear_compile_cache, compile_kernel
from repro.parallel.diff import DifferentialMismatch, assert_traces_equal
from repro.perf import devices
from repro.perf.cpumodel import CPUModel
from repro.perf.gpumodel import GPUModel
from repro.runtime.trace import KernelTrace

#: app ids benchmarked by default: transpose, tiled matmul, stencil
DEFAULT_APPS = ("NVD-MT", "NVD-MM-B", "PAB-ST")
DEFAULT_SAMPLE_GROUPS = 16
SCHEMA_VERSION = 2


class EquivalenceError(AssertionError):
    """Fast path and reference oracle disagreed on simulated counts."""


def _check_equivalence(trace: KernelTrace, cpu_spec, gpu_spec) -> None:
    """Exact per-group comparison of fast vs reference (memoization off)."""
    ref_cpu = CPUModel(cpu_spec, memoize=False, backend="reference")
    fast_cpu = CPUModel(cpu_spec, memoize=False, backend="fast")
    for g in trace.groups:
        a, b = ref_cpu.time_group(g), fast_cpu.time_group(g)
        if (a.level_hits, a.memory_misses, a.prefetched) != (
            b.level_hits, b.memory_misses, b.prefetched
        ):
            raise EquivalenceError(
                f"CPU {cpu_spec.name} group {g.group_id}: "
                f"reference {a.level_hits}/{a.memory_misses}/{a.prefetched} "
                f"!= fast {b.level_hits}/{b.memory_misses}/{b.prefetched}"
            )
    ref_gpu = GPUModel(gpu_spec, memoize=False, backend="reference")
    fast_gpu = GPUModel(gpu_spec, memoize=False, backend="fast")
    for g in trace.groups:
        a, b = ref_gpu.time_group(g), fast_gpu.time_group(g)
        if (a.transactions, a.mem_cycles) != (b.transactions, b.mem_cycles):
            raise EquivalenceError(
                f"GPU {gpu_spec.name} group {g.group_id}: "
                f"reference {a.transactions}/{a.mem_cycles} "
                f"!= fast {b.transactions}/{b.mem_cycles}"
            )


def bench_app(
    app_id: str,
    scale: str = "bench",
    sample_groups: int = DEFAULT_SAMPLE_GROUPS,
    variants: Sequence[str] = ("with", "without"),
    workers: int = 1,
) -> Dict:
    """Time each pipeline stage for one app; returns a JSON-ready dict."""
    app = get_app(app_id)
    out: Dict = {"scale": scale, "sample_groups": sample_groups, "stages": {}}

    # -- compile: cold (cache bypassed) vs cached -----------------------------
    clear_compile_cache()
    t0 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines, cache=False)
    t1 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines)  # warm
    t2 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines)
    t3 = time.perf_counter()
    out["stages"]["compile_cold_s"] = t1 - t0
    out["stages"]["compile_cached_s"] = t3 - t2

    # -- launch + trace -------------------------------------------------------
    # one kernel object per variant: event-stream bit-identity (inst ids
    # included) is defined per compiled kernel, and the parallel stage
    # below must diff against the very same object
    kernels = {var: compile_app(app, var)[0] for var in variants}
    traces: Dict[str, KernelTrace] = {}
    t0 = time.perf_counter()
    for var in variants:
        run = execute_app(
            app, kernels[var], variant=var, scale=scale,
            collect_trace=True, sample_groups=sample_groups,
        )
        traces[var] = run.trace
    t1 = time.perf_counter()
    out["stages"]["launch_trace_s"] = t1 - t0

    # -- launch + trace, sharded over workers ---------------------------------
    if workers > 1:
        t0 = time.perf_counter()
        par_traces = {
            var: execute_app(
                app, kernels[var], variant=var, scale=scale,
                collect_trace=True, sample_groups=sample_groups,
                workers=workers,
            ).trace
            for var in variants
        }
        t1 = time.perf_counter()
        for var in variants:  # differential gate before recording
            assert_traces_equal(
                traces[var], par_traces[var], f"{app_id}[{var}] workers={workers}"
            )
        out["stages"]["launch_trace_parallel_s"] = t1 - t0
        out["launch_workers"] = workers

    # -- trace -> cycles ------------------------------------------------------
    cpu_spec, gpu_spec = devices.SNB, devices.FERMI
    for var in variants:
        _check_equivalence(traces[var], cpu_spec, gpu_spec)

    def time_models(memoize: bool, backend: str) -> float:
        start = time.perf_counter()
        for var in variants:
            CPUModel(cpu_spec, memoize=memoize, backend=backend).time_kernel(
                traces[var]
            )
            GPUModel(gpu_spec, memoize=memoize, backend=backend).time_kernel(
                traces[var]
            )
        return time.perf_counter() - start

    ref_s = time_models(memoize=False, backend="reference")
    fast_s = time_models(memoize=True, backend="fast")
    out["stages"]["cycles_reference_s"] = ref_s
    out["stages"]["cycles_fast_s"] = fast_s
    out["trace_to_cycles_speedup"] = ref_s / fast_s if fast_s > 0 else float("inf")
    out["equivalence"] = "exact"
    return out


def bench_matrix(workers: int, scale: str = "bench") -> Dict:
    """Time the Table IV experiment matrix serial vs fanned-out.

    Both runs start from cold caches; the parallel grid must equal the
    serial grid float-for-float before any wall-clock is recorded.
    """
    from repro.experiments import clear_caches
    from repro.parallel.diff import assert_matrix_equal
    from repro.parallel.matrix import run_matrix

    out: Dict = {
        "scale": scale,
        "workers": workers,
        "host_cpus": os.cpu_count() or 1,
    }
    clear_caches()
    t0 = time.perf_counter()
    serial = run_matrix(workers=1, scale=scale)
    out["serial_s"] = time.perf_counter() - t0

    clear_caches()
    t0 = time.perf_counter()
    parallel = run_matrix(workers=workers, scale=scale)
    out["parallel_s"] = time.perf_counter() - t0

    try:
        assert_matrix_equal(serial.values, parallel.values, f"workers={workers}")
    except DifferentialMismatch as exc:
        raise EquivalenceError(str(exc)) from None
    out["cases"] = serial.cases
    out["speedup"] = (
        out["serial_s"] / out["parallel_s"] if out["parallel_s"] > 0 else float("inf")
    )
    out["retried"] = parallel.retried
    out["equivalence"] = "exact"
    return out


def run_bench(
    apps: Sequence[str] = DEFAULT_APPS,
    scale: str = "bench",
    sample_groups: int = DEFAULT_SAMPLE_GROUPS,
    workers: int = 1,
) -> Dict:
    results = {
        "schema": SCHEMA_VERSION,
        "description": "wall-clock seconds per pipeline stage "
        "(compile / launch+trace / trace->cycles, reference vs fast path; "
        "parallel stages are differentially verified before timing)",
        "devices": {"cpu": devices.SNB.name, "gpu": devices.FERMI.name},
        "host_cpus": os.cpu_count() or 1,
        "apps": {},
    }
    for app_id in apps:
        results["apps"][app_id] = bench_app(app_id, scale, sample_groups, workers=workers)
    if workers > 1:
        results["parallel_matrix"] = bench_matrix(workers, scale)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the compile->launch->trace->cycles pipeline "
        "and check fast-path equivalence.",
    )
    p.add_argument("--apps", default=",".join(DEFAULT_APPS),
                   help="comma-separated app ids")
    p.add_argument("--scale", default="bench", help="problem scale")
    p.add_argument("--sample-groups", type=int, default=DEFAULT_SAMPLE_GROUPS)
    p.add_argument("--workers", type=int, default=None,
                   help="also time sharded launches and the parallel "
                   "experiment matrix with this many workers "
                   "(default: $REPRO_WORKERS, then 1 = serial only)")
    p.add_argument("--json", dest="json_path", default="BENCH_pipeline.json",
                   help="output file ('-' for stdout only)")
    p.add_argument("--config", default=None,
                   help="JSON session config file (see repro.session.config)")
    p.add_argument("--trace-out", default=None,
                   help="write structured events as JSONL to this path")
    args = p.parse_args(argv)

    from repro.parallel.engine import resolve_workers
    from repro.session import session_from_flags

    with session_from_flags(args.config, args.trace_out):
        results = run_bench(
            [a.strip() for a in args.apps.split(",") if a.strip()],
            args.scale,
            args.sample_groups,
            workers=resolve_workers(args.workers),
        )
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.json_path != "-":
        with open(args.json_path, "w") as f:
            f.write(text + "\n")
    print(text)
    for app_id, r in results["apps"].items():
        print(
            f"# {app_id}: trace->cycles {r['trace_to_cycles_speedup']:.1f}x "
            f"(ref {r['stages']['cycles_reference_s']:.3f}s -> "
            f"fast {r['stages']['cycles_fast_s']:.3f}s)"
        )
    matrix = results.get("parallel_matrix")
    if matrix:
        print(
            f"# matrix ({matrix['cases']} cases): serial {matrix['serial_s']:.3f}s "
            f"-> workers={matrix['workers']} {matrix['parallel_s']:.3f}s "
            f"({matrix['speedup']:.2f}x, host has {matrix['host_cpus']} cpu(s))"
        )
        if matrix["host_cpus"] < 2:
            print(
                "# note: single-cpu host — parallel wall-clock measures "
                "overhead, not speedup; rerun on a multi-core host"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
