"""Perf regression harness for the compile→launch→trace→cycles pipeline.

``python -m repro.cli bench`` (the ``repro bench`` subcommand) times
every stage of the measurement pipeline for the three headline
workloads — matrix transpose, tiled matrix multiply and a stencil —
and writes the results to ``BENCH_pipeline.json`` so successive PRs
have a wall-clock trajectory to compare against.

For the trace→cycles stage, each device is timed twice: the
**reference** oracle (per-access python LRU walk, no memoization) and
the **fast** path (vectorised stack-distance simulation plus
group-trace memoization).  Before timing, the harness asserts that the
fast backend — with memoization off — reproduces the oracle's per-group
hit/miss/prefetch counts exactly; a mismatch is a hard failure, not a
recorded number.

With ``--workers N`` (N > 1) two parallel stages are added, both
differentially verified before their wall-clock is recorded: a sharded
launch per app and the Table IV experiment matrix serial-vs-fanned-out
(``parallel_matrix``, values asserted equal float-for-float).  Since
schema 7 the sharded-launch stage separates one-time costs from
steady state: ``pool_warmup_s`` is the first fan-out (worker fork if
the persistent pool is cold, arena publication, cold per-worker kernel
caches) and ``launch_trace_parallel_s`` is the minimum of up to three
warm repeats — the number a long sweep actually pays per launch.  The
per-app ``pool`` block records ``shm_bytes_published`` and per-worker
task/kernel-cache-hit counters from :mod:`repro.parallel.pool`.
``host_cpus`` is recorded alongside — on a single-core host the
parallel numbers measure overhead, not speedup.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.harness import compile_app, execute_app
from repro.apps.registry import get_app
from repro.frontend import clear_compile_cache, compile_kernel
from repro.parallel.diff import DifferentialMismatch, assert_traces_equal
from repro.perf import devices
from repro.perf.cpumodel import CPUModel
from repro.perf.gpumodel import GPUModel
from repro.runtime import Memory, launch
from repro.runtime.trace import KernelTrace
from repro.session import Session, current_session

#: app ids benchmarked by default: transpose, tiled matmul, stencil
DEFAULT_APPS = ("NVD-MT", "NVD-MM-B", "PAB-ST")
DEFAULT_SAMPLE_GROUPS = 16
#: groups executed by the timed launch+trace tier (capped at the app's
#: total): large enough that per-launch costs (tape compile, the pilot
#: group) amortise the way they do in a real Table IV sweep
TRACE_SAMPLE_GROUPS = 256
SCHEMA_VERSION = 7
#: scale the ``--search`` tier searches at: candidate scoring compiles
#: and executes dozens of kernels per app, so it runs the small grids
SEARCH_SCALE = "test"


class EquivalenceError(AssertionError):
    """Fast path and reference oracle disagreed on simulated counts."""


def _check_equivalence(trace: KernelTrace, cpu_spec, gpu_spec) -> None:
    """Exact per-group comparison of fast vs reference (memoization off)."""
    ref_cpu = CPUModel(cpu_spec, memoize=False, backend="reference")
    fast_cpu = CPUModel(cpu_spec, memoize=False, backend="fast")
    for g in trace.groups:
        a, b = ref_cpu.time_group(g), fast_cpu.time_group(g)
        if (a.level_hits, a.memory_misses, a.prefetched) != (
            b.level_hits, b.memory_misses, b.prefetched
        ):
            raise EquivalenceError(
                f"CPU {cpu_spec.name} group {g.group_id}: "
                f"reference {a.level_hits}/{a.memory_misses}/{a.prefetched} "
                f"!= fast {b.level_hits}/{b.memory_misses}/{b.prefetched}"
            )
    ref_gpu = GPUModel(gpu_spec, memoize=False, backend="reference")
    fast_gpu = GPUModel(gpu_spec, memoize=False, backend="fast")
    for g in trace.groups:
        a, b = ref_gpu.time_group(g), fast_gpu.time_group(g)
        if (a.transactions, a.mem_cycles) != (b.transactions, b.mem_cycles):
            raise EquivalenceError(
                f"GPU {gpu_spec.name} group {g.group_id}: "
                f"reference {a.transactions}/{a.mem_cycles} "
                f"!= fast {b.transactions}/{b.mem_cycles}"
            )


def _problem_args(app, scale: str):
    """Fresh Memory + bound kernel arguments (host setup, never timed).

    Mirrors :func:`repro.apps.harness.execute_app`'s allocation order so
    buffer ids — and therefore trace event streams — are reproducible
    across independently built problems.
    """
    problem = app.make_problem(scale)
    mem = Memory()
    args: Dict[str, object] = {}
    buffers: Dict[str, object] = {}
    for name, value in problem.inputs.items():
        if isinstance(value, np.ndarray):
            buf = mem.from_array(value, name)
            buffers[name] = buf
            args[name] = buf
        else:
            args[name] = value
    for name, expected in problem.expected.items():
        if name not in buffers:
            buf = mem.alloc(expected.nbytes, name)
            buffers[name] = buf
            args[name] = buf
    return problem, mem, args


#: a timed launch under this many seconds is repeated and the minimum
#: kept (see :func:`_timed_launch`); longer launches stay single-shot
#: so the bench wall time stays bounded
REPEAT_UNDER_S = 0.5
TIMED_REPEATS = 3


def _timed_launch(kernel, app, scale: str, sample_groups: int, backend: str):
    """Traced launch under ``backend``; returns (seconds, trace).

    A 2-group warm-up launch runs first (identical for both backends)
    so process-cold costs — module imports, numpy dispatch caches —
    don't land inside whichever backend happens to be timed first.
    The tape pilot and compile are *not* warmed away: the timed launch
    pays them in full, as any real sweep iteration would.

    Launches that finish under :data:`REPEAT_UNDER_S` are re-run up to
    :data:`TIMED_REPEATS` times and the minimum is reported: on a
    shared host, scheduler preemption only ever *adds* time, so the
    minimum is the best estimate of the true cost — and the same rule
    is applied to every backend, so no ratio is biased by it.  Long
    launches stay single-shot (their relative jitter is small and the
    repeats would dominate the bench's wall time).

    The cyclic GC is collected before and switched off during the
    timed region: the traces retained for the differential checks hold
    millions of objects, and a mid-launch generational sweep over them
    lands on whichever backend is unlucky (observed 0.5s–2.6s for the
    identical tape launch).  Refcounting still frees everything the
    launch itself drops.
    """
    with Session(exec_backend=backend).activate():
        problem, mem, args = _problem_args(app, scale)
        launch(
            kernel,
            problem.global_size,
            problem.local_size,
            args,
            memory=mem,
            local_arg_sizes=problem.local_arg_sizes or None,
            collect_trace=True,
            sample_groups=2,
        )
        dt = None
        for _ in range(TIMED_REPEATS):
            problem, mem, args = _problem_args(app, scale)
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                res = launch(
                    kernel,
                    problem.global_size,
                    problem.local_size,
                    args,
                    memory=mem,
                    local_arg_sizes=problem.local_arg_sizes or None,
                    collect_trace=True,
                    sample_groups=sample_groups,
                )
                dt_i = time.perf_counter() - t0
            finally:
                gc.enable()
            dt = dt_i if dt is None else min(dt, dt_i)
            if dt_i >= REPEAT_UNDER_S:
                break
        return dt, res.trace


def bench_app(
    app_id: str,
    scale: str = "bench",
    sample_groups: int = DEFAULT_SAMPLE_GROUPS,
    variants: Sequence[str] = ("with", "without"),
    workers: int = 1,
    trace_sample_groups: int = TRACE_SAMPLE_GROUPS,
) -> Dict:
    """Time each pipeline stage for one app; returns a JSON-ready dict."""
    app = get_app(app_id)
    out: Dict = {"scale": scale, "sample_groups": sample_groups, "stages": {}}

    # -- compile: cold (cache bypassed) vs cached -----------------------------
    clear_compile_cache()
    t0 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines, cache=False)
    t1 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines)  # warm
    t2 = time.perf_counter()
    compile_kernel(app.source, app.kernel_name, defines=app.defines)
    t3 = time.perf_counter()
    out["stages"]["compile_cold_s"] = t1 - t0
    out["stages"]["compile_cached_s"] = t3 - t2

    # -- launch + trace -------------------------------------------------------
    # one kernel object per variant: event-stream bit-identity (inst ids
    # included) is defined per compiled kernel, and the parallel stage
    # below must diff against the very same object.  Host problem setup
    # happens outside the timer; each backend is timed on the identical
    # workload and the tape trace must equal the reference trace
    # bit-for-bit before either number is recorded.
    kernels = {var: compile_app(app, var)[0] for var in variants}
    ref_s = 0.0
    tape_s = 0.0
    codegen_s = 0.0
    for var in variants:
        dt_ref, tr_ref = _timed_launch(
            kernels[var], app, scale, trace_sample_groups, "reference"
        )
        dt_tape, tr_tape = _timed_launch(
            kernels[var], app, scale, trace_sample_groups, "tape"
        )
        assert_traces_equal(tr_ref, tr_tape, f"{app_id}[{var}] tape backend")
        dt_cg, tr_cg = _timed_launch(
            kernels[var], app, scale, trace_sample_groups, "codegen"
        )
        assert_traces_equal(tr_ref, tr_cg, f"{app_id}[{var}] codegen backend")
        ref_s += dt_ref
        tape_s += dt_tape
        codegen_s += dt_cg
    out["stages"]["launch_trace_s"] = ref_s
    out["stages"]["launch_trace_tape_s"] = tape_s
    out["stages"]["launch_trace_codegen_s"] = codegen_s
    out["launch_trace_tape_speedup"] = ref_s / tape_s if tape_s > 0 else float("inf")
    out["launch_trace_codegen_speedup"] = (
        ref_s / codegen_s if codegen_s > 0 else float("inf")
    )
    out["codegen_vs_tape_speedup"] = (
        tape_s / codegen_s if codegen_s > 0 else float("inf")
    )
    out["launch_sample_groups"] = trace_sample_groups
    out["exec_backend"] = str(current_session().get("exec_backend"))

    # model-tier traces: small sampled launches through the session's
    # backend (the cycles numbers stay comparable with older schemas)
    traces: Dict[str, KernelTrace] = {
        var: execute_app(
            app, kernels[var], variant=var, scale=scale,
            collect_trace=True, sample_groups=sample_groups,
        ).trace
        for var in variants
    }

    # -- launch + trace, sharded over workers ---------------------------------
    if workers > 1:
        from repro.parallel import pool as worker_pool

        worker_pool.reset_stats()

        def _parallel_pass() -> float:
            t0 = time.perf_counter()
            par_traces = {
                var: execute_app(
                    app, kernels[var], variant=var, scale=scale,
                    collect_trace=True, sample_groups=sample_groups,
                    workers=workers,
                ).trace
                for var in variants
            }
            dt = time.perf_counter() - t0
            for var in variants:  # differential gate before recording
                assert_traces_equal(
                    traces[var], par_traces[var],
                    f"{app_id}[{var}] workers={workers}",
                )
            return dt

        # first fan-out pays the one-time costs: the pool fork (when the
        # persistent pool is cold), arena publication into fresh page
        # cache, cold per-worker kernel caches
        out["stages"]["pool_warmup_s"] = _parallel_pass()
        dt = None
        for _ in range(TIMED_REPEATS):
            dt_i = _parallel_pass()
            dt = dt_i if dt is None else min(dt, dt_i)
            if dt_i >= REPEAT_UNDER_S:
                break
        out["stages"]["launch_trace_parallel_s"] = dt
        out["launch_workers"] = workers
        stats = worker_pool.stats()
        out["pool"] = {
            "tasks": stats["tasks"],
            "shm_bytes_published": stats["shm_bytes_published"],
            "per_worker": {
                str(pid): counts
                for pid, counts in sorted(stats["per_worker"].items())
            },
        }

    # -- trace -> cycles ------------------------------------------------------
    cpu_spec, gpu_spec = devices.SNB, devices.FERMI
    for var in variants:
        _check_equivalence(traces[var], cpu_spec, gpu_spec)

    def time_models(memoize: bool, backend: str) -> float:
        start = time.perf_counter()
        for var in variants:
            CPUModel(cpu_spec, memoize=memoize, backend=backend).time_kernel(
                traces[var]
            )
            GPUModel(gpu_spec, memoize=memoize, backend=backend).time_kernel(
                traces[var]
            )
        return time.perf_counter() - start

    ref_s = time_models(memoize=False, backend="reference")
    fast_s = time_models(memoize=True, backend="fast")
    out["stages"]["cycles_reference_s"] = ref_s
    out["stages"]["cycles_fast_s"] = fast_s
    out["trace_to_cycles_speedup"] = ref_s / fast_s if fast_s > 0 else float("inf")
    out["equivalence"] = "exact"
    return out


def bench_matrix(workers: int, scale: str = "bench") -> Dict:
    """Time the Table IV experiment matrix serial vs fanned-out.

    Both runs start from cold caches; the parallel grid must equal the
    serial grid float-for-float before any wall-clock is recorded.
    """
    from repro.experiments import clear_caches
    from repro.parallel.diff import assert_matrix_equal
    from repro.parallel.matrix import run_matrix

    out: Dict = {
        "scale": scale,
        "workers": workers,
        "host_cpus": os.cpu_count() or 1,
    }
    clear_caches()
    t0 = time.perf_counter()
    serial = run_matrix(workers=1, scale=scale)
    out["serial_s"] = time.perf_counter() - t0

    clear_caches()
    t0 = time.perf_counter()
    parallel = run_matrix(workers=workers, scale=scale)
    out["parallel_s"] = time.perf_counter() - t0

    try:
        assert_matrix_equal(serial.values, parallel.values, f"workers={workers}")
    except DifferentialMismatch as exc:
        raise EquivalenceError(str(exc)) from None
    out["cases"] = serial.cases
    out["speedup"] = (
        out["serial_s"] / out["parallel_s"] if out["parallel_s"] > 0 else float("inf")
    )
    out["retried"] = parallel.retried
    out["equivalence"] = "exact"
    return out


def bench_smoke(
    scale: str = "smoke", sample_groups: int = DEFAULT_SAMPLE_GROUPS
) -> Dict:
    """Correctness sweep of every Table III app at the smoke scale.

    Each app runs both variants through the session's execution backend
    and again through the reference executor; the traces must match
    bit-for-bit before the (untimed-tier) wall-clock is recorded.  This
    is coverage, not a timing tier — the three ``DEFAULT_APPS`` at the
    ``bench`` scale remain the numbers to track.
    """
    from repro.apps.registry import table_apps

    out: Dict = {
        "scale": scale,
        "sample_groups": sample_groups,
        "exec_backend": str(current_session().get("exec_backend")),
        "apps": {},
    }
    for app in table_apps():
        t0 = time.perf_counter()
        for var in ("with", "without"):
            kernel, _ = compile_app(app, var)
            run = execute_app(
                app, kernel, variant=var, scale=scale,
                collect_trace=True, sample_groups=sample_groups,
            )
            with Session(exec_backend="reference").activate():
                ref = execute_app(
                    app, kernel, variant=var, scale=scale,
                    collect_trace=True, sample_groups=sample_groups,
                )
            assert_traces_equal(ref.trace, run.trace, f"{app.id}[{var}] smoke")
        out["apps"][app.id] = {
            "wall_s": time.perf_counter() - t0,
            "equivalence": "exact",
        }
    return out


def validate_app_ids(apps: Sequence[str]) -> List[str]:
    """Check every id against the registry; unknown names raise a
    ``ValueError`` that lists the valid ids."""
    from repro.apps.registry import table_apps

    valid = [a.id for a in table_apps()]
    unknown = [a for a in apps if a not in valid]
    if unknown:
        raise ValueError(
            f"unknown app id(s): {', '.join(unknown)}; "
            f"valid ids: {', '.join(valid)}"
        )
    return list(apps)


def bench_search(apps: Sequence[str], workers: int) -> Dict:
    """The ``--search`` tier: per-app winning pipeline vs the default.

    Runs the rewrite-pipeline beam search (session ``search_*`` knobs)
    at :data:`SEARCH_SCALE` and records, per app, the verified winning
    pipeline plus searched-vs-default predicted cycles.  Every winner
    has already passed the analyzer gate and the three-backend
    differential runner — an unverifiable app is a hard failure here,
    not a recorded number.
    """
    from repro.search import SearchOptions, run_search

    run = run_search(
        SearchOptions(apps=tuple(apps), scale=SEARCH_SCALE, workers=workers)
    )
    out: Dict = {"scale": SEARCH_SCALE, "wall_s": run.wall_s, "apps": {}}
    for r in run.results:
        if not r.verified:
            raise EquivalenceError(
                f"search winner for {r.app_id} failed verification: "
                + "; ".join(r.rejected)
            )
        out["apps"][r.app_id] = {
            "pipeline": list(r.winner.pipeline),
            "searched_cycles": r.winner.cycles,
            "default_cycles": r.baseline.cycles,
            "speedup": r.speedup,
            "device": r.device,
            "candidates_evaluated": r.evaluated,
        }
    return out


def bench_tune(apps: Sequence[str], workers: int) -> Dict:
    """The ``--tune`` tier: search with vs without go/no-go pruning.

    Runs the beam search twice over the same apps — once scoring every
    candidate, once with the learned predictor pruning the scoring
    queue — and **hard-fails** unless both report identical winning
    pipelines (pruning is an accelerator; a changed winner is a model
    regression, not a number to record).  Also measures the predictor's
    go/no-go accuracy against the unpruned run's ground truth: every
    fully scored candidate is re-predicted from its features and the
    prediction compared with whether it actually beat the baseline.
    """
    from repro.search import SearchOptions, run_search
    from repro.tune.features import app_candidate_features, app_kernel_context
    from repro.tune.model import default_model_path, load_model

    session = current_session()
    model_path = str(session.get("tune_model") or default_model_path())
    predictor = load_model(model_path)
    threshold = float(session.get("tune_threshold"))

    base = run_search(
        SearchOptions(apps=tuple(apps), scale=SEARCH_SCALE, workers=workers)
    )
    tuned = run_search(
        SearchOptions(
            apps=tuple(apps), scale=SEARCH_SCALE, workers=workers, tune=True
        )
    )

    try:
        # keep the committed artifact host-independent
        model_label = os.path.relpath(model_path)
    except ValueError:
        model_label = model_path
    out: Dict = {
        "scale": SEARCH_SCALE,
        "model": model_label,
        "model_sha256": predictor.sha256,
        "threshold": threshold,
        "holdout_accuracy": float(
            (predictor.payload.get("training", {}).get("holdout") or {})
            .get("accuracy", -1.0)
        ),
        "wall_s_unpruned": base.wall_s,
        "wall_s_tuned": tuned.wall_s,
        "apps": {},
    }
    correct = total = 0
    for b, t in zip(base.results, tuned.results):
        if b.winner.pipeline != t.winner.pipeline:
            raise EquivalenceError(
                f"tune pruning changed the {b.app_id} winner: "
                f"{b.winner.label} (unpruned) vs {t.winner.label} (tuned)"
            )
        if not t.verified:
            raise EquivalenceError(
                f"tuned search winner for {t.app_id} failed verification: "
                + "; ".join(t.rejected)
            )
        ctx = app_kernel_context(b.app_id, SEARCH_SCALE)
        app_correct = app_total = 0
        for cand in b.candidates:
            if cand.error or not cand.rewrites or cand.rewrites[-1] == 0:
                continue  # the predictor never judged these
            feats, _ = app_candidate_features(
                ctx, b.app_id, cand.pipeline, SEARCH_SCALE, cand.device
            )
            predicted_win = predictor.predict(feats) >= threshold
            actual_win = cand.cycles < b.baseline.cycles
            app_total += 1
            if predicted_win == actual_win:
                app_correct += 1
        correct += app_correct
        total += app_total
        out["apps"][b.app_id] = {
            "pipeline": list(t.winner.pipeline),
            "verified": t.verified,
            "scored_unpruned": len(b.candidates),
            "scored_tuned": len(t.candidates),
            "pruned": t.pruned,
            "prediction_accuracy": (
                app_correct / app_total if app_total else 1.0
            ),
        }
    out["prediction_accuracy"] = correct / total if total else 1.0
    out["scored_unpruned"] = sum(
        a["scored_unpruned"] for a in out["apps"].values()
    )
    out["scored_tuned"] = sum(a["scored_tuned"] for a in out["apps"].values())
    out["pruned"] = sum(a["pruned"] for a in out["apps"].values())
    return out


def run_bench(
    apps: Sequence[str] = DEFAULT_APPS,
    scale: str = "bench",
    sample_groups: int = DEFAULT_SAMPLE_GROUPS,
    workers: int = 1,
    smoke: bool = True,
    search: bool = False,
    tune: bool = False,
) -> Dict:
    validate_app_ids(apps)
    results = {
        "schema": SCHEMA_VERSION,
        "description": "wall-clock seconds per pipeline stage "
        "(compile / launch+trace with reference vs tape vs codegen "
        "executor / trace->cycles, reference vs fast cache path; every "
        "backend is differentially verified before timing)",
        "devices": {"cpu": devices.SNB.name, "gpu": devices.FERMI.name},
        "host_cpus": os.cpu_count() or 1,
        "exec_backend": str(current_session().get("exec_backend")),
        "apps": {},
    }
    for app_id in apps:
        results["apps"][app_id] = bench_app(app_id, scale, sample_groups, workers=workers)
    if smoke:
        results["smoke"] = bench_smoke(sample_groups=sample_groups)
    if workers > 1:
        results["parallel_matrix"] = bench_matrix(workers, scale)
    if search:
        results["search"] = bench_search(apps, workers)
    if tune:
        results["tune"] = bench_tune(apps, workers)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the compile->launch->trace->cycles pipeline "
        "and check fast-path equivalence.",
    )
    p.add_argument("--apps", default=",".join(DEFAULT_APPS),
                   help="comma-separated app ids (rerun a subset of the "
                   "sweep; unknown names fail listing the valid ids)")
    p.add_argument("--scale", default="bench", help="problem scale")
    p.add_argument("--sample-groups", type=int, default=DEFAULT_SAMPLE_GROUPS)
    p.add_argument("--workers", type=int, default=None,
                   help="also time sharded launches and the parallel "
                   "experiment matrix with this many workers "
                   "(default: $REPRO_WORKERS, then 1 = serial only)")
    p.add_argument("--search", action="store_true",
                   help="also beam-search rewrite-rule pipelines per app "
                   "and record winning pipeline + searched-vs-default "
                   "predicted cycles (see repro search)")
    p.add_argument("--tune", action="store_true",
                   help="also run the search with the learned go/no-go "
                   "predictor pruning the scoring queue; hard-fails if "
                   "pruning changes any winner, records pruned counts "
                   "and prediction accuracy (see repro tune)")
    p.add_argument("--json", dest="json_path", default="BENCH_pipeline.json",
                   help="output file ('-' for stdout only)")
    p.add_argument("--config", default=None,
                   help="JSON session config file (see repro.session.config)")
    p.add_argument("--trace-out", default=None,
                   help="write structured events as JSONL to this path")
    args = p.parse_args(argv)

    from repro.parallel.engine import resolve_workers
    from repro.session import session_from_flags

    app_ids = [a.strip() for a in args.apps.split(",") if a.strip()]
    try:
        validate_app_ids(app_ids)
    except ValueError as exc:
        p.error(str(exc))
    with session_from_flags(args.config, args.trace_out):
        results = run_bench(
            app_ids,
            args.scale,
            args.sample_groups,
            workers=resolve_workers(args.workers),
            search=args.search,
            tune=args.tune,
        )
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.json_path != "-":
        with open(args.json_path, "w") as f:
            f.write(text + "\n")
    print(text)
    for app_id, r in results["apps"].items():
        print(
            f"# {app_id}: launch+trace {r['launch_trace_tape_speedup']:.1f}x "
            f"(ref {r['stages']['launch_trace_s']:.3f}s -> "
            f"tape {r['stages']['launch_trace_tape_s']:.3f}s -> "
            f"codegen {r['stages']['launch_trace_codegen_s']:.3f}s, "
            f"{r['codegen_vs_tape_speedup']:.1f}x over tape), "
            f"trace->cycles {r['trace_to_cycles_speedup']:.1f}x "
            f"(ref {r['stages']['cycles_reference_s']:.3f}s -> "
            f"fast {r['stages']['cycles_fast_s']:.3f}s)"
        )
    smoke = results.get("smoke")
    if smoke:
        total = sum(a["wall_s"] for a in smoke["apps"].values())
        print(
            f"# smoke: {len(smoke['apps'])} apps x 2 variants verified "
            f"exact vs reference executor in {total:.2f}s "
            f"(backend {smoke['exec_backend']})"
        )
    searched = results.get("search")
    if searched:
        for app_id, s in searched["apps"].items():
            pipe = " -> ".join(s["pipeline"]) or "(default)"
            print(
                f"# search {app_id}: {pipe} — {s['searched_cycles']:.1f} "
                f"vs default {s['default_cycles']:.1f} cycles "
                f"({s['speedup']:.3f}x on {s['device']}, verified)"
            )
    tuned = results.get("tune")
    if tuned:
        print(
            f"# tune: {tuned['pruned']} of "
            f"{tuned['scored_unpruned']} candidates pruned before scoring "
            f"({tuned['scored_tuned']} still simulated), winners identical, "
            f"prediction accuracy {tuned['prediction_accuracy']:.3f}, "
            f"search wall {tuned['wall_s_unpruned']:.2f}s -> "
            f"{tuned['wall_s_tuned']:.2f}s"
        )
    matrix = results.get("parallel_matrix")
    if matrix:
        print(
            f"# matrix ({matrix['cases']} cases): serial {matrix['serial_s']:.3f}s "
            f"-> workers={matrix['workers']} {matrix['parallel_s']:.3f}s "
            f"({matrix['speedup']:.2f}x, host has {matrix['host_cpus']} cpu(s))"
        )
        if matrix["host_cpus"] < 2:
            print(
                "# note: single-cpu host — parallel wall-clock measures "
                "overhead, not speedup (pool_warmup_s already isolates the "
                "one-time fork + shm-publish cost; launch_trace_parallel_s "
                "is the min of warm repeats); rerun on a multi-core host "
                "for real scaling numbers"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
