"""Human-readable cost breakdowns of a kernel on a device model.

Answers the question the paper's Section VI-C answers in prose: *where*
do the cycles of each kernel version go, and which component explains
the gap between the with/without-local-memory versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.perf.cpumodel import CPUModel
from repro.perf.devices import CPUSpec
from repro.runtime.trace import KernelTrace


@dataclass
class CostBreakdown:
    device: str
    cycles: float
    inst_cycles: float
    mem_cycles: float
    barrier_cycles: float
    accesses: int
    level_hits: List[int]
    memory_misses: int
    prefetched: int

    @property
    def hit_rates(self) -> List[float]:
        total = self.accesses
        return [h / total if total else 0.0 for h in self.level_hits]

    def render(self) -> str:
        parts = [
            f"{self.device}: {self.cycles:,.0f} cycles",
            f"  instructions : {self.inst_cycles:12,.0f} ({self._pct(self.inst_cycles)})",
            f"  memory       : {self.mem_cycles:12,.0f} ({self._pct(self.mem_cycles)})",
            f"  barriers     : {self.barrier_cycles:12,.0f} ({self._pct(self.barrier_cycles)})",
            f"  accesses     : {self.accesses:,} "
            f"(hits per level: {self.level_hits}, misses: {self.memory_misses}, "
            f"prefetched: {self.prefetched})",
        ]
        return "\n".join(parts)

    def _pct(self, v: float) -> str:
        return f"{100 * v / self.cycles:.0f}%" if self.cycles else "0%"


def explain_kernel(trace: KernelTrace, spec: CPUSpec) -> CostBreakdown:
    """Aggregate the per-group cost components over the sampled groups."""
    model = CPUModel(spec)
    inst = mem = bar = 0.0
    accesses = misses = prefetched = 0
    level_hits: List[int] = []
    for g in trace.groups:
        c = model.time_group(g)
        inst += c.inst_cycles
        mem += c.mem_cycles
        bar += c.barrier_cycles
        accesses += c.accesses
        misses += c.memory_misses
        prefetched += c.prefetched
        if not level_hits:
            level_hits = list(c.level_hits)
        else:
            level_hits = [a + b for a, b in zip(level_hits, c.level_hits)]
    s = trace.scale
    return CostBreakdown(
        device=spec.name,
        cycles=s * (inst + mem + bar),
        inst_cycles=s * inst,
        mem_cycles=s * mem,
        barrier_cycles=s * bar,
        accesses=int(s * accesses),
        level_hits=[int(s * h) for h in level_hits],
        memory_misses=int(s * misses),
        prefetched=int(s * prefetched),
    )


def compare(
    with_local: KernelTrace, without_local: KernelTrace, spec: CPUSpec
) -> str:
    """Side-by-side explanation of a with/without comparison."""
    a = explain_kernel(with_local, spec)
    b = explain_kernel(without_local, spec)
    np_ratio = a.cycles / b.cycles if b.cycles else float("inf")
    lines = [
        f"with local memory:\n{a.render()}",
        f"\nwithout local memory (Grover):\n{b.render()}",
        f"\nnormalised performance: {np_ratio:.3f} "
        f"({'removal wins' if np_ratio > 1 else 'local memory wins'})",
    ]
    deltas = {
        "instructions": a.inst_cycles - b.inst_cycles,
        "memory": a.mem_cycles - b.mem_cycles,
        "barriers": a.barrier_cycles - b.barrier_cycles,
    }
    dominant = max(deltas, key=lambda k: abs(deltas[k]))
    sign = "saves" if deltas[dominant] > 0 else "costs"
    lines.append(
        f"dominant component: removing local memory {sign} "
        f"{abs(deltas[dominant]):,.0f} {dominant} cycles"
    )
    return "\n".join(lines)
