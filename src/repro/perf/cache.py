"""Set-associative LRU cache simulation (the reference oracle).

This per-access implementation is the semantic ground truth; the
vectorised fast path in :mod:`repro.perf.fastcache` must produce
bit-identical hit/miss/prefetch counts (enforced by the equivalence
test suite) and is what the performance models use by default.

The simulator is line-granular and driven by pre-computed numpy arrays
of line ids (the vectorisable part — extraction, collapsing of
consecutive same-line accesses — happens before the inherently
sequential LRU walk).

Set indexing uses the low bits of the line id, which is what makes
power-of-two row strides conflict-prone — the mechanism behind the
paper's "data elements are kicked out of caches before reuse"
observation for column-major matrix access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """One cache level: ``size_kb`` KiB, ``assoc``-way, LRU replacement."""

    def __init__(self, size_kb: float, assoc: int, line_size: int = 64, name: str = "") -> None:
        self.line_size = line_size
        self.assoc = assoc
        self.name = name
        n_lines = int(size_kb * 1024) // line_size
        self.n_sets = max(1, n_lines // assoc)
        # each set: python list of tags, MRU at the end
        self.sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self.sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """One access; returns True on hit."""
        ways = self.sets[line % self.n_sets]
        self.stats.accesses += 1
        if line in ways:
            # move to MRU position
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True
        ways.append(line)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def fill(self, line: int) -> None:
        """Insert without counting an access (prefetch fills)."""
        ways = self.sets[line % self.n_sets]
        if line in ways:
            ways.remove(line)
        ways.append(line)
        if len(ways) > self.assoc:
            ways.pop(0)


def collapse_consecutive(lines: np.ndarray) -> np.ndarray:
    """Drop immediately repeated line ids (intra-line spatial locality;
    those accesses pipeline for free and are already counted as
    instructions)."""
    if len(lines) == 0:
        return lines
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    return lines[keep]


@dataclass
class HierarchyCounts:
    """How many accesses were served by each level."""

    level_hits: List[int]
    memory: int
    prefetched: int = 0

    @property
    def total(self) -> int:
        return sum(self.level_hits) + self.memory


class CacheHierarchy:
    """Private L1/L2 (+ optional LLC slice) with a next-line prefetcher.

    The prefetcher tracks the last miss line: a memory access to the
    immediately following line within the same 4 KiB page is counted as
    ``prefetched`` (served at a fraction of memory latency) — this is
    what rewards streaming access over strided/column access.
    """

    def __init__(self, levels: List[SetAssocCache], prefetch: bool = True) -> None:
        self.levels = levels
        self.prefetch = prefetch

    def reset(self) -> None:
        for lv in self.levels:
            lv.reset()

    def fill(self, lines: np.ndarray) -> None:
        """Warm every level with ``lines`` (uncounted fills, in order)."""
        for lv in self.levels:
            for line in np.asarray(lines, dtype=np.int64).tolist():
                lv.fill(line)

    def run(self, lines: np.ndarray) -> HierarchyCounts:
        levels = self.levels
        n_levels = len(levels)
        hits = [0] * n_levels
        memory = 0
        prefetched = 0
        prev_miss = -2
        lines_per_page = 4096 // levels[0].line_size
        for line in lines.tolist():
            served = -1
            for i in range(n_levels):
                if levels[i].access(line):
                    served = i
                    break
            if served >= 0:
                hits[served] += 1
                # fill upper levels (inclusive hierarchy)
                for j in range(served):
                    levels[j].fill(line)
            else:
                memory += 1
                if (
                    self.prefetch
                    and line == prev_miss + 1
                    and (line % lines_per_page) != 0
                ):
                    prefetched += 1
                prev_miss = line
        return HierarchyCounts(hits, memory, prefetched)
