"""High-level timing helpers shared by benchmarks and the auto-tuner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.perf.cpumodel import CPUModel
from repro.perf.devices import CPUSpec, GPUSpec, device
from repro.perf.gpumodel import GPUModel
from repro.runtime.trace import KernelTrace

Spec = Union[CPUSpec, GPUSpec]


@dataclass
class KernelCost:
    device: str
    cycles: float

    def speedup_over(self, other: "KernelCost") -> float:
        return other.cycles / self.cycles


def model_for(spec_or_name: Union[Spec, str]):
    spec = device(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    return GPUModel(spec) if spec.is_gpu else CPUModel(spec)


def estimate_cost(trace: KernelTrace, spec_or_name: Union[Spec, str]) -> KernelCost:
    spec = device(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    model = model_for(spec)
    return KernelCost(spec.name, model.time_kernel(trace))


def normalized_performance(with_local: KernelCost, without_local: KernelCost) -> float:
    """The paper's metric: performance without local memory divided by
    performance with local memory (``> 1`` means removing local memory
    helped)."""
    return with_local.cycles / without_local.cycles


def classify(np_ratio: float, threshold: float = 0.05) -> str:
    """Gain/loss/similar classification at the paper's 5% threshold."""
    if np_ratio > 1.0 + threshold:
        return "gain"
    if np_ratio < 1.0 - threshold:
        return "loss"
    return "similar"
