"""Trace-driven performance models standing in for the paper's hardware.

The paper evaluates on real processors (SNB, Nehalem, Xeon Phi, and the
Fermi/Kepler/Tahiti GPUs of the motivation study).  We do not have that
silicon; instead, the interpreter's memory traces drive architectural
models that reproduce the *mechanisms* behind the paper's observations:

* cache-only CPUs (:mod:`repro.perf.cpumodel`): work-groups map to
  hardware threads that execute work-items serially between barriers
  (the Intel/Twin-Peaks execution scheme the paper cites); ``__local``
  memory is ordinary cached memory, so staging costs real instructions
  and cache traffic; set-associative caches expose the conflict misses
  that make column-major access patterns expensive — the reason local
  memory *helps* NVD-MM-B/AMD-MM on CPUs and removing it hurts;
* GPUs (:mod:`repro.perf.gpumodel`): per-warp coalescing (transactions =
  distinct segments), banked scratch-pad memory, and latency hiding —
  the reason removing local memory destroys Matrix Transpose on GPUs;
* devices (:mod:`repro.perf.devices`): parameter sets for the six
  platforms of the paper.

Absolute cycle counts are model estimates, not the authors' wall-clock
times; the reproduction targets the *shape* of the results (who wins,
roughly by what factor, where behaviour flips).
"""

from repro.perf.cache import CacheStats, SetAssocCache
from repro.perf.fastcache import (
    FastCacheHierarchy,
    FastSetAssocCache,
    cache_backend,
    make_hierarchy,
    set_cache_backend,
)
from repro.perf.devices import (
    CPUSpec,
    GPUSpec,
    DEVICES,
    CPU_DEVICES,
    GPU_DEVICES,
    device,
)
from repro.perf.cpumodel import CPUModel
from repro.perf.explain import CostBreakdown, compare, explain_kernel
from repro.perf.gpumodel import GPUModel
from repro.perf.timing import KernelCost, estimate_cost, normalized_performance

__all__ = [
    "CacheStats",
    "SetAssocCache",
    "FastCacheHierarchy",
    "FastSetAssocCache",
    "cache_backend",
    "make_hierarchy",
    "set_cache_backend",
    "CPUSpec",
    "GPUSpec",
    "DEVICES",
    "CPU_DEVICES",
    "GPU_DEVICES",
    "device",
    "CPUModel",
    "CostBreakdown",
    "GPUModel",
    "KernelCost",
    "compare",
    "estimate_cost",
    "explain_kernel",
    "normalized_performance",
]
