"""Vectorised set-associative LRU cache simulation — the fast path.

Semantically bit-identical to the reference simulator in
:mod:`repro.perf.cache` (which stays as the equivalence oracle), but
asymptotically and practically faster on realistic traces.

Two observations turn the per-access LRU walk into batch array work:

1. **LRU is offline.**  The reference cache inserts on every miss, and
   ``fill`` has the same state effect as ``access``, so a set's LRU
   stack is always the recency order of the distinct lines that touched
   it.  An access therefore hits iff fewer than ``assoc`` *distinct*
   same-set lines occurred since its previous occurrence — the classic
   stack-distance criterion.  In particular a set touched by at most
   ``assoc`` distinct lines over the whole stream can never evict:
   every repeat access hits, decidable with a few array passes and no
   per-access Python.  Real traces (tiled kernels reusing a warm local
   arena) resolve >90% of their accesses this way; only the sets that
   genuinely overflow their ways are walked sequentially, which bounds
   the worst case at reference speed.

2. **Hierarchy fills are no-ops.**  Because ``access`` inserts on miss
   before lower levels are probed, the upper-level ``fill`` calls made
   after a lower-level hit never change cache state (the line is
   already at MRU).  Each level's input stream is therefore exactly the
   subsequence of lines that missed every level above it, and levels
   are simulated one after another on filtered arrays.

Backend selection: the models default to this fast path; set the
``cache_backend`` session variable (``REPRO_CACHE_BACKEND=reference``,
a ``--config`` entry, or :func:`set_cache_backend`) to force the
reference oracle, e.g. when debugging a suspected simulator issue.  The
``perf_memo`` variable (``REPRO_PERF_MEMO=0``) disables group-trace
memoization in the models the same way.  Both knobs live in the
session config registry (:mod:`repro.session.config`); this module
performs config *lookups*, never raw environment reads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.cache import CacheHierarchy, CacheStats, HierarchyCounts, SetAssocCache

#: (size_kb, assoc, line_size, name) — the constructor signature shared
#: by both cache implementations
LevelSpec = Tuple[float, int, int, str]

_VALID_BACKENDS = ("fast", "reference")


def cache_backend() -> str:
    """The active simulation backend: ``'fast'`` or ``'reference'``.

    Resolved through the current session — defaults < config file/dict
    (where :func:`set_cache_backend` writes) < ``$REPRO_CACHE_BACKEND``.
    """
    from repro.session import current_session

    return current_session().get("cache_backend")


def set_cache_backend(name: str) -> str:
    """Set the session-default backend; returns the previous one.

    Writes the current session's config layer, so an explicit
    ``$REPRO_CACHE_BACKEND`` still overrides it (historical semantics).
    """
    from repro.session import current_session

    if name not in _VALID_BACKENDS:
        raise ValueError(f"backend must be one of {_VALID_BACKENDS}, got {name!r}")
    return current_session().set_config("cache_backend", name)


def memo_enabled() -> bool:
    """Group-trace memoization default (``REPRO_PERF_MEMO=0`` disables)."""
    from repro.session import current_session

    return current_session().get("perf_memo")


def lru_hits(lines: np.ndarray, n_sets: int, assoc: int) -> np.ndarray:
    """Per-access hit mask of an ``assoc``-way LRU cache with ``n_sets``
    sets over a line-id stream, computed without sequential state.

    Accesses bind only within a set, so the stream is re-ordered
    set-major (stable) and each access is classified by the
    stack-distance criterion — it hits iff it has a previous occurrence
    and fewer than ``assoc`` *distinct* same-set lines appeared since.
    Two tiers resolve the stream:

    1. **Unconflicted sets** (vectorised) — a set touched by at most
       ``assoc`` distinct lines over the whole stream can never evict,
       so every access with a previous occurrence hits.  On real
       traces (tiled kernels with a warm local arena) this resolves
       the vast majority of accesses in a handful of array passes.
    2. **Conflicted sets** (compact sequential walk) — sets that do
       overflow their ways carry an irreducible sequential dependency;
       their sub-stream is walked with the reference LRU update, which
       bounds the worst case (every set conflicted) at reference
       speed while the common case stays array-bound.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    n = len(lines)
    if n == 0:
        return np.zeros(0, dtype=bool)

    # set-major stable ordering: windows (prev, i) become contiguous
    # per-set runs, so position comparisons never cross sets
    sets = lines % n_sets
    order = np.argsort(sets, kind="stable")
    bucketed = lines[order]

    has_prev, first_lines = _prev_exists(bucketed)

    # tier 1: sets that never overflow their ways
    u_per_set = np.bincount(
        (first_lines % n_sets).astype(np.intp), minlength=n_sets
    )
    unconflicted = u_per_set <= assoc
    in_small = unconflicted[sets[order]]

    hit_b = np.zeros(n, dtype=bool)
    hit_b[in_small] = has_prev[in_small]
    big_idx = np.flatnonzero(~in_small)
    if big_idx.size:
        # the sub-stream keeps set-major grouping and per-set order,
        # and conflicted sets appear in it wholesale, so windows are
        # unchanged
        hit_b[big_idx] = _conflicted_hits(bucketed[big_idx], n_sets, assoc)

    hits = np.empty(n, dtype=bool)
    hits[order] = hit_b
    return hits


def _prev_exists(bucketed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(has-previous-occurrence mask, first occurrence of each line)."""
    by_line = np.argsort(bucketed, kind="stable")
    sorted_lines = bucketed[by_line]
    same = np.zeros(len(bucketed), dtype=bool)
    np.equal(sorted_lines[1:], sorted_lines[:-1], out=same[1:])
    has_prev = np.zeros(len(bucketed), dtype=bool)
    has_prev[by_line] = same
    return has_prev, sorted_lines[~same]


def _conflicted_hits(sub: np.ndarray, n_sets: int, assoc: int) -> np.ndarray:
    """Hit mask for the set-major sub-stream of conflicted sets.

    The sub-stream is grouped by set (one contiguous run per set), so
    the reference LRU walk runs without per-access set lookups: the
    way list resets at each run boundary.  This is the only sequential
    part of the fast path, and it touches only sets that actually
    overflow their associativity.
    """
    out = np.empty(len(sub), dtype=bool)
    cur_set = -1
    ways: List[int] = []
    for i, line in enumerate(sub.tolist()):
        s = line % n_sets
        if s != cur_set:
            cur_set = s
            ways = []
        if line in ways:
            ways.remove(line)
            ways.append(line)
            out[i] = True
        else:
            ways.append(line)
            if len(ways) > assoc:
                ways.pop(0)
            out[i] = False
    return out


class FastSetAssocCache:
    """Drop-in fast twin of :class:`repro.perf.cache.SetAssocCache`.

    Optimised for batch streaming: :meth:`access_many`/:meth:`fill_many`
    retain the stream history and evaluate hits offline, so a fill
    batch followed by one access batch (the models' usage) costs two
    vectorised passes.  The scalar ``access``/``fill`` shims exist for
    API compatibility and tests; they re-scan history and should not be
    used in hot loops.
    """

    def __init__(self, size_kb: float, assoc: int, line_size: int = 64, name: str = "") -> None:
        self.line_size = line_size
        self.assoc = assoc
        self.name = name
        n_lines = int(size_kb * 1024) // line_size
        self.n_sets = max(1, n_lines // assoc)
        self._chunks: List[np.ndarray] = []
        self.stats = CacheStats()

    def reset(self) -> None:
        self._chunks = []
        self.stats = CacheStats()

    # -- vector interface ------------------------------------------------------
    def access_many(self, lines: np.ndarray) -> np.ndarray:
        """Simulate a line-id stream; returns the per-access hit mask."""
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        if len(lines) == 0:
            return np.zeros(0, dtype=bool)
        self._chunks.append(lines)
        if len(self._chunks) == 1:
            stream = lines
        else:
            stream = np.concatenate(self._chunks)
        hits = lru_hits(stream, self.n_sets, self.assoc)[len(stream) - len(lines):]
        self.stats.accesses += len(hits)
        self.stats.hits += int(hits.sum())
        return hits

    def fill_many(self, lines: np.ndarray) -> None:
        """Insert lines (MRU order) without counting accesses.

        A fill has the same state effect as an access — insert/move to
        MRU, evicting the LRU way on overflow — it just leaves the
        stats untouched, exactly like the reference ``fill``.  Because
        the mask is not needed, the fill just extends the retained
        history; hit evaluation happens lazily at the next access
        batch.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        if len(lines):
            self._chunks.append(lines)

    # -- scalar compatibility shims -------------------------------------------
    def access(self, line: int) -> bool:
        return bool(self.access_many(np.array([line], dtype=np.int64))[0])

    def fill(self, line: int) -> None:
        self.fill_many(np.array([line], dtype=np.int64))


class FastCacheHierarchy:
    """Fast twin of :class:`repro.perf.cache.CacheHierarchy`."""

    def __init__(self, levels: List[FastSetAssocCache], prefetch: bool = True) -> None:
        self.levels = levels
        self.prefetch = prefetch

    def reset(self) -> None:
        for lv in self.levels:
            lv.reset()

    def fill(self, lines: np.ndarray) -> None:
        """Warm every level with ``lines`` (uncounted fills, in order)."""
        for lv in self.levels:
            lv.fill_many(lines)

    def run(self, lines: np.ndarray) -> HierarchyCounts:
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        level_hits: List[int] = []
        remaining = lines
        for lv in self.levels:
            hit = lv.access_many(remaining)
            level_hits.append(int(hit.sum()))
            remaining = remaining[~hit]
        memory = len(remaining)
        prefetched = 0
        if self.prefetch and memory > 1:
            # reference rule: a memory miss one line after the previous
            # memory miss is prefetched, unless it starts a new 4 KiB page
            lines_per_page = 4096 // self.levels[0].line_size
            adjacent = remaining[1:] == remaining[:-1] + 1
            inside_page = (remaining[1:] % lines_per_page) != 0
            prefetched = int(np.count_nonzero(adjacent & inside_page))
        return HierarchyCounts(level_hits, memory, prefetched)


def make_hierarchy(
    level_specs: Sequence[LevelSpec],
    prefetch: bool = True,
    backend: Optional[str] = None,
):
    """Build a cache hierarchy on the selected backend.

    ``backend`` overrides the process default (see :func:`cache_backend`);
    pass ``'reference'`` to force the per-access oracle.
    """
    b = backend if backend is not None else cache_backend()
    if b == "fast":
        return FastCacheHierarchy(
            [FastSetAssocCache(*spec) for spec in level_specs], prefetch=prefetch
        )
    if b == "reference":
        return CacheHierarchy(
            [SetAssocCache(*spec) for spec in level_specs], prefetch=prefetch
        )
    raise ValueError(f"backend must be one of {_VALID_BACKENDS}, got {b!r}")
