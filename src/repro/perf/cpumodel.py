"""Cache-only CPU timing model.

Execution scheme (what Intel's CPU runtime and Twin Peaks do, as cited
in the paper's Section VI-C):

* each work-group runs on one hardware thread;
* between barriers, the work-items of the group execute *serially* —
  this is the implicit tiling that gives CPUs data locality without
  local memory;
* ``__local`` memory is ordinary cacheable memory: staging data through
  it costs real instructions and real cache traffic (the paper's
  motivation for removing it).

Cost model per work-group::

    cycles = instructions / ipc
           + sum(level_hits * lat_level) / mlp
           + (memory_misses_prefetched * lat_mem * prefetch_factor
              + other_misses * lat_mem) / mlp
           + barriers * work_items * barrier_cost

The private L1/L2 are simulated per group (fresh — a group's stream is
what the thread sees); the shared LLC is approximated by a
per-thread slice of ``l3_size / cores``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.ir.types import AddressSpace
from repro.session import events
from repro.perf.cache import collapse_consecutive
from repro.perf.devices import CPUSpec
from repro.perf.fastcache import make_hierarchy, memo_enabled
from repro.runtime.trace import GroupTrace, KernelTrace

_CACHED_SPACES = (AddressSpace.GLOBAL, AddressSpace.CONSTANT, AddressSpace.LOCAL)


@dataclass
class CPUGroupCost:
    inst_cycles: float
    mem_cycles: float
    barrier_cycles: float
    accesses: int
    level_hits: List[int]
    memory_misses: int
    prefetched: int

    @property
    def cycles(self) -> float:
        return self.inst_cycles + self.mem_cycles + self.barrier_cycles


class CPUModel:
    def __init__(
        self,
        spec: CPUSpec,
        warm_local: bool = True,
        memoize: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.spec = spec
        #: model the __local arena as thread-resident (cache-warm); the
        #: ablation benchmark sets False to show why this matters
        self.warm_local = warm_local
        #: reuse the simulated cost of groups with an identical
        #: relative access pattern (see GroupTrace.fingerprint);
        #: defaults to the REPRO_PERF_MEMO switch
        self.memoize = memo_enabled() if memoize is None else memoize
        #: cache backend override ('fast'/'reference'); None = process default
        self.backend = backend
        self._group_costs: Dict[bytes, CPUGroupCost] = {}

    def _hierarchy(self):
        s = self.spec
        specs = [
            (s.l1[0], s.l1[1], s.line_size, "L1"),
            (s.l2[0], s.l2[1], s.line_size, "L2"),
        ]
        if s.l3 is not None:
            # one thread's slice of the shared LLC
            specs.append((s.l3[0] / s.cores, s.l3[1], s.line_size, "LLC"))
        return make_hierarchy(specs, backend=self.backend)

    def time_group(self, gt: GroupTrace) -> CPUGroupCost:
        if self.memoize:
            key = gt.fingerprint()
            cached = self._group_costs.get(key)
            if cached is not None:
                if events.bus_active():
                    events.emit(
                        "model_memo_hit",
                        device=self.spec.name,
                        fingerprint_sha1=hashlib.sha1(key).hexdigest()[:12],
                    )
                return cached
        s = self.spec
        stream = gt.serialized(_CACHED_SPACES)
        all_lines = stream.line_ids(s.line_size)
        hier = self._hierarchy()
        if self.warm_local:
            # the __local arena belongs to the executing thread and is
            # reused across thousands of work-groups — warm, not cold
            local_lines = np.unique(
                all_lines[stream.spaces == int(AddressSpace.LOCAL)]
            )
            hier.fill(local_lines)
        lines = collapse_consecutive(all_lines)
        counts = hier.run(lines)

        lat = [s.lat_l1, s.lat_l2, s.lat_l3]
        mem_cycles = sum(h * l for h, l in zip(counts.level_hits, lat))
        full = counts.memory - counts.prefetched
        mem_cycles += full * s.lat_mem + counts.prefetched * s.lat_mem * s.prefetch_factor
        mem_cycles /= s.mlp

        inst_cycles = gt.inst_count / s.ipc
        barrier_cycles = gt.barriers * gt.work_items * s.barrier_cost
        cost = CPUGroupCost(
            inst_cycles=inst_cycles,
            mem_cycles=mem_cycles,
            barrier_cycles=barrier_cycles,
            accesses=len(lines),
            level_hits=counts.level_hits,
            memory_misses=counts.memory,
            prefetched=counts.prefetched,
        )
        if self.memoize:
            self._group_costs[key] = cost
        return cost

    def time_kernel(self, trace: KernelTrace) -> float:
        """Total cycle estimate for the launch (single-thread-equivalent;
        the core count cancels in normalised comparisons)."""
        total = sum(self.time_group(g).cycles for g in trace.groups)
        cycles = trace.scale * total
        events.emit(
            "model_kernel_timed",
            device=self.spec.name,
            cycles=float(cycles),
            groups=len(trace.groups),
        )
        return cycles
