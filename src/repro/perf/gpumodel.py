"""GPU timing model: coalescing, banked scratch-pad, latency hiding.

Used by the Fig. 2 motivation experiment (Fermi / Kepler / Tahiti).

Per vectorised memory event the work-group is cut into warps:

* **global** accesses cost one transaction per distinct ``segment``-byte
  block touched by the warp (the coalescing rule) — an uncoalesced
  column access explodes into ``warp_size`` transactions, which is what
  makes Matrix Transpose without local memory catastrophic on GPUs;
  transactions then probe the (optional) L1 and the L2;
* **local** (scratch-pad) accesses cost the bank-conflict degree of the
  warp: the maximum number of *distinct words* wanted from one bank.

Compute cost is issue-throughput-bound; the final group cost is
``compute + (1 - latency_hiding) * memory`` — multithreading overlaps
most memory time with compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.ir.types import AddressSpace
from repro.perf.cache import CacheHierarchy, SetAssocCache
from repro.perf.devices import GPUSpec
from repro.runtime.trace import GroupTrace, KernelTrace, MemEvent


@dataclass
class GPUGroupCost:
    compute_cycles: float
    mem_cycles: float
    spm_cycles: float
    transactions: int

    @property
    def cycles(self) -> float:
        return self.compute_cycles + self.mem_cycles + self.spm_cycles


class GPUModel:
    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    def _caches(self) -> CacheHierarchy:
        s = self.spec
        levels = []
        if s.global_l1:
            levels.append(SetAssocCache(s.l1_kb, s.l1_assoc, s.line_size, "L1"))
        levels.append(
            SetAssocCache(s.l2_kb / s.compute_units, s.l2_assoc, s.line_size, "L2")
        )
        return CacheHierarchy(levels, prefetch=False)

    def _warp_slices(self, ev: MemEvent) -> List[np.ndarray]:
        w = self.spec.warp_size
        warps = ev.lanes // w
        out = []
        for wi in np.unique(warps):
            out.append(ev.offsets[warps == wi])
        return out

    def time_group(self, gt: GroupTrace) -> GPUGroupCost:
        s = self.spec
        caches = self._caches()
        mem_cycles = 0.0
        spm_cycles = 0.0
        transactions = 0

        for ev in gt.events:
            if ev.space == AddressSpace.LOCAL:
                for offs in self._warp_slices(ev):
                    words = offs // 4
                    banks = words % s.spm_banks
                    # conflict degree: distinct words per bank (broadcast
                    # of the same word is free)
                    degree = 1
                    for b in np.unique(banks):
                        nwords = len(np.unique(words[banks == b]))
                        if nwords > degree:
                            degree = nwords
                    spm_cycles += degree * s.cost_spm
                continue
            # global/constant: coalescing into segments
            for offs in self._warp_slices(ev):
                segs = np.unique(offs // s.segment)
                transactions += len(segs)
                for seg in segs.tolist():
                    line = (ev.buffer_id << 40) | seg
                    served = -1
                    for i, lv in enumerate(caches.levels):
                        if lv.access(line):
                            served = i
                            break
                    if served < 0:
                        mem_cycles += s.cost_mem
                    elif s.global_l1 and served == 0:
                        mem_cycles += s.cost_l1
                    else:
                        mem_cycles += s.cost_l2

        compute_cycles = gt.inst_count / s.issue_width
        hidden = 1.0 - s.latency_hiding
        return GPUGroupCost(
            compute_cycles=compute_cycles,
            mem_cycles=mem_cycles * hidden,
            spm_cycles=spm_cycles,
            transactions=transactions,
        )

    def time_kernel(self, trace: KernelTrace) -> float:
        total = sum(self.time_group(g).cycles for g in trace.groups)
        return trace.scale * total
