"""GPU timing model: coalescing, banked scratch-pad, latency hiding.

Used by the Fig. 2 motivation experiment (Fermi / Kepler / Tahiti).

Per vectorised memory event the work-group is cut into warps:

* **global** accesses cost one transaction per distinct ``segment``-byte
  block touched by the warp (the coalescing rule) — an uncoalesced
  column access explodes into ``warp_size`` transactions, which is what
  makes Matrix Transpose without local memory catastrophic on GPUs;
  transactions then probe the (optional) L1 and the L2;
* **local** (scratch-pad) accesses cost the bank-conflict degree of the
  warp: the maximum number of *distinct words* wanted from one bank.

Compute cost is issue-throughput-bound; the final group cost is
``compute + (1 - latency_hiding) * memory`` — multithreading overlaps
most memory time with compute.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.ir.types import AddressSpace
from repro.session import events
from repro.perf.devices import GPUSpec
from repro.perf.fastcache import make_hierarchy, memo_enabled
from repro.runtime.trace import GroupTrace, KernelTrace, MemEvent


@dataclass
class GPUGroupCost:
    compute_cycles: float
    mem_cycles: float
    spm_cycles: float
    transactions: int

    @property
    def cycles(self) -> float:
        return self.compute_cycles + self.mem_cycles + self.spm_cycles


class GPUModel:
    def __init__(
        self,
        spec: GPUSpec,
        memoize: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.spec = spec
        #: reuse the simulated cost of groups with an identical
        #: relative access pattern (see GroupTrace.fingerprint)
        self.memoize = memo_enabled() if memoize is None else memoize
        self.backend = backend
        self._group_costs: Dict[bytes, GPUGroupCost] = {}

    def _caches(self):
        s = self.spec
        specs = []
        if s.global_l1:
            specs.append((s.l1_kb, s.l1_assoc, s.line_size, "L1"))
        specs.append((s.l2_kb / s.compute_units, s.l2_assoc, s.line_size, "L2"))
        return make_hierarchy(specs, prefetch=False, backend=self.backend)

    def _spm_degrees(self, ev: MemEvent) -> np.ndarray:
        """Bank-conflict degree per warp: the maximum number of distinct
        words wanted from one bank (broadcast of the same word is free)."""
        s = self.spec
        warps = ev.lanes // s.warp_size
        words = ev.offsets // 4
        banks = words % s.spm_banks
        # distinct (warp, bank, word) requests, lexicographically sorted
        tri = np.unique(np.stack([warps, banks, words], axis=1), axis=0)
        # word count per (warp, bank) run, then max over each warp's banks
        wb_change = np.empty(len(tri), dtype=bool)
        wb_change[0] = True
        wb_change[1:] = np.any(tri[1:, :2] != tri[:-1, :2], axis=1)
        wb_starts = np.flatnonzero(wb_change)
        counts = np.diff(np.append(wb_starts, len(tri)))
        warp_of = tri[wb_starts, 0]
        w_change = np.empty(len(warp_of), dtype=bool)
        w_change[0] = True
        w_change[1:] = warp_of[1:] != warp_of[:-1]
        return np.maximum.reduceat(counts, np.flatnonzero(w_change))

    def _transaction_lines(self, ev: MemEvent) -> np.ndarray:
        """Coalesce a global/constant event into per-warp segment
        transactions: one line id per distinct ``segment``-byte block
        touched by each warp, warp-major, segments ascending."""
        s = self.spec
        warps = ev.lanes // s.warp_size
        segs = ev.offsets // s.segment
        pairs = np.unique(np.stack([warps, segs], axis=1), axis=0)
        return (np.int64(ev.buffer_id) << 40) | pairs[:, 1].astype(np.int64)

    def time_group(self, gt: GroupTrace) -> GPUGroupCost:
        if self.memoize:
            key = gt.fingerprint()
            cached = self._group_costs.get(key)
            if cached is not None:
                if events.bus_active():
                    events.emit(
                        "model_memo_hit",
                        device=self.spec.name,
                        fingerprint_sha1=hashlib.sha1(key).hexdigest()[:12],
                    )
                return cached
        s = self.spec
        spm_cycles = 0.0
        streams: List[np.ndarray] = []
        for ev in gt.events:
            if ev.space == AddressSpace.LOCAL:
                spm_cycles += int(self._spm_degrees(ev).sum()) * s.cost_spm
            else:
                streams.append(self._transaction_lines(ev))

        mem_cycles = 0.0
        transactions = 0
        if streams:
            stream = np.concatenate(streams)
            transactions = len(stream)
            counts = self._caches().run(stream)
            level_costs = (
                [s.cost_l1, s.cost_l2] if s.global_l1 else [s.cost_l2]
            )
            mem_cycles = sum(
                h * c for h, c in zip(counts.level_hits, level_costs)
            )
            mem_cycles += counts.memory * s.cost_mem

        compute_cycles = gt.inst_count / s.issue_width
        hidden = 1.0 - s.latency_hiding
        cost = GPUGroupCost(
            compute_cycles=compute_cycles,
            mem_cycles=mem_cycles * hidden,
            spm_cycles=spm_cycles,
            transactions=transactions,
        )
        if self.memoize:
            self._group_costs[key] = cost
        return cost

    def time_kernel(self, trace: KernelTrace) -> float:
        total = sum(self.time_group(g).cycles for g in trace.groups)
        cycles = trace.scale * total
        events.emit(
            "model_kernel_timed",
            device=self.spec.name,
            cycles=float(cycles),
            groups=len(trace.groups),
        )
        return cycles
