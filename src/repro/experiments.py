"""Experiment driver: regenerates the paper's tables and figures.

Traces are device-independent, so each (application, variant) is
executed once at the requested scale and then timed on every device
model; results are memoised process-wide because pytest-benchmark runs
each benchmark body several times.

``figure10``/``table4`` accept ``workers=N`` to fan the matrix out over
the process-pool engine (:func:`repro.parallel.run_matrix`); parallel
values are bit-identical to serial ones and are folded into the same
process-wide memo, so mixed serial/parallel callers stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.harness import run_app
from repro.apps.registry import TABLE_ORDER, get_app, table_apps
from repro.parallel.matrix import MatrixResult, run_matrix  # noqa: F401  (re-export)
from repro.perf.devices import CPU_DEVICES, GPU_DEVICES
from repro.perf.timing import classify, estimate_cost
from repro.runtime.trace import KernelTrace

#: work-groups simulated per launch at bench scale (extrapolated)
BENCH_SAMPLE_GROUPS = 4

_trace_cache: Dict[Tuple[str, str, str], KernelTrace] = {}
_np_cache: Dict[Tuple[str, str, str], float] = {}


def app_trace(app_id: str, variant: str, scale: str = "bench") -> KernelTrace:
    key = (app_id, variant, scale)
    if key not in _trace_cache:
        run = run_app(
            get_app(app_id),
            variant,
            scale,
            collect_trace=True,
            sample_groups=BENCH_SAMPLE_GROUPS if scale == "bench" else None,
        )
        assert run.trace is not None
        _trace_cache[key] = run.trace
    return _trace_cache[key]


def normalized_perf(app_id: str, device_name: str, scale: str = "bench") -> float:
    """The paper's metric on one app/device: cycles_with / cycles_without
    (> 1 means disabling local memory improved performance)."""
    key = (app_id, device_name, scale)
    if key not in _np_cache:
        t_with = app_trace(app_id, "with", scale)
        t_without = app_trace(app_id, "without", scale)
        c_with = estimate_cost(t_with, device_name)
        c_without = estimate_cost(t_without, device_name)
        _np_cache[key] = c_with.cycles / c_without.cycles
    return _np_cache[key]


@dataclass
class Fig10Series:
    """One subplot of Figure 10: normalised perf per app on one device."""

    device: str
    values: Dict[str, float] = field(default_factory=dict)

    def classify_all(self, threshold: float = 0.05) -> Dict[str, str]:
        return {a: classify(v, threshold) for a, v in self.values.items()}


def _prefill_np_cache(
    devices: Tuple[str, ...], workers: Optional[int], scale: str
) -> None:
    """Fan the (app × device) grid out over worker processes.

    The parallel engine's values are bit-identical to the serial path,
    so they land in ``_np_cache`` and every downstream consumer —
    serial or parallel — reads the same floats.
    """
    from repro.parallel.matrix import run_matrix

    missing = [
        dev for dev in devices
        if any((a, dev, scale) not in _np_cache for a in TABLE_ORDER)
    ]
    if not missing:
        return
    matrix = run_matrix(
        apps=TABLE_ORDER, devices=missing, workers=workers, scale=scale
    )
    for dev, per_app in matrix.values.items():
        for app_id, value in per_app.items():
            _np_cache[(app_id, dev, scale)] = value


def figure10(
    device_name: str, scale: str = "bench", workers: Optional[int] = None
) -> Fig10Series:
    if workers is not None and workers > 1:
        _prefill_np_cache((device_name,), workers, scale)
    series = Fig10Series(device_name)
    for app_id in TABLE_ORDER:
        series.values[app_id] = normalized_perf(app_id, device_name, scale)
    return series


@dataclass
class Table4:
    """Gain/loss/similar distribution over the 33 CPU test cases."""

    per_device: Dict[str, Dict[str, int]]

    @property
    def totals(self) -> Dict[str, int]:
        out = {"gain": 0, "loss": 0, "similar": 0}
        for counts in self.per_device.values():
            for k, v in counts.items():
                out[k] += v
        return out

    @property
    def cases(self) -> int:
        return sum(self.totals.values())


def table4(
    scale: str = "bench",
    threshold: float = 0.05,
    workers: Optional[int] = None,
) -> Table4:
    if workers is not None and workers > 1:
        _prefill_np_cache(tuple(CPU_DEVICES), workers, scale)
    per_device = {}
    for dev in CPU_DEVICES:
        series = figure10(dev, scale)
        counts = {"gain": 0, "loss": 0, "similar": 0}
        for verdict in series.classify_all(threshold).values():
            counts[verdict] += 1
        per_device[dev] = counts
    return Table4(per_device)


#: the two applications of the Fig. 2 motivation study; the paper's MM
#: case manually removes the local tile of matrix A while keeping B's
#: (Section II-C), i.e. the NVD-MM-A variant
FIG2_APPS = ("NVD-MT", "NVD-MM-A")


def figure2(scale: str = "bench") -> Dict[str, Dict[str, float]]:
    """Normalised performance of MT and MM on all six platforms."""
    out: Dict[str, Dict[str, float]] = {}
    for app_id in FIG2_APPS:
        label = "MT" if "MT" in app_id else "MM"
        out[label] = {}
        for dev in list(GPU_DEVICES) + list(CPU_DEVICES):
            out[label][dev] = normalized_perf(app_id, dev, scale)
    return out


def clear_caches() -> None:
    _trace_cache.clear()
    _np_cache.clear()
