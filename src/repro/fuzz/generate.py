"""Seeded generative grammar over OpenCL kernels (the fuzzer frontend).

Each case is a small typed AST — a list of phases separated by work-group
barriers, each phase a list of statements drawn from a weighted grammar —
rendered to OpenCL C by :meth:`FuzzCase.source`.  The grammar deliberately
spans the whole decidability spectrum of the analysis stack:

* affine injective local indexing (statically provably race-free),
* affine colliding indexing (statically provably racy),
* non-affine indexing — ``%``, ``^``, ``li*li`` — that the static
  analyzer must *defer* and the dynamic replay decides,
* argument-shifted indexing (``li + P``: group-uniform delta deferrals),
* divergent guards, group-varying guards (tape-eviction triggers),
  uniform guards and dead branches,
* legal Grover software-cache staging (``lm[li] = in[wi*L+li]`` …
  ``lm[L-1-li]``), computed (non-global) staging and unstaged reads,
* multi-barrier phases and barriers under divergent guards.

Two invariants hold **by construction** so the differential oracle is
sound:

1. every generated index is in bounds for its buffer (no
   :class:`~repro.runtime.errors.MemoryFault` can occur), and
2. each work-item writes global memory only at ``out[gi]`` — work-groups
   are independent, which is exactly the precondition of the parallel
   engine's bit-identity contract.

Generation is a pure function of ``(root_seed, index)``: the same seed
reproduces byte-identical sources in any process (asserted by
``tests/test_fuzz_determinism.py``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple, Union

__all__ = [
    "Stmt",
    "Raw",
    "BarrierStmt",
    "Block",
    "FuzzCase",
    "derive_case_seed",
    "generate_case",
    "render_body",
]

#: scalar argument value every case is launched with (see ``oracle.py``)
P_VALUE = 2


# ---------------------------------------------------------------------------
# the statement AST (what the shrinker operates on)
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of the three statement shapes."""

    __slots__ = ()


@dataclass
class Raw(Stmt):
    """A single flat statement, already rendered (``lm0[li] = in[gi];``)."""

    text: str


@dataclass
class BarrierStmt(Stmt):
    """``barrier(CLK_LOCAL_MEM_FENCE);``"""


@dataclass
class Block(Stmt):
    """A guarded or looped region: ``header { body }``."""

    header: str  # e.g. "if (li < 4)" or "for (int k0 = 0; k0 < 3; ++k0)"
    body: List[Stmt] = field(default_factory=list)


def render_body(stmts: Sequence[Stmt], indent: int = 1) -> List[str]:
    pad = "    " * indent
    lines: List[str] = []
    for s in stmts:
        if isinstance(s, Raw):
            lines.append(pad + s.text)
        elif isinstance(s, BarrierStmt):
            lines.append(pad + "barrier(CLK_LOCAL_MEM_FENCE);")
        elif isinstance(s, Block):
            lines.append(pad + s.header + " {")
            lines.extend(render_body(s.body, indent + 1))
            lines.append(pad + "}")
        else:  # pragma: no cover - the AST is closed
            raise TypeError(f"unknown Stmt {s!r}")
    return lines


# ---------------------------------------------------------------------------
# the case
# ---------------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One generated kernel plus everything needed to launch and judge it."""

    index: int
    case_seed: int
    kernel_name: str
    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    in_elems: int
    p_value: int
    locals_: List[Tuple[str, int]]  # (array name, element count)
    body: List[Stmt]
    features: Tuple[str, ...]

    def source(self) -> str:
        lines = [
            f"__kernel void {self.kernel_name}(__global float* out, "
            "__global const float* in, int P)",
            "{",
        ]
        for name, elems in self.locals_:
            lines.append(f"    __local float {name}[{elems}];")
        lines += [
            "    int li = get_local_id(0);",
            "    int gi = get_global_id(0);",
            "    int wi = get_group_id(0);",
            "    float acc = 0.0f;",
        ]
        lines.extend(render_body(self.body))
        lines += ["    out[gi] = acc;", "}"]
        return "\n".join(lines) + "\n"

    def replace_body(
        self,
        body: List[Stmt],
        locals_: Union[List[Tuple[str, int]], None] = None,
    ) -> "FuzzCase":
        """A structural copy with a different body (shrinker primitive)."""
        return FuzzCase(
            index=self.index,
            case_seed=self.case_seed,
            kernel_name=self.kernel_name,
            global_size=self.global_size,
            local_size=self.local_size,
            in_elems=self.in_elems,
            p_value=self.p_value,
            locals_=list(self.locals_ if locals_ is None else locals_),
            body=body,
            features=self.features,
        )


def derive_case_seed(root_seed: int, index: int) -> int:
    """A stable, well-mixed per-case seed (identical across processes)."""
    h = hashlib.sha256(f"repro-fuzz:{root_seed}:{index}".encode()).digest()
    return int.from_bytes(h[:8], "big")


# ---------------------------------------------------------------------------
# index and value sub-grammars
# ---------------------------------------------------------------------------


class _Gen:
    """Grammar state for one case."""

    def __init__(self, rng: random.Random, L: int, groups: int, in_elems: int):
        self.rng = rng
        self.L = L
        self.groups = groups
        self.G = L * groups
        self.in_elems = in_elems
        self.features: set = set()
        self.loop_depth = 0
        self.n_loops = 0

    # -- local indices (array of S elements, lanes 0..L-1) ------------------
    def local_index(self, S: int) -> str:
        rng, L = self.rng, self.L
        mode = rng.choices(
            ["affine-inj", "affine-mirror", "const", "nonaffine-inj",
             "nonaffine-collide", "square", "arg-shift"],
            weights=[30, 12, 6, 14, 10, 8, 6],
        )[0]
        if mode == "affine-inj":
            a = rng.choice((1, 1, 2, 3))
            b = rng.randint(0, S - 1 - a * (L - 1))
            self.features.add("idx-affine")
            if a == 1 and b == 0:
                return "li"
            if a == 1:
                return f"(li + {b})"
            return f"({a} * li + {b})"
        if mode == "affine-mirror":
            b = rng.randint(0, S - L)
            self.features.add("idx-affine")
            return f"({L - 1 + b} - li)"
        if mode == "const":
            self.features.add("idx-const")
            return str(rng.randint(0, S - 1))
        if mode == "nonaffine-inj":
            self.features.add("idx-nonaffine")
            return rng.choice([f"((li * 17) % {S})", "(li ^ 1)"])
        if mode == "nonaffine-collide":
            self.features.add("idx-nonaffine")
            return f"(li % {max(2, L // 2)})"
        if mode == "square":
            # injective for L=8 under %64; collides for L=16 — the replay
            # decides, the static analyzer can only defer
            self.features.add("idx-nonaffine")
            return f"((li * li) % {S})"
        self.features.add("idx-arg-shift")  # arg-shift; in bounds: P==2
        return "(li + P)"

    # -- global load indices (always < in_elems by construction) ------------
    def global_index(self, loop_var: str = "") -> str:
        rng, L, G, N = self.rng, self.L, self.G, self.in_elems
        choices = ["gi", f"(wi * {L} + li)",
                   f"((gi * 2 + {rng.randint(0, 7)}) % {N})",
                   f"(gi ^ {rng.randint(1, 7)})"]
        weights = [40, 25, 15, 10]
        if loop_var:
            choices.append(f"(gi + {loop_var} * {G})")
            weights.append(45)
        idx = rng.choices(choices, weights=weights)[0]
        if "%" in idx or "^" in idx:
            self.features.add("idx-nonaffine-load")
        return idx

    def global_value(self, loop_var: str = "") -> str:
        rng = self.rng
        idx = self.global_index(loop_var)
        if rng.random() < 0.3:
            return f"(in[{idx}] * {rng.randint(2, 5)}.0f + 1.0f)"
        return f"in[{idx}]"


# ---------------------------------------------------------------------------
# statement productions
# ---------------------------------------------------------------------------


def _simple_stmt(g: _Gen, arrays: List[Tuple[str, int]], loop_var: str = "") -> Stmt:
    """One flat statement (usable at top level and inside guards/loops)."""
    rng = g.rng
    kinds = ["read_global"]
    weights = [30]
    if arrays:
        kinds += ["stage", "read_local", "compute_store"]
        weights += [30, 35, 8]
    kind = rng.choices(kinds, weights=weights)[0]
    if kind == "read_global":
        return Raw(f"acc = (acc + in[{g.global_index(loop_var)}]);")
    name, S = rng.choice(arrays)
    if kind == "stage":
        g.features.add("stage")
        return Raw(f"{name}[{g.local_index(S)}] = {g.global_value(loop_var)};")
    if kind == "read_local":
        return Raw(f"acc = (acc + {name}[{g.local_index(S)}]);")
    g.features.add("staging-computed")
    return Raw(f"{name}[{g.local_index(S)}] = (acc + {rng.randint(1, 9)}.0f);")


def _phase_stmt(g: _Gen, arrays: List[Tuple[str, int]]) -> Stmt:
    rng = g.rng
    kind = rng.choices(
        ["simple", "guard_div", "guard_group", "guard_uniform", "loop",
         "div_barrier"],
        weights=[55, 12, 10, 8, 12, 3],
    )[0]
    if kind == "simple":
        return _simple_stmt(g, arrays)
    if kind == "guard_div":
        g.features.add("guard-divergent")
        c = rng.randint(1, g.L - 1)
        return Block(f"if (li < {c})", [_simple_stmt(g, arrays)])
    if kind == "guard_group":
        # uniform within a group, varies across groups: the canonical
        # pilot-schedule eviction trigger for the tape/codegen backends
        g.features.add("guard-group-varying")
        b = rng.randint(0, 1)
        return Block(f"if ((wi & 1) == {b})", [_simple_stmt(g, arrays)])
    if kind == "guard_uniform":
        g.features.add("guard-uniform")
        c = rng.choice((0, 1, 2, 3))  # 2,3: a dead branch (P == 2)
        return Block(f"if (P > {c})", [_simple_stmt(g, arrays)])
    if kind == "loop":
        g.features.add("loop")
        var = f"k{g.n_loops}"
        g.n_loops += 1
        trip = rng.randint(2, 3)
        body = [_simple_stmt(g, arrays, loop_var=var)
                for _ in range(rng.randint(1, 2))]
        return Block(f"for (int {var} = 0; {var} < {trip}; ++{var})", body)
    g.features.add("barrier-divergent")
    return Block(f"if (li < {g.L // 2})", [BarrierStmt()])


def _grover_cache_phases(g: _Gen, name: str, S: int) -> List[List[Stmt]]:
    """The paper's legal software-cache idiom on a dedicated array:
    stage from global, barrier, read back through an invertible index."""
    g.features.add("grover-cache")
    L = g.L
    read_idx = g.rng.choice(["li", f"({L - 1} - li)"])
    return [
        [Raw(f"{name}[li] = in[(wi * {L} + li)];")],
        [Raw(f"acc = (acc + {name}[{read_idx}]);")],
    ]


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------


def generate_case(root_seed: int, index: int) -> FuzzCase:
    """Generate case ``index`` of the run seeded with ``root_seed``."""
    case_seed = derive_case_seed(root_seed, index)
    rng = random.Random(case_seed)
    L = rng.choice((8, 16))
    groups = rng.choice((2, 4))
    in_elems = 8 * L * groups
    g = _Gen(rng, L, groups, in_elems)

    locals_: List[Tuple[str, int]] = []
    phases: List[List[Stmt]] = []

    # ~1/3 of cases lead with the canonical transformable staging pattern
    # on a reserved array, so the Grover-positive path is well covered
    if rng.random() < 0.35:
        name, S = "lm0", rng.choice((64, 128))
        locals_.append((name, S))
        phases.extend(_grover_cache_phases(g, name, S))

    n_extra = rng.randint(0 if locals_ else 1, 2)
    for i in range(n_extra):
        locals_.append((f"lm{len(locals_)}", rng.choice((64, 128))))
    free_arrays = locals_[1:] if "grover-cache" in g.features else locals_

    for _ in range(rng.randint(1, 3)):
        phases.append(
            [_phase_stmt(g, free_arrays) for _ in range(rng.randint(1, 3))]
        )

    body: List[Stmt] = []
    for i, phase in enumerate(phases):
        if i:
            body.append(BarrierStmt())
        body.extend(phase)

    return FuzzCase(
        index=index,
        case_seed=case_seed,
        kernel_name="fz",
        global_size=(g.G,),
        local_size=(L,),
        in_elems=in_elems,
        p_value=P_VALUE,
        locals_=locals_,
        body=body,
        features=tuple(sorted(g.features)),
    )


def generate_cases(root_seed: int, count: int) -> Iterator[FuzzCase]:
    for i in range(count):
        yield generate_case(root_seed, i)
