"""Deterministic delta-minimization of failing fuzz kernels.

``shrink_case`` takes a :class:`~repro.fuzz.generate.FuzzCase` and an
*interestingness* predicate (typically "the oracle still reports the
same mismatch class") and greedily minimizes the statement AST:

1. **remove** — delete one statement at a time (any nesting depth),
   keeping the deletion whenever the predicate still holds;
2. **unwrap** — replace an ``if``/``for`` block by its body;
3. **prune locals** — drop ``__local`` array declarations the shrunken
   body no longer references.

Each pass runs to a fixpoint, and the pass cycle repeats until a whole
cycle changes nothing.  All passes visit candidates in a fixed
deterministic order and use no randomness, so minimization is both
reproducible and idempotent: ``shrink(shrink(x)) == shrink(x)``
(asserted by ``tests/test_fuzz_shrink.py``).  A candidate whose
predicate raises (e.g. the reduced kernel no longer compiles) counts as
uninteresting — the shrinker never has to special-case broken
reductions.
"""

from __future__ import annotations

import re
from typing import Callable, Iterator, List, Tuple

from repro.fuzz.generate import BarrierStmt, Block, FuzzCase, Raw, Stmt

__all__ = ["shrink_case", "count_statements"]

Path = Tuple[int, ...]


def _copy(stmts: List[Stmt]) -> List[Stmt]:
    out: List[Stmt] = []
    for s in stmts:
        if isinstance(s, Block):
            out.append(Block(s.header, _copy(s.body)))
        elif isinstance(s, Raw):
            out.append(Raw(s.text))
        else:
            out.append(BarrierStmt())
    return out


def _paths(stmts: List[Stmt], prefix: Path = ()) -> Iterator[Path]:
    for i, s in enumerate(stmts):
        yield prefix + (i,)
        if isinstance(s, Block):
            yield from _paths(s.body, prefix + (i,))


def _container(stmts: List[Stmt], path: Path) -> List[Stmt]:
    for i in path[:-1]:
        stmt = stmts[i]
        assert isinstance(stmt, Block)
        stmts = stmt.body
    return stmts


def _remove_at(body: List[Stmt], path: Path) -> List[Stmt]:
    new = _copy(body)
    del _container(new, path)[path[-1]]
    return new


def _unwrap_at(body: List[Stmt], path: Path) -> List[Stmt]:
    new = _copy(body)
    parent = _container(new, path)
    block = parent[path[-1]]
    assert isinstance(block, Block)
    parent[path[-1] : path[-1] + 1] = block.body
    return new


def count_statements(stmts: List[Stmt]) -> int:
    """Raw/barrier statements plus block headers, at every depth."""
    return sum(1 for _ in _paths(stmts))


def _try(case: FuzzCase, interesting: Callable[[FuzzCase], bool]) -> bool:
    try:
        return bool(interesting(case))
    except Exception:
        return False


def shrink_case(
    case: FuzzCase, interesting: Callable[[FuzzCase], bool]
) -> FuzzCase:
    """Minimize ``case`` while ``interesting`` keeps holding.

    The input case itself must satisfy the predicate; if it does not,
    it is returned unchanged (nothing to preserve while shrinking).
    """
    if not _try(case, interesting):
        return case
    current = case.replace_body(_copy(case.body))
    changed_cycle = True
    while changed_cycle:
        changed_cycle = False

        # pass 1: statement removal, innermost-last order, to fixpoint
        removed = True
        while removed:
            removed = False
            for path in list(_paths(current.body)):
                cand = current.replace_body(_remove_at(current.body, path))
                if _try(cand, interesting):
                    current = cand
                    removed = changed_cycle = True
                    break  # paths shifted; rescan from the top

        # pass 2: unwrap guard/loop blocks whose header is not needed
        unwrapped = True
        while unwrapped:
            unwrapped = False
            for path in list(_paths(current.body)):
                stmt = _container(current.body, path)[path[-1]]
                if not isinstance(stmt, Block):
                    continue
                cand = current.replace_body(_unwrap_at(current.body, path))
                if _try(cand, interesting):
                    current = cand
                    unwrapped = changed_cycle = True
                    break

        # pass 3: drop __local declarations the body no longer mentions
        body_text = "\n".join(r.text for r in _flatten_raw(current.body))
        keep = [
            (name, elems)
            for name, elems in current.locals_
            if re.search(rf"\b{re.escape(name)}\b", body_text)
        ]
        if len(keep) != len(current.locals_):
            cand = current.replace_body(_copy(current.body), locals_=keep)
            if _try(cand, interesting):
                current = cand
                changed_cycle = True
    return current


def _flatten_raw(stmts: List[Stmt]) -> Iterator[Raw]:
    for s in stmts:
        if isinstance(s, Raw):
            yield s
        elif isinstance(s, Block):
            yield Raw(s.header)
            yield from _flatten_raw(s.body)
