"""Generative differential fuzzing of the Grover reproduction stack.

The repo has four independent arbiters of what a kernel means: the
reference SIMT interpreter, the compiled-tape backend, the generated
fused-numpy backend, and the Eq. 3 transformability verdict of the
Grover pass vetted by the static race analyzer.  This package generates
seeded random OpenCL kernels spanning the decidability spectrum of all
four (:mod:`repro.fuzz.generate`), judges every kernel with all of them
at once (:mod:`repro.fuzz.oracle`), delta-minimizes any disagreement
(:mod:`repro.fuzz.shrink`), and promotes survivors with novel verdict
shapes into the committed regression corpus (:mod:`repro.fuzz.corpus`).
``repro fuzz`` on the command line drives a campaign; see DESIGN.md §14.
"""

from repro.fuzz.corpus import (
    expectation_mismatches,
    load_manifest,
    promote,
    replay_entry,
    shape_of,
)
from repro.fuzz.generate import (
    BarrierStmt,
    Block,
    FuzzCase,
    Raw,
    Stmt,
    derive_case_seed,
    generate_case,
    generate_cases,
)
from repro.fuzz.oracle import BACKENDS, Mismatch, OracleOutcome, run_case, run_source
from repro.fuzz.runner import (
    CaseResult,
    FuzzOptions,
    FuzzRunResult,
    run_fuzz,
)
from repro.fuzz.shrink import count_statements, shrink_case

__all__ = [
    "BACKENDS",
    "BarrierStmt",
    "Block",
    "CaseResult",
    "FuzzCase",
    "FuzzOptions",
    "FuzzRunResult",
    "Mismatch",
    "OracleOutcome",
    "Raw",
    "Stmt",
    "count_statements",
    "derive_case_seed",
    "expectation_mismatches",
    "generate_case",
    "generate_cases",
    "load_manifest",
    "promote",
    "replay_entry",
    "run_case",
    "run_fuzz",
    "run_source",
    "shape_of",
    "shrink_case",
]
