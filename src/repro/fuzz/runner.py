"""The fuzz campaign driver: generate → judge → minimize → promote.

``run_fuzz`` fans the per-case work (generation + the full four-arbiter
oracle + optional minimization) out over the same process-pool engine
the experiment matrix uses (:mod:`repro.parallel.engine`), gathers
results in deterministic input order, writes a minimized ``.cl``
reproducer for every mismatch, and optionally promotes novel verdict
shapes into the committed corpus.  Every case emits a schema-validated
``fuzz_case`` event; mismatches add ``fuzz_mismatch``; the run closes
with ``fuzz_end``.

Exposed on the command line as ``repro fuzz``::

    python -m repro.cli fuzz --seed 7 --count 200 --workers 4 --minimize

Exit status is 0 when every case agrees, 1 otherwise — the CI fuzz job
is exactly this invocation.
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fuzz.generate import FuzzCase, generate_case
from repro.fuzz.oracle import Mismatch, OracleOutcome, run_case
from repro.fuzz.shrink import shrink_case
from repro.parallel import pool as worker_pool
from repro.parallel.engine import make_pool, resolve_workers
from repro.session import events

__all__ = ["CaseResult", "FuzzOptions", "FuzzRunResult", "main", "run_fuzz"]


@dataclass
class FuzzOptions:
    seed: int = 7
    count: int = 100
    workers: Optional[int] = None  # None: session default ($REPRO_WORKERS)
    minimize: bool = False
    promote: bool = False
    out_dir: str = "fuzz_repros"
    corpus_dir: str = os.path.join("tests", "corpus")
    corpus_limit: Optional[int] = None
    corrupt: str = ""  # fault-injection drill: corrupt this backend


@dataclass
class CaseResult:
    """One judged case — plain data, picklable across the pool."""

    index: int
    case_seed: int
    kernel: str
    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    in_elems: int
    p_value: int
    features: Tuple[str, ...]
    source: str
    outcome: OracleOutcome
    minimized_source: str = ""
    wall_s: float = 0.0


@dataclass
class FuzzRunResult:
    options: FuzzOptions
    results: List[CaseResult]
    reproducers: List[str] = field(default_factory=list)
    promoted: List[str] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0

    @property
    def mismatching(self) -> List[CaseResult]:
        return [r for r in self.results if r.outcome.mismatches]

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.results)} case(s), seed {self.options.seed}, "
            f"{self.workers} worker(s), {self.wall_s:.1f}s",
            f"  agree: {len(self.results) - len(self.mismatching)}"
            f"  mismatch: {len(self.mismatching)}"
            f"  promoted: {len(self.promoted)}",
        ]
        for r in self.mismatching:
            for m in r.outcome.mismatches:
                lines.append(
                    f"  case {r.index} (seed {r.case_seed:#x}): {m.render()}"
                )
        return "\n".join(lines)


def _judge(case: FuzzCase, minimize: bool, corrupt: str) -> CaseResult:
    t0 = time.perf_counter()
    outcome = run_case(case, corrupt=corrupt)
    minimized = ""
    if minimize and outcome.mismatches:
        target = outcome.mismatches[0].check

        def still_failing(cand: FuzzCase) -> bool:
            got = run_case(cand, corrupt=corrupt)
            return any(m.check == target for m in got.mismatches)

        minimized = shrink_case(case, still_failing).source()
    return CaseResult(
        index=case.index,
        case_seed=case.case_seed,
        kernel=case.kernel_name,
        global_size=case.global_size,
        local_size=case.local_size,
        in_elems=case.in_elems,
        p_value=case.p_value,
        features=case.features,
        source=case.source(),
        outcome=outcome,
        minimized_source=minimized,
        wall_s=time.perf_counter() - t0,
    )


def _run_one(payload: Tuple[int, int, bool, str]) -> CaseResult:
    """In-process case runner (serial path and pool-failure fallback)."""
    seed, index, minimize, corrupt = payload
    return _judge(generate_case(seed, index), minimize, corrupt)


def _run_one_in_worker(payload: Tuple[int, int, bool, str]) -> CaseResult:
    """Pool-child case runner: first drop the event sinks inherited over
    ``fork`` — writing to the parent's JSONL file handle from a child
    would interleave two streams.  The child still counts evictions
    through its own transient collector (the oracle attaches one)."""
    events.bus()._sinks.clear()
    return _run_one(payload)


def run_fuzz(options: FuzzOptions) -> FuzzRunResult:
    """Run one fuzz campaign; see the module docstring."""
    t0 = time.perf_counter()
    n_workers = resolve_workers(options.workers)
    payloads = [
        (options.seed, i, options.minimize, options.corrupt)
        for i in range(options.count)
    ]
    results: List[CaseResult] = []
    pool = (
        worker_pool.acquire(n_workers, factory=make_pool)
        if n_workers > 1
        else None
    )
    if pool is None:
        results = [_run_one(p) for p in payloads]
    else:
        try:
            futures = [pool.submit(_run_one_in_worker, p) for p in payloads]
            for payload, fut in zip(payloads, futures):
                try:
                    results.append(fut.result())
                except Exception:
                    # pool infrastructure died (a deterministic kernel
                    # error never escapes the oracle): redo serially
                    results.append(_run_one(payload))
        finally:
            pool.release()

    run = FuzzRunResult(
        options=options, results=results, workers=n_workers
    )
    for r in results:
        events.emit(
            "fuzz_case",
            index=r.index,
            case_seed=r.case_seed,
            kernel=r.kernel,
            outcome=r.outcome.outcome_label,
            exec=r.outcome.exec_outcome,
            analyzer=r.outcome.analyzer,
            grover=r.outcome.grover,
            features=list(r.features),
            wall_ms=r.wall_s * 1e3,
        )
        if r.outcome.mismatches:
            path = _write_reproducer(options.out_dir, r)
            run.reproducers.append(path)
            for m in r.outcome.mismatches:
                events.emit(
                    "fuzz_mismatch",
                    index=r.index,
                    case_seed=r.case_seed,
                    check=m.check,
                    detail=m.detail,
                    minimized=path if r.minimized_source else "",
                )
    if options.promote:
        from repro.fuzz.corpus import promote

        run.promoted = [
            path
            for _, path in promote(
                results, options.corpus_dir, limit=options.corpus_limit
            )
        ]
    run.wall_s = time.perf_counter() - t0
    events.emit(
        "fuzz_end",
        cases=len(results),
        mismatches=len(run.mismatching),
        promoted=len(run.promoted),
        workers=n_workers,
        wall_ms=run.wall_s * 1e3,
    )
    return run


def _write_reproducer(out_dir: str, r: CaseResult) -> str:
    os.makedirs(out_dir, exist_ok=True)
    check = r.outcome.mismatches[0].check.replace(":", "-")
    path = os.path.join(out_dir, f"case_{r.index:05d}_{check}.cl")
    header = [
        f"// fuzz reproducer: case {r.index}, seed {r.case_seed:#x}",
        f"// launch: global={list(r.global_size)} local={list(r.local_size)}"
        f" in_elems={r.in_elems} P={r.p_value}",
    ]
    for m in r.outcome.mismatches:
        header.append(f"// mismatch {m.render()}")
    body = r.minimized_source or r.source
    if r.minimized_source:
        header.append("// (minimized)")
    with open(path, "w") as fh:
        fh.write("\n".join(header) + "\n" + body)
    return path


# ---------------------------------------------------------------------------
# CLI: ``repro fuzz``
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    from repro.cli import add_session_flags
    from repro.session import session_from_flags

    p = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Generative differential fuzzing of the whole stack: "
        "every generated kernel is executed by all three backends, "
        "analyzed for races/divergence, and pushed through the Grover "
        "pass; any cross-arbiter disagreement is a named, minimized "
        "reproducer.",
    )
    p.add_argument("--seed", type=int, default=7, help="campaign seed")
    p.add_argument("--count", type=int, default=100, help="number of cases")
    p.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: $REPRO_WORKERS, then 1)",
    )
    p.add_argument(
        "--minimize", action="store_true",
        help="delta-minimize every mismatching kernel before filing it",
    )
    p.add_argument(
        "--promote", action="store_true",
        help="write agreeing cases with novel verdict shapes into the "
        "regression corpus (--corpus-dir)",
    )
    p.add_argument(
        "--out", default="fuzz_repros", metavar="DIR",
        help="directory for mismatch reproducers (default: fuzz_repros)",
    )
    p.add_argument(
        "--corpus-dir", default=os.path.join("tests", "corpus"),
        metavar="DIR", help="corpus directory for --promote",
    )
    p.add_argument(
        "--corpus-limit", type=int, default=None,
        help="cap the total corpus size when promoting",
    )
    p.add_argument(
        "--inject-fault", default="", choices=["", "tape", "codegen"],
        help="drill: corrupt one backend's outputs to validate the "
        "mismatch/minimize/reproducer plumbing end to end",
    )
    add_session_flags(p)
    args = p.parse_args(argv)

    options = FuzzOptions(
        seed=args.seed,
        count=args.count,
        workers=args.workers,
        minimize=args.minimize,
        promote=args.promote,
        out_dir=args.out,
        corpus_dir=args.corpus_dir,
        corpus_limit=args.corpus_limit,
        corrupt=args.inject_fault,
    )
    with session_from_flags(args.config, args.trace_out):
        run = run_fuzz(options)
    print(run.summary())
    if run.reproducers:
        print("reproducers:")
        for path in run.reproducers:
            print(f"  {path}")
    return 1 if run.mismatching else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
