"""Four-way differential oracle: every generated kernel is judged by all
four arbiters the repo has grown, and every disagreement is named.

For one kernel source the oracle

1. executes it under the **reference** interpreter, the **tape** backend
   and the **codegen** backend — traces, output buffers and model cycle
   counts must be bit-identical, and when a backend raises, all three
   must raise the same exception type;
2. runs the **static race / barrier-divergence analyzer** (plus the
   dynamic replay of the reference trace) and cross-checks it against
   the runtime: a runtime ``BarrierDivergenceError`` without a static
   divergence finding, or any ``MemoryFault`` at all (the grammar is
   bounds-safe by construction), is a named mismatch;
3. runs the **Grover pass** through the session's ``analyze`` veto gate
   and cross-validates the Eq. 3 transformability verdict:

   * a *decided* static race/divergence must make the gate raise
     (``veto-miss`` otherwise), and a veto without a decided finding is
     ``veto-spurious``;
   * a post-transform veto means the rewrite itself introduced a race
     (``transform-introduced-race``);
   * when the analyzer's full verdict (static + replay) is ``clean`` and
     the pass transformed something, the transformed kernel must
     reproduce the original outputs bit-for-bit
     (``transform-semantics`` otherwise — the paper's Eq. 3 soundness);
   * every rejected candidate must be *explained*: confirmed by an
     analyzer finding, covered by a structured deferral, or a named
     structural reason — never a bare skip.

The result is an :class:`OracleOutcome`: either ``agree`` or a list of
named :class:`Mismatch` records, plus structured explanations for
everything that was deliberately not checked.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import RaceDetected, analyze_kernel
from repro.core.grover import GroverError, PatternMismatch
from repro.frontend import FrontendError
from repro.fuzz.generate import FuzzCase
from repro.ir.verifier import VerificationError
from repro.parallel.diff import trace_mismatch
from repro.perf import devices
from repro.perf.timing import estimate_cost
from repro.runtime import Memory
from repro.runtime.errors import (
    BarrierDivergenceError,
    MemoryFault,
    RuntimeLaunchError,
)
from repro.session import Session, events

__all__ = ["BACKENDS", "Mismatch", "OracleOutcome", "run_case", "run_source"]

#: the three execution arbiters, reference first
BACKENDS = ("reference", "tape", "codegen")

#: cycle model used for the cost comparison (any device works — the
#: contract is equality across backends, not a particular number)
_DEVICE = devices.SNB


@dataclass(frozen=True)
class Mismatch:
    """One named cross-arbiter disagreement."""

    check: str  # 'exec-diff' | 'exec-error-diff' | 'veto-miss' | ...
    detail: str

    def render(self) -> str:
        return f"{self.check}: {self.detail}"


@dataclass
class OracleOutcome:
    """Everything the oracle decided about one kernel."""

    exec_outcome: str = ""  # 'ok' | 'error:<ExcType>'
    analyzer: str = ""  # verdict, '+deferred' when deferrals exist(ed)
    deferral_categories: Tuple[str, ...] = ()
    grover: str = ""  # 't<N>r<M>' | 'veto' | 'no-local' | ...
    evictions: int = 0
    cycles: float = 0.0
    mismatches: List[Mismatch] = field(default_factory=list)
    explanations: List[str] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return not self.mismatches

    @property
    def outcome_label(self) -> str:
        return "agree" if self.agreed else "mismatch"


def input_data(in_elems: int) -> np.ndarray:
    """Deterministic input pattern — a function of the size only, so a
    committed corpus entry replays without storing its data."""
    return ((np.arange(in_elems, dtype=np.float32) % 13.0) + 1.0).astype(
        np.float32
    )


def _evictions(sink: events.CollectorSink) -> int:
    return sum(
        int(e.payload["evicted"])
        for e in sink.events
        if e.kind in ("tape_replay", "codegen_replay")
    )


def _run_backend(
    backend: str,
    kernel,
    global_size: Sequence[int],
    local_size: Sequence[int],
    in_data: np.ndarray,
    p_value: int,
    corrupt: str = "",
) -> Dict[str, object]:
    """One launch under one backend; never raises for kernel faults."""
    total = int(np.prod(global_size))
    mem = Memory()
    out = mem.alloc(total * 4, "out")
    inb = mem.from_array(in_data, "in")
    exec_s = Session(env={}, exec_backend=backend, workers=1, tape_batch=256)
    sink = events.CollectorSink()
    events.attach(sink)
    try:
        res = exec_s.launch(
            kernel,
            tuple(global_size),
            tuple(local_size),
            {"out": out, "in": inb, "P": p_value},
            memory=mem,
            collect_trace=True,
            workers=1,
        )
    except (BarrierDivergenceError, MemoryFault, RuntimeLaunchError) as exc:
        return {
            "error": type(exc).__name__,
            "detail": str(exc),
            "evicted": _evictions(sink),
        }
    finally:
        events.detach(sink)
    outputs = out.read(np.float32, total).copy()
    if corrupt == backend:
        # fault injection (tests/CLI drills): flip one output bit so the
        # minimizer and reproducer plumbing can be exercised on demand
        raw = outputs.view(np.uint8)
        raw[-1] ^= 1
    return {
        "error": "",
        "trace": res.trace,
        "out": outputs,
        "evicted": _evictions(sink),
    }


def run_case(case: FuzzCase, corrupt: str = "") -> OracleOutcome:
    return run_source(
        case.source(),
        case.kernel_name,
        case.global_size,
        case.local_size,
        case.in_elems,
        case.p_value,
        corrupt=corrupt,
    )


def run_source(
    source: str,
    kernel_name: str,
    global_size: Sequence[int],
    local_size: Sequence[int],
    in_elems: int,
    p_value: int,
    corrupt: str = "",
) -> OracleOutcome:
    """Judge one kernel source with all four arbiters (see module doc)."""
    out = OracleOutcome()
    session = Session(env={}, workers=1)
    try:
        session.compile_kernel(source, kernel_name)
    except FrontendError as exc:
        out.exec_outcome = "error:FrontendError"
        out.mismatches.append(Mismatch("frontend-error", str(exc)))
        return out

    in_data = input_data(in_elems)

    # -- 1. three-backend differential execution ---------------------------
    runs: Dict[str, Dict[str, object]] = {}
    for backend in BACKENDS:
        kernel = session.compile_kernel(source, kernel_name)
        runs[backend] = _run_backend(
            backend, kernel, global_size, local_size, in_data, p_value,
            corrupt=corrupt,
        )
    out.evictions = sum(int(r["evicted"]) for r in runs.values())

    errors = {b: str(r["error"]) for b, r in runs.items()}
    if any(errors.values()):
        if len(set(errors.values())) != 1:
            out.exec_outcome = "error:mixed"
            out.mismatches.append(
                Mismatch(
                    "exec-error-diff",
                    "backends disagree on the outcome: "
                    + ", ".join(
                        f"{b}={e or 'ok'}" for b, e in sorted(errors.items())
                    ),
                )
            )
        else:
            out.exec_outcome = f"error:{errors['reference']}"
            if errors["reference"] == "MemoryFault":
                # the grammar promises in-bounds indices; a fault — even a
                # consistent one — means the generator broke its contract
                out.mismatches.append(
                    Mismatch(
                        "generator-bounds",
                        str(runs["reference"]["detail"]),
                    )
                )
    else:
        out.exec_outcome = "ok"
        ref = runs["reference"]
        for backend in BACKENDS[1:]:
            why = trace_mismatch(ref["trace"], runs[backend]["trace"])
            if why is not None:
                out.mismatches.append(
                    Mismatch("exec-diff", f"{backend}: trace mismatch at {why}")
                )
                continue
            a = np.asarray(ref["out"]).view(np.uint8)
            b = np.asarray(runs[backend]["out"]).view(np.uint8)
            if not np.array_equal(a, b):
                first = int(np.nonzero(a != b)[0][0]) // 4
                out.mismatches.append(
                    Mismatch(
                        "exec-diff",
                        f"{backend}: outputs differ from reference "
                        f"(first at out[{first}])",
                    )
                )
                continue
            ca = estimate_cost(ref["trace"], _DEVICE).cycles
            cb = estimate_cost(runs[backend]["trace"], _DEVICE).cycles
            if ca != cb:
                out.mismatches.append(
                    Mismatch(
                        "exec-diff",
                        f"{backend}: model cycles {cb} != reference {ca}",
                    )
                )
        out.cycles = float(estimate_cost(ref["trace"], _DEVICE).cycles)

    # -- 2. analyzer vs runtime --------------------------------------------
    ref_trace = runs["reference"].get("trace") if out.exec_outcome == "ok" else None
    static = analyze_kernel(
        session.compile_kernel(source, kernel_name), tuple(local_size)
    )
    if ref_trace is not None:
        pre = analyze_kernel(
            session.compile_kernel(source, kernel_name),
            tuple(local_size),
            ref_trace,
        )
    else:
        pre = static
    deferrals = list(pre.deferrals) + list(pre.deferrals_resolved)
    out.analyzer = pre.verdict + ("+deferred" if deferrals else "")
    out.deferral_categories = tuple(sorted({d.category for d in deferrals}))
    for d in pre.deferrals:
        out.explanations.append(d.render())

    if out.exec_outcome == "error:BarrierDivergenceError" and not static.divergences:
        out.mismatches.append(
            Mismatch(
                "divergence-miss",
                "runtime raised BarrierDivergenceError but the static "
                "analyzer reports no divergent barrier",
            )
        )

    # -- 3. Grover through the analyze veto gate ---------------------------
    static_blocking = bool(static.races or static.divergences)
    gkernel = session.compile_kernel(source, kernel_name)
    veto_s = Session(env={}, workers=1, analyze=True)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = veto_s.disable_local_memory(
                gkernel, local_size=tuple(local_size), allow_partial=True
            )
    except RaceDetected as exc:
        if "post-transform" in str(exc):
            out.grover = "veto-post"
            out.mismatches.append(
                Mismatch("transform-introduced-race", str(exc))
            )
        else:
            out.grover = "veto"
            if not static_blocking:
                out.mismatches.append(
                    Mismatch(
                        "veto-spurious",
                        f"gate vetoed without a decided static finding: {exc}",
                    )
                )
            else:
                out.explanations.append(f"veto-confirmed: {exc}")
    except PatternMismatch:
        out.grover = "no-local"
        out.explanations.append("grover: kernel uses no local memory")
    except GroverError as exc:
        out.grover = "grover-error"
        out.mismatches.append(
            Mismatch(
                "grover-error",
                f"allow_partial pass still raised {type(exc).__name__}: {exc}",
            )
        )
    except VerificationError as exc:
        # the pass produced ill-formed IR — the exact bug class that led
        # to _check_clone_operands; file it, never crash the campaign
        out.grover = "grover-verifier"
        out.mismatches.append(Mismatch("grover-verifier", str(exc)))
    else:
        nt, nr = len(report.transformed), len(report.rejected)
        out.grover = f"t{nt}r{nr}"
        if static_blocking:
            out.mismatches.append(
                Mismatch(
                    "veto-miss",
                    "decided static race/divergence but the analyze gate "
                    "let the transformation run: "
                    + "; ".join(
                        f.render() for f in static.races + static.divergences
                    ),
                )
            )
        for r in report.rejected:
            if pre.findings_on(r.name):
                out.explanations.append(
                    f"rejected-confirmed {r.name!r}: {r.reason}"
                )
            elif pre.deferrals_on(r.name):
                out.explanations.append(
                    f"rejected-deferred {r.name!r}: {r.reason}"
                )
            else:
                out.explanations.append(
                    f"rejected-structural {r.name!r}: {r.reason}"
                )
        if nt and out.exec_outcome == "ok" and pre.verdict == "clean":
            _check_transform_semantics(
                out, gkernel, global_size, local_size, in_data, p_value,
                np.asarray(runs["reference"]["out"]),
            )
        elif nt and pre.verdict != "clean":
            out.explanations.append(
                f"transform-unverified: analyzer verdict {pre.verdict!r} "
                "voids Grover's precondition, outputs not compared"
            )
    return out


def _check_transform_semantics(
    out: OracleOutcome,
    transformed_kernel,
    global_size: Sequence[int],
    local_size: Sequence[int],
    in_data: np.ndarray,
    p_value: int,
    ref_out: np.ndarray,
) -> None:
    """A clean kernel's Grover rewrite must be observationally identical."""
    total = int(np.prod(global_size))
    mem = Memory()
    outb = mem.alloc(total * 4, "out")
    inb = mem.from_array(in_data, "in")
    exec_s = Session(env={}, exec_backend="reference", workers=1)
    try:
        exec_s.launch(
            transformed_kernel,
            tuple(global_size),
            tuple(local_size),
            {"out": outb, "in": inb, "P": p_value},
            memory=mem,
            workers=1,
        )
    except (BarrierDivergenceError, MemoryFault, RuntimeLaunchError) as exc:
        out.mismatches.append(
            Mismatch(
                "transform-semantics",
                f"transformed kernel raised {type(exc).__name__}: {exc}",
            )
        )
        return
    got = outb.read(np.float32, total)
    if not np.array_equal(
        got.view(np.uint8), np.asarray(ref_out).view(np.uint8)
    ):
        first = int(
            np.nonzero(got.view(np.uint8) != ref_out.view(np.uint8))[0][0]
        ) // 4
        out.mismatches.append(
            Mismatch(
                "transform-semantics",
                "transformed kernel diverges from the original on a "
                f"race-free kernel (first at out[{first}])",
            )
        )
