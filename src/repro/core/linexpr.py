"""Exact linear expressions over symbolic thread-index bases.

The paper abstracts each local data index as a linear function of the
local thread index with constant coefficients (Equation 2).  We represent
such functions as mappings ``symbol -> Fraction`` with an implicit
constant term; coefficients stay exact rationals so that the uniqueness
and integrality checks of the solver are precise.

Symbols are small tuples:

* ``("lid", d)`` / ``("wid", d)`` / ``("gid", d)`` — local / group /
  global thread index in dimension ``d``;
* ``("lsize", d)`` — work-group size in dimension ``d``;
* ``("arg", Argument)`` — a scalar kernel argument;
* ``("slot", Alloca)`` — a mutable variable (e.g. a loop counter): the
  analogue of the paper's phi-node leaves;
* ``("opaque", Value)`` — any other value participating additively.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Tuple, Union

Symbol = Tuple[object, ...]

#: the constant-term key
ONE: Symbol = ("const",)

_DIM_NAMES = "xyz"


class LinExpr:
    """An immutable linear expression ``sum(coeff_i * sym_i) + c``."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[Symbol, Fraction]] = None) -> None:
        t = {}
        for k, v in (terms or {}).items():
            f = Fraction(v)
            if f != 0:
                t[k] = f
        self.terms: Dict[Symbol, Fraction] = t

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def constant(value: Union[int, Fraction]) -> "LinExpr":
        return LinExpr({ONE: Fraction(value)})

    @staticmethod
    def symbol(sym: Symbol, coeff: Union[int, Fraction] = 1) -> "LinExpr":
        return LinExpr({sym: Fraction(coeff)})

    @staticmethod
    def zero() -> "LinExpr":
        return LinExpr()

    # -- algebra -----------------------------------------------------------------
    def __add__(self, other: "LinExpr") -> "LinExpr":
        t = dict(self.terms)
        for k, v in other.terms.items():
            t[k] = t.get(k, Fraction(0)) + v
        return LinExpr(t)

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        t = dict(self.terms)
        for k, v in other.terms.items():
            t[k] = t.get(k, Fraction(0)) - v
        return LinExpr(t)

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -v for k, v in self.terms.items()})

    def scale(self, factor: Union[int, Fraction]) -> "LinExpr":
        f = Fraction(factor)
        return LinExpr({k: v * f for k, v in self.terms.items()})

    def __mul__(self, other: "LinExpr") -> Optional["LinExpr"]:
        """Product; ``None`` when the result would be non-linear."""
        if self.is_constant():
            return other.scale(self.const())
        if other.is_constant():
            return self.scale(other.const())
        return None

    # -- queries -------------------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(k == ONE for k in self.terms)

    def const(self) -> Fraction:
        return self.terms.get(ONE, Fraction(0))

    def coeff(self, sym: Symbol) -> Fraction:
        return self.terms.get(sym, Fraction(0))

    def symbols(self) -> Iterable[Symbol]:
        return (k for k in self.terms if k != ONE)

    def drop(self, syms: Iterable[Symbol]) -> "LinExpr":
        drop = set(syms)
        return LinExpr({k: v for k, v in self.terms.items() if k not in drop})

    def restrict(self, syms: Iterable[Symbol]) -> "LinExpr":
        keep = set(syms)
        return LinExpr({k: v for k, v in self.terms.items() if k in keep})

    def is_integral(self) -> bool:
        return all(v.denominator == 1 for v in self.terms.values())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinExpr) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    # -- rendering -------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable form using the paper's symbol names."""
        if not self.terms:
            return "0"
        parts = []
        for sym in sorted(self.terms, key=_sym_sort_key):
            c = self.terms[sym]
            name = render_symbol(sym)
            if sym == ONE:
                term = _frac_str(c)
            elif c == 1:
                term = name
            elif c == -1:
                term = f"-{name}"
            else:
                term = f"{_frac_str(c)}*{name}"
            parts.append(term)
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"LinExpr({self.render()})"


def _frac_str(f: Fraction) -> str:
    return str(f.numerator) if f.denominator == 1 else f"{f.numerator}/{f.denominator}"


def stable_value_key(v: object) -> tuple:
    """Deterministic ordering key for IR values (no memory addresses)."""
    vid = getattr(v, "id", None)          # instructions have a counter id
    if vid is not None:
        return (0, vid)
    idx = getattr(v, "index", None)       # arguments have an index
    if idx is not None:
        return (1, idx)
    return (2, getattr(v, "name", "") or str(v))


def _sym_sort_key(sym: Symbol):
    kind = sym[0]
    order = {"lid": 0, "gid": 1, "wid": 2, "lsize": 3, "slot": 4, "arg": 5, "opaque": 6, "const": 9}
    if sym == ONE:
        return (9, (0,))
    if kind == "prod":
        return (order.get(kind, 7), tuple(_sym_sort_key(s) for s in sym[1:]))
    tail = (0, sym[1]) if isinstance(sym[1], int) else stable_value_key(sym[1])
    return (order.get(kind, 7), tail)


def render_symbol(sym: Symbol) -> str:
    kind = sym[0]
    if sym == ONE:
        return "1"
    if kind == "lid":
        return "l" + _DIM_NAMES[sym[1]]
    if kind == "wid":
        return "w" + _DIM_NAMES[sym[1]]
    if kind == "gid":
        return "g" + _DIM_NAMES[sym[1]]
    if kind == "lsize":
        return "L" + _DIM_NAMES[sym[1]]
    if kind in ("arg", "slot"):
        return getattr(sym[1], "name", None) or f"{kind}{id(sym[1]) & 0xFFF}"
    if kind == "opaque":
        v = sym[1]
        return getattr(v, "name", "") or f"op{getattr(v, 'id', id(v) & 0xFFF)}"
    if kind == "prod":
        return "*".join(render_symbol(s) for s in sym[1:])
    return str(sym)


def prod_symbol(a: Symbol, b: Symbol) -> Symbol:
    """Canonical product symbol for symbolic-stride terms like ``W*gy``.

    The factor order is normalised so that ``W*gy`` and ``gy*W`` are the
    same symbol (which lets CSE share the multiply).  Nested products
    flatten into one n-ary symbol.
    """
    factors = []
    for s in (a, b):
        if s[0] == "prod":
            factors.extend(s[1:])
        else:
            factors.append(s)
    factors.sort(key=_sym_sort_key)
    return ("prod", *factors)


def symbol_mentions_lid(sym: Symbol) -> bool:
    """Does the symbol (transitively) involve a local thread index?"""
    if sym[0] == "lid":
        return True
    if sym[0] == "prod":
        return any(symbol_mentions_lid(s) for s in sym[1:])
    return False


def lid(d: int) -> Symbol:
    return ("lid", d)


def wid(d: int) -> Symbol:
    return ("wid", d)


def gid(d: int) -> Symbol:
    return ("gid", d)


def lsize(d: int) -> Symbol:
    return ("lsize", d)
