"""The "vendor compiler" optimisation pipeline (paper Fig. 9).

The paper feeds the (transformed) SPIR to a vendor OpenCL runtime, which
optimises it again before execution.  We model that stage explicitly so
that the performance comparison between the original and Grover-rewritten
kernel reflects optimised code on both sides:

fold -> normalise indices -> DCE -> CSE -> LICM -> CSE -> DCE

The sequence is registered as the ``vendor`` pipeline of the session
pass manager (:data:`repro.session.passes.VENDOR_PIPELINE`), so each
stage reports rewrite counts and wall time through the event bus.
"""

from __future__ import annotations

from repro.ir.function import Function

#: ``vendor_optimize`` stat keys, in pipeline order (the historical
#: public contract of the returned dict)
_STAT_KEYS = ("folded", "normalized", "dce", "cse", "licm", "cse2", "dce2")


def vendor_optimize(fn: Function) -> dict:
    """Run the backend pipeline; returns per-pass statistics."""
    from repro.session.passes import PassManager

    results = PassManager(pipeline="vendor").run_function(fn)
    return {key: r.rewrites for key, r in zip(_STAT_KEYS, results)}
