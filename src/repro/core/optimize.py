"""The "vendor compiler" optimisation pipeline (paper Fig. 9).

The paper feeds the (transformed) SPIR to a vendor OpenCL runtime, which
optimises it again before execution.  We model that stage explicitly so
that the performance comparison between the original and Grover-rewritten
kernel reflects optimised code on both sides:

normalise indices -> DCE -> CSE -> LICM -> CSE
"""

from __future__ import annotations

from repro.core.dce import eliminate_dead_code
from repro.core.normalize import normalize_gep_indices
from repro.ir.function import Function
from repro.ir.passes import (
    common_subexpression_elimination,
    fold_constants,
    loop_invariant_code_motion,
)


def vendor_optimize(fn: Function) -> dict:
    """Run the backend pipeline; returns per-pass statistics."""
    stats = {}
    stats["folded"] = fold_constants(fn)
    stats["normalized"] = normalize_gep_indices(fn)
    stats["dce"] = eliminate_dead_code(fn)
    stats["cse"] = common_subexpression_elimination(fn)
    stats["licm"] = loop_invariant_code_motion(fn)
    stats["cse2"] = common_subexpression_elimination(fn)
    stats["dce2"] = eliminate_dead_code(fn)
    return stats
