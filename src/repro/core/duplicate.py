"""Algorithm 1: duplicating the index-computation instructions.

Post-order DFS over the (state-marked) expression tree.  Nodes whose
``state`` flag is clear are **reused** — their original SSA value becomes
an operand of the cloned parents, which is the paper's "we reuse the
sub-expressions that are shared by the GL instruction and the nGL
instruction when it is not required to update the node".  Marked nodes
are cloned and inserted at the requested position (immediately before the
``LL`` instruction).

The ``reuse`` switch exists for the ablation benchmark: with it off,
*every* node is cloned, measuring the instruction-count cost of not
sharing sub-expressions.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.exprtree import ExprNode
from repro.ir.builder import IRBuilder
from repro.ir.cfg import dominators, inst_dominates
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import Value


class DuplicationError(Exception):
    pass


def mark_tree(
    root: ExprNode,
    substitutions: Dict[ExprNode, Value],
    anchor: Instruction,
    doms,
    force_all: bool = False,
) -> None:
    """Set the ``state`` flags: a node needs re-creation iff

    * it is a substituted leaf (a thread-index call being replaced), or
    * any of its children needs re-creation, or
    * its value is an instruction that does not dominate the insertion
      point (its SSA value cannot legally be reused there), or
    * ``force_all`` (the no-reuse ablation).
    """

    def visit(node: ExprNode) -> bool:
        needs = force_all
        for c in node.children:
            if visit(c):
                needs = True
        if node in substitutions:
            needs = True
        v = node.value
        if (
            not needs
            and isinstance(v, Instruction)
            and not inst_dominates(doms, v, anchor)
        ):
            needs = True
        node.state = needs
        return needs

    visit(root)


def duplicate_instructions(
    node: ExprNode,
    builder: IRBuilder,
    substitutions: Dict[ExprNode, Value],
) -> Value:
    """The paper's Algorithm 1 (duplicateInst).

    Returns the IR value representing ``node`` at the insertion point:
    the original value when the node is unmarked, the substitute for
    substituted leaves, or a freshly cloned instruction otherwise.
    """
    if node in substitutions:
        return substitutions[node]
    if not node.state:
        return node.value

    v = node.value
    if node.is_leaf:
        if not isinstance(v, Instruction):
            return v  # constants/arguments are position-independent
        new = v.clone()
        builder.emit(new)
        return new

    child_values = [
        duplicate_instructions(c, builder, substitutions) for c in node.children
    ]
    if not isinstance(v, Instruction):
        raise DuplicationError(f"internal node without an instruction: {v!r}")
    new = v.clone()
    for i, cv in enumerate(child_values):
        new.set_operand(i, cv)
    builder.emit(new)
    return new
