"""Affine analysis: IR values / expression trees -> :class:`LinExpr`.

This implements the abstraction step of Equation 1-2: a data index is
re-expressed as a linear function of the local thread index (and of
opaque per-kernel symbols such as loop counters and scalar arguments).

Mutable stack slots with a *single dominating store* are forwarded (the
``int lx = get_local_id(0);`` idiom lowers to such a slot); slots with
several stores — loop counters — stay opaque symbols, matching the
paper's treatment of phi nodes as leaves.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional

from repro.core.linexpr import (
    ONE,
    LinExpr,
    Symbol,
    gid,
    lid,
    lsize,
    prod_symbol,
    wid,
)
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CastKind,
    Instruction,
    Load,
    Opcode,
    Store,
)
from repro.ir.types import IntType
from repro.ir.values import Argument, Constant, Value

_TRANSPARENT_CASTS = {
    CastKind.TRUNC,
    CastKind.SEXT,
    CastKind.ZEXT,
    CastKind.BITCAST,
    CastKind.BOOL_TO_INT,
}

_ID_CALLS = {
    "get_local_id": lid,
    "get_group_id": wid,
    "get_global_id": gid,
    "get_local_size": lsize,
}


class AffineContext:
    """Per-function store analysis used for slot forwarding.

    With ``key_loads_by_instance`` the symbol for a multi-store slot load
    is the *load instruction itself* rather than the slot: two loads of a
    loop counter at different program points then stay distinct.  The
    solver wants slot-keyed symbols (equations relate the same loop
    counter on both sides); the index normaliser wants instance-keyed
    symbols (it may only reuse the exact dominating load).
    """

    def __init__(self, fn: Function, key_loads_by_instance: bool = False) -> None:
        self.fn = fn
        self.key_loads_by_instance = key_loads_by_instance
        self.slot_stores: Dict[Alloca, List[Store]] = {}
        for inst in fn.instructions():
            if isinstance(inst, Store) and isinstance(inst.ptr, Alloca):
                self.slot_stores.setdefault(inst.ptr, []).append(inst)

    def forwarded(self, slot: Alloca) -> Optional[Value]:
        """The unique stored value if the slot is single-assignment."""
        stores = self.slot_stores.get(slot, [])
        if len(stores) != 1:
            return None
        st = stores[0]
        # the store must sit in the entry block so it dominates all loads
        if st.parent is not self.fn.entry:
            return None
        return st.value

    # -- main analysis -----------------------------------------------------------
    def to_linexpr(self, value: Value, _depth: int = 0) -> LinExpr:
        """Abstract ``value`` as a linear expression.

        Never fails: non-affine sub-expressions become opaque symbols,
        which later stages may reject if they interfere with solving.
        """
        if _depth > 128:
            return LinExpr.symbol(("opaque", value))
        if isinstance(value, Constant):
            return LinExpr.constant(Fraction(value.value))
        if isinstance(value, Argument):
            return LinExpr.symbol(("arg", value))
        if isinstance(value, Call):
            maker = _ID_CALLS.get(value.callee)
            if maker is not None and isinstance(value.args[0], Constant):
                return LinExpr.symbol(maker(int(value.args[0].value)))
            return LinExpr.symbol(("opaque", value))
        if isinstance(value, Cast):
            if value.kind in _TRANSPARENT_CASTS:
                return self.to_linexpr(value.value, _depth + 1)
            return LinExpr.symbol(("opaque", value))
        if isinstance(value, Load):
            ptr = value.ptr
            if isinstance(ptr, Alloca):
                fwd = self.forwarded(ptr)
                if fwd is not None:
                    return self.to_linexpr(fwd, _depth + 1)
                if self.key_loads_by_instance:
                    return LinExpr.symbol(("opaque", value))
                return LinExpr.symbol(("slot", ptr))
            return LinExpr.symbol(("opaque", value))
        if isinstance(value, BinOp):
            a = self.to_linexpr(value.lhs, _depth + 1)
            b = self.to_linexpr(value.rhs, _depth + 1)
            op = value.opcode
            if op == Opcode.ADD:
                return a + b
            if op == Opcode.SUB:
                return a - b
            if op == Opcode.MUL:
                prod = a * b
                if prod is not None:
                    return prod
                # symbolic-stride distribution: (sum) * (c * s) with a
                # single-term factor distributes into 'prod' symbols,
                # keeping e.g. (gy+1)*W == W*gy + W exact and shareable
                dist = _distribute(a, b)
                if dist is None:
                    dist = _distribute(b, a)
                if dist is not None:
                    return dist
            if op == Opcode.SHL and b.is_constant() and b.const().denominator == 1:
                shift = b.const()
                if 0 <= shift < 63:
                    return a.scale(Fraction(2) ** int(shift))
            if op in (Opcode.SDIV, Opcode.UDIV) and b.is_constant() and b.const() != 0:
                if a.is_constant():
                    # exact only when divisible; else opaque
                    q = a.const() / b.const()
                    if q.denominator == 1:
                        return LinExpr.constant(q)
            if op in (Opcode.AND, Opcode.OR, Opcode.XOR) and a.is_constant() and b.is_constant():
                ca, cb = a.const(), b.const()
                if ca.denominator == cb.denominator == 1:
                    table = {
                        Opcode.AND: int(ca) & int(cb),
                        Opcode.OR: int(ca) | int(cb),
                        Opcode.XOR: int(ca) ^ int(cb),
                    }
                    return LinExpr.constant(table[op])
            return LinExpr.symbol(("opaque", value))
        return LinExpr.symbol(("opaque", value))


def _distribute(expr: LinExpr, factor: LinExpr) -> Optional[LinExpr]:
    """``expr * factor`` when ``factor`` is a single symbol term
    ``c * s``; every term of ``expr`` becomes a 'prod' symbol."""
    items = list(factor.terms.items())
    if len(items) != 1 or items[0][0] == ONE:
        return None
    f_sym, f_coeff = items[0]
    out = {}
    for sym, coeff in expr.terms.items():
        if sym == ONE:
            key: Symbol = f_sym
        else:
            key = prod_symbol(sym, f_sym)
        out[key] = out.get(key, Fraction(0)) + coeff * f_coeff
    return LinExpr(out)


def index_linexpr(ctx: AffineContext, index_values: List[Value]) -> List[LinExpr]:
    """Abstract each GEP index operand."""
    return [ctx.to_linexpr(v) for v in index_values]
