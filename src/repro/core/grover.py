"""The Grover pass driver and its report (paper Sections III-IV).

Typical use::

    from repro.frontend import compile_kernel
    from repro.core import disable_local_memory

    kernel = compile_kernel(SOURCE)
    report = disable_local_memory(kernel)      # mutates the kernel IR
    print(report)                              # Table-III style summary

The pass transforms the kernel in place; compile the source twice to keep
both versions around (that is what the auto-tuner does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.affine import AffineContext
from repro.core.candidates import Candidate, Rejection, find_candidates
from repro.core.dce import cleanup_after_rewrite
from repro.core.exprtree import build_tree
from repro.core.linexpr import LinExpr
from repro.core.linsys import SolveError, Solution, solve_correspondence
from repro.core.patterns import PatternError, determine_data_index
from repro.core.rewrite import RewriteError, required_lids, rewrite_local_load
from repro.ir.function import Function, Module
from repro.ir.instructions import GEP, Load, Store
from repro.ir.passes import (
    common_subexpression_elimination,
    loop_invariant_code_motion,
)
from repro.ir.values import LocalArray
from repro.ir.verifier import verify_function


class GroverError(Exception):
    """Base class for pass failures."""


class PatternMismatch(GroverError):
    """The kernel's local memory usage is not the software-cache pattern."""


class NotReversible(GroverError):
    """The correspondence has no unique integral solution (Section III-B S2)."""


@dataclass
class LLRecord:
    """One rewritten local load: the paper's Table III data per access."""

    ll_dims: List[LinExpr]
    solution: Solution
    ngl_index: str

    def render(self) -> str:
        dims = ", ".join(d.render() for d in self.ll_dims)
        return f"LL=({dims})  sol[{self.solution.render()}]  nGL={self.ngl_index}"


@dataclass
class CandidateRecord:
    name: str
    status: str  # 'transformed' | 'rejected'
    reason: str = ""
    gl_index: str = ""
    ls_dims: List[LinExpr] = field(default_factory=list)
    lls: List[LLRecord] = field(default_factory=list)

    @property
    def transformed(self) -> bool:
        return self.status == "transformed"


@dataclass
class GroverReport:
    """Result of one pass invocation over one kernel."""

    kernel: str
    records: List[CandidateRecord] = field(default_factory=list)
    cleanup_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def transformed(self) -> List[CandidateRecord]:
        return [r for r in self.records if r.transformed]

    @property
    def rejected(self) -> List[CandidateRecord]:
        return [r for r in self.records if not r.transformed]

    @property
    def fully_disabled(self) -> bool:
        return bool(self.records) and all(r.transformed for r in self.records)

    def record(self, name: str) -> CandidateRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(name)

    def __str__(self) -> str:
        lines = [f"Grover report for kernel {self.kernel!r}:"]
        for r in self.records:
            if r.transformed:
                lines.append(f"  [ok] {r.name}:")
                lines.append(f"       GL = {r.gl_index}")
                lines.append(
                    "       LS = (" + ", ".join(d.render() for d in r.ls_dims) + ")"
                )
                for ll in r.lls:
                    lines.append(f"       {ll.render()}")
            else:
                lines.append(f"  [--] {r.name}: {r.reason}")
        if self.cleanup_stats:
            lines.append(f"  cleanup: {self.cleanup_stats}")
        return "\n".join(lines)


class GroverPass:
    """Automatically remove local-memory usage from a kernel.

    Parameters
    ----------
    arrays:
        Restrict the transformation to the named local data structures
        (``None`` = all of them).  This reproduces the paper's
        NVD-MM-A / NVD-MM-B / NVD-MM-AB selective-removal experiments.
    strict_patterns:
        Only accept the plain ``+ -> *`` index pattern (disables the
        derived ``+ -> + -> *`` handling of Fig. 7(b)); ablation knob.
    reuse_subexprs:
        Reuse unmarked sub-expressions per Algorithm 1; with ``False``
        every index instruction is cloned (ablation knob).
    remove_barriers:
        Strip barriers once no local accesses remain (the paper does).
    allow_partial:
        When ``True``, candidates that cannot be reversed are skipped
        and recorded instead of raising.
    """

    def __init__(
        self,
        arrays: Optional[Sequence[str]] = None,
        strict_patterns: bool = False,
        reuse_subexprs: bool = True,
        remove_barriers: bool = True,
        allow_partial: bool = False,
    ) -> None:
        self.arrays = list(arrays) if arrays is not None else None
        self.strict_patterns = strict_patterns
        self.reuse_subexprs = reuse_subexprs
        self.remove_barriers = remove_barriers
        self.allow_partial = allow_partial

    # -- analysis helpers ------------------------------------------------------
    def _access_dims(self, ctx: AffineContext, ptr, strides=None):
        if isinstance(ptr, GEP):
            return determine_data_index(
                ctx, ptr, strict=self.strict_patterns, strides=strides
            )
        # direct dereference of the base pointer: single dim, index 0
        return [LinExpr.constant(0)], []

    # -- main entry point ---------------------------------------------------------
    def run(self, kernel: Function) -> GroverReport:
        import time

        from repro.session import events

        if not kernel.is_kernel:
            raise GroverError(f"{kernel.name} is not a kernel")
        t0 = time.perf_counter()
        events.emit("grover_start", kernel=kernel.name)
        report = GroverReport(kernel.name)
        ctx = AffineContext(kernel)

        candidates, rejections = find_candidates(kernel, self.arrays)
        for rej in rejections:
            rec = CandidateRecord(rej.name, "rejected", rej.reason)
            report.records.append(rec)
            events.emit(
                "grover_candidate",
                kernel=kernel.name,
                name=rej.name,
                status="rejected",
                reason=rej.reason,
            )
            if not self.allow_partial:
                raise PatternMismatch(f"{rej.name}: {rej.reason}")
        if not candidates and not rejections:
            raise PatternMismatch(
                f"kernel {kernel.name} does not use local memory"
            )

        removed_arrays: List[LocalArray] = []
        for cand in candidates:
            try:
                rec = self._reverse_candidate(kernel, ctx, cand)
            except (PatternError, SolveError, RewriteError) as exc:
                rec = CandidateRecord(cand.name, "rejected", str(exc))
                report.records.append(rec)
                events.emit(
                    "grover_candidate",
                    kernel=kernel.name,
                    name=cand.name,
                    status="rejected",
                    reason=str(exc),
                )
                if not self.allow_partial:
                    raise NotReversible(f"{cand.name}: {exc}") from exc
                continue
            report.records.append(rec)
            events.emit(
                "grover_candidate",
                kernel=kernel.name,
                name=cand.name,
                status="transformed",
                reason="",
            )
            if isinstance(cand.array, LocalArray):
                removed_arrays.append(cand.array)

        if report.transformed:
            report.cleanup_stats = cleanup_after_rewrite(
                kernel, removed_arrays, strip_barriers=self.remove_barriers
            )
            # the vendor runtime recompiles the SPIR (paper Fig. 9):
            # normalise/CSE/hoist the freshly materialised index arithmetic
            from repro.core.optimize import vendor_optimize

            vendor_optimize(kernel)
        verify_function(kernel)
        events.emit(
            "grover_end",
            kernel=kernel.name,
            transformed=len(report.transformed),
            rejected=len(report.rejected),
            wall_ms=(time.perf_counter() - t0) * 1e3,
        )
        return report

    def _reverse_candidate(
        self, kernel: Function, ctx: AffineContext, cand: Candidate
    ) -> CandidateRecord:
        """Steps S1-S4 of Section III-B for one local data structure."""
        # S1: data indices of LS (unknowns side); the LS access fixes the
        # dimension-splitting strides used for every LL of this array
        ls_dims, ls_strides = self._access_dims(ctx, cand.ls.ptr)
        gl_tree = build_tree(cand.gl.ptr)
        needed = required_lids(gl_tree)
        gl_str = gl_tree.render()

        rec = CandidateRecord(
            cand.name, "transformed", gl_index=gl_str, ls_dims=ls_dims
        )
        for ll in list(cand.lls):
            # S1: data index of this LL (constants side)
            ll_dims, _ = self._access_dims(ctx, ll.ptr, strides=ls_strides)
            # S2: create and solve the linear system
            sol = solve_correspondence(ls_dims, ll_dims, required=needed)
            # S3 + S4: substitute into G and emit the nGL
            ngl = rewrite_local_load(
                kernel, cand, ll, sol, reuse_subexprs=self.reuse_subexprs
            )
            rec.lls.append(
                LLRecord(
                    ll_dims=ll_dims,
                    solution=sol,
                    ngl_index=build_tree(ngl.ptr).render(),
                )
            )
        return rec


def disable_local_memory(
    kernel_or_module: Union[Function, Module],
    kernel_name: Optional[str] = None,
    **kwargs,
) -> GroverReport:
    """Convenience wrapper: run :class:`GroverPass` on a kernel in place.

    Thin shim over :meth:`repro.session.Session.disable_local_memory`
    (the current session supplies configuration and the event bus).
    """
    from repro.session import current_session

    return current_session().disable_local_memory(
        kernel_or_module, kernel_name, **kwargs
    )
