"""Dead code elimination used after the Grover rewrite (Section IV-F).

After every local load is replaced by a new global load, the local
stores, the staging loads, their index chains, the local array itself,
and the synchronising barriers all become dead; this module removes them,
producing the clean "local memory disabled" kernel of the paper's
Fig. 1(b).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Instruction,
    Load,
    Store,
    is_barrier,
    is_side_effecting,
)
from repro.ir.types import AddressSpace
from repro.ir.values import LocalArray, Value


def eliminate_dead_code(fn: Function) -> int:
    """Iteratively erase unused pure instructions; returns removal count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for bb in fn.blocks:
            # iterate backwards so chains die in one sweep
            for inst in list(reversed(bb.instructions)):
                if inst.is_terminator or is_side_effecting(inst):
                    continue
                if inst.uses:
                    continue
                inst.erase_from_parent()
                removed += 1
                changed = True
    return removed


def remove_stores_to(fn: Function, obj: Value) -> int:
    """Erase every store whose base object is ``obj``."""
    from repro.core.candidates import base_object

    removed = 0
    for bb in fn.blocks:
        for inst in list(bb.instructions):
            if isinstance(inst, Store) and base_object(inst.ptr) is obj:
                inst.erase_from_parent()
                removed += 1
    return removed


def remove_dead_slots(fn: Function) -> int:
    """Remove allocas whose only remaining uses are stores into them."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for bb in fn.blocks:
            for inst in list(bb.instructions):
                if not isinstance(inst, Alloca):
                    continue
                users = inst.users
                if users and all(
                    isinstance(u, Store) and u.ptr is inst for u in users
                ):
                    for u in list(users):
                        u.erase_from_parent()
                        removed += 1
                    changed = True
                if not inst.uses:
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def has_local_accesses(fn: Function) -> bool:
    for inst in fn.instructions():
        if isinstance(inst, (Load, Store)) and inst.addrspace == AddressSpace.LOCAL:
            return True
    return False


def strip_local_barriers(fn: Function) -> int:
    """Remove barrier calls once no local-memory accesses remain.

    The paper removes the barriers together with the staging code
    (Fig. 1(b) line 8); this is only legal when the kernel no longer
    touches local memory at all, which we verify first.
    """
    if has_local_accesses(fn):
        return 0
    removed = 0
    for bb in fn.blocks:
        for inst in list(bb.instructions):
            if is_barrier(inst):
                inst.erase_from_parent()
                removed += 1
    return removed


def cleanup_after_rewrite(
    fn: Function,
    removed_arrays: Iterable[LocalArray],
    strip_barriers: bool = True,
) -> dict:
    """The full post-rewrite cleanup; returns removal statistics."""
    stats = {"stores": 0, "pure": 0, "slots": 0, "barriers": 0}
    for arr in removed_arrays:
        stats["stores"] += remove_stores_to(fn, arr)
    stats["pure"] += eliminate_dead_code(fn)
    stats["slots"] += remove_dead_slots(fn)
    stats["pure"] += eliminate_dead_code(fn)
    for arr in list(removed_arrays):
        if isinstance(arr, LocalArray) and not arr.uses:
            fn.remove_local_array(arr)
    if strip_barriers:
        stats["barriers"] += strip_local_barriers(fn)
    return stats
