"""Data-index patterns: splitting flattened indices into dimensions.

Paper Section IV-C / Fig. 7: a 2-D data index stored through a flat
(1-D) array appears as the tree pattern ``+ -> *`` — the ``*`` node with
a constant row stride separates the high dimension from the low one; the
derived pattern ``+ -> + -> *`` additionally carries a loop-dependent
low-dimension term at the second tree level.

We implement this as (a) a syntactic stride detector over the expression
tree (finds the multiplier constants of ``*``/``<<`` nodes, exactly the
nodes the paper's matcher looks for) and (b) an exact splitter over the
affine form: a term belongs to the high dimension iff its coefficient is
divisible by the stride.  The ``strict`` mode implements only the plain
``+ -> *`` pattern (at most one term on each side) and is used by the
pattern ablation benchmark.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.affine import AffineContext
from repro.core.exprtree import ExprNode, build_tree
from repro.core.linexpr import ONE, LinExpr
from repro.ir.instructions import BinOp, Cast, GEP, Opcode
from repro.ir.values import Constant, Value


class PatternError(Exception):
    """The data index does not match a supported pattern."""


def detect_strides(tree: ExprNode) -> List[int]:
    """Constant multipliers found at ``*`` / ``<<`` nodes, descending.

    These are the candidate row strides of the ``+ -> *`` pattern.
    """
    found = set()
    for node in tree.walk():
        v = node.value
        if isinstance(v, BinOp):
            if v.opcode == Opcode.MUL:
                for op in (v.lhs, v.rhs):
                    if isinstance(op, Constant) and int(op.value) > 1:
                        found.add(int(op.value))
            elif v.opcode == Opcode.SHL and isinstance(v.rhs, Constant):
                sh = int(v.rhs.value)
                if 0 < sh < 63:
                    found.add(1 << sh)
    return sorted(found, reverse=True)


def split_by_stride(expr: LinExpr, stride: int, strict: bool = False) -> List[LinExpr]:
    """Split ``expr`` into ``[low, high]`` such that
    ``expr == high * stride + low``.

    A symbol term goes to the high dimension iff its coefficient is a
    multiple of ``stride``; the constant term is split with divmod
    (handles halo offsets like ``(ly+1)*S + (lx+1)``).  In ``strict``
    mode only the plain two-term ``+ -> *`` pattern is accepted
    (Fig. 7(a)); anything richer — e.g. the loop-dependent low term of
    Fig. 7(b) — raises :class:`PatternError`.
    """
    if stride <= 1:
        raise PatternError(f"invalid stride {stride}")
    low: dict = {}
    high: dict = {}
    for sym, coeff in expr.terms.items():
        if sym == ONE:
            if coeff.denominator != 1:
                raise PatternError("non-integral constant term")
            hi_c, lo_c = divmod(int(coeff), stride)
            if hi_c:
                high[ONE] = high.get(ONE, Fraction(0)) + hi_c
            if lo_c:
                low[ONE] = low.get(ONE, Fraction(0)) + lo_c
            continue
        if coeff.denominator == 1 and int(coeff) % stride == 0:
            high[sym] = coeff / stride
        else:
            low[sym] = coeff
    low_e, high_e = LinExpr(low), LinExpr(high)
    if strict:
        if len(low_e.terms) > 1 or len(high_e.terms) > 1:
            raise PatternError(
                "index does not match the plain '+ -> *' pattern "
                f"(low={low_e.render()}, high={high_e.render()})"
            )
    return [low_e, high_e]


def determine_data_index(
    ctx: AffineContext,
    gep: GEP,
    strict: bool = False,
    strides: Optional[List[int]] = None,
) -> Tuple[List[LinExpr], List[int]]:
    """The paper's S1: abstract a memory access into per-dimension
    affine indices ``[x, y, z][:ndims]`` (x = fastest-varying).

    Multi-index GEPs (true multi-dimensional arrays) provide the
    dimensions directly; single-index GEPs are split with the
    ``+ -> *`` pattern.  ``strides`` forces the row strides to use
    (the LS access determines the pattern; its strides are then applied
    to every LL so both sides split consistently).  Returns the dims and
    the strides actually used.
    """
    indices = gep.indices
    if len(indices) > 1:
        # innermost (last) index is the fastest-varying dimension x
        return [ctx.to_linexpr(v) for v in reversed(indices)], []
    expr = ctx.to_linexpr(indices[0])
    forced = strides is not None
    if strides is None:
        tree = build_tree(indices[0])
        strides = detect_strides(tree)
    # peel high dimensions off with decreasing strides (supports 3-D
    # flattened indices like z*W*H + y*W + x); each split applies to the
    # remaining low part
    rem = expr
    highs: List[LinExpr] = []
    used: List[int] = []
    for s in strides:
        if len(highs) >= 2:
            break
        try:
            low, high = split_by_stride(rem, s, strict=strict)
        except PatternError:
            if strict:
                raise
            continue
        if high.is_zero() and not forced:
            # with free stride choice a vacuous split adds nothing; under
            # forced (LS-determined) strides the dimension must exist so
            # both sides stay aligned
            continue
        highs.append(high)
        used.append(s)
        rem = low
    # highs were peeled highest-stride first: reverse so dims ascend (x, y, z)
    return [rem] + highs[::-1], used
