"""Index-expression normalisation (reassociation + canonical form).

Vendor compilers reassociate and value-number address arithmetic before
executing a kernel; without that, the index chains Grover materialises
in front of each local load would be unfairly long compared to the
original code (e.g. the five neighbour loads of a stencil share almost
their whole address computation).

The pass rewrites every affine GEP index into a canonical
sum-of-products: symbol terms in a stable order, the constant term
last.  Two indices that differ only by a constant offset then share a
maximal instruction prefix, which the CSE pass collapses — leaving one
extra ``add`` per neighbour access, as a real optimising compiler would.
"""

from __future__ import annotations

from typing import List

from repro.core.affine import AffineContext
from repro.core.linexpr import ONE, LinExpr
from repro.core.rewrite import Materializer, RewriteError
from repro.ir.builder import IRBuilder
from repro.ir.cfg import dominators
from repro.ir.function import Function
from repro.ir.instructions import GEP, BinOp, Call, Cast, Load
from repro.ir.values import Constant, Value
from repro.ir.types import IntType


def _chains_equal(a: Value, b: Value) -> bool:
    """Structural equality of two pure index-computation chains.

    Used to recognise an index that is *already* in canonical form: if
    the freshly materialised chain is shaped exactly like the existing
    one, the rewrite is a no-op and gets skipped — which makes the pass
    idempotent (skipping never changes semantics; the existing chain is
    the status quo).  Loads compare by address only: the pass
    materialises loads of stack slots, and a structural match means the
    existing chain reads the same slot the canonical chain would.
    """
    if a is b:
        return True
    if isinstance(a, Constant) and isinstance(b, Constant):
        return a.type == b.type and a.value == b.value
    if type(a) is not type(b) or a.type != b.type:
        return False
    if isinstance(a, BinOp):
        if a.opcode != b.opcode:
            return False
    elif isinstance(a, Cast):
        if a.kind != b.kind:
            return False
    elif isinstance(a, Call):
        if a.callee != b.callee:
            return False
    elif not isinstance(a, Load):
        return False
    if len(a.operands) != len(b.operands):
        return False
    return all(_chains_equal(x, y) for x, y in zip(a.operands, b.operands))


def normalize_gep_indices(fn: Function) -> int:
    """Rewrite affine GEP indices into canonical form; returns #rewritten.

    Idempotent: an index whose chain already has the canonical shape is
    left untouched (and not counted), so a second run reports 0.
    """
    ctx = AffineContext(fn, key_loads_by_instance=True)
    doms = dominators(fn)
    builder = IRBuilder()
    rewritten = 0

    geps: List[GEP] = [i for i in fn.instructions() if isinstance(i, GEP)]
    for gep in geps:
        for pos, idx in enumerate(gep.indices):
            if isinstance(idx, Constant) or not isinstance(idx.type, IntType):
                continue
            expr = ctx.to_linexpr(idx)
            if not expr.is_integral():
                continue
            n_sym_terms = sum(1 for s in expr.terms if s != ONE)
            if len(expr.terms) < 2 and n_sym_terms <= 1:
                continue  # nothing to reassociate
            builder.position_before(gep)
            mat = Materializer(builder, fn, doms, gep)
            block = gep.parent
            start = block.instructions.index(gep)
            try:
                new_idx = mat.materialize(expr)
            except RewriteError:
                continue  # an index term is unavailable here; keep original
            if _chains_equal(new_idx, idx):
                # already canonical: erase the duplicate chain just built
                end = block.instructions.index(gep)
                for inst in reversed(block.instructions[start:end]):
                    inst.erase_from_parent()
                continue
            gep.set_operand(1 + pos, new_idx)
            rewritten += 1
    return rewritten
