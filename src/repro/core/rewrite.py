"""Creating the new global load ``nGL`` (paper Sections IV-E, IV-F).

For one local load ``LL`` with solved writer thread index, this module:

1. materialises the solution's linear expressions as IR instructions
   immediately before the ``LL``;
2. builds the ``GL`` pointer expression tree, substitutes the
   ``get_local_id`` (and, transitively, ``get_global_id``) leaves with
   the materialised solution, and duplicates the marked nodes per
   Algorithm 1;
3. creates the ``nGL`` load through the new pointer and replaces every
   use of the ``LL`` with it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from repro.core.affine import AffineContext
from repro.core.candidates import Candidate
from repro.core.duplicate import duplicate_instructions, mark_tree
from repro.core.exprtree import ExprNode, build_tree, global_id_dim, local_id_dim
from repro.core.linexpr import ONE, LinExpr, Symbol, lid
from repro.core.linsys import Solution
from repro.ir.builder import IRBuilder
from repro.ir.cfg import dominators, inst_dominates
from repro.ir.function import Function
from repro.ir.instructions import Call, CastKind, Instruction, Load, Opcode
from repro.ir.types import I64, IntType, U32
from repro.ir.values import Argument, Constant, Value


class RewriteError(Exception):
    pass


class Materializer:
    """Emits IR computing a :class:`LinExpr` (in i64) at a fixed position."""

    def __init__(self, builder: IRBuilder, fn: Function, doms, anchor: Instruction) -> None:
        self.builder = builder
        self.fn = fn
        self.doms = doms
        self.anchor = anchor
        self._sym_cache: Dict[Symbol, Value] = {}

    def to_i64(self, v: Value) -> Value:
        ty = v.type
        if ty == I64:
            return v
        if isinstance(ty, IntType):
            if ty.bits < 64:
                kind = CastKind.SEXT if ty.signed else CastKind.ZEXT
                return self.builder.cast(kind, v, I64)
            return self.builder.cast(CastKind.BITCAST, v, I64)
        raise RewriteError(f"cannot use value of type {ty} in an index expression")

    def symbol_value(self, sym: Symbol) -> Value:
        cached = self._sym_cache.get(sym)
        if cached is not None:
            return cached
        kind = sym[0]
        if kind in ("lid", "wid", "gid", "lsize"):
            callee = {
                "lid": "get_local_id",
                "wid": "get_group_id",
                "gid": "get_global_id",
                "lsize": "get_local_size",
            }[kind]
            v = self.builder.call(callee, [Constant(U32, sym[1])], I64)
        elif kind == "arg":
            v = self.to_i64(sym[1])
        elif kind == "slot":
            v = self.to_i64(self.builder.load(sym[1]))
        elif kind == "opaque":
            src = sym[1]
            if isinstance(src, Instruction) and not inst_dominates(
                self.doms, src, self.anchor
            ):
                raise RewriteError(
                    f"index term {src!r} is not available at the local load"
                )
            v = self.to_i64(src)
        elif kind == "prod":
            v = self.symbol_value(sym[1])
            for factor in sym[2:]:
                v = self.builder.mul(v, self.symbol_value(factor))
        else:  # pragma: no cover
            raise RewriteError(f"cannot materialise symbol {sym}")
        self._sym_cache[sym] = v
        return v

    @staticmethod
    def _term_order(item) -> tuple:
        """Canonical term ordering for materialised sums.

        Stable terms (thread-index symbols and their stride products)
        come first, loop-varying terms (slot loads) next-to-last, and
        the constant term last.  Index expressions that differ only in a
        loop counter or a constant offset — neighbouring stencil taps,
        consecutive tile rows — then share a maximal instruction prefix,
        which CSE merges and LICM hoists out of the loop.
        """
        sym, _ = item
        if sym == ONE:
            return (9, "", 0)

        def varies(s) -> bool:
            if s[0] == "slot":
                return True
            if s[0] == "prod":
                return any(varies(f) for f in s[1:])
            return False

        from repro.core.linexpr import stable_value_key

        def skey(s) -> tuple:
            if s[0] in ("lid", "wid", "gid", "lsize"):
                return (s[0], s[1])
            if s[0] == "prod":
                return ("prod", tuple(skey(f) for f in s[1:]))
            return (s[0], stable_value_key(s[1]))

        kind = sym[0]
        if varies(sym):
            return (8, skey(sym))
        if kind in ("lid", "wid", "gid", "lsize"):
            return (0, skey(sym))
        if kind == "prod":
            return (1, skey(sym))
        if kind == "opaque":
            return (2, skey(sym))
        return (3, skey(sym))  # arguments

    def materialize(self, expr: LinExpr) -> Value:
        acc: Optional[Value] = None
        for sym, coeff in sorted(expr.terms.items(), key=self._term_order):
            if coeff.denominator != 1:
                raise RewriteError(f"non-integral coefficient in {expr.render()}")
            c = int(coeff)
            if sym == ONE:
                term: Value = Constant(I64, c)
            else:
                term = self.symbol_value(sym)
                if c != 1:
                    term = self.builder.mul(term, Constant(I64, c))
            acc = term if acc is None else self.builder.add(acc, term)
        return acc if acc is not None else Constant(I64, 0)


def build_substitutions(
    tree: ExprNode,
    sol: Solution,
    mat: Materializer,
) -> Dict[ExprNode, Value]:
    """Map substituted leaves of the GL pointer tree to new values.

    ``get_local_id(d)`` leaves become the materialised solution for
    dimension ``d``; ``get_global_id(d)`` leaves become
    ``get_group_id(d) * get_local_size(d) + solution_d`` (the group part
    of a global id stays, only the local part is replaced).
    """
    subst: Dict[ExprNode, Value] = {}
    sol_cache: Dict[int, Value] = {}

    def solved(d: int) -> Value:
        if d not in sol_cache:
            sol_cache[d] = mat.materialize(sol[lid(d)])
        return sol_cache[d]

    for node in tree.walk():
        if not node.is_leaf:
            continue
        d = local_id_dim(node.value)
        if d is not None and lid(d) in sol:
            subst[node] = solved(d)
            continue
        d = global_id_dim(node.value)
        if d is not None and lid(d) in sol:
            group = mat.symbol_value(("wid", d))
            size = mat.symbol_value(("lsize", d))
            base = mat.builder.mul(group, size)
            subst[node] = mat.builder.add(base, solved(d))
    return subst


def required_lids(tree: ExprNode) -> set:
    """Local-id symbols the GL index depends on (directly or via gid)."""
    req = set()
    for node in tree.walk():
        d = local_id_dim(node.value)
        if d is None:
            d = global_id_dim(node.value)
        if d is not None:
            req.add(lid(d))
    return req


def _check_clone_operands(
    tree: ExprNode,
    subst: Dict[ExprNode, Value],
    doms,
    anchor: Instruction,
) -> None:
    """Cloning an index instruction at the ``LL`` is only legal when its
    *operands* are available there too.  A leaf whose SSA value does not
    dominate the anchor gets cloned — but when the value it loads from
    (e.g. the alloca of a loop counter declared *after* the local load)
    does not dominate the anchor either, the clone would be invalid IR,
    so the candidate must be rejected instead (the GL index simply is
    not computable at this load site)."""
    for node in tree.walk():
        if not node.state or node in subst or not node.is_leaf:
            continue
        v = node.value
        if not isinstance(v, Instruction):
            continue
        for op in v.operands:
            if isinstance(op, Instruction) and not inst_dominates(
                doms, op, anchor
            ):
                raise RewriteError(
                    f"index term {v!r} cannot be re-created at the local "
                    f"load: its operand {op!r} is not available there"
                )


def rewrite_local_load(
    fn: Function,
    cand: Candidate,
    ll: Load,
    sol: Solution,
    reuse_subexprs: bool = True,
) -> Load:
    """Replace ``ll`` with a new global load; returns the ``nGL``."""
    if cand.gl.type != ll.type:
        raise RewriteError(
            f"type mismatch: global load is {cand.gl.type}, local load is {ll.type}"
        )
    doms = dominators(fn)
    builder = IRBuilder()
    builder.position_before(ll)
    mat = Materializer(builder, fn, doms, ll)

    tree = build_tree(cand.gl.ptr)
    subst = build_substitutions(tree, sol, mat)
    mark_tree(tree, subst, anchor=ll, doms=doms, force_all=not reuse_subexprs)
    _check_clone_operands(tree, subst, doms, ll)
    new_ptr = duplicate_instructions(tree, builder, subst)
    if not isinstance(new_ptr, Value):  # pragma: no cover
        raise RewriteError("duplication produced no pointer")

    ngl = Load(new_ptr, name=f"nGL_{cand.name}")
    builder.emit(ngl)
    ll.replace_all_uses_with(ngl)
    ll.erase_from_parent()
    return ngl
