"""Index expression trees (paper Section IV-B, Fig. 6).

An :class:`ExprNode` mirrors the paper's tree node structure exactly:

* a **value** field — the IR value this node stands for (an instruction,
  a builtin call, a constant, or an argument);
* a **state** field — marks whether this node must be re-created when the
  new global load's index is built (Algorithm 1 reuses the unmarked
  sub-expressions);
* child pointers and a parent pointer for traversal.

Tree construction recurses through the operands of pure instructions and
stops at the same leaf kinds as the paper: (1) a call instruction, (2) a
constant, (3) a function argument, or (4) a phi node — which in our
alloca-based IR is "a load from a mutable stack slot".
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    GEP,
    Instruction,
    Load,
    Select,
    Store,
)
from repro.ir.values import Argument, Constant, LocalArray, Value


class ExprNode:
    """One node of an index expression tree (paper Fig. 6)."""

    __slots__ = ("value", "state", "children", "parent")

    def __init__(self, value: Value, children: Optional[List["ExprNode"]] = None) -> None:
        self.value = value
        self.state = False  # "needs update" mark used by Algorithm 1
        self.children: List[ExprNode] = children or []
        self.parent: Optional[ExprNode] = None
        for c in self.children:
            c.parent = self

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["ExprNode"]:
        """Pre-order traversal."""
        yield self
        for c in self.children:
            yield from c.walk()

    def leaves(self) -> Iterator["ExprNode"]:
        for n in self.walk():
            if n.is_leaf:
                yield n

    def mark_upward(self) -> None:
        """Set the state flag on this node and every ancestor."""
        node: Optional[ExprNode] = self
        while node is not None and not node.state:
            node.state = True
            node = node.parent

    def render(self) -> str:
        """Debug rendering of the tree as an expression string."""
        v = self.value
        if isinstance(v, Constant):
            return str(v.value)
        if isinstance(v, Argument):
            return v.name
        if isinstance(v, LocalArray):
            return v.name
        if isinstance(v, Call):
            args = ", ".join(str(a.value) if isinstance(a, Constant) else "?" for a in v.args)
            return f"{v.callee}({args})"
        if isinstance(v, Load):
            src = v.ptr
            if isinstance(src, Alloca):
                return src.name or f"%t{src.id}"
            return f"load({self.children[0].render() if self.children else '?'})"
        if isinstance(v, BinOp):
            op = {
                "add": "+", "sub": "-", "mul": "*", "shl": "<<",
                "sdiv": "/", "udiv": "/", "srem": "%", "urem": "%",
                "and": "&", "or": "|", "xor": "^",
            }.get(v.opcode.value, v.opcode.value)
            return f"({self.children[0].render()} {op} {self.children[1].render()})"
        if isinstance(v, Cast):
            return self.children[0].render()
        if isinstance(v, GEP):
            idx = ", ".join(c.render() for c in self.children[1:])
            return f"{self.children[0].render()}[{idx}]"
        return f"%t{getattr(v, 'id', '?')}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ExprNode {self.render()}>"


def is_slot_load(v: Value) -> bool:
    """A load from a private stack slot — the paper's phi-node leaf."""
    return isinstance(v, Load) and isinstance(v.ptr, Alloca)


def build_tree(value: Value, _depth: int = 0) -> ExprNode:
    """Recursively build the index expression tree rooted at ``value``.

    Recursion stops at call instructions, constants, arguments, local
    arrays, and loads from mutable stack slots (the phi analogue).
    """
    if _depth > 256:
        raise RecursionError("index expression tree too deep")
    if isinstance(value, (Constant, Argument, LocalArray)):
        return ExprNode(value)
    if isinstance(value, Call):
        return ExprNode(value)
    if is_slot_load(value):
        return ExprNode(value)
    if isinstance(value, Alloca):
        return ExprNode(value)
    if isinstance(value, (BinOp, Cast, Select, GEP, Load)):
        children = [build_tree(op, _depth + 1) for op in value.operands]
        return ExprNode(value, children)
    if isinstance(value, Instruction):
        children = [build_tree(op, _depth + 1) for op in value.operands]
        return ExprNode(value, children)
    return ExprNode(value)


def find_leaves(root: ExprNode, pred: Callable[[Value], bool]) -> List[ExprNode]:
    return [n for n in root.walk() if pred(n.value)]


def local_id_dim(v: Value) -> Optional[int]:
    """If ``v`` is a ``get_local_id(d)`` call with constant d, return d."""
    if isinstance(v, Call) and v.callee == "get_local_id":
        arg = v.args[0]
        if isinstance(arg, Constant):
            return int(arg.value)
    return None


def global_id_dim(v: Value) -> Optional[int]:
    if isinstance(v, Call) and v.callee == "get_global_id":
        arg = v.args[0]
        if isinstance(arg, Constant):
            return int(arg.value)
    return None
