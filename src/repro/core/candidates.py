"""Selecting the reversing candidates (paper Section IV-A).

For every ``__local`` data structure we look for the software-cache
pattern:

* **GL** — a load from ``__global`` memory,
* **LS** — a store of that (possibly cast) value into the local array,
* **LL** — loads from the local array that feed computation.

A local array qualifies only if *every* store into it is fed by a global
load (this is the empirical "detect the usage pattern" step: arrays used
as read/write scratch — reductions, prefix sums — are rejected, matching
the limitation discussed in Section VI-D).  When several (GL, LS) pairs
exist (multi-pass staging such as image convolution halos), any pair
determines the same correspondence; we prefer a pair whose store
dominates all the local loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.cfg import dominators, inst_dominates
from repro.ir.function import Function
from repro.ir.instructions import Cast, GEP, Instruction, Load, Store
from repro.ir.types import AddressSpace, PointerType
from repro.ir.values import Argument, LocalArray, Value

LocalObject = Union[LocalArray, Argument]


def base_object(ptr: Value) -> Optional[Value]:
    """Walk a pointer value to its root object (through GEPs/casts)."""
    seen = 0
    while seen < 64:
        seen += 1
        if isinstance(ptr, GEP):
            ptr = ptr.base
        elif isinstance(ptr, Cast):
            ptr = ptr.value
        else:
            return ptr
    return None


def strip_casts(v: Value) -> Value:
    while isinstance(v, Cast):
        v = v.value
    return v


@dataclass
class Candidate:
    """One reversible local data structure with its GL/LS/LL operations."""

    array: LocalObject
    gl: Load
    ls: Store
    pairs: List[Tuple[Load, Store]]
    lls: List[Load]
    #: local stores that are *not* part of the chosen pair (other passes)
    all_stores: List[Store] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.array.name


@dataclass
class Rejection:
    """A local array that does not fit the software-cache pattern."""

    array: LocalObject
    reason: str

    @property
    def name(self) -> str:
        return self.array.name


def find_candidates(
    fn: Function, arrays: Optional[List[str]] = None
) -> Tuple[List[Candidate], List[Rejection]]:
    """Detect GL/LS/LL triples for every local array in ``fn``.

    ``arrays`` optionally restricts the search to named local data
    structures (the NVD-MM "-A"/"-B" selective-removal cases).
    """
    stores_by_obj: Dict[Value, List[Store]] = {}
    loads_by_obj: Dict[Value, List[Load]] = {}

    for inst in fn.instructions():
        if isinstance(inst, Store) and inst.addrspace == AddressSpace.LOCAL:
            obj = base_object(inst.ptr)
            if obj is not None:
                stores_by_obj.setdefault(obj, []).append(inst)
        elif isinstance(inst, Load) and inst.addrspace == AddressSpace.LOCAL:
            obj = base_object(inst.ptr)
            if obj is not None:
                loads_by_obj.setdefault(obj, []).append(inst)

    objects: List[Value] = list(fn.local_arrays)
    for a in fn.args:
        if isinstance(a.type, PointerType) and a.type.addrspace == AddressSpace.LOCAL:
            objects.append(a)
    if arrays is not None:
        objects = [o for o in objects if o.name in arrays]
        known = {o.name for o in objects}
        missing = set(arrays) - known
        if missing:
            raise KeyError(f"no such local data structure(s): {sorted(missing)}")

    doms = dominators(fn)
    candidates: List[Candidate] = []
    rejections: List[Rejection] = []

    for obj in objects:
        stores = stores_by_obj.get(obj, [])
        loads = loads_by_obj.get(obj, [])
        if not stores and not loads:
            rejections.append(Rejection(obj, "local array is never accessed"))
            continue
        if not stores:
            rejections.append(Rejection(obj, "local array is never written"))
            continue
        if not loads:
            rejections.append(Rejection(obj, "local array is never read"))
            continue

        pairs: List[Tuple[Load, Store]] = []
        bad_reason: Optional[str] = None
        for st in stores:
            src = strip_casts(st.value)
            if (
                isinstance(src, Load)
                and src.addrspace in (AddressSpace.GLOBAL, AddressSpace.CONSTANT)
            ):
                pairs.append((src, st))
                continue
            if isinstance(src, Load) and base_object(src.ptr) is obj:
                bad_reason = (
                    "read-modify-write: the array is updated from its own "
                    "contents (temporal-scratch use-case, not a software cache)"
                )
                break
            bad_reason = (
                "a store into the array is not fed by a global load "
                "(computed values are cached — not the software-cache pattern)"
            )
            break
        if bad_reason is not None:
            rejections.append(Rejection(obj, bad_reason))
            continue

        # prefer a (GL, LS) pair whose store dominates every local load:
        # the unconditional "main" pass, not a halo/boundary pass.
        chosen: Optional[Tuple[Load, Store]] = None
        for gl, ls in pairs:
            if all(inst_dominates(doms, ls, ll) for ll in loads):
                chosen = (gl, ls)
                break
        if chosen is None:
            chosen = pairs[0]

        candidates.append(
            Candidate(
                array=obj,
                gl=chosen[0],
                ls=chosen[1],
                pairs=pairs,
                lls=list(loads),
                all_stores=list(stores),
            )
        )

    return candidates, rejections
