"""Creating and solving the linear system of Equation 3 (Section IV-D).

The unknowns are the *writer's* local thread index components
``(lx, ly, lz)`` appearing in the local-store data index; the right-hand
sides are the local-load data index components — symbolic linear
expressions over the *reader's* thread index, loop counters and kernel
arguments.  Gaussian elimination runs over exact rationals on the
unknown side, with :class:`LinExpr` arithmetic on the right-hand side.

The paper's reversibility condition — "the global data index is
reversible if the system has a single unique solution" — corresponds to
the eliminated matrix having a pivot in every unknown column; we also
require the solution to be integral (a fractional solution would index
between data elements, i.e. the store pattern is strided and not
invertible over the integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Set

from repro.core.linexpr import LinExpr, Symbol, symbol_mentions_lid


class SolveError(Exception):
    """The system has no unique integral solution — not reversible."""


@dataclass
class Solution:
    """Writer thread index expressed in reader-side symbols."""

    by_symbol: Dict[Symbol, LinExpr]

    def __getitem__(self, sym: Symbol) -> LinExpr:
        return self.by_symbol[sym]

    def __contains__(self, sym: Symbol) -> bool:
        return sym in self.by_symbol

    def render(self) -> str:
        from repro.core.linexpr import render_symbol

        return ", ".join(
            f"{render_symbol(s)} = {e.render()}"
            for s, e in sorted(self.by_symbol.items(), key=lambda kv: str(kv[0]))
        )


def _is_lid(sym: Symbol) -> bool:
    return sym[0] == "lid"


def solve_correspondence(
    ls_dims: Sequence[LinExpr],
    ll_dims: Sequence[LinExpr],
    required: Set[Symbol] = frozenset(),
) -> Solution:
    """Solve ``LS(lx,ly,lz) = LL`` for the writer's local ids.

    ``ls_dims`` / ``ll_dims`` are the per-dimension data indices of the
    local store and local load (x first).  ``required`` lists the lid
    symbols the caller actually needs (those appearing in the GL index);
    free unknowns outside that set are tolerated.
    """
    if len(ls_dims) != len(ll_dims):
        raise SolveError(
            f"dimensionality mismatch: store is {len(ls_dims)}-D, "
            f"load is {len(ll_dims)}-D"
        )

    # thread indices hiding inside non-linear product terms (lx*W etc.)
    # cannot be inverted by a linear solve
    for d in list(ls_dims):
        for s in d.symbols():
            if not _is_lid(s) and symbol_mentions_lid(s):
                raise SolveError(
                    f"store index term {s} is non-linear in the thread index"
                )

    unknowns: List[Symbol] = sorted(
        {s for d in ls_dims for s in d.symbols() if _is_lid(s)},
        key=lambda s: s[1],
    )
    n_eq = len(ls_dims)
    n_un = len(unknowns)

    # rows: coefficients of the unknowns; rhs: LinExpr
    rows: List[List[Fraction]] = []
    rhs: List[LinExpr] = []
    for d in range(n_eq):
        ls = ls_dims[d]
        coeffs = [ls.coeff(u) for u in unknowns]
        rest = ls.drop(unknowns)  # constants/args/loop terms move right
        rows.append(coeffs)
        rhs.append(ll_dims[d] - rest)

    # Gaussian elimination with partial (first non-zero) pivoting
    pivot_of_col: Dict[int, int] = {}
    r = 0
    for c in range(n_un):
        pivot = next((i for i in range(r, n_eq) if rows[i][c] != 0), None)
        if pivot is None:
            continue
        rows[r], rows[pivot] = rows[pivot], rows[r]
        rhs[r], rhs[pivot] = rhs[pivot], rhs[r]
        pv = rows[r][c]
        rows[r] = [x / pv for x in rows[r]]
        rhs[r] = rhs[r].scale(Fraction(1) / pv)
        for i in range(n_eq):
            if i != r and rows[i][c] != 0:
                f = rows[i][c]
                rows[i] = [a - f * b for a, b in zip(rows[i], rows[r])]
                rhs[i] = rhs[i] - rhs[r].scale(f)
        pivot_of_col[c] = r
        r += 1

    # rows eliminated to all-zero coefficients assert identities between
    # reader-side expressions: 0 = RHS.  A residual RHS that is not
    # syntactically zero means the store pattern cannot cover the loaded
    # element (e.g. a strided store read densely) — reject.
    for i in range(n_eq):
        if all(x == 0 for x in rows[i]) and not rhs[i].is_zero():
            raise SolveError(
                "inconsistent correspondence: the store never writes the "
                f"loaded element (residual constraint 0 = {rhs[i].render()})"
            )

    solution: Dict[Symbol, LinExpr] = {}
    for c, sym in enumerate(unknowns):
        if c not in pivot_of_col:
            continue  # free unknown
        row = pivot_of_col[c]
        # pivot row may still involve other (free) unknowns
        expr = rhs[row]
        for c2 in range(n_un):
            if c2 != c and rows[row][c2] != 0:
                raise SolveError(
                    "system is under-determined: "
                    f"{sym} is coupled to {unknowns[c2]} with no unique solution"
                )
        if not expr.is_integral():
            raise SolveError(
                f"solution for {sym} is not integral: {expr.render()} — "
                "the store pattern is strided and not reversible"
            )
        solution[sym] = expr

    missing = {s for s in required if _is_lid(s)} - set(solution)
    if missing:
        raise SolveError(
            "no unique solution for thread-index component(s) "
            f"{sorted(str(m) for m in missing)} needed by the global load index"
        )
    return Solution(solution)
