"""The Grover pass: automatically disabling local memory in OpenCL kernels.

This package implements the paper's contribution (Sections III and IV):

* :mod:`repro.core.candidates` — select reversing candidates: the
  ``GL`` (global load) / ``LS`` (local store) / ``LL`` (local load)
  triples of the software-cache pattern (Section IV-A);
* :mod:`repro.core.exprtree` — index expression trees (Fig. 6,
  Section IV-B);
* :mod:`repro.core.patterns` — the ``+ -> *`` / ``+ -> + -> *`` data
  index patterns that split flattened indices into dimensions (Fig. 7,
  Section IV-C);
* :mod:`repro.core.linexpr` / :mod:`repro.core.affine` — exact linear
  expressions over thread-index symbols (Equations 1-2);
* :mod:`repro.core.linsys` — building and solving the linear system of
  Equation 3 (Section IV-D), including the uniqueness/reversibility and
  integrality checks;
* :mod:`repro.core.duplicate` — Algorithm 1: duplicating the ``GL``
  index computation in front of the ``LL`` with sub-expression reuse
  (Section IV-E);
* :mod:`repro.core.rewrite` + :mod:`repro.core.dce` — substituting the
  solution, replacing all ``LL`` uses with the new global load ``nGL``,
  and erasing the now-dead local array, stores and barriers
  (Section IV-F);
* :mod:`repro.core.grover` — the pass driver and the
  :class:`~repro.core.grover.GroverReport` that reproduces the paper's
  Table III.
"""

from repro.core.grover import (
    GroverError,
    GroverPass,
    GroverReport,
    NotReversible,
    PatternMismatch,
    disable_local_memory,
)

__all__ = [
    "GroverError",
    "GroverPass",
    "GroverReport",
    "NotReversible",
    "PatternMismatch",
    "disable_local_memory",
]
