"""The static local-memory benefit model.

For a kernel and a CPU device the predictor weighs, without executing:

* **removed work** — staging instructions and barrier synchronisation
  that disappear with the local memory (estimated with loop-depth
  weighted static instruction counts, the classic static proxy for
  dynamic counts);
* **replacement access risk** — for every new global load the
  transformed kernel performs where a local load used to be, the stride
  of its fastest-varying index symbol is computed from the affine form;
  strides that alias into few cache sets (power-of-two row strides — the
  paper's column-access pathology) predict a loss, as does losing the
  barrier-induced tile blocking when the re-read footprint exceeds the
  private caches.

The verdict mirrors the paper's three-way classification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core import GroverError, GroverPass, GroverReport
from repro.core.affine import AffineContext
from repro.frontend import compile_kernel
from repro.ir.cfg import natural_loops
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    Instruction,
    Load,
    Store,
    is_barrier,
)
from repro.ir.types import AddressSpace
from repro.perf.devices import CPUSpec

#: assumed iterations per loop level for static weighting
LOOP_WEIGHT = 16


def _loop_depths(fn: Function) -> Dict[object, int]:
    depth: Dict[object, int] = {bb: 0 for bb in fn.blocks}
    for loop in natural_loops(fn):
        for bb in loop.body:
            depth[bb] += 1
    return depth


def weighted_inst_count(fn: Function) -> float:
    """Loop-depth-weighted static instruction count (free casts/GEPs,
    matching the runtime's retired-instruction accounting)."""
    depth = _loop_depths(fn)
    total = 0.0
    for bb in fn.blocks:
        w = LOOP_WEIGHT ** depth.get(bb, 0)
        n = sum(
            0 if isinstance(i, (Cast, GEP, Alloca)) else 1 for i in bb.instructions
        )
        total += n * w
    return total


def weighted_barrier_count(fn: Function) -> float:
    depth = _loop_depths(fn)
    return sum(
        LOOP_WEIGHT ** depth.get(bb, 0)
        for bb in fn.blocks
        for i in bb.instructions
        if is_barrier(i)
    )


@dataclass
class AccessRisk:
    """Conflict analysis of one global load in the transformed kernel."""

    stride_bytes: int
    iterations: int
    distinct_sets: int
    conflicts: bool

    def describe(self) -> str:
        if self.conflicts:
            return (
                f"stride {self.stride_bytes}B maps {self.iterations} lines "
                f"onto {self.distinct_sets} cache set(s): conflict thrash"
            )
        return f"stride {self.stride_bytes}B is cache-benign"


def _conflict_risk(
    stride_bytes: int,
    iterations: int,
    spec: CPUSpec,
) -> AccessRisk:
    """Would ``iterations`` accesses at ``stride_bytes`` thrash L1 sets?"""
    line = spec.line_size
    l1_lines = int(spec.l1[0] * 1024) // line
    n_sets = max(1, l1_lines // spec.l1[1])
    if stride_bytes < line:
        return AccessRisk(stride_bytes, iterations, n_sets, False)
    step = (stride_bytes // line) % n_sets
    distinct = n_sets // math.gcd(n_sets, step) if step else 1
    conflicts = iterations > distinct * spec.l1[1]
    return AccessRisk(stride_bytes, iterations, min(distinct, iterations), conflicts)


def _factor_value(sym, arg_values: Dict[str, int]) -> Optional[int]:
    """Concrete value of a non-moving symbol factor, if known."""
    if sym[0] == "arg":
        return arg_values.get(sym[1].name)
    if sym[0] == "lsize":
        return arg_values.get(f"__lsize{sym[1]}")
    return None


def _term_stride(
    sym, coeff: int, elem_stride: int, moving, arg_values: Dict[str, int]
) -> Optional[int]:
    """Byte stride contributed by one affine term when ``moving``
    (a slot or lid symbol) advances by one.  Product terms multiply in
    the known values of the other factors (symbolic row strides)."""
    if sym == moving:
        return abs(coeff) * elem_stride
    if sym[0] == "prod" and moving in sym[1:]:
        factor = abs(coeff) * elem_stride
        for f in sym[1:]:
            if f == moving:
                continue
            v = _factor_value(f, arg_values)
            if v is None:
                return None
            factor *= abs(v)
        return factor
    return None


def _innermost_stride(
    fn: Function,
    load: Load,
    ctx: AffineContext,
    arg_values: Dict[str, int],
) -> Optional[Tuple[int, int]]:
    """(byte stride, trip count guess) of the load's fastest-moving term.

    The fastest-moving symbol is the innermost loop counter enclosing the
    load if the index depends on it, else the x-dimension thread index
    (work-items are serialised x-fastest on CPUs).  Symbolic row strides
    are resolved through ``arg_values`` (the launch constants the
    auto-tuner knows).
    """
    ptr = load.ptr
    if not isinstance(ptr, GEP):
        return None
    strides = ptr.strides()
    loops = natural_loops(fn)
    enclosing = [l for l in loops if load.parent in l.body]
    inner_slots = set()
    if enclosing:
        innermost = min(enclosing, key=lambda l: len(l.body))
        for bb in innermost.body:
            for i in bb.instructions:
                if isinstance(i, Store) and isinstance(i.ptr, Alloca):
                    inner_slots.add(i.ptr)

    movers = [("slot", s) for s in inner_slots] + [("lid", 0)]
    best: Optional[Tuple[int, int]] = None
    for idx, elem_stride in zip(ptr.indices, strides):
        e = ctx.to_linexpr(idx)
        for mover in movers:
            total = 0
            found = False
            for sym, coeff in e.terms.items():
                if coeff.denominator != 1:
                    continue
                s = _term_stride(sym, int(coeff), elem_stride, mover, arg_values)
                if s is not None:
                    total += s
                    found = True
            if found:
                cand = (total, LOOP_WEIGHT)
                if mover[0] == "slot":
                    return cand  # the inner loop counter wins outright
                best = best or cand
    return best


@dataclass
class CandidateFeatures:
    array: str
    #: fraction of (weighted) work removed with the staging + barriers
    removed_work_frac: float
    barrier_frac: float
    risks: List[AccessRisk] = field(default_factory=list)

    @property
    def conflict(self) -> bool:
        return any(r.conflicts for r in self.risks)


@dataclass
class Prediction:
    device: str
    verdict: str                      # 'gain' | 'loss' | 'similar'
    score: float                      # >0 leans gain, <0 leans loss
    features: List[CandidateFeatures]
    reasons: List[str]
    report: Optional[GroverReport] = None

    def __str__(self) -> str:
        lines = [f"prediction[{self.device}]: {self.verdict} (score {self.score:+.3f})"]
        lines += [f"  - {r}" for r in self.reasons]
        return "\n".join(lines)


def analyze_kernel(
    source: str,
    kernel_name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    arrays: Optional[List[str]] = None,
    spec: Optional[CPUSpec] = None,
) -> Tuple[Function, Function, GroverReport]:
    """Compile the kernel twice and transform one copy."""
    original = compile_kernel(source, kernel_name, defines=defines)
    transformed = compile_kernel(source, kernel_name, defines=defines)
    report = GroverPass(arrays=arrays).run(transformed)
    return original, transformed, report


#: verdict thresholds on the score
_GAIN_T = 0.04
_LOSS_T = -0.04


def predict(
    source: str,
    device: CPUSpec,
    kernel_name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    arrays: Optional[List[str]] = None,
    arg_values: Optional[Dict[str, int]] = None,
) -> Prediction:
    """Predict the effect of disabling local memory on ``device``.

    Raises :class:`~repro.core.GroverError` when the kernel cannot be
    transformed at all (no prediction to make).
    """
    original, transformed, report = analyze_kernel(
        source, kernel_name, defines, arrays
    )
    arg_values = arg_values or {}
    reasons: List[str] = []

    w_orig = weighted_inst_count(original)
    w_new = weighted_inst_count(transformed)
    b_orig = weighted_barrier_count(original)
    b_new = weighted_barrier_count(transformed)

    # instruction-side effect (positive = removal saves work)
    inst_gain = (w_orig - w_new) / max(w_orig, 1.0)
    barrier_gain = (
        (b_orig - b_new) * device.barrier_cost / max(w_orig / device.ipc, 1.0)
    )
    # instructions are not the only cycles (memory overlaps them); cap the
    # relative weight of removed synchronisation
    barrier_gain = min(barrier_gain, 0.5)

    # access risks of the new global loads
    ctx = AffineContext(transformed)
    feats: List[CandidateFeatures] = []
    conflict_penalty = 0.0
    for rec in report.transformed:
        risks = []
        for inst in transformed.instructions():
            if (
                isinstance(inst, Load)
                and inst.addrspace in (AddressSpace.GLOBAL, AddressSpace.CONSTANT)
                and inst.name.startswith(f"nGL_{rec.name}")
            ):
                st = _innermost_stride(transformed, inst, ctx, arg_values)
                if st is None:
                    continue
                risk = _conflict_risk(st[0], st[1], device)
                risks.append(risk)
                if risk.conflicts:
                    conflict_penalty += 0.25
                    reasons.append(f"{rec.name}: {risk.describe()}")
        feats.append(
            CandidateFeatures(
                array=rec.name,
                removed_work_frac=inst_gain,
                barrier_frac=barrier_gain,
                risks=risks,
            )
        )

    if inst_gain > 0.02:
        reasons.append(
            f"staging removal saves ~{inst_gain:.0%} of weighted instructions"
        )
    if barrier_gain > 0.02:
        reasons.append(
            f"{int(b_orig - b_new)} weighted barrier crossing(s) removed"
        )
    if not reasons:
        reasons.append("no dominant effect found")

    score = inst_gain + barrier_gain - conflict_penalty
    if score > _GAIN_T:
        verdict = "gain"
    elif score < _LOSS_T:
        verdict = "loss"
    else:
        verdict = "similar"
    return Prediction(
        device=device.name,
        verdict=verdict,
        score=score,
        features=feats,
        reasons=reasons,
        report=report,
    )
