"""Static prediction of local-memory removal benefit (paper future work).

The paper's conclusion section: "using Grover, we want to model the
performance benefits/losses due to local memory usage on CPUs".  This
package implements that model: a *static* analysis over the original and
Grover-transformed kernels that predicts gain / loss / similar per
device without executing anything — and is validated against the
trace-driven models in the test suite.
"""

from repro.predict.analyzer import (
    CandidateFeatures,
    Prediction,
    analyze_kernel,
    predict,
)

__all__ = ["CandidateFeatures", "Prediction", "analyze_kernel", "predict"]
