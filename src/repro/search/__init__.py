"""Pipeline search: which sequence of rewrite rules wins, per app?

See :mod:`repro.search.engine` — deterministic beam search (greedy at
``--beam 1``) over :mod:`repro.rules` pipelines, scored by the
trace-driven performance model and gated by the race analyzer plus the
three-backend differential runner.
"""

from repro.search.engine import (
    AppSearchResult,
    CandidateEval,
    SearchOptions,
    SearchRunResult,
    evaluate_pipeline,
    main,
    render_search,
    run_search,
    search_app,
    verify_pipeline,
)

__all__ = [
    "AppSearchResult",
    "CandidateEval",
    "SearchOptions",
    "SearchRunResult",
    "evaluate_pipeline",
    "main",
    "render_search",
    "run_search",
    "search_app",
    "verify_pipeline",
]
