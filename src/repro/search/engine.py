"""Deterministic beam search over rewrite-rule pipelines.

The Grover paper's own evaluation shows its one transformation wins only
a third of the time — which transformation (if any) helps is a per-app,
per-device question.  This engine answers it by *searching*: starting
from the compiled kernel (the default pipeline already applied), it
extends candidate pipelines one registered rewrite rule at a time,
scores every candidate with the trace-driven performance model under the
codegen execution backend, and keeps the ``beam`` best per depth level.

Scoring is a prediction; shipping is gated.  Every surviving winner is
re-derived from scratch and verified before it is reported:

* the static race/divergence analyzer must not find a decided race or
  barrier divergence in the transformed kernel (the same veto arbiter
  that guards ``Session.disable_local_memory``);
* all three execution backends (reference / tape / codegen) must produce
  bit-identical traces and outputs for the transformed kernel;
* the transformed kernel's outputs must be byte-identical to the
  untransformed baseline's (:func:`repro.parallel.diff.assert_outputs_equal`).

A candidate that fails any gate is discarded and the next-best one is
verified instead; the empty pipeline is always a candidate, so the
reported winner is never worse than the default by predicted cycles.

With ``--tune`` (``SearchOptions.tune``) the learned go/no-go predictor
(:mod:`repro.tune`) screens every extension before it is scored:
candidates whose last rule rewrote nothing, or whose predicted win
probability falls below the session's ``tune_threshold``, skip the full
trace-driven simulation and are reported as pruned on their
``search_candidate`` event.  Pruning only ever shrinks the scoring
queue — the verification gates above run unchanged on every winner.

Everything is deterministic: rule applications are deterministic, the
interpreter and models are deterministic, candidates are generated and
ranked in a fixed order, and the process-pool fan-out (borrowed from the
fuzz runner) gathers results in submission order — so the winning
pipeline is byte-identical across worker counts and repeated processes
(pinned by ``tests/test_search_determinism.py``).

Exposed on the command line as ``repro search``::

    python -m repro.cli search --apps NVD-MT,NVD-MM-B --beam 2 --depth 3
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel import pool as worker_pool
from repro.parallel.engine import make_pool, resolve_workers
from repro.session import events

__all__ = [
    "CandidateEval",
    "AppSearchResult",
    "SearchRunResult",
    "SearchOptions",
    "evaluate_pipeline",
    "verify_pipeline",
    "search_app",
    "run_search",
    "render_search",
    "main",
]

#: cycles assigned to candidates whose evaluation raised — sorts last,
#: never survives the ``rewrites > 0`` keep filter either
_FAILED = float("inf")


@dataclass(frozen=True)
class CandidateEval:
    """One scored pipeline — plain data, picklable across the pool."""

    app_id: str
    pipeline: Tuple[str, ...]
    rewrites: Tuple[int, ...]
    cycles: float
    device: str
    error: str = ""

    @property
    def label(self) -> str:
        return " -> ".join(self.pipeline) if self.pipeline else "(default)"


@dataclass
class AppSearchResult:
    """The search outcome for one application."""

    app_id: str
    device: str
    baseline: CandidateEval
    winner: CandidateEval
    evaluated: int
    verified: bool          # False only when every candidate failed gates
    rejected: Tuple[str, ...] = ()  # labels of candidates a gate refused
    wall_s: float = 0.0
    #: candidates the go/no-go predictor pruned before scoring (0
    #: without options.tune)
    pruned: int = 0
    #: every extension candidate that went through full scoring
    candidates: Tuple[CandidateEval, ...] = ()

    @property
    def speedup(self) -> float:
        if self.winner.cycles <= 0:
            return 1.0
        return self.baseline.cycles / self.winner.cycles


@dataclass
class SearchOptions:
    apps: Tuple[str, ...] = ()
    rules: Tuple[str, ...] = ()  # empty: every registered rule
    beam: Optional[int] = None   # None: session search_beam
    depth: Optional[int] = None  # None: session search_depth
    scale: str = "test"
    sample_groups: Optional[int] = None  # None: session search_sample_groups
    device: Optional[str] = None         # None: session search_device
    workers: Optional[int] = None        # None: session workers
    #: learned go/no-go pruning: skip the trace-driven scoring of
    #: candidates the tune model predicts to lose (model/threshold from
    #: the session's tune_model / tune_threshold).  Pure accelerator —
    #: winners are verified identically with or without it.
    tune: bool = False


@dataclass
class SearchRunResult:
    options: SearchOptions
    results: List[AppSearchResult] = field(default_factory=list)
    workers: int = 1
    wall_s: float = 0.0

    def summary(self) -> str:
        return render_search(self)


# ---------------------------------------------------------------------------
# candidate evaluation (runs in pool workers)
# ---------------------------------------------------------------------------


def _apply_pipeline(kernel, pipeline: Sequence[str], geometry) -> Tuple[int, ...]:
    """Apply rules in order, verifying the IR after each; returns the
    per-rule rewrite counts."""
    from repro.ir.verifier import verify_function
    from repro.rules import RuleContext, get_rule

    ctx = RuleContext(local_size=tuple(geometry) if geometry else None)
    rewrites: List[int] = []
    for name in pipeline:
        rewrites.append(int(get_rule(name).apply(kernel, ctx)))
        verify_function(kernel)
    return tuple(rewrites)


def evaluate_pipeline(
    app_id: str,
    pipeline: Sequence[str],
    scale: str,
    sample_groups: int,
    device_name: str,
) -> CandidateEval:
    """Compile, transform, execute (codegen backend) and model one
    pipeline.

    Candidate-specific runtime failures (a transformed kernel that
    faults, races or diverges when executed) come back as ``error``
    candidates — they describe the candidate, and the failure reason is
    surfaced on its ``search_candidate`` event.  Deterministic
    toolchain failures re-raise instead: a
    :class:`~repro.frontend.errors.FrontendError` or
    :class:`~repro.ir.verifier.VerificationError` means a rule emitted
    IR the compiler itself rejects — a rule bug that a serial rerun
    would reproduce identically, never something to discard quietly
    (mirrors the PR 4 parallel-engine contract).
    ``KeyboardInterrupt``/``SystemExit`` always propagate.
    """
    from repro.frontend.errors import FrontendError
    from repro.ir.verifier import VerificationError

    pipeline = tuple(pipeline)
    try:
        from repro.apps.harness import compile_app, execute_app
        from repro.apps.registry import get_app
        from repro.perf import estimate_cost
        from repro.session import Session

        app = get_app(app_id)
        problem = app.make_problem(scale)
        # a fresh, environment-isolated session: scoring must not depend
        # on the caller's REPRO_* environment (determinism contract)
        with Session(env={}, workers=1, exec_backend="codegen").activate():
            kernel, _ = compile_app(app, "with")
            rewrites = _apply_pipeline(kernel, pipeline, problem.local_size)
            run = execute_app(
                app,
                kernel,
                variant="with",
                scale=scale,
                collect_trace=True,
                sample_groups=sample_groups,
                workers=1,
            )
            cost = estimate_cost(run.trace, device_name)
        return CandidateEval(app_id, pipeline, rewrites, cost.cycles, device_name)
    except (FrontendError, VerificationError):
        raise
    except Exception as exc:
        return CandidateEval(
            app_id,
            pipeline,
            (),
            _FAILED,
            device_name,
            error=f"{type(exc).__name__}: {exc}",
        )


def _eval_one(payload: Tuple[str, Tuple[str, ...], str, int, str]) -> CandidateEval:
    """In-process evaluator (serial path and pool-failure fallback)."""
    app_id, pipeline, scale, sample_groups, device_name = payload
    return evaluate_pipeline(app_id, pipeline, scale, sample_groups, device_name)


def _eval_in_worker(payload) -> CandidateEval:
    """Pool-child evaluator: drop event sinks inherited over ``fork`` so
    children never write into the parent's JSONL stream."""
    events.bus()._sinks.clear()
    return _eval_one(payload)


def _fan_out(payloads: List[Tuple], pool) -> List[CandidateEval]:
    """Evaluate payloads (pool when available, else serially), returning
    results in input order — the determinism contract."""
    if pool is None:
        return [_eval_one(p) for p in payloads]
    results: List[CandidateEval] = []
    futures = [pool.submit(_eval_in_worker, p) for p in payloads]
    for payload, fut in zip(payloads, futures):
        try:
            results.append(fut.result())
        except Exception:
            # pool infrastructure died (evaluate_pipeline itself never
            # raises): redo this candidate serially
            results.append(_eval_one(payload))
    return results


# ---------------------------------------------------------------------------
# winner verification (analyzer gate + differential runner)
# ---------------------------------------------------------------------------


def verify_pipeline(
    app_id: str,
    pipeline: Sequence[str],
    scale: str,
) -> Tuple[bool, str]:
    """Re-derive the transformed kernel and gate it; ``(ok, reason)``.

    Gates, in order: the static race/divergence analyzer (a decided
    finding vetoes), three-backend trace + output bit-identity, and
    byte-identical outputs against the untransformed baseline.

    Gate refusals come back as ``(False, reason)``; deterministic
    compile/verifier errors re-raise (same contract as
    :func:`evaluate_pipeline` — they are rule bugs, not gate verdicts)
    and ``KeyboardInterrupt``/``SystemExit`` propagate untouched.
    """
    from repro.analysis import analyze_kernel
    from repro.frontend.errors import FrontendError
    from repro.ir.verifier import VerificationError
    from repro.apps.harness import compile_app, execute_app
    from repro.apps.registry import get_app
    from repro.parallel.diff import (
        DifferentialMismatch,
        assert_outputs_equal,
        assert_traces_equal,
    )
    from repro.session import Session

    pipeline = tuple(pipeline)
    app = get_app(app_id)
    problem = app.make_problem(scale)
    try:
        with Session(env={}, workers=1, exec_backend="codegen").activate():
            kernel, _ = compile_app(app, "with")
            _apply_pipeline(kernel, pipeline, problem.local_size)
            if pipeline:  # the analyzer veto gate (empty pipeline: a no-op)
                rep = analyze_kernel(kernel, problem.local_size)
                blocking = rep.races + rep.divergences
                if blocking:
                    return False, "analyzer veto: " + "; ".join(
                        f.render() for f in blocking
                    )
            baseline_kernel, _ = compile_app(app, "with")
            base = execute_app(
                app, baseline_kernel, variant="with", scale=scale,
                collect_trace=False, workers=1,
            )
        runs = {}
        for backend in ("reference", "tape", "codegen"):
            with Session(env={}, workers=1, exec_backend=backend).activate():
                # full grid, no sampling: sampled launches execute only
                # the sampled groups, and verification must compare the
                # complete output of every work-group
                runs[backend] = execute_app(
                    app, kernel, variant="with", scale=scale,
                    collect_trace=True, workers=1,
                )
        ref = runs["reference"]
        for backend in ("tape", "codegen"):
            assert_traces_equal(
                ref.trace, runs[backend].trace,
                f"{app_id} search winner [{backend}]",
            )
            assert_outputs_equal(
                ref.outputs, runs[backend].outputs,
                f"{app_id} search winner [{backend}]",
            )
        # byte-identical outputs against the untransformed kernel: every
        # shipped rule preserves computed values exactly (it reorders or
        # re-homes memory traffic, never arithmetic)
        assert_outputs_equal(
            base.outputs, ref.outputs, f"{app_id} search winner vs default"
        )
    except DifferentialMismatch as exc:
        return False, f"differential: {exc}"
    except (FrontendError, VerificationError):
        raise
    except Exception as exc:
        return False, f"{type(exc).__name__}: {exc}"
    return True, ""


# ---------------------------------------------------------------------------
# the search proper
# ---------------------------------------------------------------------------


def _resolved(options: SearchOptions) -> Tuple[Tuple[str, ...], int, int, int, str]:
    """Fill ``None`` option fields from the active session's config."""
    from repro.rules import rule_names
    from repro.session import current_session

    session = current_session()
    rules = tuple(options.rules) or rule_names()
    beam = options.beam if options.beam is not None else session.get("search_beam")
    depth = options.depth if options.depth is not None else session.get("search_depth")
    sample_groups = (
        options.sample_groups
        if options.sample_groups is not None
        else session.get("search_sample_groups")
    )
    device_name = options.device or session.get("search_device")
    return rules, int(beam), int(depth), int(sample_groups), str(device_name)


def search_app(app_id: str, options: SearchOptions, pool=None) -> AppSearchResult:
    """Beam-search one application; see the module docstring."""
    from repro.rules import get_rule

    rules, beam, depth, sample_groups, device_name = _resolved(options)
    for name in rules:
        get_rule(name)  # unknown rule names fail before any evaluation
    t0 = time.perf_counter()
    events.emit(
        "search_start",
        app=app_id,
        rules=list(rules),
        beam=beam,
        depth=depth,
        device=device_name,
    )

    def payload(pipeline: Tuple[str, ...]):
        return (app_id, pipeline, options.scale, sample_groups, device_name)

    # learned go/no-go pruning: load the committed (or configured) model
    # and trace the baseline once for its reuse/divergence features —
    # everything a candidate prediction needs besides statics
    predictor = threshold = tune_ctx = None
    if options.tune:
        from repro.session import current_session
        from repro.tune.features import app_kernel_context
        from repro.tune.model import default_model_path, load_model

        session = current_session()
        model_path = session.get("tune_model") or default_model_path()
        predictor = load_model(str(model_path))
        threshold = float(session.get("tune_threshold"))
        tune_ctx = app_kernel_context(app_id, options.scale, sample_groups)

    baseline = _eval_one(payload(()))
    if baseline.error:
        raise RuntimeError(
            f"search baseline for {app_id!r} failed: {baseline.error}"
        )
    events.emit(
        "search_candidate",
        app=app_id,
        pipeline=[],
        rewrites=[],
        cycles=baseline.cycles,
        kept=True,
        error="",
    )

    kept_all: List[CandidateEval] = []
    scored_all: List[CandidateEval] = []
    pruned = 0
    frontier: List[CandidateEval] = [baseline]
    for _level in range(depth):
        extensions: List[Tuple[str, ...]] = []
        for cand in frontier:
            for name in rules:
                if name in cand.pipeline:
                    continue  # rules are idempotent: repeats are no-ops
                extensions.append(cand.pipeline + (name,))
        if not extensions:
            break
        if predictor is not None:
            # go/no-go gate, run before any scoring launch: static
            # features are enough to drop extensions whose last rule
            # rewrote nothing (the keep filter would discard them after
            # paying for a full simulation), and the model votes on the
            # rest.  Pruning shrinks the scoring queue only — it cannot
            # admit a candidate, and winners are verified regardless.
            from repro.tune.features import app_candidate_features

            to_eval: List[Tuple[str, ...]] = []
            for pipe in extensions:
                feats, rewrites = app_candidate_features(
                    tune_ctx, app_id, pipe, options.scale, device_name
                )
                if rewrites[-1] == 0:
                    reason = "pruned: last rule rewrote nothing"
                else:
                    p_win = predictor.predict(feats)
                    prune = p_win < threshold
                    events.emit(
                        "tune_predict",
                        kernel=f"app:{app_id}",
                        pipeline=list(pipe),
                        p_win=p_win,
                        threshold=threshold,
                        prune=prune,
                    )
                    if not prune:
                        to_eval.append(pipe)
                        continue
                    reason = (
                        f"pruned: p_win={p_win:.4f} < threshold {threshold:g}"
                    )
                pruned += 1
                events.emit(
                    "search_candidate",
                    app=app_id,
                    pipeline=list(pipe),
                    rewrites=list(rewrites),
                    cycles=-1.0,
                    kept=False,
                    error=reason,
                )
            extensions = to_eval
            if not extensions:
                break
        evals = _fan_out([payload(p) for p in extensions], pool)
        scored_all.extend(evals)
        kept: List[CandidateEval] = []
        for ev in evals:
            keep = not ev.error and bool(ev.rewrites) and ev.rewrites[-1] > 0
            events.emit(
                "search_candidate",
                app=app_id,
                pipeline=list(ev.pipeline),
                rewrites=list(ev.rewrites),
                cycles=ev.cycles if ev.cycles != _FAILED else -1.0,
                kept=keep,
                # why the candidate failed, "" when it evaluated cleanly
                # (dropping a candidate must leave a visible reason)
                error=ev.error,
            )
            if keep:
                kept.append(ev)
        kept_all.extend(kept)
        frontier = sorted(kept, key=lambda e: (e.cycles, e.pipeline))[:beam]
        if not frontier:
            break

    # rank every scored candidate (baseline included) and verify best-first
    ranked = sorted(
        kept_all + [baseline],
        key=lambda e: (e.cycles, len(e.pipeline), e.pipeline),
    )
    winner = baseline
    verified = False
    rejected: List[str] = []
    for cand in ranked:
        ok, reason = verify_pipeline(app_id, cand.pipeline, options.scale)
        events.emit(
            "search_verified",
            app=app_id,
            pipeline=list(cand.pipeline),
            ok=ok,
            reason=reason,
        )
        if ok:
            winner = cand
            verified = True
            break
        rejected.append(f"{cand.label}: {reason}")

    wall = time.perf_counter() - t0
    events.emit(
        "search_end",
        app=app_id,
        pipeline=list(winner.pipeline),
        cycles=winner.cycles,
        baseline_cycles=baseline.cycles,
        evaluated=len(kept_all) + 1,
        pruned=pruned,
        verified=verified,
        wall_ms=wall * 1e3,
    )
    return AppSearchResult(
        app_id=app_id,
        device=device_name,
        baseline=baseline,
        winner=winner,
        evaluated=len(kept_all) + 1,
        verified=verified,
        rejected=tuple(rejected),
        wall_s=wall,
        pruned=pruned,
        candidates=tuple(scored_all),
    )


def run_search(options: SearchOptions) -> SearchRunResult:
    """Search every requested app (default: the full Table III set)."""
    from repro.apps.registry import table_apps

    t0 = time.perf_counter()
    apps = tuple(options.apps) or tuple(a.id for a in table_apps())
    n_workers = resolve_workers(options.workers)
    pool = (
        worker_pool.acquire(n_workers, factory=make_pool)
        if n_workers > 1
        else None
    )
    run = SearchRunResult(options=options, workers=n_workers)
    try:
        for app_id in apps:
            run.results.append(search_app(app_id, options, pool))
    finally:
        if pool is not None:
            pool.release()
    run.wall_s = time.perf_counter() - t0
    return run


def render_search(run: SearchRunResult) -> str:
    """The deterministic report ``--golden`` pins (no wall-clock in it)."""
    from repro.reporting import ascii_table

    rules, beam, depth, sample_groups, device_name = _resolved(run.options)
    rows = []
    for r in run.results:
        rows.append(
            [
                r.app_id,
                r.winner.label,
                f"{r.winner.cycles:.1f}",
                f"{r.baseline.cycles:.1f}",
                f"{r.speedup:.3f}x",
                "yes" if r.verified else "NO",
            ]
        )
    title = (
        f"pipeline search (beam {beam}, depth {depth}, device {device_name}, "
        f"scale {run.options.scale}, sample groups {sample_groups})"
    )
    return ascii_table(
        ["app", "winning pipeline", "predicted cycles", "default cycles",
         "speedup", "verified"],
        rows,
        title=title,
    )


# ---------------------------------------------------------------------------
# CLI: ``repro search``
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    from repro.cli import add_session_flags
    from repro.perf.bench import validate_app_ids
    from repro.session import session_from_flags

    p = argparse.ArgumentParser(
        prog="repro search",
        description="Beam-search rewrite-rule pipelines per app: score "
        "candidates with the trace-driven performance model (codegen "
        "backend), then verify every winner with the race analyzer and "
        "the three-backend differential runner.",
    )
    p.add_argument("--apps", default="",
                   help="comma-separated app ids (default: every Table III app)")
    p.add_argument("--rules", default="",
                   help="comma-separated rule names to search over "
                   "(default: every registered rule)")
    p.add_argument("--beam", type=int, default=None,
                   help="beam width (default: $REPRO_SEARCH_BEAM)")
    p.add_argument("--depth", type=int, default=None,
                   help="max pipeline length (default: $REPRO_SEARCH_DEPTH)")
    p.add_argument("--greedy", action="store_true",
                   help="greedy baseline: beam width 1")
    p.add_argument("--scale", default="test", help="problem scale")
    p.add_argument("--sample-groups", type=int, default=None,
                   help="traced groups per scoring launch "
                   "(default: $REPRO_SEARCH_SAMPLE_GROUPS)")
    p.add_argument("--device", default=None,
                   help="device model scoring candidates "
                   "(default: $REPRO_SEARCH_DEVICE)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool width for candidate evaluation "
                   "(default: $REPRO_WORKERS, then 1)")
    p.add_argument("--tune", action="store_true",
                   help="prune candidates with the learned go/no-go "
                   "predictor before trace-driven scoring (model from "
                   "$REPRO_TUNE_MODEL, cut at $REPRO_TUNE_THRESHOLD; "
                   "winners are verified identically either way)")
    p.add_argument("--golden", metavar="FILE", default=None,
                   help="compare the report against FILE (CI pinning); "
                   "with $REPRO_UPDATE_GOLDEN=1 or --update-golden, "
                   "rewrite FILE instead")
    p.add_argument("--update-golden", action="store_true",
                   help="rewrite --golden FILE with the current report")
    add_session_flags(p)
    args = p.parse_args(argv)

    app_ids = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    if app_ids:
        try:
            validate_app_ids(app_ids)
        except ValueError as exc:
            p.error(str(exc))

    options = SearchOptions(
        apps=app_ids,
        rules=tuple(r.strip() for r in args.rules.split(",") if r.strip()),
        beam=1 if args.greedy else args.beam,
        depth=args.depth,
        scale=args.scale,
        sample_groups=args.sample_groups,
        device=args.device,
        workers=args.workers,
        tune=args.tune,
    )
    with session_from_flags(args.config, args.trace_out) as session:
        with session.activate():
            run = run_search(options)
            report = render_search(run)
            update = args.update_golden or bool(session.get("update_golden"))
    print(report)
    if args.tune:
        for r in run.results:
            print(f"# {r.app_id}: pruned {r.pruned} candidate(s) before "
                  f"scoring, fully scored {len(r.candidates)}")
    for r in run.results:
        for line in r.rejected:
            print(f"# {r.app_id} rejected {line}")
    if not all(r.verified for r in run.results):
        print("error: some apps have no verifiable pipeline", file=sys.stderr)
        return 1
    if args.golden:
        if update:
            with open(args.golden, "w") as fh:
                fh.write(report + "\n")
            print(f"# golden updated: {args.golden}")
        else:
            import difflib

            try:
                with open(args.golden) as fh:
                    expected = fh.read()
            except OSError as exc:
                print(f"error: cannot read golden {args.golden!r}: {exc}",
                      file=sys.stderr)
                return 1
            if expected != report + "\n":
                diff = "\n".join(
                    difflib.unified_diff(
                        expected.splitlines(),
                        (report + "\n").splitlines(),
                        fromfile=args.golden,
                        tofile="current",
                        lineterm="",
                    )
                )
                print(f"error: search report drifted from {args.golden}:\n{diff}",
                      file=sys.stderr)
                return 1
            print(f"# golden ok: {args.golden}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
