"""IR instructions.

The instruction set mirrors the slice of LLVM IR that OpenCL C kernels
lower to at ``-O0``: arithmetic, comparisons, select, casts, ``alloca`` +
``load``/``store`` for mutable locals, ``getelementptr`` for array
addressing, calls to OpenCL builtins, and (conditional) branches.

All instructions are :class:`~repro.ir.values.Value` subclasses; operand
lists maintain the use-def chains automatically through
:meth:`Instruction.set_operand`.  Instructions can be cloned
(:meth:`Instruction.clone`) — that is the primitive Algorithm 1 of the
paper builds on when duplicating the ``GL`` index computation in front of
the ``LL``.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VoidType,
    VOID,
)
from repro.ir.values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import BasicBlock

_id_counter = itertools.count()


class Opcode(str, enum.Enum):
    # integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    # float arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    @property
    def is_float(self) -> bool:
        return self.value.startswith("f")


class CmpPred(str, enum.Enum):
    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    # float predicates (ordered)
    OEQ = "oeq"
    ONE = "one"
    OLT = "olt"
    OLE = "ole"
    OGT = "ogt"
    OGE = "oge"


class CastKind(str, enum.Enum):
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    FPTOSI = "fptosi"
    FPTOUI = "fptoui"
    SITOFP = "sitofp"
    UITOFP = "uitofp"
    FPEXT = "fpext"
    FPTRUNC = "fptrunc"
    BITCAST = "bitcast"
    BOOL_TO_INT = "booltoint"
    INT_TO_BOOL = "inttobool"


class Instruction(Value):
    """Base class for all instructions."""

    __slots__ = ("operands", "parent", "id")

    #: True for br/condbr/ret
    is_terminator = False

    def __init__(self, ty: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(ty, name)
        self.parent: Optional["BasicBlock"] = None
        self.id = next(_id_counter)
        self.operands: List[Value] = []
        for op in operands:
            idx = len(self.operands)
            self.operands.append(op)
            op.add_use(self, idx)

    # -- operand maintenance -------------------------------------------------
    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old.remove_use(self, index)
        self.operands[index] = value
        value.add_use(self, index)

    def drop_all_references(self) -> None:
        """Remove this instruction from the use lists of its operands."""
        for idx, op in enumerate(self.operands):
            op.remove_use(self, idx)
        self.operands = []

    # -- placement -----------------------------------------------------------
    def erase_from_parent(self) -> None:
        assert self.parent is not None, "instruction not in a block"
        self.drop_all_references()
        self.parent.instructions.remove(self)
        self.parent = None

    def clone(self) -> "Instruction":
        """Shallow copy referencing the same operands, not yet in a block."""
        new = object.__new__(type(self))
        Instruction.__init__(new, self.type, list(self.operands), self.name)
        for slot in type(self).__slots__:
            if slot not in Instruction.__slots__ and slot not in Value.__slots__:
                setattr(new, slot, getattr(self, slot))
        return new

    @property
    def function(self):  # -> Optional[Function]
        return self.parent.parent if self.parent is not None else None

    def short(self) -> str:
        return f"%{self.name or ('t%d' % self.id)}"


class BinOp(Instruction):
    __slots__ = ("opcode",)

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> None:
        if lhs.type != rhs.type:
            raise TypeError(f"binop operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = Opcode(opcode)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmp(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: CmpPred, lhs: Value, rhs: Value, name: str = "") -> None:
        if lhs.type != rhs.type:
            raise TypeError(f"icmp operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(BOOL, [lhs, rhs], name)
        self.pred = CmpPred(pred)


class FCmp(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: CmpPred, lhs: Value, rhs: Value, name: str = "") -> None:
        if lhs.type != rhs.type:
            raise TypeError(f"fcmp operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(BOOL, [lhs, rhs], name)
        self.pred = CmpPred(pred)


class Select(Instruction):
    __slots__ = ()

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> None:
        if if_true.type != if_false.type:
            raise TypeError("select arm type mismatch")
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]


class Cast(Instruction):
    __slots__ = ("kind",)

    def __init__(self, kind: CastKind, value: Value, to_type: Type, name: str = "") -> None:
        super().__init__(to_type, [value], name)
        self.kind = CastKind(kind)

    @property
    def value(self) -> Value:
        return self.operands[0]


class Alloca(Instruction):
    """A private (per work-item) stack slot of ``allocated_type``."""

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        super().__init__(PointerType(allocated_type, AddressSpace.PRIVATE), [], name)
        self.allocated_type = allocated_type


class Load(Instruction):
    __slots__ = ()

    def __init__(self, ptr: Value, name: str = "") -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load needs a pointer operand, got {ptr.type}")
        super().__init__(ptr.type.pointee, [ptr], name)

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def addrspace(self) -> AddressSpace:
        return self.ptr.type.addrspace  # type: ignore[union-attr]


class Store(Instruction):
    __slots__ = ()

    def __init__(self, value: Value, ptr: Value) -> None:
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store needs a pointer operand, got {ptr.type}")
        if ptr.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: storing {value.type} through {ptr.type}"
            )
        super().__init__(VOID, [value, ptr], "")

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]

    @property
    def addrspace(self) -> AddressSpace:
        return self.ptr.type.addrspace  # type: ignore[union-attr]


class GEP(Instruction):
    """getelementptr: pointer + index list -> element pointer.

    Semantics (numpy-style, outermost index first):

    * base of type ``T addrspace(A)*`` where ``T`` is scalar/vector:
      one index ``i`` -> offset ``i * sizeof(T)``; result points at ``T``.
    * base pointing at a (nested) :class:`ArrayType`: each index peels one
      array level; the result points at the addressed element.
    """

    __slots__ = ()

    def __init__(self, base: Value, indices: Sequence[Value], name: str = "") -> None:
        if not isinstance(base.type, PointerType):
            raise TypeError(f"gep base must be a pointer, got {base.type}")
        result_pointee = self._result_pointee(base.type.pointee, len(indices))
        super().__init__(
            PointerType(result_pointee, base.type.addrspace),
            [base, *indices],
            name,
        )

    @staticmethod
    def _result_pointee(pointee: Type, n_indices: int) -> Type:
        ty: Type = pointee
        if isinstance(ty, ArrayType):
            for _ in range(n_indices):
                if not isinstance(ty, ArrayType):
                    raise TypeError(f"too many gep indices for type {pointee}")
                ty = ty.element
            return ty
        if n_indices != 1:
            raise TypeError(f"scalar-pointer gep takes one index, got {n_indices}")
        return ty

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    @property
    def addrspace(self) -> AddressSpace:
        return self.base.type.addrspace  # type: ignore[union-attr]

    def strides(self) -> List[int]:
        """Byte stride contributed by each index (outermost first)."""
        ty = self.base.type.pointee  # type: ignore[union-attr]
        if not isinstance(ty, ArrayType):
            return [ty.size]
        out: List[int] = []
        for _ in self.indices:
            assert isinstance(ty, ArrayType)
            ty = ty.element
            out.append(ty.size)
        return out


class Call(Instruction):
    """Call to a named builtin (``get_local_id``, ``barrier``, ``sqrt``, ...)."""

    __slots__ = ("callee",)

    def __init__(self, callee: str, args: Sequence[Value], ret_type: Type, name: str = "") -> None:
        super().__init__(ret_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands


class ExtractElement(Instruction):
    __slots__ = ()

    def __init__(self, vec: Value, index: Value, name: str = "") -> None:
        if not isinstance(vec.type, VectorType):
            raise TypeError(f"extractelement needs a vector, got {vec.type}")
        super().__init__(vec.type.element, [vec, index], name)

    @property
    def vec(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class InsertElement(Instruction):
    __slots__ = ()

    def __init__(self, vec: Value, value: Value, index: Value, name: str = "") -> None:
        if not isinstance(vec.type, VectorType):
            raise TypeError(f"insertelement needs a vector, got {vec.type}")
        if vec.type.element != value.type:
            raise TypeError("insertelement element type mismatch")
        super().__init__(vec.type, [vec, value, index], name)

    @property
    def vec(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]


class Br(Instruction):
    __slots__ = ("target",)
    is_terminator = True

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID, [], "")
        self.target = target

    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class CondBr(Instruction):
    __slots__ = ("if_true", "if_false")
    is_terminator = True

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        if not isinstance(cond.type, BoolType):
            raise TypeError("condbr condition must be i1")
        super().__init__(VOID, [cond], "")
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]


class Ret(Instruction):
    __slots__ = ()
    is_terminator = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [value] if value is not None else [], "")

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


def is_barrier(inst: Instruction) -> bool:
    return isinstance(inst, Call) and inst.callee == "barrier"


def is_side_effecting(inst: Instruction) -> bool:
    """Instructions DCE must never remove even when unused."""
    if isinstance(inst, (Store, Br, CondBr, Ret)):
        return True
    if isinstance(inst, Call):
        return inst.callee in SIDE_EFFECT_BUILTINS
    return False


#: builtins with side effects (everything else is a pure function)
SIDE_EFFECT_BUILTINS = frozenset({"barrier", "mem_fence", "printf"})
