"""IRBuilder: convenience API for creating instructions.

Supports both append-at-end (used by the frontend) and insert-before-an-
instruction positioning (used by the Grover rewrite, which must materialise
the ``nGL`` index computation *immediately before the LL instruction* —
Section IV-E of the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Opcode,
    Ret,
    Select,
    Store,
)
from repro.ir.types import (
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
)
from repro.ir.values import Constant, Value


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block
        #: when set, new instructions go immediately before this anchor
        self._anchor: Optional[Instruction] = None

    # -- positioning ---------------------------------------------------------
    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block
        self._anchor = None

    def position_before(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self.block = inst.parent
        self._anchor = inst

    def emit(self, inst: Instruction) -> Instruction:
        assert self.block is not None, "builder has no insertion point"
        if self._anchor is not None:
            self.block.insert_before(self._anchor, inst)
        else:
            self.block.append(inst)
        return inst

    # -- arithmetic ----------------------------------------------------------
    def binop(self, opcode: Union[Opcode, str], lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.emit(BinOp(Opcode(opcode), lhs, rhs, name))

    def add(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.ADD, a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.SUB, a, b, name)

    def mul(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.MUL, a, b, name)

    def sdiv(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.SDIV, a, b, name)

    def fadd(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.FADD, a, b, name)

    def fsub(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.FSUB, a, b, name)

    def fmul(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.FMUL, a, b, name)

    def fdiv(self, a: Value, b: Value, name: str = "") -> Value:
        return self.binop(Opcode.FDIV, a, b, name)

    def icmp(self, pred: Union[CmpPred, str], a: Value, b: Value, name: str = "") -> Value:
        return self.emit(ICmp(CmpPred(pred), a, b, name))

    def fcmp(self, pred: Union[CmpPred, str], a: Value, b: Value, name: str = "") -> Value:
        return self.emit(FCmp(CmpPred(pred), a, b, name))

    def select(self, cond: Value, t: Value, f: Value, name: str = "") -> Value:
        return self.emit(Select(cond, t, f, name))

    def cast(self, kind: Union[CastKind, str], v: Value, to_type: Type, name: str = "") -> Value:
        return self.emit(Cast(CastKind(kind), v, to_type, name))

    # -- memory --------------------------------------------------------------
    def alloca(self, ty: Type, name: str = "") -> Value:
        return self.emit(Alloca(ty, name))

    def load(self, ptr: Value, name: str = "") -> Value:
        return self.emit(Load(ptr, name))

    def store(self, value: Value, ptr: Value) -> Value:
        return self.emit(Store(value, ptr))

    def gep(self, base: Value, indices: Sequence[Value], name: str = "") -> Value:
        return self.emit(GEP(base, indices, name))

    # -- misc ----------------------------------------------------------------
    def call(self, callee: str, args: Sequence[Value], ret_type: Type, name: str = "") -> Value:
        return self.emit(Call(callee, args, ret_type, name))

    def extract(self, vec: Value, index: Value, name: str = "") -> Value:
        return self.emit(ExtractElement(vec, index, name))

    def insert(self, vec: Value, value: Value, index: Value, name: str = "") -> Value:
        return self.emit(InsertElement(vec, value, index, name))

    # -- control flow ----------------------------------------------------------
    def br(self, target: BasicBlock) -> Value:
        return self.emit(Br(target))

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Value:
        return self.emit(CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Value:
        return self.emit(Ret(value))
