"""Small IR clean-up passes run after lowering.

``promote_single_store_slots`` is a mem2reg-lite: a stack slot written
exactly once in the entry block is a constant binding (``int lx =
get_local_id(0);``), so its loads are forwarded to the stored value and
the slot disappears.  This leaves exactly the IR shape the paper's
expression trees expect — thread-index *calls* as leaves — while loop
counters (multiple stores) keep their slots and appear as the paper's
phi-node leaves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Function, Module
from repro.ir.instructions import Alloca, Instruction, Load, Store
from repro.ir.values import Value


def promote_single_store_slots(fn: Function) -> int:
    """Forward loads of single-store entry-block slots; returns #promoted."""
    stores: Dict[Alloca, List[Store]] = {}
    loads: Dict[Alloca, List[Load]] = {}
    order: Dict[Instruction, int] = {}
    for i, inst in enumerate(fn.instructions()):
        order[inst] = i
        if isinstance(inst, Store) and isinstance(inst.ptr, Alloca):
            stores.setdefault(inst.ptr, []).append(inst)
        elif isinstance(inst, Load) and isinstance(inst.ptr, Alloca):
            loads.setdefault(inst.ptr, []).append(inst)

    promoted = 0
    for slot, sts in stores.items():
        if len(sts) != 1:
            continue
        st = sts[0]
        if st.parent is not fn.entry:
            continue
        # every use of the slot must be this store or a load after it
        uses_ok = all(
            u is st or (isinstance(u, Load) and order[u] > order[st])
            for u in slot.users
        )
        if not uses_ok:
            continue
        value = st.value
        for ld in loads.get(slot, []):
            ld.replace_all_uses_with(value)
            ld.erase_from_parent()
        st.erase_from_parent()
        slot.erase_from_parent()
        promoted += 1
    return promoted


def _is_hoistable_kind(inst: Instruction) -> bool:
    from repro.ir.instructions import (
        BinOp,
        Call,
        Cast,
        ExtractElement,
        FCmp,
        GEP,
        ICmp,
        Select,
    )

    if isinstance(inst, (BinOp, Cast, GEP, ICmp, FCmp, Select, ExtractElement)):
        return True
    if isinstance(inst, Call):
        # work-item queries are pure and uniform across iterations
        return inst.callee in (
            "get_global_id",
            "get_local_id",
            "get_group_id",
            "get_global_size",
            "get_local_size",
            "get_num_groups",
        )
    return False


def loop_invariant_code_motion(fn: Function) -> int:
    """Hoist loop-invariant pure computation into loop preheaders.

    This mirrors what vendor OpenCL compilers do to the SPIR before
    execution; without it the nGL index arithmetic Grover materialises in
    front of an inner-loop local load would be unfairly re-executed every
    iteration (real pipelines hoist it, and so does ours).

    A load from a stack slot is invariant when the loop body contains no
    store to that slot; global/local memory loads are never hoisted
    (other work-items may write between barriers).
    """
    from repro.ir.cfg import natural_loops

    hoisted_total = 0
    changed = True
    while changed:
        changed = False
        for loop in natural_loops(fn):
            pre = loop.preheader
            if pre is None or pre.terminator is None:
                continue
            # iterate in function block order, not set order: hoisting is
            # order-sensitive in the preheader, and set iteration depends
            # on identity hashes (nondeterministic across heap layouts)
            body_blocks = [bb for bb in fn.blocks if bb in loop.body]
            stored_slots = {
                inst.ptr
                for bb in body_blocks
                for inst in bb.instructions
                if isinstance(inst, Store) and isinstance(inst.ptr, Alloca)
            }
            in_loop = {
                inst for bb in body_blocks for inst in bb.instructions
            }

            def invariant_operand(op) -> bool:
                return op not in in_loop

            moved = True
            while moved:
                moved = False
                for bb in list(body_blocks):
                    for inst in list(bb.instructions):
                        if inst.is_terminator or inst not in in_loop:
                            continue
                        ok = False
                        if _is_hoistable_kind(inst):
                            ok = all(invariant_operand(op) for op in inst.operands)
                        elif isinstance(inst, Load) and isinstance(inst.ptr, Alloca):
                            ok = inst.ptr not in stored_slots
                        if not ok:
                            continue
                        # move to the end of the preheader (before its branch)
                        bb.instructions.remove(inst)
                        pre.insert_before(pre.terminator, inst)
                        in_loop.discard(inst)
                        hoisted_total += 1
                        moved = True
                        changed = True
    return hoisted_total


def fold_constants(fn: Function) -> int:
    """Fold binops/casts whose operands are all constants."""
    from fractions import Fraction

    from repro.ir.instructions import BinOp, Cast, CastKind, Opcode
    from repro.ir.types import FloatType, IntType
    from repro.ir.values import Constant

    folded = 0
    changed = True
    while changed:
        changed = False
        for bb in fn.blocks:
            for inst in list(bb.instructions):
                result = None
                if isinstance(inst, BinOp) and all(
                    isinstance(o, Constant) for o in inst.operands
                ):
                    a, b = (o.value for o in inst.operands)
                    try:
                        result = _fold_binop(inst.opcode, a, b)
                    except (ZeroDivisionError, ValueError):
                        result = None
                elif isinstance(inst, Cast) and isinstance(inst.value, Constant):
                    if isinstance(inst.type, (IntType, FloatType)):
                        result = inst.value.value
                if result is None:
                    continue
                inst.replace_all_uses_with(Constant(inst.type, result))
                inst.erase_from_parent()
                folded += 1
                changed = True
    return folded


def _fold_binop(op, a, b):
    from repro.ir.instructions import Opcode

    table = {
        Opcode.ADD: lambda: a + b,
        Opcode.SUB: lambda: a - b,
        Opcode.MUL: lambda: a * b,
        Opcode.FADD: lambda: a + b,
        Opcode.FSUB: lambda: a - b,
        Opcode.FMUL: lambda: a * b,
        Opcode.FDIV: lambda: a / b,
        Opcode.AND: lambda: a & b,
        Opcode.OR: lambda: a | b,
        Opcode.XOR: lambda: a ^ b,
        Opcode.SHL: lambda: a << b,
        Opcode.ASHR: lambda: a >> b,
        Opcode.SDIV: lambda: int(a / b) if b else None,
        Opcode.UDIV: lambda: int(a / b) if b else None,
        Opcode.SREM: lambda: a - int(a / b) * b if b else None,
        Opcode.UREM: lambda: a - int(a / b) * b if b else None,
    }
    fn = table.get(op)
    return fn() if fn else None


def common_subexpression_elimination(fn: Function) -> int:
    """Dominator-scoped CSE over pure instructions.

    Mirrors the GVN a vendor compiler applies to the SPIR: the index
    chains Grover materialises share most sub-expressions with code that
    already exists (that is the point of Algorithm 1's reuse), and CSE
    folds the rest.
    """
    from repro.ir.cfg import immediate_dominators, reverse_postorder
    from repro.ir.instructions import (
        BinOp,
        Call,
        Cast,
        ExtractElement,
        FCmp,
        GEP,
        ICmp,
        Select,
    )
    from repro.ir.values import Constant

    pure_calls = {
        "get_global_id",
        "get_local_id",
        "get_group_id",
        "get_global_size",
        "get_local_size",
        "get_num_groups",
        "splat",
    }

    def key(inst: Instruction):
        def op_key(v: Value):
            if isinstance(v, Constant):
                return ("c", str(v.type), v.value)
            return id(v)

        ops = tuple(op_key(o) for o in inst.operands)
        if isinstance(inst, BinOp):
            return ("bin", inst.opcode, ops)
        if isinstance(inst, (ICmp, FCmp)):
            return ("cmp", type(inst).__name__, inst.pred, ops)
        if isinstance(inst, Cast):
            return ("cast", inst.kind, str(inst.type), ops)
        if isinstance(inst, GEP):
            return ("gep", ops)
        if isinstance(inst, Select):
            return ("sel", ops)
        if isinstance(inst, ExtractElement):
            return ("ext", ops)
        if isinstance(inst, Call) and inst.callee in pure_calls:
            return ("call", inst.callee, ops)
        return None

    idom = immediate_dominators(fn)
    tables: dict = {}
    removed = 0
    for bb in reverse_postorder(fn):
        table: dict = {}
        tables[bb] = table

        def lookup(k):
            blk = bb
            while blk is not None:
                v = tables.get(blk, {}).get(k)
                if v is not None:
                    return v
                blk = idom.get(blk)
            return None

        for inst in list(bb.instructions):
            k = key(inst)
            if k is None:
                continue
            existing = lookup(k)
            if existing is not None:
                inst.replace_all_uses_with(existing)
                inst.erase_from_parent()
                removed += 1
            else:
                table[k] = inst
    return removed


def run_default_passes(mod: Module) -> None:
    """Run the default post-lowering pipeline (promote, fold, CSE, LICM,
    CSE) over every function.

    Shim over the instrumented pass manager: the pipeline definition
    lives in :data:`repro.session.passes.DEFAULT_PIPELINE` and is
    ordering-identical to the historical inline loop (asserted
    bit-for-bit by ``tests/test_pass_manager.py``).
    """
    from repro.session.passes import PassManager

    PassManager().run(mod)
