"""Structural well-formedness checks for the IR.

Run by the frontend after lowering and by the Grover pass after rewriting
(a transformed kernel must still be a valid kernel).
"""

from __future__ import annotations

from typing import Set

from repro.ir.cfg import dominators, inst_dominates, predecessors, reverse_postorder
from repro.ir.function import Function, Module
from repro.ir.instructions import Alloca, Br, CondBr, Instruction, Ret
from repro.ir.values import Argument, Constant, LocalArray, Value


class VerificationError(Exception):
    pass


def verify_function(fn: Function) -> None:
    if not fn.blocks:
        raise VerificationError(f"{fn.name}: function has no blocks")

    blocks = set(fn.blocks)
    defined: Set[Value] = set(fn.args) | set(fn.local_arrays)

    for bb in fn.blocks:
        if bb.parent is not fn:
            raise VerificationError(f"{fn.name}/{bb.name}: wrong parent link")
        if bb.terminator is None:
            raise VerificationError(f"{fn.name}/{bb.name}: missing terminator")
        for i, inst in enumerate(bb.instructions):
            if inst.parent is not bb:
                raise VerificationError(
                    f"{fn.name}/{bb.name}: instruction parent link broken"
                )
            if inst.is_terminator and i != len(bb.instructions) - 1:
                raise VerificationError(
                    f"{fn.name}/{bb.name}: terminator in the middle of a block"
                )
            defined.add(inst)
            if isinstance(inst, (Br, CondBr)):
                for succ in inst.successors():
                    if succ not in blocks:
                        raise VerificationError(
                            f"{fn.name}/{bb.name}: branch to a foreign block"
                        )

    # operand legality + use-list symmetry
    for bb in fn.blocks:
        for inst in bb.instructions:
            for idx, op in enumerate(inst.operands):
                if isinstance(op, Constant):
                    continue
                if op not in defined:
                    raise VerificationError(
                        f"{fn.name}: {type(inst).__name__} uses a value defined "
                        f"in another function or never defined: {op!r}"
                    )
                if (inst, idx) not in op.uses:
                    raise VerificationError(
                        f"{fn.name}: use-list of {op!r} is missing ({inst!r}, {idx})"
                    )

    # dominance: every non-constant operand must dominate its use
    doms = dominators(fn)
    reachable = set(reverse_postorder(fn))
    for bb in fn.blocks:
        if bb not in reachable:
            continue
        for inst in bb.instructions:
            for op in inst.operands:
                if isinstance(op, (Constant, Argument, LocalArray)):
                    continue
                assert isinstance(op, Instruction)
                if op.parent is None or op.parent not in reachable:
                    raise VerificationError(
                        f"{fn.name}: operand {op!r} of {inst!r} is not placed "
                        "in a reachable block"
                    )
                if not inst_dominates(doms, op, inst):
                    raise VerificationError(
                        f"{fn.name}: operand {op!r} does not dominate its use "
                        f"in {inst!r}"
                    )


def verify_module(mod: Module) -> None:
    for fn in mod:
        verify_function(fn)
