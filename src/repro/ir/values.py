"""IR values: the SSA-ish value graph with use-def chains.

Every :class:`Value` knows who uses it (``value.uses`` is a list of
``(instruction, operand_index)`` pairs).  The Grover pass leans on this:

* candidate detection walks from a global ``Load`` to its "paired store"
  through the use list (Section IV-A of the paper);
* the final rewrite replaces *all* uses of the local load ``LL`` with the
  new global load ``nGL`` (Section IV-F) via :meth:`Value.replace_all_uses_with`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple, Union

from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.instructions import Instruction


PyScalar = Union[int, float, bool]


class Value:
    """Base class of everything that can be an instruction operand."""

    __slots__ = ("type", "name", "uses")

    def __init__(self, ty: Type, name: str = "") -> None:
        self.type = ty
        self.name = name
        #: list of (user instruction, operand index) pairs
        self.uses: List[Tuple["Instruction", int]] = []

    # -- use-def maintenance -------------------------------------------------
    def add_use(self, user: "Instruction", index: int) -> None:
        self.uses.append((user, index))

    def remove_use(self, user: "Instruction", index: int) -> None:
        self.uses.remove((user, index))

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every user to reference ``new`` instead of ``self``."""
        if new is self:
            return
        for user, idx in list(self.uses):
            user.set_operand(idx, new)

    @property
    def users(self) -> List["Instruction"]:
        return [u for u, _ in self.uses]

    def short(self) -> str:
        """Compact printable handle, e.g. ``%x`` or a literal."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.short()} : {self.type}>"


class Constant(Value):
    """A compile-time scalar constant."""

    __slots__ = ("value",)

    def __init__(self, ty: Type, value: PyScalar) -> None:
        super().__init__(ty, "")
        if isinstance(ty, IntType):
            value = int(value)
            # wrap to the representable range (two's complement semantics)
            mask = (1 << ty.bits) - 1
            v = int(value) & mask
            if ty.signed and v >= (1 << (ty.bits - 1)):
                v -= 1 << ty.bits
            value = v
        elif isinstance(ty, FloatType):
            value = float(value)
        elif isinstance(ty, BoolType):
            value = bool(value)
        else:
            raise TypeError(f"constants must be scalar, got {ty}")
        self.value = value

    def short(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("index",)

    def __init__(self, ty: Type, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.index = index

    @property
    def addrspace(self) -> AddressSpace:
        if isinstance(self.type, PointerType):
            return self.type.addrspace
        return AddressSpace.PRIVATE


class LocalArray(Value):
    """A ``__local`` array declared inside a kernel.

    One instance exists per work-group at run time; the declaration is a
    function-scope value of pointer-to-array type in the LOCAL address
    space.  These are the "candidate data structures" Grover removes.
    """

    __slots__ = ("array_type",)

    def __init__(self, array_type: ArrayType, name: str) -> None:
        super().__init__(PointerType(array_type, AddressSpace.LOCAL), name)
        self.array_type = array_type

    @property
    def nbytes(self) -> int:
        return self.array_type.size


def const_int(value: int, ty: IntType | None = None) -> Constant:
    from repro.ir.types import I32

    return Constant(ty or I32, value)


def const_float(value: float, ty: FloatType | None = None) -> Constant:
    from repro.ir.types import FLOAT

    return Constant(ty or FLOAT, value)
