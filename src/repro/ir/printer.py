"""Textual IR dump, SPIR/LLVM-flavoured.

Used by documentation, the examples (showing the kernel before/after the
Grover pass, mirroring the paper's Figure 1), and by tests asserting on
structural properties of the emitted code.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
)
from repro.ir.values import Argument, Constant, LocalArray, Value


class _Namer:
    def __init__(self) -> None:
        self.names: Dict[Value, str] = {}
        self.counter = 0

    def name(self, v: Value) -> str:
        if isinstance(v, Constant):
            return repr(v.value)
        if v not in self.names:
            if isinstance(v, (Argument, LocalArray)) and v.name:
                self.names[v] = f"%{v.name}"
            elif isinstance(v, Instruction) and v.name:
                self.names[v] = f"%{v.name}.{self.counter}"
                self.counter += 1
            else:
                self.names[v] = f"%{self.counter}"
                self.counter += 1
        return self.names[v]


def _format_inst(inst: Instruction, names: _Namer, block_names: Dict[BasicBlock, str]) -> str:
    n = names.name
    if isinstance(inst, BinOp):
        return f"{n(inst)} = {inst.opcode.value} {inst.type} {n(inst.lhs)}, {n(inst.rhs)}"
    if isinstance(inst, (ICmp, FCmp)):
        op = "icmp" if isinstance(inst, ICmp) else "fcmp"
        a, b = inst.operands
        return f"{n(inst)} = {op} {inst.pred.value} {a.type} {n(a)}, {n(b)}"
    if isinstance(inst, Select):
        c, t, f = inst.operands
        return f"{n(inst)} = select {n(c)}, {inst.type} {n(t)}, {n(f)}"
    if isinstance(inst, Cast):
        return f"{n(inst)} = {inst.kind.value} {inst.value.type} {n(inst.value)} to {inst.type}"
    if isinstance(inst, Alloca):
        return f"{n(inst)} = alloca {inst.allocated_type}"
    if isinstance(inst, Load):
        return f"{n(inst)} = load {inst.type}, {inst.ptr.type} {n(inst.ptr)}"
    if isinstance(inst, Store):
        return f"store {inst.value.type} {n(inst.value)}, {inst.ptr.type} {n(inst.ptr)}"
    if isinstance(inst, GEP):
        idxs = ", ".join(n(i) for i in inst.indices)
        return f"{n(inst)} = getelementptr {inst.base.type} {n(inst.base)}, [{idxs}]"
    if isinstance(inst, Call):
        args = ", ".join(n(a) for a in inst.args)
        prefix = "" if inst.type.size == 0 else f"{n(inst)} = "
        return f"{prefix}call {inst.type} @{inst.callee}({args})"
    if isinstance(inst, ExtractElement):
        return f"{n(inst)} = extractelement {inst.vec.type} {n(inst.vec)}, {n(inst.index)}"
    if isinstance(inst, InsertElement):
        return (
            f"{n(inst)} = insertelement {inst.vec.type} {n(inst.vec)}, "
            f"{n(inst.value)}, {n(inst.index)}"
        )
    if isinstance(inst, Br):
        return f"br label %{block_names[inst.target]}"
    if isinstance(inst, CondBr):
        return (
            f"br {n(inst.cond)}, label %{block_names[inst.if_true]}, "
            f"label %{block_names[inst.if_false]}"
        )
    if isinstance(inst, Ret):
        return f"ret {n(inst.value)}" if inst.value is not None else "ret void"
    raise NotImplementedError(type(inst).__name__)  # pragma: no cover


def print_function(fn: Function) -> str:
    names = _Namer()
    block_names: Dict[BasicBlock, str] = {}
    seen: Dict[str, int] = {}
    for bb in fn.blocks:
        n = seen.get(bb.name, 0)
        seen[bb.name] = n + 1
        block_names[bb] = bb.name if n == 0 else f"{bb.name}.{n}"
    args = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    kind = "kernel" if fn.is_kernel else "define"
    lines: List[str] = [f"{kind} {fn.ret_type} @{fn.name}({args}) {{"]
    for la in fn.local_arrays:
        lines.append(f"  %{la.name} = local {la.array_type}  ; {la.nbytes} bytes")
    for bb in fn.blocks:
        lines.append(f"{block_names[bb]}:")
        for inst in bb.instructions:
            lines.append("  " + _format_inst(inst, names, block_names))
    lines.append("}")
    return "\n".join(lines)


def print_module(mod: Module) -> str:
    return "\n\n".join(print_function(fn) for fn in mod)
