"""SPIR-like intermediate representation for OpenCL kernels.

This package is the compiler substrate the Grover pass (``repro.core``)
operates on.  It mirrors the subset of LLVM IR the paper's implementation
uses: typed values with use-def chains, basic blocks, memory instructions
with OpenCL address spaces, and an insert-anywhere builder (needed by the
instruction-duplication step of Algorithm 1).

The IR deliberately avoids SSA phi nodes: the frontend lowers mutable C
variables to ``alloca`` stack slots (clang -O0 style), so the expression
tree construction of Section IV-B stops at "a load from a stack slot"
exactly where the paper's stops at "a phi node".
"""

from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VoidType,
    BOOL,
    FLOAT,
    DOUBLE,
    HALF,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    VOID,
)
from repro.ir.values import Argument, Constant, LocalArray, Value
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
)
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_function, print_module
from repro.ir.verifier import VerificationError, verify_function, verify_module
from repro.ir.cfg import (
    dominators,
    immediate_dominators,
    postorder,
    predecessors,
    reverse_postorder,
    successors,
)

__all__ = [
    "AddressSpace",
    "ArrayType",
    "BoolType",
    "FloatType",
    "IntType",
    "PointerType",
    "Type",
    "VectorType",
    "VoidType",
    "BOOL",
    "FLOAT",
    "DOUBLE",
    "HALF",
    "I8",
    "I16",
    "I32",
    "I64",
    "U8",
    "U16",
    "U32",
    "U64",
    "VOID",
    "Argument",
    "Constant",
    "LocalArray",
    "Value",
    "Alloca",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "CondBr",
    "ExtractElement",
    "FCmp",
    "GEP",
    "ICmp",
    "InsertElement",
    "Instruction",
    "Load",
    "Ret",
    "Select",
    "Store",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "print_function",
    "print_module",
    "VerificationError",
    "verify_function",
    "verify_module",
    "dominators",
    "immediate_dominators",
    "postorder",
    "predecessors",
    "reverse_postorder",
    "successors",
]
