"""Type system for the SPIR-like IR.

Types are immutable and interned by value equality; two ``IntType(32, True)``
instances compare equal and hash identically, so they can be used as dict
keys throughout the compiler.

OpenCL address spaces are first-class here because the whole point of the
Grover pass is distinguishing ``__global`` from ``__local`` memory accesses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np


class AddressSpace(enum.IntEnum):
    """OpenCL disjoint address spaces (SPIR numbering)."""

    PRIVATE = 0
    GLOBAL = 1
    CONSTANT = 2
    LOCAL = 3

    def short_name(self) -> str:
        return {
            AddressSpace.PRIVATE: "private",
            AddressSpace.GLOBAL: "global",
            AddressSpace.CONSTANT: "constant",
            AddressSpace.LOCAL: "local",
        }[self]


class Type:
    """Base class for IR types."""

    #: size of one value of this type in bytes; 0 for void.
    size: int = 0

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return str(self)


@dataclass(frozen=True)
class VoidType(Type):
    size: int = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class BoolType(Type):
    """i1 — result of comparisons, operand of select/condbr."""

    size: int = 1

    def __str__(self) -> str:
        return "i1"


@dataclass(frozen=True)
class IntType(Type):
    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.bits}")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.bits // 8

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.bits}"

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(f"{'i' if self.signed else 'u'}{self.bits // 8}")

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1


@dataclass(frozen=True)
class FloatType(Type):
    bits: int

    def __post_init__(self) -> None:
        if self.bits not in (16, 32, 64):
            raise ValueError(f"unsupported float width: {self.bits}")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.bits // 8

    def __str__(self) -> str:
        return {16: "half", 32: "float", 64: "double"}[self.bits]

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(f"f{self.bits // 8}")


@dataclass(frozen=True)
class VectorType(Type):
    """OpenCL short vector, e.g. float4."""

    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count not in (2, 3, 4, 8, 16):
            raise ValueError(f"unsupported vector width: {self.count}")
        if not isinstance(self.element, (IntType, FloatType)):
            raise ValueError("vector element must be scalar int/float")

    @property
    def size(self) -> int:  # type: ignore[override]
        # float3 occupies 4 elements per the OpenCL spec; we only use 2/4/8/16.
        n = 4 if self.count == 3 else self.count
        return self.element.size * n

    def __str__(self) -> str:
        return f"<{self.count} x {self.element}>"

    @property
    def numpy_dtype(self) -> np.dtype:
        return self.element.numpy_dtype  # per-lane dtype


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type
    addrspace: AddressSpace = AddressSpace.PRIVATE

    #: all pointers are 64-bit in the runtime encoding
    @property
    def size(self) -> int:  # type: ignore[override]
        return 8

    def __str__(self) -> str:
        return f"{self.pointee} addrspace({int(self.addrspace)})*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("array length must be positive")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def dims(self) -> Tuple[int, ...]:
        """Shape of a (possibly nested) array, outermost first."""
        inner = self.element
        shape = [self.count]
        while isinstance(inner, ArrayType):
            shape.append(inner.count)
            inner = inner.element
        return tuple(shape)

    def base_element(self) -> Type:
        inner: Type = self
        while isinstance(inner, ArrayType):
            inner = inner.element
        return inner


# Interned singletons for common types.
VOID = VoidType()
BOOL = BoolType()
I8 = IntType(8, True)
I16 = IntType(16, True)
I32 = IntType(32, True)
I64 = IntType(64, True)
U8 = IntType(8, False)
U16 = IntType(16, False)
U32 = IntType(32, False)
U64 = IntType(64, False)
HALF = FloatType(16)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)


def is_integer(ty: Type) -> bool:
    return isinstance(ty, IntType)


def is_float(ty: Type) -> bool:
    return isinstance(ty, FloatType)


def is_scalar(ty: Type) -> bool:
    return isinstance(ty, (IntType, FloatType, BoolType))


def is_pointer(ty: Type) -> bool:
    return isinstance(ty, PointerType)


def is_vector(ty: Type) -> bool:
    return isinstance(ty, VectorType)
