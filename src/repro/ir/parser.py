"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Accepts the SPIR-flavoured dumps produced by ``print_function`` /
``print_module`` and reconstructs the in-memory IR.  Round-tripping is
covered by property tests; the parser exists so that IR-level test cases
and tools can be written directly in the textual form.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Load,
    Opcode,
    Ret,
    Select,
    Store,
)
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BOOL,
    DOUBLE,
    FLOAT,
    HALF,
    I8,
    I16,
    I32,
    I64,
    PointerType,
    Type,
    U8,
    U16,
    U32,
    U64,
    VectorType,
    VOID,
)
from repro.ir.values import Constant, Value


class IRParseError(Exception):
    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_SCALARS: Dict[str, Type] = {
    "void": VOID,
    "i1": BOOL,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    "u8": U8,
    "u16": U16,
    "u32": U32,
    "u64": U64,
    "half": HALF,
    "float": FLOAT,
    "double": DOUBLE,
}

_BINOPS = {op.value for op in Opcode}
_CASTS = {k.value for k in CastKind}


class _TypeParser:
    """Recursive-descent parser over a type string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos :]

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, token: str) -> None:
        self.skip_ws()
        if not self.text.startswith(token, self.pos):
            raise IRParseError(
                f"expected {token!r} at ...{self.text[self.pos:self.pos+20]!r}"
            )
        self.pos += len(token)

    def parse(self) -> Type:
        ty = self.parse_base()
        # pointer suffixes: "addrspace(N)*"
        while True:
            self.skip_ws()
            m = re.match(r"addrspace\((\d+)\)\*", self.text[self.pos :])
            if m:
                ty = PointerType(ty, AddressSpace(int(m.group(1))))
                self.pos += m.end()
                continue
            if self.text.startswith("*", self.pos):
                ty = PointerType(ty, AddressSpace.PRIVATE)
                self.pos += 1
                continue
            return ty

    def parse_base(self) -> Type:
        self.skip_ws()
        rest = self.text[self.pos :]
        if rest.startswith("["):
            self.expect("[")
            self.skip_ws()
            m = re.match(r"(\d+)", self.text[self.pos :])
            if not m:
                raise IRParseError(f"bad array length in {self.text!r}")
            count = int(m.group(1))
            self.pos += m.end()
            self.expect("x")
            elem = self.parse()
            self.expect("]")
            return ArrayType(elem, count)
        if rest.startswith("<"):
            self.expect("<")
            self.skip_ws()
            m = re.match(r"(\d+)", self.text[self.pos :])
            count = int(m.group(1))
            self.pos += m.end()
            self.expect("x")
            elem = self.parse()
            self.expect(">")
            if not isinstance(elem, (type(I32), type(FLOAT))):
                pass
            return VectorType(elem, count)
        m = re.match(r"[A-Za-z_][A-Za-z0-9_]*", rest)
        if not m:
            raise IRParseError(f"expected a type at {rest[:20]!r}")
        name = m.group(0)
        if name not in _SCALARS:
            raise IRParseError(f"unknown type name {name!r}")
        self.pos += m.end()
        return _SCALARS[name]


def parse_type(text: str) -> Type:
    p = _TypeParser(text.strip())
    ty = p.parse()
    p.skip_ws()
    if p.pos != len(p.text):
        raise IRParseError(f"trailing characters in type {text!r}")
    return ty


def _split_type_and_operand(text: str) -> Tuple[Type, str]:
    """Split e.g. ``i32 %x`` / ``float 1.5`` into (type, operand text)."""
    p = _TypeParser(text.strip())
    ty = p.parse()
    rest = p.peek().strip()
    return ty, rest


#: alias with a name matching its use at instruction-parse sites
_consume_type = _split_type_and_operand


def _literal_type(text: str) -> Type:
    """Best-effort type for a bare literal (types of constant operands
    are not printed; integer literals default to i32, float-looking
    ones to float)."""
    if re.fullmatch(r"[+-]?\d+", text):
        return I32
    return FLOAT


class _FunctionParser:
    def __init__(self, lines: List[Tuple[int, str]]) -> None:
        self.lines = lines
        self.values: Dict[str, Value] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        self.fn: Optional[Function] = None
        #: (instruction, operand slot index or attr name, label) fixups
        self.block_fixups: List[Tuple[object, str, str, int]] = []

    # -- operands ---------------------------------------------------------------
    def operand(self, ty: Type, text: str, line_no: int) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            if name not in self.values:
                raise IRParseError(f"use of undefined value %{name}", line_no)
            return self.values[name]
        # a literal
        if text in ("true", "True"):
            return Constant(BOOL, True)
        if text in ("false", "False"):
            return Constant(BOOL, False)
        try:
            if re.fullmatch(r"[+-]?\d+", text):
                return Constant(ty, int(text))
            return Constant(ty, float(text))
        except (ValueError, TypeError) as exc:
            raise IRParseError(f"bad literal {text!r}", line_no) from exc

    def typed_operand(self, text: str, line_no: int) -> Value:
        ty, rest = _split_type_and_operand(text)
        return self.operand(ty, rest, line_no)

    def define(self, name: str, value: Value, line_no: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", line_no)
        value.name = value.name or name
        self.values[name] = value

    # -- driver -------------------------------------------------------------------
    def parse(self) -> Function:
        line_no, header = self.lines[0]
        m = re.match(
            r"(kernel|define)\s+(.*?)\s*@([A-Za-z_][\w.]*)\((.*)\)\s*\{\s*$", header
        )
        if not m:
            raise IRParseError(f"bad function header: {header!r}", line_no)
        kind, ret_text, name, args_text = m.groups()
        ret_type = parse_type(ret_text) if ret_text.strip() else VOID

        arg_types: List[Type] = []
        arg_names: List[str] = []
        if args_text.strip():
            for piece in _split_args(args_text):
                ty, rest = _split_type_and_operand(piece)
                if not rest.startswith("%"):
                    raise IRParseError(f"bad parameter {piece!r}", line_no)
                arg_types.append(ty)
                arg_names.append(rest[1:])
        fn = Function(name, arg_types, arg_names, ret_type, is_kernel=kind == "kernel")
        self.fn = fn
        for a in fn.args:
            self.values[a.name] = a

        # first pass: collect block labels so forward branches resolve
        body = self.lines[1:]
        if body and body[-1][1].strip() == "}":
            body = body[:-1]
        for ln, text in body:
            s = text.strip()
            if s.endswith(":") and not s.startswith("%"):
                label = s[:-1]
                bb = fn.add_block(label)
                if label in self.blocks:
                    raise IRParseError(f"duplicate label {label}", ln)
                self.blocks[label] = bb

        current: Optional[BasicBlock] = None
        for ln, text in body:
            s = text.split(";")[0].strip()
            if not s:
                continue
            if s.endswith(":") and not s.startswith("%"):
                current = self.blocks[s[:-1]]
                continue
            if s.startswith("%") and "= local " in s:
                m2 = re.match(r"%([\w.]+) = local (.*)$", s)
                ty = parse_type(m2.group(2))
                if not isinstance(ty, ArrayType):
                    raise IRParseError("local declarations must be arrays", ln)
                la = fn.add_local_array(ty, m2.group(1))
                self.values[m2.group(1)] = la
                continue
            if current is None:
                raise IRParseError(f"instruction before any label: {s!r}", ln)
            inst = self.parse_instruction(s, ln)
            current.append(inst)
        return fn

    # -- instructions ---------------------------------------------------------------
    def parse_instruction(self, s: str, ln: int):
        m = re.match(r"%([\w.]+)\s*=\s*(.*)$", s)
        if m:
            name, rest = m.groups()
            inst = self.parse_rhs(rest.strip(), ln)
            self.define(name, inst, ln)
            return inst
        return self.parse_void(s, ln)

    def parse_rhs(self, s: str, ln: int):
        op, _, rest = s.partition(" ")
        rest = rest.strip()
        if op in _BINOPS:
            ty, ops = _consume_type(rest)
            a_text, b_text = _split_args(ops)
            a = self.operand(ty, a_text, ln)
            b = self.operand(ty, b_text, ln)
            return BinOp(Opcode(op), a, b)
        if op in ("icmp", "fcmp"):
            pred, _, rest2 = rest.partition(" ")
            ty, ops = _consume_type(rest2.strip())
            a_text, b_text = _split_args(ops)
            a = self.operand(ty, a_text, ln)
            b = self.operand(ty, b_text, ln)
            cls = ICmp if op == "icmp" else FCmp
            return cls(CmpPred(pred), a, b)
        if op == "select":
            c_text, t_text, f_text = _split_args(rest)
            cond = self.operand(BOOL, c_text, ln)
            t = self.typed_operand(t_text, ln)
            ty = t.type
            f = self.operand(ty, f_text, ln)
            return Select(cond, t, f)
        if op in _CASTS:
            m = re.match(r"(.*)\s+to\s+(\S.*)$", rest)
            if not m:
                raise IRParseError(f"bad cast: {s!r}", ln)
            src = self.typed_operand(m.group(1), ln)
            return Cast(CastKind(op), src, parse_type(m.group(2)))
        if op == "alloca":
            return Alloca(parse_type(rest))
        if op == "load":
            ty_text, ptr_text = _split_args(rest)
            ptr = self.typed_operand(ptr_text, ln)
            return Load(ptr)
        if op == "getelementptr":
            m = re.match(r"(.*?)\s*,\s*\[(.*)\]\s*$", rest)
            if not m:
                raise IRParseError(f"bad gep: {s!r}", ln)
            base = self.typed_operand(m.group(1), ln)
            idx_texts = _split_args(m.group(2)) if m.group(2).strip() else []
            indices = [self.operand(I32, t, ln) for t in idx_texts]
            return GEP(base, indices)
        if op == "call":
            m = re.match(r"(.*?)@([\w.]+)\((.*)\)\s*$", rest)
            if not m:
                raise IRParseError(f"bad call: {s!r}", ln)
            ret_ty = parse_type(m.group(1)) if m.group(1).strip() else VOID
            args = [
                self.operand(_literal_type(t), t, ln)
                for t in (_split_args(m.group(3)) if m.group(3).strip() else [])
            ]
            return Call(m.group(2), args, ret_ty)
        if op == "extractelement":
            vec_text, idx_text = _split_args(rest)
            vec = self.typed_operand(vec_text, ln)
            return ExtractElement(vec, self.operand(I32, idx_text, ln))
        if op == "insertelement":
            vec_text, val_text, idx_text = _split_args(rest)
            vec = self.typed_operand(vec_text, ln)
            val = self.operand(vec.type.element, val_text, ln)
            return InsertElement(vec, val, self.operand(I32, idx_text, ln))
        raise IRParseError(f"unknown instruction {op!r}", ln)

    def parse_void(self, s: str, ln: int):
        op, _, rest = s.partition(" ")
        rest = rest.strip()
        if op == "store":
            val_text, ptr_text = _split_args(rest)
            ptr = self.typed_operand(ptr_text, ln)
            if _looks_typed(val_text):
                _, val_text = _split_type_and_operand(val_text)
            val = self.operand(ptr.type.pointee, val_text, ln)
            return Store(val, ptr)
        if op == "br":
            if rest.startswith("label"):
                label = rest.split("%", 1)[1].strip()
                return Br(self._block(label, ln))
            cond_text, t_text, f_text = _split_args(rest)
            cond = self.operand(BOOL, cond_text, ln)
            t = self._block(t_text.split("%", 1)[1].strip(), ln)
            f = self._block(f_text.split("%", 1)[1].strip(), ln)
            return CondBr(cond, t, f)
        if op == "ret":
            if not rest or rest == "void":
                return Ret()
            return Ret(self.typed_operand(rest, ln) if _looks_typed(rest)
                       else self.operand(I32, rest, ln))
        if op == "call":
            m = re.match(r"(.*?)@([\w.]+)\((.*)\)\s*$", rest)
            if not m:
                raise IRParseError(f"bad call: {s!r}", ln)
            ret_ty = parse_type(m.group(1)) if m.group(1).strip() else VOID
            args = [
                self.operand(_literal_type(t), t, ln)
                for t in (_split_args(m.group(3)) if m.group(3).strip() else [])
            ]
            return Call(m.group(2), args, ret_ty)
        raise IRParseError(f"unknown statement {op!r}", ln)

    def _block(self, label: str, ln: int) -> BasicBlock:
        if label not in self.blocks:
            raise IRParseError(f"branch to unknown label {label!r}", ln)
        return self.blocks[label]


def _looks_typed(text: str) -> bool:
    head = text.strip().split(None, 1)[0].rstrip("*")
    return (
        head in _SCALARS
        or head.startswith("[")
        or head.startswith("<")
    )


def _split_args(text: str) -> List[str]:
    """Split on top-level commas (respecting [], <> and () nesting)."""
    parts = []
    depth = 0
    cur = []
    for ch in text:
        if ch in "[<(":
            depth += 1
        elif ch in "]>)":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_function(text: str) -> Function:
    lines = [
        (i + 1, line)
        for i, line in enumerate(text.splitlines())
        if line.strip()
    ]
    if not lines:
        raise IRParseError("empty input")
    return _FunctionParser(lines).parse()


def parse_module(text: str, name: str = "parsed") -> Module:
    mod = Module(name)
    chunks: List[List[Tuple[int, str]]] = []
    cur: List[Tuple[int, str]] = []
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        cur.append((i + 1, line))
        if line.strip() == "}":
            chunks.append(cur)
            cur = []
    if cur:
        chunks.append(cur)
    for chunk in chunks:
        body = "\n".join(l for _, l in chunk)
        mod.add_function(parse_function(body))
    return mod
