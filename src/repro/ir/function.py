"""Functions, basic blocks and modules."""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.ir.instructions import Instruction
from repro.ir.types import ArrayType, PointerType, Type, VOID
from repro.ir.values import Argument, LocalArray, Value

_block_ids = itertools.count()


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str = "") -> None:
        self.name = name or f"bb{next(_block_ids)}"
        self.instructions: List[Instruction] = []
        self.parent: Optional["Function"] = None

    # -- insertion -----------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``anchor`` (must be in this block)."""
        idx = self.instructions.index(anchor)
        return self.insert(idx, inst)

    # -- structure -----------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []  # type: ignore[attr-defined]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function:
    """A kernel or helper function."""

    def __init__(
        self,
        name: str,
        arg_types: Sequence[Type],
        arg_names: Sequence[str],
        ret_type: Type = VOID,
        is_kernel: bool = False,
    ) -> None:
        if len(arg_types) != len(arg_names):
            raise ValueError("arg_types/arg_names length mismatch")
        self.name = name
        self.ret_type = ret_type
        self.is_kernel = is_kernel
        self.args: List[Argument] = [
            Argument(ty, nm, i) for i, (ty, nm) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        #: __local arrays declared in the kernel body
        self.local_arrays: List[LocalArray] = []
        #: required work-group size if declared (reqd_work_group_size)
        self.reqd_work_group_size: Optional[tuple] = None

    # -- construction --------------------------------------------------------
    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        bb = BasicBlock(name)
        bb.parent = self
        if after is None:
            self.blocks.append(bb)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, bb)
        return bb

    def add_local_array(self, array_type: ArrayType, name: str) -> LocalArray:
        la = LocalArray(array_type, name)
        self.local_arrays.append(la)
        return la

    def remove_local_array(self, la: LocalArray) -> None:
        self.local_arrays.remove(la)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError(f"no argument named {name!r} in {self.name}")

    def instructions(self) -> Iterator[Instruction]:
        for bb in self.blocks:
            yield from bb.instructions

    def local_array(self, name: str) -> LocalArray:
        for la in self.local_arrays:
            if la.name == name:
                return la
        raise KeyError(f"no local array named {name!r} in {self.name}")

    def __repr__(self) -> str:  # pragma: no cover
        kind = "kernel" if self.is_kernel else "func"
        return f"<{kind} {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A translation unit: a set of functions plus named constants."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def kernel(self, name: Optional[str] = None) -> Function:
        """Fetch a kernel by name, or the sole kernel if unambiguous."""
        if name is not None:
            fn = self.functions[name]
            if not fn.is_kernel:
                raise KeyError(f"{name} is not a kernel")
            return fn
        ks = self.kernels()
        if len(ks) != 1:
            raise KeyError(f"module has {len(ks)} kernels; specify a name")
        return ks[0]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())
