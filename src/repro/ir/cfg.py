"""Control-flow-graph utilities: orders, dominators, post-dominators.

The SIMT interpreter schedules divergent work-items in reverse post-order
(which reconverges masks at join points of reducible CFGs), and the Grover
rewrite uses dominance to decide whether a sub-expression of the ``GL``
index tree can be *reused* at the ``LL`` site or must be cloned
(Algorithm 1's state-marked nodes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction, Ret


def successors(block: BasicBlock) -> List[BasicBlock]:
    return block.successors()


def predecessors(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {bb: [] for bb in fn.blocks}
    for bb in fn.blocks:
        for succ in bb.successors():
            preds[succ].append(bb)
    return preds


def postorder(fn: Function) -> List[BasicBlock]:
    """DFS post-order from the entry block (unreachable blocks excluded)."""
    seen: Set[BasicBlock] = set()
    out: List[BasicBlock] = []

    def visit(bb: BasicBlock) -> None:
        seen.add(bb)
        for succ in bb.successors():
            if succ not in seen:
                visit(succ)
        out.append(bb)

    if fn.blocks:
        visit(fn.entry)
    return out


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    return list(reversed(postorder(fn)))


def rpo_index(fn: Function) -> Dict[BasicBlock, int]:
    return {bb: i for i, bb in enumerate(reverse_postorder(fn))}


def immediate_dominators(fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Cooper–Harvey–Kennedy iterative dominator algorithm."""
    rpo = reverse_postorder(fn)
    index = {bb: i for i, bb in enumerate(rpo)}
    preds = predecessors(fn)
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {bb: None for bb in rpo}
    entry = fn.entry
    idom[entry] = entry

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for bb in rpo:
            if bb is entry:
                continue
            candidates = [p for p in preds[bb] if idom.get(p) is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(p, new_idom)
            if idom[bb] is not new_idom:
                idom[bb] = new_idom
                changed = True
    idom[entry] = None
    return idom


def dominators(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Full dominator sets (block -> set of blocks dominating it, incl. itself)."""
    idom = immediate_dominators(fn)
    doms: Dict[BasicBlock, Set[BasicBlock]] = {}
    for bb in idom:
        chain: Set[BasicBlock] = {bb}
        cur = idom[bb]
        while cur is not None:
            chain.add(cur)
            cur = idom[cur]
        doms[bb] = chain
    return doms


def block_dominates(doms: Dict[BasicBlock, Set[BasicBlock]], a: BasicBlock, b: BasicBlock) -> bool:
    return a in doms[b]


def inst_dominates(doms: Dict[BasicBlock, Set[BasicBlock]], a: Instruction, b: Instruction) -> bool:
    """Does instruction ``a`` dominate instruction ``b``?"""
    ba, bb_ = a.parent, b.parent
    assert ba is not None and bb_ is not None
    if ba is bb_:
        insts = ba.instructions
        return insts.index(a) < insts.index(b)
    return block_dominates(doms, ba, bb_)


def post_dominators(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Full post-dominator sets (block -> blocks post-dominating it).

    Computed over the reverse CFG with every ``ret`` block as an exit
    (a virtual exit node is implied by seeding exit blocks with
    themselves).  Blocks that cannot reach an exit — only possible for
    an infinite loop — keep the full block set, i.e. everything
    vacuously post-dominates them, which is the conservative answer for
    the divergence analysis built on top.
    """
    blocks = list(fn.blocks)
    universe = set(blocks)
    exits = {bb for bb in blocks if isinstance(bb.terminator, Ret)}
    pdom: Dict[BasicBlock, Set[BasicBlock]] = {
        bb: ({bb} if bb in exits else set(universe)) for bb in blocks
    }
    changed = True
    while changed:
        changed = False
        for bb in reversed(blocks):
            if bb in exits:
                continue
            succs = bb.successors()
            if not succs:
                continue
            new = set.intersection(*(pdom[s] for s in succs))
            new.add(bb)
            if new != pdom[bb]:
                pdom[bb] = new
                changed = True
    return pdom


def block_post_dominates(
    pdom: Dict[BasicBlock, Set[BasicBlock]], a: BasicBlock, b: BasicBlock
) -> bool:
    """Does ``a`` post-dominate ``b``?"""
    return a in pdom[b]


def back_edges(fn: Function) -> List[tuple]:
    """(tail, head) pairs where head dominates tail — natural loop back edges."""
    doms = dominators(fn)
    out = []
    for bb in fn.blocks:
        for succ in bb.successors():
            if succ in doms[bb]:
                out.append((bb, succ))
    return out


def loop_headers(fn: Function) -> Set[BasicBlock]:
    return {head for _, head in back_edges(fn)}


def natural_loops(fn: Function) -> List["Loop"]:
    """Natural loops, one per header (merged back edges), innermost first."""
    preds = predecessors(fn)
    by_header: Dict[BasicBlock, Set[BasicBlock]] = {}
    for tail, head in back_edges(fn):
        body = by_header.setdefault(head, {head})
        # nodes that reach `tail` without passing through `head`
        stack = [tail]
        while stack:
            bb = stack.pop()
            if bb in body:
                continue
            body.add(bb)
            stack.extend(p for p in preds[bb] if p not in body)
    loops = [Loop(h, body, preds) for h, body in by_header.items()]
    loops.sort(key=lambda l: len(l.body))
    return loops


class Loop:
    """A natural loop: header + body blocks (+ its unique preheader if any)."""

    def __init__(
        self,
        header: BasicBlock,
        body: Set[BasicBlock],
        preds: Dict[BasicBlock, List[BasicBlock]],
    ) -> None:
        self.header = header
        self.body = body
        outside = [p for p in preds[header] if p not in body]
        #: the unique out-of-loop predecessor of the header, if it exists
        self.preheader: Optional[BasicBlock] = (
            outside[0] if len(outside) == 1 else None
        )

    def contains(self, bb: BasicBlock) -> bool:
        return bb in self.body

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Loop header={self.header.name} blocks={len(self.body)}>"
