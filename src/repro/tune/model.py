"""A dependency-free, deterministic decision-tree go/no-go predictor.

The model answers one question: *given this kernel, this rewrite
pipeline and this device, is the pipeline likely to beat the default?*
It is a plain CART classifier fitted with numpy only — no sklearn, no
randomness: splits are chosen by exact Gini impurity over midpoint
thresholds, ties broken by (lowest feature index, lowest threshold), so
fitting the same examples always yields the byte-identical tree.

Serialization is a JSON artifact whose ``sha256`` field hashes the
canonical dump of everything else in it; :func:`load_model` refuses a
tampered or truncated file.  The artifact embeds its feature-name
order, training provenance and held-out accuracy, and is committed
under ``tests/golden/`` so CI can retrain and compare.

The predictor is an *accelerator*: the search uses it to skip the full
trace-driven scoring of candidates predicted to lose.  It never
overrides verification — every surviving winner still passes the
analyzer veto and the three-backend differential gates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "FORMAT",
    "DecisionTree",
    "TunePredictor",
    "train_tree",
    "save_model",
    "load_model",
    "model_sha256",
    "default_model_path",
]

FORMAT = "repro-tune-model"
_VERSION = 1


# ---------------------------------------------------------------------------
# CART fitting
# ---------------------------------------------------------------------------


def _gini(pos: float, n: float) -> float:
    if n <= 0:
        return 0.0
    p = pos / n
    return 2.0 * p * (1.0 - p)


def _best_split(X: np.ndarray, y: np.ndarray, min_leaf: int):
    """The (feature, threshold) minimizing weighted Gini, or ``None``.

    Scans features in index order and thresholds ascending; a split is
    taken only when strictly better than the best so far, which makes
    the choice independent of dict/iteration quirks — first-best wins.
    """
    n = len(y)
    pos_total = float(y.sum())
    parent = _gini(pos_total, n)
    best = None
    best_score = parent - 1e-12  # must strictly improve
    for f in range(X.shape[1]):
        col = X[:, f]
        order = np.argsort(col, kind="stable")
        cs = col[order]
        ys = y[order]
        # candidate cut positions: between distinct consecutive values
        diff = np.nonzero(cs[1:] > cs[:-1])[0]
        if len(diff) == 0:
            continue
        cum_pos = np.cumsum(ys, dtype=np.float64)
        for i in diff:
            nl = int(i) + 1
            nr = n - nl
            if nl < min_leaf or nr < min_leaf:
                continue
            pl = float(cum_pos[i])
            pr = pos_total - pl
            score = (nl * _gini(pl, nl) + nr * _gini(pr, nr)) / n
            if score < best_score:
                best_score = score
                thr = float(cs[i] + cs[i + 1]) / 2.0
                best = (f, thr)
    return best


def _fit_node(
    X: np.ndarray,
    y: np.ndarray,
    depth: int,
    max_depth: int,
    min_leaf: int,
) -> Dict:
    n = len(y)
    pos = int(y.sum())
    if depth >= max_depth or n < 2 * min_leaf or pos == 0 or pos == n:
        return {"leaf": {"p": pos / n if n else 0.0, "n": n}}
    split = _best_split(X, y, min_leaf)
    if split is None:
        return {"leaf": {"p": pos / n, "n": n}}
    f, thr = split
    mask = X[:, f] <= thr
    return {
        "split": {
            "feature": f,
            "threshold": thr,
            "left": _fit_node(X[mask], y[mask], depth + 1, max_depth, min_leaf),
            "right": _fit_node(X[~mask], y[~mask], depth + 1, max_depth, min_leaf),
        }
    }


def _node_depth(node: Dict) -> int:
    if "leaf" in node:
        return 0
    s = node["split"]
    return 1 + max(_node_depth(s["left"]), _node_depth(s["right"]))


@dataclass(frozen=True)
class DecisionTree:
    """A fitted tree: feature-name order plus the nested node dict
    (split nodes reference features *by name* in the serialized form,
    by index in memory)."""

    feature_names: Sequence[str]
    root: Dict

    def predict_proba(self, x: np.ndarray) -> float:
        """Win probability for one vectorized candidate (the positive
        fraction of the leaf it lands in)."""
        node = self.root
        while "split" in node:
            s = node["split"]
            node = s["left"] if x[s["feature"]] <= s["threshold"] else s["right"]
        return float(node["leaf"]["p"])

    @property
    def depth(self) -> int:
        return _node_depth(self.root)


def train_tree(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    max_depth: int = 6,
    min_leaf: int = 5,
) -> DecisionTree:
    """Fit a deterministic CART classifier; ``y`` holds {0, 1} labels."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != len(feature_names):
        raise ValueError(
            f"X shape {X.shape} does not match {len(feature_names)} features"
        )
    if len(X) != len(y):
        raise ValueError(f"{len(X)} rows vs {len(y)} labels")
    if len(X) == 0:
        raise ValueError("cannot train on zero examples")
    root = _fit_node(X, y, 0, max_depth, min_leaf)
    return DecisionTree(tuple(feature_names), root)


# ---------------------------------------------------------------------------
# serialization (sha256-versioned JSON)
# ---------------------------------------------------------------------------


def _name_nodes(node: Dict, names: Sequence[str]) -> Dict:
    if "leaf" in node:
        return {"leaf": dict(node["leaf"])}
    s = node["split"]
    return {
        "split": {
            "feature": names[s["feature"]],
            "threshold": s["threshold"],
            "left": _name_nodes(s["left"], names),
            "right": _name_nodes(s["right"], names),
        }
    }


def _index_nodes(node: Dict, index: Dict[str, int]) -> Dict:
    if "leaf" in node:
        return {"leaf": dict(node["leaf"])}
    s = node["split"]
    return {
        "split": {
            "feature": index[s["feature"]],
            "threshold": s["threshold"],
            "left": _index_nodes(s["left"], index),
            "right": _index_nodes(s["right"], index),
        }
    }


def model_sha256(payload: Dict) -> str:
    """Digest of the canonical dump of everything but the hash itself."""
    body = {k: v for k, v in payload.items() if k != "sha256"}
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def save_model(
    tree: DecisionTree,
    path: str,
    training: Optional[Dict] = None,
) -> Dict:
    """Write the versioned artifact; returns the payload written."""
    payload: Dict = {
        "format": FORMAT,
        "version": _VERSION,
        "feature_names": list(tree.feature_names),
        "tree": _name_nodes(tree.root, list(tree.feature_names)),
        "training": training or {},
    }
    payload["sha256"] = model_sha256(payload)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_model(path: str) -> "TunePredictor":
    """Load and integrity-check an artifact; raises ``ValueError`` on a
    wrong format, version or sha256 mismatch."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read tune model {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ValueError(f"{path!r} is not a {FORMAT} artifact")
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"{path!r} has version {payload.get('version')!r}, "
            f"expected {_VERSION}"
        )
    expect = payload.get("sha256")
    actual = model_sha256(payload)
    if expect != actual:
        raise ValueError(
            f"{path!r} failed integrity check: sha256 {actual} != "
            f"recorded {expect}"
        )
    names = list(payload["feature_names"])
    index = {n: i for i, n in enumerate(names)}
    tree = DecisionTree(tuple(names), _index_nodes(payload["tree"], index))
    return TunePredictor(tree=tree, payload=payload, path=path)


def default_model_path() -> str:
    """The committed artifact, resolved relative to the repo layout
    (``tests/golden/tune_model.json`` two levels above ``src/``)."""
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden", "tune_model.json")


# ---------------------------------------------------------------------------
# the predictor the search consumes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TunePredictor:
    """A loaded model plus its provenance."""

    tree: DecisionTree
    payload: Dict
    path: str

    @property
    def sha256(self) -> str:
        return str(self.payload.get("sha256", ""))

    def predict(self, feats: Dict[str, float]) -> float:
        """Win probability of one candidate feature dict."""
        from repro.tune.features import vectorize

        return self.tree.predict_proba(
            vectorize(feats, self.tree.feature_names)
        )
