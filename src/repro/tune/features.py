"""Deterministic feature vectors for the go/no-go autotuner.

A feature vector describes one *candidate*: a kernel, a rewrite-rule
pipeline, and the device model that would score it.  Everything in the
vector is derived from two architecture-independent sources —

* a **sampled memory trace of the untransformed kernel** (the baseline
  the search executes anyway): reuse-distance histograms computed with
  the same stack-distance machinery the fast cache simulator runs on
  (:func:`repro.perf.fastcache.lru_hits` at power-of-two
  associativities, fully associative), access entropy over cache
  lines, local/global traffic ratios, branch-divergence fractions and
  barrier-phase counts;
* **static IR features** of the baseline and the candidate-transformed
  kernel: the shared :func:`repro.rules.base.base_features` counters,
  simple control-flow counts, every registered rule's ``cost_features``,
  and the baseline→candidate deltas.

plus the pipeline's own composition (which rules, in what order, how
many rewrites each made) and a one-hot of the scoring device.  No
feature reads a clock, the host architecture, or random state — the
same kernel, pipeline and device always produce the byte-identical
vector (pinned by ``tests/test_tune_determinism.py``), which is what
lets the committed model artifact reproduce across machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.function import Function
from repro.ir.types import AddressSpace
from repro.runtime.trace import KernelTrace

__all__ = [
    "LINE_BYTES",
    "REUSE_BUCKETS",
    "KernelContext",
    "static_features",
    "trace_features",
    "kernel_context",
    "app_kernel_context",
    "candidate_features",
    "app_candidate_features",
    "vectorize",
]

#: cache-line granularity of the reuse-distance histogram — the L1 line
#: size shared by every modelled device
LINE_BYTES = 64

#: stack-distance thresholds of the reuse histogram buckets; bucket k
#: counts accesses whose distance lies in [REUSE_BUCKETS[k-1],
#: REUSE_BUCKETS[k]) distinct lines (the first bucket is distance 0,
#: i.e. an immediately repeated line)
REUSE_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class KernelContext:
    """Baseline-derived features, computed once per kernel.

    ``static`` describes the untransformed IR, ``trace`` its sampled
    execution; every candidate pipeline of the kernel shares them.
    """

    static: Dict[str, float]
    trace: Dict[str, float]
    local_size: Optional[Tuple[int, ...]] = None


# ---------------------------------------------------------------------------
# static IR features
# ---------------------------------------------------------------------------


def static_features(fn: Function, local_size=None) -> Dict[str, float]:
    """Architecture-independent static description of one kernel.

    The shared ``base_features`` counters, coarse control-flow counts,
    and every registered rule's ``cost_features`` (rule-specific keys
    only — the base counters are already present once).
    """
    from repro.ir.instructions import CondBr
    from repro.rules import RuleContext, get_rule, rule_names
    from repro.rules.base import base_features

    base = base_features(fn)
    feats = {f"ir:{k}": float(v) for k, v in base.items()}

    n_insts = 0
    n_condbr = 0
    for inst in fn.instructions():
        n_insts += 1
        if isinstance(inst, CondBr):
            n_condbr += 1
    feats["ir:blocks"] = float(len(fn.blocks))
    feats["ir:insts"] = float(n_insts)
    feats["ir:cond_branches"] = float(n_condbr)

    ctx = RuleContext(local_size=tuple(local_size) if local_size else None)
    for name in rule_names():
        for k, v in sorted(get_rule(name).cost_features(fn, ctx).items()):
            if k in base:
                continue  # shared counters, recorded once above
            feats[f"rule:{name}:{k}"] = float(v)
    return feats


# ---------------------------------------------------------------------------
# trace features (baseline sampled execution)
# ---------------------------------------------------------------------------


def _reuse_histogram(lines: np.ndarray) -> Dict[str, float]:
    """Normalized stack-distance histogram of a line-id stream.

    ``lru_hits(lines, n_sets=1, assoc=A)`` marks exactly the accesses
    whose fully-associative stack distance is below ``A`` — so the
    cumulative counts at power-of-two associativities difference into
    the histogram, reusing the fast cache simulator's vectorised
    machinery instead of a sequential LRU walk.
    """
    from repro.perf.fastcache import lru_hits

    n = len(lines)
    out: Dict[str, float] = {}
    if n == 0:
        for k, hi in enumerate(REUSE_BUCKETS):
            out[f"trace:reuse:lt{hi}"] = 0.0
        out["trace:reuse:far"] = 0.0
        out["trace:reuse:cold"] = 0.0
        return out
    distinct = len(np.unique(lines))
    cum = [int(lru_hits(lines, 1, a).sum()) for a in REUSE_BUCKETS]
    # every access with a previous occurrence hits a cache with one set
    # and as many ways as there are distinct lines
    with_prev = int(lru_hits(lines, 1, max(distinct, 1)).sum())
    prev = 0
    for hi, c in zip(REUSE_BUCKETS, cum):
        out[f"trace:reuse:lt{hi}"] = (c - prev) / n
        prev = c
    out["trace:reuse:far"] = (with_prev - cum[-1]) / n
    out["trace:reuse:cold"] = (n - with_prev) / n
    return out


def _entropy(lines: np.ndarray) -> float:
    """Shannon entropy of the line-id distribution, normalized to
    [0, 1] by the maximum (uniform over the distinct lines)."""
    if len(lines) == 0:
        return 0.0
    _, counts = np.unique(lines, return_counts=True)
    if len(counts) <= 1:
        return 0.0
    p = counts / counts.sum()
    h = float(-(p * np.log2(p)).sum())
    return h / float(np.log2(len(counts)))


def trace_features(trace: KernelTrace) -> Dict[str, float]:
    """Features of the baseline kernel's sampled memory trace.

    Per-group features are averaged over the sampled groups in trace
    order (sampled groups of a homogeneous kernel are near-identical,
    so the mean is a stable per-group description, independent of how
    many groups were sampled).
    """
    per_group: List[Dict[str, float]] = []
    for gt in trace.groups:
        g: Dict[str, float] = {}
        stream = gt.serialized((AddressSpace.GLOBAL,))
        lines = stream.line_ids(LINE_BYTES)
        g.update(_reuse_histogram(lines))
        g["trace:entropy"] = _entropy(lines)

        loc = glob = loc_bytes = glob_bytes = stores = 0
        partial = 0
        active = 0.0
        n_events = 0
        lines_per_access = 0.0
        n_global_events = 0
        max_phase = 0
        for e in gt.iter_events():
            n_events += 1
            cnt = e.count
            nbytes = cnt * e.elem_size
            if e.space == AddressSpace.LOCAL:
                loc += cnt
                loc_bytes += nbytes
            elif e.space == AddressSpace.GLOBAL:
                glob += cnt
                glob_bytes += nbytes
                if cnt:
                    n_global_events += 1
                    lines_per_access += (
                        len(np.unique(np.asarray(e.offsets) // LINE_BYTES))
                        / cnt
                    )
            if e.is_store:
                stores += cnt
            if gt.work_items:
                active += cnt / gt.work_items
                if cnt < gt.work_items:
                    partial += 1
            if e.phase > max_phase:
                max_phase = e.phase

        total = loc + glob
        g["trace:accesses"] = float(total)
        g["trace:local_fraction"] = loc / total if total else 0.0
        g["trace:local_over_global"] = loc / glob if glob else 0.0
        g["trace:store_fraction"] = stores / total if total else 0.0
        g["trace:bytes_per_item"] = (
            (loc_bytes + glob_bytes) / gt.work_items if gt.work_items else 0.0
        )
        g["trace:divergent_fraction"] = partial / n_events if n_events else 0.0
        g["trace:mean_active_fraction"] = active / n_events if n_events else 0.0
        g["trace:lines_per_global_access"] = (
            lines_per_access / n_global_events if n_global_events else 0.0
        )
        g["trace:barriers"] = float(gt.barriers)
        g["trace:phases"] = float(max_phase + 1)
        g["trace:insts_per_item"] = (
            gt.inst_count / gt.work_items if gt.work_items else 0.0
        )
        per_group.append(g)

    if not per_group:
        return {}
    keys = sorted(per_group[0])
    return {
        k: float(np.mean([g[k] for g in per_group], dtype=np.float64))
        for k in keys
    }


def kernel_context(
    kernel: Function,
    trace: KernelTrace,
    local_size=None,
) -> KernelContext:
    """Bundle the once-per-kernel baseline features."""
    return KernelContext(
        static=static_features(kernel, local_size),
        trace=trace_features(trace),
        local_size=tuple(local_size) if local_size else None,
    )


# ---------------------------------------------------------------------------
# candidate assembly
# ---------------------------------------------------------------------------


def candidate_features(
    ctx: KernelContext,
    transformed: Function,
    pipeline: Sequence[str],
    rewrites: Sequence[int],
    device_name: str,
) -> Dict[str, float]:
    """The full feature vector of one (kernel, pipeline, device)
    candidate; ``transformed`` is the kernel after the pipeline ran."""
    from repro.perf.devices import DEVICES, device
    from repro.rules import rule_names

    feats: Dict[str, float] = {}
    feats.update({f"base:{k[3:]}" if k.startswith("ir:") else f"base:{k}": v
                  for k, v in ctx.static.items()})
    feats.update(ctx.trace)

    after = static_features(transformed, ctx.local_size)
    feats.update(after)
    for k, v in after.items():
        if k.startswith("ir:"):
            feats[f"delta:{k[3:]}"] = v - ctx.static.get(k, 0.0)

    pipeline = tuple(pipeline)
    rewrites = tuple(int(r) for r in rewrites)
    feats["pipe:len"] = float(len(pipeline))
    feats["pipe:rewrites_total"] = float(sum(rewrites))
    for name in rule_names():
        feats[f"pipe:{name}"] = 1.0 if name in pipeline else 0.0
        feats[f"pipe:rewrites:{name}"] = 0.0
    for name, n in zip(pipeline, rewrites):
        feats[f"pipe:rewrites:{name}"] = float(n)

    for name in sorted(DEVICES):
        feats[f"dev:{name}"] = 1.0 if name == device_name else 0.0
    feats["dev:is_gpu"] = 1.0 if device(device_name).is_gpu else 0.0
    return feats


def app_kernel_context(
    app_id: str, scale: str = "test", sample_groups: int = 8
) -> KernelContext:
    """Baseline context of one Table III app: compile the untransformed
    kernel and trace a sampled launch in an environment-isolated
    session (the same isolation the search's scoring uses)."""
    from repro.apps.harness import compile_app, execute_app
    from repro.apps.registry import get_app
    from repro.session import Session

    app = get_app(app_id)
    problem = app.make_problem(scale)
    with Session(env={}, workers=1, exec_backend="codegen").activate():
        kernel, _ = compile_app(app, "with")
        run = execute_app(
            app, kernel, variant="with", scale=scale, collect_trace=True,
            sample_groups=sample_groups, workers=1,
        )
        return kernel_context(kernel, run.trace, problem.local_size)


def app_candidate_features(
    ctx: KernelContext,
    app_id: str,
    pipeline: Sequence[str],
    scale: str,
    device_name: str,
) -> Tuple[Dict[str, float], Tuple[int, ...]]:
    """Features of one app × pipeline candidate, computed *without*
    executing it: fresh compile, apply the pipeline, extract statics.
    Returns ``(features, per-rule rewrite counts)``."""
    from repro.apps.harness import compile_app
    from repro.apps.registry import get_app
    from repro.search.engine import _apply_pipeline
    from repro.session import Session

    app = get_app(app_id)
    problem = app.make_problem(scale)
    with Session(env={}, workers=1, exec_backend="codegen").activate():
        kernel, _ = compile_app(app, "with")
        rewrites = _apply_pipeline(kernel, pipeline, problem.local_size)
    return (
        candidate_features(ctx, kernel, pipeline, rewrites, device_name),
        rewrites,
    )


def vectorize(
    feats: Dict[str, float], names: Sequence[str]
) -> np.ndarray:
    """Project a feature dict onto a fixed name order (the model's);
    features the dict lacks read as 0.0, unknown extras are ignored —
    both directions keep old models usable as the feature set grows."""
    return np.array([float(feats.get(n, 0.0)) for n in names], dtype=np.float64)
