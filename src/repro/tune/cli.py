"""``repro tune`` — train and query the go/no-go autotuner.

``repro tune train`` labels the corpus with the search's own scoring
oracle, fits the deterministic decision tree, and writes the
sha256-versioned artifact (``--out``, default the committed
``tests/golden/tune_model.json``)::

    python -m repro.cli tune train --out tests/golden/tune_model.json \\
        --fuzz-count 12 --workers 4

``repro tune predict`` scores one candidate with a trained model::

    python -m repro.cli tune predict --app NVD-MT \\
        --pipeline pad-local-arrays --device Fermi
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.session import events
from repro.tune.label import DEFAULT_DEVICES, DEFAULT_FUZZ_SEED

__all__ = ["main"]


def _train(args, session) -> int:
    from repro.tune import label_corpus, train_model
    from repro.tune.model import default_model_path, save_model

    t0 = time.perf_counter()
    sources = tuple(s.strip() for s in args.sources.split(",") if s.strip())
    devices = tuple(d.strip() for d in args.devices.split(",") if d.strip())
    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip()) or None
    examples = label_corpus(
        sources=sources,
        depth=args.depth,
        scale=args.scale,
        sample_groups=args.sample_groups,
        devices=devices,
        fuzz_seed=args.fuzz_seed,
        fuzz_count=args.fuzz_count,
        workers=args.workers if args.workers is not None
        else int(session.get("workers")),
        apps=apps,
    )
    train_sources = tuple(
        s.strip() for s in args.train_sources.split(",") if s.strip()
    )
    tree, meta = train_model(
        examples,
        train_sources=train_sources,
        max_depth=args.max_depth,
        min_leaf=args.min_leaf,
    )
    meta["labeling"] = {
        "sources": list(sources),
        "devices": list(devices),
        "depth": args.depth,
        "scale": args.scale,
        "sample_groups": args.sample_groups,
        "fuzz_seed": args.fuzz_seed,
        "fuzz_count": args.fuzz_count,
    }
    out_path = args.out or default_model_path()
    payload = save_model(tree, out_path, training=meta)
    holdout = meta.get("holdout") or {}
    events.emit(
        "tune_train",
        examples=meta["examples"],
        features=len(tree.feature_names),
        depth=tree.depth,
        holdout_accuracy=float(holdout.get("accuracy", -1.0)),
        sha256=payload["sha256"],
        wall_ms=(time.perf_counter() - t0) * 1e3,
    )
    print(f"# trained on {meta['examples']} examples "
          f"({meta['wins']} wins) from {meta['sources']}")
    print(f"# {len(tree.feature_names)} features, tree depth {tree.depth}")
    if holdout:
        print(f"# holdout ({holdout['examples']} app examples): "
              f"accuracy {holdout['accuracy']:.3f}, winner recall at 0.25 "
              f"{holdout['winner_recall_at_0.25']:.3f}")
    print(f"# model written: {out_path} (sha256 {payload['sha256'][:16]}...)")
    return 0


def _predict(args, session) -> int:
    from repro.search.engine import _apply_pipeline
    from repro.apps.harness import compile_app
    from repro.apps.registry import get_app
    from repro.session import Session
    from repro.tune.features import app_kernel_context, candidate_features
    from repro.tune.model import default_model_path, load_model

    path = args.model or session.get("tune_model") or default_model_path()
    try:
        predictor = load_model(str(path))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    threshold = float(session.get("tune_threshold"))
    pipeline = tuple(p.strip() for p in args.pipeline.split(",") if p.strip())
    if not pipeline:
        print("error: --pipeline must name at least one rule", file=sys.stderr)
        return 1

    ctx = app_kernel_context(args.app, args.scale, args.sample_groups)
    app = get_app(args.app)
    problem = app.make_problem(args.scale)
    with Session(env={}, workers=1, exec_backend="codegen").activate():
        kernel, _ = compile_app(app, "with")
        rewrites = _apply_pipeline(kernel, pipeline, problem.local_size)
    feats = candidate_features(ctx, kernel, pipeline, rewrites, args.device)
    p_win = predictor.predict(feats)
    prune = p_win < threshold
    events.emit(
        "tune_predict",
        kernel=f"app:{args.app}",
        pipeline=list(pipeline),
        p_win=p_win,
        threshold=threshold,
        prune=prune,
    )
    verdict = "no-go (search would prune)" if prune else "go"
    print(f"{args.app} × {' -> '.join(pipeline)} on {args.device}: "
          f"p(win) = {p_win:.4f} vs threshold {threshold} — {verdict}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    from repro.cli import add_session_flags
    from repro.session import session_from_flags

    p = argparse.ArgumentParser(
        prog="repro tune",
        description="Train and query the learned go/no-go predictor "
        "that prunes rewrite-pipeline search candidates before their "
        "trace-driven scoring (winners are still fully verified).",
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    t = sub.add_parser("train", help="label the corpus and fit the model")
    t.add_argument("--out", default=None,
                   help="artifact path (default: tests/golden/tune_model.json)")
    t.add_argument("--sources", default="app,corpus,fuzz",
                   help="comma-separated label sources (app, corpus, fuzz)")
    t.add_argument("--train-sources", default="corpus,fuzz",
                   help="sources the tree is fitted on; the rest are the "
                   "held-out accuracy set (default holds the apps out)")
    t.add_argument("--apps", default="",
                   help="restrict the app source to these ids "
                   "(default: every Table III app)")
    t.add_argument("--depth", type=int, default=2,
                   help="max pipeline length labeled per kernel")
    t.add_argument("--scale", default="test", help="app problem scale")
    t.add_argument("--sample-groups", type=int, default=8,
                   help="traced groups per app scoring launch")
    t.add_argument("--devices", default=",".join(DEFAULT_DEVICES),
                   help="devices labels are computed for")
    t.add_argument("--fuzz-seed", type=int, default=DEFAULT_FUZZ_SEED,
                   help="root seed of the freshly generated kernels")
    t.add_argument("--fuzz-count", type=int, default=12,
                   help="freshly generated fuzz kernels to label")
    t.add_argument("--max-depth", type=int, default=6,
                   help="decision-tree depth limit")
    t.add_argument("--min-leaf", type=int, default=5,
                   help="minimum examples per tree leaf")
    t.add_argument("--workers", type=int, default=None,
                   help="labeling process-pool width "
                   "(default: $REPRO_WORKERS, then 1)")
    add_session_flags(t)

    q = sub.add_parser("predict", help="score one app × pipeline candidate")
    q.add_argument("--app", required=True, help="Table III app id")
    q.add_argument("--pipeline", required=True,
                   help="comma-separated rule names")
    q.add_argument("--device", default="Fermi")
    q.add_argument("--scale", default="test")
    q.add_argument("--sample-groups", type=int, default=8)
    q.add_argument("--model", default=None,
                   help="artifact path (default: $REPRO_TUNE_MODEL, then "
                   "the committed tests/golden/tune_model.json)")
    add_session_flags(q)

    args = p.parse_args(argv)
    with session_from_flags(args.config, args.trace_out) as session:
        with session.activate():
            if args.cmd == "train":
                return _train(args, session)
            return _predict(args, session)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
