"""Learned go/no-go autotuner for rewrite-rule decisions.

The beam search (:mod:`repro.search`) scores every candidate pipeline
with a trace-driven launch — exact, but the expensive part of the
search.  This package learns to predict the *outcome* of that scoring
(win / no-win against the default) from features that cost microseconds
to extract: static IR counters, the baseline kernel's sampled-trace
reuse profile, the pipeline's composition and the target device.  The
search then skips the full scoring of candidates the model writes off.

The predictor is an accelerator with no authority over correctness:
pruning only removes candidates from the *scoring* queue, and every
surviving winner still passes the analyzer veto and the three-backend
differential verification, unchanged (DESIGN.md §16).

* :mod:`repro.tune.features` — deterministic feature extraction;
* :mod:`repro.tune.label`    — ground-truth labeling via the search's
  own scoring oracle, fanned over the process pool;
* :mod:`repro.tune.model`    — dependency-free CART training and the
  sha256-versioned JSON artifact;
* :mod:`repro.tune.cli`      — ``repro tune train | predict``.
"""

from repro.tune.features import (
    KernelContext,
    app_kernel_context,
    candidate_features,
    kernel_context,
    static_features,
    trace_features,
    vectorize,
)
from repro.tune.label import (
    DEFAULT_DEVICES,
    LabeledExample,
    enumerate_pipelines,
    label_corpus,
)
from repro.tune.model import (
    DecisionTree,
    TunePredictor,
    default_model_path,
    load_model,
    model_sha256,
    save_model,
    train_tree,
)

__all__ = [
    "KernelContext",
    "app_kernel_context",
    "candidate_features",
    "kernel_context",
    "static_features",
    "trace_features",
    "vectorize",
    "DEFAULT_DEVICES",
    "LabeledExample",
    "enumerate_pipelines",
    "label_corpus",
    "DecisionTree",
    "TunePredictor",
    "default_model_path",
    "load_model",
    "model_sha256",
    "save_model",
    "train_tree",
    "train_model",
]


def train_model(examples, train_sources=("corpus", "fuzz"), max_depth=6,
                min_leaf=5):
    """Fit the go/no-go tree on the ``train_sources`` examples and
    measure accuracy on the rest (the held-out apps by default).

    Returns ``(tree, training_meta)`` where ``training_meta`` is the
    provenance dict :func:`repro.tune.model.save_model` embeds — example
    counts per source, fit parameters, and the holdout accuracy plus
    winner recall (the fraction of true winners the model would keep at
    a given probability cut, the number that matters for pruning).
    """
    import numpy as np

    from repro.tune.features import vectorize
    from repro.tune.model import train_tree

    train = [e for e in examples if e.source in train_sources]
    holdout = [e for e in examples if e.source not in train_sources]
    if not train:
        raise ValueError(
            f"no training examples from sources {tuple(train_sources)}"
        )
    names = sorted({k for e in train for k in e.features})
    X = np.stack([vectorize(e.features, names) for e in train])
    y = np.array([1.0 if e.win else 0.0 for e in train])
    tree = train_tree(X, y, names, max_depth=max_depth, min_leaf=min_leaf)

    meta = {
        "examples": len(train),
        "wins": int(y.sum()),
        "sources": {
            s: sum(1 for e in train if e.source == s)
            for s in sorted({e.source for e in train})
        },
        "max_depth": max_depth,
        "min_leaf": min_leaf,
        "holdout": {},
    }
    if holdout:
        probs = [tree.predict_proba(vectorize(e.features, names))
                 for e in holdout]
        correct = sum(
            1 for p, e in zip(probs, holdout) if (p >= 0.5) == e.win
        )
        winners = [p for p, e in zip(probs, holdout) if e.win]
        meta["holdout"] = {
            "examples": len(holdout),
            "accuracy": correct / len(holdout),
            "winner_recall_at_0.25": (
                sum(1 for p in winners if p >= 0.25) / len(winners)
                if winners else 1.0
            ),
            "kernels": sorted({e.kernel_id for e in holdout}),
        }
    return tree, meta
