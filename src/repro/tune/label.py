"""Corpus labeling for the go/no-go autotuner.

Ground truth comes from the same oracle the search trusts: compile,
transform, execute under the codegen backend, and model the trace with
:func:`repro.perf.estimate_cost`.  A (kernel, pipeline, device) example
is labeled **win** iff the pipeline's modelled cycles strictly beat the
untransformed baseline's on that device — exactly the comparison the
beam search makes when it ranks candidates.

Three example sources, tagged so training can hold sources out:

* ``app`` — the 11 Table III applications (sampled-group scoring, the
  search's own configuration); held out of training by default so the
  committed artifact's accuracy number means something;
* ``corpus`` — the promoted fuzz corpus under ``tests/corpus/``
  (full-grid scoring; the kernels are tiny);
* ``fuzz`` — freshly generated kernels from the deterministic fuzzer,
  seeded explicitly so every rerun labels the identical set.

Labeling fans out over the shared process pool
(:func:`repro.parallel.engine.make_pool`), one task per kernel, results
gathered in submission order — the label stream is byte-identical
across worker counts and repeated processes (pinned by
``tests/test_tune_determinism.py``).  Kernels whose baseline execution
fails are skipped whole; a candidate whose transformed execution fails
is skipped (the search's keep-filter would discard it anyway); and
deterministic compile/verifier errors re-raise — a rule emitting
rejected IR is a rule bug, not a label.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.session import events

__all__ = [
    "DEFAULT_DEVICES",
    "DEFAULT_FUZZ_SEED",
    "LabeledExample",
    "enumerate_pipelines",
    "corpus_dir",
    "label_corpus",
]

#: devices labels are computed for — one CPU and both GPU vendors, so
#: the model sees the device axis vary (the trace is shared; only the
#: cost model reruns per device)
DEFAULT_DEVICES: Tuple[str, ...] = ("Fermi", "SNB", "Tahiti")

#: root seed of the freshly-fuzzed training kernels (fixed: labeling
#: must be reproducible without recording the generated sources)
DEFAULT_FUZZ_SEED = 20260808


@dataclass(frozen=True)
class LabeledExample:
    """One ground-truth-labeled candidate, ready for training."""

    kernel_id: str        # "app:NVD-MT" / "corpus:<file>" / "fuzz:<seed>:<i>"
    source: str           # "app" | "corpus" | "fuzz"
    pipeline: Tuple[str, ...]
    device: str
    features: Dict[str, float]
    win: bool
    cycles: float
    baseline_cycles: float


def enumerate_pipelines(
    rules: Optional[Sequence[str]] = None, depth: int = 2
) -> List[Tuple[str, ...]]:
    """Every ordered pipeline of distinct rules up to ``depth`` long,
    in deterministic order (the search's extension order)."""
    from repro.rules import rule_names

    names = tuple(rules) if rules else rule_names()
    level: List[Tuple[str, ...]] = [()]
    out: List[Tuple[str, ...]] = []
    for _ in range(depth):
        nxt: List[Tuple[str, ...]] = []
        for p in level:
            for n in names:
                if n not in p:
                    nxt.append(p + (n,))
        out.extend(nxt)
        level = nxt
    return out


def corpus_dir() -> str:
    """The promoted corpus shipped with the test suite."""
    from repro.tune.model import default_model_path

    return os.path.join(
        os.path.dirname(os.path.dirname(default_model_path())), "corpus"
    )


# ---------------------------------------------------------------------------
# per-kernel labeling tasks (run in pool workers)
# ---------------------------------------------------------------------------


def _cost(trace, device_name: str) -> float:
    from repro.perf import estimate_cost

    return float(estimate_cost(trace, device_name).cycles)


def _label_app_task(payload) -> List[dict]:
    """Label every (pipeline, device) of one Table III app."""
    from repro.apps.harness import compile_app, execute_app
    from repro.apps.registry import get_app
    from repro.search.engine import _apply_pipeline
    from repro.session import Session
    from repro.tune.features import candidate_features, kernel_context

    (_, app_id, pipelines, scale, sample_groups, devices) = payload
    app = get_app(app_id)
    problem = app.make_problem(scale)
    out: List[dict] = []
    with Session(env={}, workers=1, exec_backend="codegen").activate():
        baseline_kernel, _ = compile_app(app, "with")
        base_run = execute_app(
            app, baseline_kernel, variant="with", scale=scale,
            collect_trace=True, sample_groups=sample_groups, workers=1,
        )
        ctx = kernel_context(
            baseline_kernel, base_run.trace, problem.local_size
        )
        base_cycles = {d: _cost(base_run.trace, d) for d in devices}
        for pipeline in pipelines:
            kernel, _ = compile_app(app, "with")
            rewrites = _apply_pipeline(kernel, pipeline, problem.local_size)
            feats = {
                d: candidate_features(ctx, kernel, pipeline, rewrites, d)
                for d in devices
            }
            try:
                run = execute_app(
                    app, kernel, variant="with", scale=scale,
                    collect_trace=True, sample_groups=sample_groups,
                    workers=1,
                )
            except Exception:
                continue  # runtime failure: the keep-filter's territory
            for d in devices:
                cycles = _cost(run.trace, d)
                out.append(dict(
                    kernel_id=f"app:{app_id}", source="app",
                    pipeline=list(pipeline), device=d, features=feats[d],
                    win=bool(cycles < base_cycles[d]), cycles=cycles,
                    baseline_cycles=base_cycles[d],
                ))
    return out


def _label_source_task(payload) -> List[dict]:
    """Label every (pipeline, device) of one standalone kernel source
    (a corpus file or a freshly fuzzed case); full-grid scoring."""
    from repro.fuzz.oracle import input_data
    from repro.runtime import Memory
    from repro.search.engine import _apply_pipeline
    from repro.session import Session
    from repro.tune.features import candidate_features, kernel_context

    (_, kernel_id, src_tag, source, kernel_name, gsize, lsize,
     in_elems, p_value, pipelines, devices) = payload

    def launch(kernel):
        mem = Memory()
        total = int(np.prod(gsize))
        out_buf = mem.alloc(total * 4, "out")
        in_buf = mem.from_array(input_data(in_elems), "in")
        res = session.launch(
            kernel, tuple(gsize), tuple(lsize),
            {"out": out_buf, "in": in_buf, "P": p_value},
            memory=mem, collect_trace=True,
        )
        return res.trace

    out: List[dict] = []
    session = Session(env={}, workers=1, exec_backend="codegen")
    with session.activate():
        baseline_kernel = session.compile_kernel(source, kernel_name)
        try:
            base_trace = launch(baseline_kernel)
        except Exception:
            return []  # kernel faults untransformed: nothing to learn
        ctx = kernel_context(baseline_kernel, base_trace, lsize)
        base_cycles = {d: _cost(base_trace, d) for d in devices}
        for pipeline in pipelines:
            kernel = session.compile_kernel(source, kernel_name)
            rewrites = _apply_pipeline(kernel, pipeline, lsize)
            feats = {
                d: candidate_features(ctx, kernel, pipeline, rewrites, d)
                for d in devices
            }
            try:
                trace = launch(kernel)
            except Exception:
                continue
            for d in devices:
                cycles = _cost(trace, d)
                out.append(dict(
                    kernel_id=kernel_id, source=src_tag,
                    pipeline=list(pipeline), device=d, features=feats[d],
                    win=bool(cycles < base_cycles[d]), cycles=cycles,
                    baseline_cycles=base_cycles[d],
                ))
    return out


def _label_one(payload) -> List[dict]:
    if payload[0] == "app":
        return _label_app_task(payload)
    return _label_source_task(payload)


def _label_in_worker(payload) -> List[dict]:
    """Pool-child entry: drop event sinks inherited over ``fork``."""
    events.bus()._sinks.clear()
    return _label_one(payload)


# ---------------------------------------------------------------------------
# the labeling run
# ---------------------------------------------------------------------------


def _payloads(
    sources: Sequence[str],
    pipelines: List[Tuple[str, ...]],
    scale: str,
    sample_groups: int,
    devices: Tuple[str, ...],
    fuzz_seed: int,
    fuzz_count: int,
    apps: Optional[Sequence[str]] = None,
) -> List[tuple]:
    from repro.apps.registry import table_apps
    from repro.fuzz import load_manifest
    from repro.fuzz.generate import generate_case

    out: List[tuple] = []
    if "app" in sources:
        ids = tuple(apps) if apps else tuple(a.id for a in table_apps())
        for app_id in ids:
            out.append(
                ("app", app_id, pipelines, scale, sample_groups, devices)
            )
    if "corpus" in sources:
        cdir = corpus_dir()
        for entry in load_manifest(cdir):
            if str(entry["expected"]["exec"]) != "ok":
                continue
            with open(os.path.join(cdir, str(entry["file"]))) as fh:
                source = fh.read()
            out.append((
                "source", f"corpus:{entry['file']}", "corpus", source,
                str(entry["kernel"]), tuple(entry["global_size"]),
                tuple(entry["local_size"]), int(entry["in_elems"]),
                int(entry["p_value"]), pipelines, devices,
            ))
    if "fuzz" in sources:
        for i in range(fuzz_count):
            case = generate_case(fuzz_seed, i)
            out.append((
                "source", f"fuzz:{fuzz_seed}:{i}", "fuzz", case.source(),
                case.kernel_name, case.global_size, case.local_size,
                case.in_elems, case.p_value, pipelines, devices,
            ))
    return out


def label_corpus(
    sources: Sequence[str] = ("app", "corpus", "fuzz"),
    rules: Optional[Sequence[str]] = None,
    depth: int = 2,
    scale: str = "test",
    sample_groups: int = 8,
    devices: Sequence[str] = DEFAULT_DEVICES,
    fuzz_seed: int = DEFAULT_FUZZ_SEED,
    fuzz_count: int = 12,
    workers: int = 1,
    apps: Optional[Sequence[str]] = None,
) -> List[LabeledExample]:
    """Run the oracle over every requested source; returns examples in
    deterministic (payload, pipeline, device) order."""
    from repro.parallel import pool as worker_pool
    from repro.parallel.engine import make_pool

    pipelines = enumerate_pipelines(rules, depth)
    payloads = _payloads(
        tuple(sources), pipelines, scale, sample_groups, tuple(devices),
        fuzz_seed, fuzz_count, apps,
    )
    pool = (
        worker_pool.acquire(workers, factory=make_pool)
        if workers > 1
        else None
    )
    rows: List[dict] = []
    try:
        if pool is None:
            for p in payloads:
                rows.extend(_label_one(p))
        else:
            futures = [pool.submit(_label_in_worker, p) for p in payloads]
            for p, fut in zip(payloads, futures):
                try:
                    rows.extend(fut.result())
                except Exception:
                    # pool infrastructure died: redo this kernel serially
                    rows.extend(_label_one(p))
    finally:
        if pool is not None:
            pool.release()

    out: List[LabeledExample] = []
    for r in rows:
        events.emit(
            "tune_label",
            kernel=r["kernel_id"],
            pipeline=list(r["pipeline"]),
            device=r["device"],
            win=r["win"],
            cycles=r["cycles"],
            baseline_cycles=r["baseline_cycles"],
        )
        out.append(LabeledExample(
            kernel_id=r["kernel_id"], source=r["source"],
            pipeline=tuple(r["pipeline"]), device=r["device"],
            features=r["features"], win=r["win"], cycles=r["cycles"],
            baseline_cycles=r["baseline_cycles"],
        ))
    return out
