"""The Grover auto-tuner.

Given kernel source and a launch description, compile the original
kernel and the Grover-transformed one, execute both on the device model
(collecting traces), and pick the faster version.  This is the
"empirical approach" of the paper's abstract made executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core import GroverError, GroverPass, GroverReport
from repro.frontend import compile_kernel
from repro.ir.function import Function
from repro.perf.devices import CPUSpec, GPUSpec
from repro.perf.timing import estimate_cost, normalized_performance
from repro.runtime import Memory, launch


@dataclass
class TuneResult:
    device: str
    #: 'with' or 'without' — the faster version
    best: str
    #: paper metric: >1 means the transformed (no-local) version won
    normalized_perf: float
    cycles_with: float
    cycles_without: float
    report: Optional[GroverReport]
    #: why tuning fell back to the original version, if it did
    reason: str = ""

    @property
    def improved(self) -> bool:
        return self.best == "without"


def _run_traced(
    kernel: Function,
    global_size: Sequence[int],
    local_size: Sequence[int],
    inputs: Dict[str, object],
    sample_groups: Optional[int],
    local_arg_sizes: Optional[Dict[str, int]] = None,
    workers: Optional[int] = None,
):
    mem = Memory()
    args: Dict[str, object] = {}
    for name, value in inputs.items():
        args[name] = mem.from_array(value, name) if isinstance(value, np.ndarray) else value
    res = launch(
        kernel,
        global_size,
        local_size,
        args,
        memory=mem,
        local_arg_sizes=local_arg_sizes,
        collect_trace=True,
        sample_groups=sample_groups,
        workers=workers,
    )
    return res.trace


def autotune(
    source: str,
    device: Union[str, CPUSpec, GPUSpec],
    global_size: Sequence[int],
    local_size: Sequence[int],
    inputs: Dict[str, object],
    kernel_name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    arrays: Optional[Sequence[str]] = None,
    sample_groups: Optional[int] = 4,
    local_arg_sizes: Optional[Dict[str, int]] = None,
    workers: Optional[int] = None,
) -> TuneResult:
    """Measure the kernel with and without local memory; keep the winner.

    ``inputs`` maps argument names to numpy arrays (buffers are created
    and filled) or scalars.  Output buffers are included simply as
    zero-filled arrays of the right shape.  ``workers`` shards each
    measurement launch over processes (bit-identical results; see
    :mod:`repro.parallel`).
    """
    dev_name = device if isinstance(device, str) else device.name

    original = compile_kernel(source, kernel_name, defines=defines)
    try:
        transformed = compile_kernel(source, kernel_name, defines=defines)
        report = GroverPass(arrays=list(arrays) if arrays else None).run(transformed)
    except GroverError as exc:
        t_with = _run_traced(
            original, global_size, local_size, inputs, sample_groups,
            local_arg_sizes, workers,
        )
        c_with = estimate_cost(t_with, device)
        return TuneResult(
            device=dev_name,
            best="with",
            normalized_perf=1.0,
            cycles_with=c_with.cycles,
            cycles_without=float("nan"),
            report=None,
            reason=f"Grover could not disable local memory: {exc}",
        )

    t_with = _run_traced(
        original, global_size, local_size, inputs, sample_groups,
        local_arg_sizes, workers,
    )
    t_without = _run_traced(
        transformed, global_size, local_size, inputs, sample_groups,
        local_arg_sizes, workers,
    )
    c_with = estimate_cost(t_with, device)
    c_without = estimate_cost(t_without, device)
    np_ratio = normalized_performance(c_with, c_without)
    return TuneResult(
        device=dev_name,
        best="without" if np_ratio > 1.0 else "with",
        normalized_perf=np_ratio,
        cycles_with=c_with.cycles,
        cycles_without=c_without.cycles,
        report=report,
    )
