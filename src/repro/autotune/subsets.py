"""Exhaustive per-array tuning: the paper's auto-tuning framework.

The paper's conclusion: "Ultimately, we aim to incorporate Grover into a
high-level auto-tuning framework for OpenCL kernels, where code
specialization is automated for different classes of platforms."

A kernel can stage several data structures (the NVD-MM kernel stages A
and B); removing them is independent, so the search space is the power
set of removable local arrays.  :func:`autotune_subsets` enumerates it
(kernels have 1-3 staged arrays, so the space is tiny), evaluates every
variant on the device model, and returns the ranked results — the
NVD-MM-A / -B / -AB experiment generalised into a tuner.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import GroverError, GroverPass
from repro.core.candidates import find_candidates
from repro.frontend import compile_kernel
from repro.perf.devices import CPUSpec, GPUSpec
from repro.perf.timing import estimate_cost
from repro.autotune.tuner import _run_traced


@dataclass
class VariantResult:
    """One evaluated combination of removed local arrays."""

    removed: Tuple[str, ...]
    cycles: float
    #: speedup over the untouched kernel (>1 = this variant is faster)
    speedup: float
    ok: bool = True
    error: str = ""

    @property
    def label(self) -> str:
        return "+".join(self.removed) if self.removed else "(original)"


@dataclass
class SubsetTuneResult:
    device: str
    variants: List[VariantResult]

    @property
    def best(self) -> VariantResult:
        return max(
            (v for v in self.variants if v.ok),
            key=lambda v: v.speedup,
        )

    def render(self) -> str:
        lines = [f"subset tuning on {self.device}:"]
        for v in sorted(self.variants, key=lambda v: -v.speedup if v.ok else 1):
            mark = "*" if v is self.best else " "
            if v.ok:
                lines.append(
                    f" {mark} remove {v.label:20s} {v.cycles:14,.0f} cyc"
                    f"  ({v.speedup:.3f}x)"
                )
            else:
                lines.append(f"   remove {v.label:20s} not reversible: {v.error}")
        return "\n".join(lines)


def removable_arrays(source: str, kernel_name=None, defines=None) -> List[str]:
    """Names of the local data structures Grover could remove."""
    kernel = compile_kernel(source, kernel_name, defines=defines)
    cands, _ = find_candidates(kernel)
    return [c.name for c in cands]


def autotune_subsets(
    source: str,
    device: Union[str, CPUSpec, GPUSpec],
    global_size: Sequence[int],
    local_size: Sequence[int],
    inputs: Dict[str, object],
    kernel_name: Optional[str] = None,
    defines: Optional[Dict[str, object]] = None,
    sample_groups: Optional[int] = 4,
    local_arg_sizes: Optional[Dict[str, int]] = None,
) -> SubsetTuneResult:
    """Evaluate every combination of removable local arrays."""
    dev_name = device if isinstance(device, str) else device.name
    arrays = removable_arrays(source, kernel_name, defines)

    variants: List[VariantResult] = []
    base_cycles: Optional[float] = None

    subsets: List[Tuple[str, ...]] = [()]
    for r in range(1, len(arrays) + 1):
        subsets.extend(combinations(arrays, r))

    for subset in subsets:
        kernel = compile_kernel(source, kernel_name, defines=defines)
        try:
            if subset:
                GroverPass(arrays=list(subset)).run(kernel)
        except GroverError as exc:
            variants.append(
                VariantResult(subset, float("nan"), 0.0, ok=False, error=str(exc))
            )
            continue
        trace = _run_traced(
            kernel, global_size, local_size, inputs, sample_groups, local_arg_sizes
        )
        cycles = estimate_cost(trace, device).cycles
        if subset == ():
            base_cycles = cycles
        variants.append(VariantResult(subset, cycles, 1.0))

    assert base_cycles is not None
    for v in variants:
        if v.ok:
            v.speedup = base_cycles / v.cycles
    return SubsetTuneResult(dev_name, variants)


def specialize_per_platform(
    source: str,
    devices: Sequence[Union[str, CPUSpec, GPUSpec]],
    global_size: Sequence[int],
    local_size: Sequence[int],
    inputs: Dict[str, object],
    **kw,
) -> Dict[str, SubsetTuneResult]:
    """Tune the kernel for every device: the paper's "code specialization
    automated for different classes of platforms"."""
    return {
        (d if isinstance(d, str) else d.name): autotune_subsets(
            source, d, global_size, local_size, inputs, **kw
        )
        for d in devices
    }
