"""Auto-tuning: empirically choosing the best kernel version per platform.

The paper's conclusion: because the performance effect of local memory
is unpredictable, the practical strategy is to *generate both versions
with Grover and measure* — "an auto-tuning step for OpenCL kernels".
"""

from repro.autotune.tuner import TuneResult, autotune
from repro.autotune.subsets import (
    SubsetTuneResult,
    VariantResult,
    autotune_subsets,
    removable_arrays,
    specialize_per_platform,
)

__all__ = [
    "TuneResult",
    "autotune",
    "SubsetTuneResult",
    "VariantResult",
    "autotune_subsets",
    "removable_arrays",
    "specialize_per_platform",
]
