"""Command-line driver: ``python -m repro.cli kernel.cl [options]``.

Runs the Grover pass over an OpenCL C file and prints the before/after
IR plus the Table-III style index report — the workflow of the paper's
Fig. 9 pipeline from the terminal.

Subcommands:

* ``python -m repro.cli bench [...]`` — the perf regression harness
  (see :mod:`repro.perf.bench`): times compile→launch→trace→cycles for
  the headline workloads and writes ``BENCH_pipeline.json``; with
  ``--workers N`` it also times (and differentially verifies) the
  sharded launches and the parallel experiment matrix.
* ``python -m repro.cli matrix [...]`` — the (app × device) experiment
  matrix (Table IV / Fig. 10 / extension-GPU scoring), optionally
  fanned out with ``--workers N`` (see :mod:`repro.parallel.matrix`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import GroverError, GroverPass
from repro.frontend import FrontendError, compile_kernel
from repro.ir.printer import print_function


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="grover",
        description="Disable local memory usage in an OpenCL kernel (ICPP'14).",
    )
    p.add_argument("file", help="OpenCL C source file")
    p.add_argument("--kernel", help="kernel name (default: the only kernel)")
    p.add_argument(
        "-D",
        dest="defines",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="preprocessor definition (repeatable)",
    )
    p.add_argument(
        "--arrays",
        help="comma-separated local arrays to remove (default: all)",
    )
    p.add_argument(
        "--keep-barriers",
        action="store_true",
        help="do not strip barriers after the rewrite",
    )
    p.add_argument(
        "--before",
        action="store_true",
        help="also print the IR before the transformation",
    )
    return p


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.perf.bench import main as bench_main

        return bench_main(list(argv[1:]))
    if argv and argv[0] == "matrix":
        from repro.parallel.matrix import main as matrix_main

        return matrix_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    source = Path(args.file).read_text()
    defines = {}
    for d in args.defines:
        name, _, value = d.partition("=")
        defines[name] = value or "1"

    try:
        kernel = compile_kernel(source, args.kernel, defines=defines)
    except FrontendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.before:
        print("; ---- before Grover ----")
        print(print_function(kernel))
        print()

    arrays = args.arrays.split(",") if args.arrays else None
    pipeline = GroverPass(arrays=arrays, remove_barriers=not args.keep_barriers)
    try:
        report = pipeline.run(kernel)
    except GroverError as exc:
        print(f"grover: cannot disable local memory: {exc}", file=sys.stderr)
        return 2

    print(report)
    print()
    print("; ---- after Grover ----")
    print(print_function(kernel))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
