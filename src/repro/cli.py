"""Command-line driver: ``python -m repro.cli kernel.cl [options]``.

Runs the Grover pass over an OpenCL C file and prints the before/after
IR plus the Table-III style index report — the workflow of the paper's
Fig. 9 pipeline from the terminal.

Subcommands:

* ``python -m repro.cli bench [...]`` — the perf regression harness
  (see :mod:`repro.perf.bench`): times compile→launch→trace→cycles for
  the headline workloads and writes ``BENCH_pipeline.json``; with
  ``--workers N`` it also times (and differentially verifies) the
  sharded launches and the parallel experiment matrix on the warm
  persistent pool, reporting the one-time ``pool_warmup_s`` apart from
  steady-state repeats plus shared-memory and kernel-cache counters.
* ``python -m repro.cli matrix [...]`` — the (app × device) experiment
  matrix (Table IV / Fig. 10 / extension-GPU scoring), optionally
  fanned out with ``--workers N`` (see :mod:`repro.parallel.matrix`).
* ``python -m repro.cli passes [...]`` — list the registered IR passes
  and pipelines, or run a pipeline over a source file and print
  per-pass rewrite counts, instruction deltas and wall time
  (see :mod:`repro.session.passes`).
* ``python -m repro.cli analyze [...]`` — the static/dynamic race and
  barrier-divergence analyzer over registered apps and/or ``.cl``
  files, with ``--golden`` verdict pinning for CI
  (see :mod:`repro.analysis`).
* ``python -m repro.cli fuzz [...]`` — the generative differential
  fuzzer: seeded random kernels judged by all three execution backends,
  the race analyzer and the Grover pass at once, with delta-minimized
  reproducers and corpus promotion (see :mod:`repro.fuzz`).
* ``python -m repro.cli search [...]`` — deterministic beam search over
  rewrite-rule pipelines, scored by the trace-driven perf model and
  verified by the analyzer + three-backend differential runner
  (see :mod:`repro.search`).

Every subcommand (and the default kernel command) accepts ``--config
FILE`` (a JSON session config, see :mod:`repro.session.config`) and
``--trace-out PATH`` (structured JSONL event stream).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import GroverError
from repro.frontend import FrontendError
from repro.ir.printer import print_function


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="grover",
        description="Disable local memory usage in an OpenCL kernel (ICPP'14).",
    )
    p.add_argument("file", help="OpenCL C source file")
    p.add_argument("--kernel", help="kernel name (default: the only kernel)")
    p.add_argument(
        "-D",
        dest="defines",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="preprocessor definition (repeatable)",
    )
    p.add_argument(
        "--arrays",
        help="comma-separated local arrays to remove (default: all)",
    )
    p.add_argument(
        "--keep-barriers",
        action="store_true",
        help="do not strip barriers after the rewrite",
    )
    p.add_argument(
        "--before",
        action="store_true",
        help="also print the IR before the transformation",
    )
    p.add_argument(
        "--local-size",
        default=None,
        metavar="LX[,LY[,LZ]]",
        help="work-group geometry for the $REPRO_ANALYZE race/divergence "
        "gate (without it, undecidable access pairs only warn)",
    )
    add_session_flags(p)
    return p


def add_session_flags(p: argparse.ArgumentParser) -> None:
    """The two session flags every subcommand shares."""
    p.add_argument(
        "--config",
        default=None,
        help="JSON session config file (see repro.session.config)",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="write structured events as JSONL to this path",
    )


def passes_main(argv=None) -> int:
    """``repro passes``: inspect the pass registry, or run a pipeline
    over a source file and print per-pass statistics."""
    from repro.session import session_from_flags
    from repro.session.passes import PASS_REGISTRY, PIPELINES

    p = argparse.ArgumentParser(
        prog="repro passes",
        description="List registered IR passes and pipelines, or run a "
        "pipeline over an OpenCL C file and report per-pass rewrite "
        "counts, instruction deltas and wall time.",
    )
    p.add_argument("--pipeline", default="default", choices=sorted(PIPELINES),
                   help="pipeline to show or run (default: 'default')")
    p.add_argument("--run", metavar="FILE", default=None,
                   help="compile FILE unoptimised, then run the pipeline "
                   "and print per-pass statistics")
    p.add_argument("--kernel", default=None,
                   help="with --run: kernel name (default: the only kernel)")
    p.add_argument("-D", dest="defines", action="append", default=[],
                   metavar="NAME=VALUE", help="preprocessor definition")
    add_session_flags(p)
    args = p.parse_args(argv)

    from repro.reporting import ascii_table

    if args.run is None:
        rows = [
            [name, "x" if name in PIPELINES[args.pipeline] else "",
             PASS_REGISTRY[name].legality_arbiter or "-",
             PASS_REGISTRY[name].description]
            for name in sorted(PASS_REGISTRY)
        ]
        print(ascii_table(
            ["pass", f"in '{args.pipeline}'", "legality arbiter",
             "description"], rows,
            title=f"registered passes (pipeline '{args.pipeline}': "
            f"{' -> '.join(PIPELINES[args.pipeline])})",
        ))
        rule_infos = [
            PASS_REGISTRY[name] for name in sorted(PASS_REGISTRY)
            if PASS_REGISTRY[name].rule is not None
        ]
        if rule_infos:
            print()
            print("rewrite rules (probe/apply/legality/features protocol):")
            for info in rule_infos:
                print(f"  {info.name}")
                print(f"    arbiter:  {info.legality_arbiter}")
                print(f"    legality: {info.legality}")
        return 0

    defines = {}
    for d in args.defines:
        name, _, value = d.partition("=")
        defines[name] = value or "1"
    source = Path(args.run).read_text()
    with session_from_flags(args.config, args.trace_out) as session:
        # lower to virgin IR (no pipeline yet) so the per-pass stats show
        # what each pass actually does, not an idempotent re-run
        from pycparser import CParser
        from pycparser.c_parser import ParseError

        from repro.frontend.lower import lower_translation_unit
        from repro.frontend.preprocess import preprocess

        try:
            pre = preprocess(source, defines)
            ast = CParser().parse(pre.text, filename=args.run)
            module = lower_translation_unit(ast, pre.kernel_names, args.run)
            kernel = module.kernel(args.kernel)
        except (ParseError, FrontendError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        pm = session.pass_manager(pipeline=args.pipeline, verify_between=True)
        with session.activate():
            results = pm.run_function(kernel)
    rows = [
        [r.pass_name, r.rewrites, r.insts_before, r.insts_after,
         f"{r.wall_s * 1e3:.3f}"]
        for r in results
    ]
    print(ascii_table(
        ["pass", "rewrites", "insts before", "insts after", "wall ms"], rows,
        title=f"pipeline '{args.pipeline}' over {kernel.name} "
        f"({args.run})",
    ))
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.perf.bench import main as bench_main

        return bench_main(list(argv[1:]))
    if argv and argv[0] == "matrix":
        from repro.parallel.matrix import main as matrix_main

        return matrix_main(list(argv[1:]))
    if argv and argv[0] == "passes":
        return passes_main(list(argv[1:]))
    if argv and argv[0] == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(list(argv[1:]))
    if argv and argv[0] == "fuzz":
        from repro.fuzz.runner import main as fuzz_main

        return fuzz_main(list(argv[1:]))
    if argv and argv[0] == "search":
        from repro.search import main as search_main

        return search_main(list(argv[1:]))
    if argv and argv[0] == "tune":
        from repro.tune.cli import main as tune_main

        return tune_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    source = Path(args.file).read_text()
    defines = {}
    for d in args.defines:
        name, _, value = d.partition("=")
        defines[name] = value or "1"

    from repro.session import session_from_flags

    with session_from_flags(args.config, args.trace_out) as session:
        try:
            kernel = session.compile_kernel(source, args.kernel, defines=defines)
        except FrontendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

        if args.before:
            print("; ---- before Grover ----")
            print(print_function(kernel))
            print()

        arrays = args.arrays.split(",") if args.arrays else None
        local_size = (
            tuple(int(t) for t in args.local_size.replace("x", ",").split(","))
            if args.local_size else None
        )
        try:
            # through the session so the $REPRO_ANALYZE race/divergence
            # veto gate applies (RaceDetected is a GroverError)
            report = session.disable_local_memory(
                kernel,
                local_size=local_size,
                arrays=arrays,
                remove_barriers=not args.keep_barriers,
            )
        except GroverError as exc:
            print(
                f"grover: cannot disable local memory: {exc}", file=sys.stderr
            )
            return 2

    print(report)
    print()
    print("; ---- after Grover ----")
    print(print_function(kernel))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
