"""Codegen'd compiled-tape tier: the pilot schedule emitted as one module.

The tape backend (:mod:`repro.runtime.tape`) already collapses the
per-group scheduler into a straight-line ``(block, mask)`` tape, but it
replays that tape through a chain of tiny Python closures — one call,
one operand-getter dict lookup and one fresh temporary per instruction
per step.  This tier removes that last layer of interpretation: the
whole tape is emitted as **one generated Python module** whose single
function runs the batch as straight-line fused numpy statements,

* every value bound to a local variable (no ``env`` dict on the hot
  path),
* masks, lane lists, expected branch conditions and constants interned
  as read-only module arrays,
* single-use pure expressions (arithmetic, compares, casts, GEPs,
  selects) folded into their consumer, so an address computation like
  ``base + (gid*W + i)*4`` is one compound numpy expression instead of
  four closure calls,
* repeated step runs (loop bodies) detected and emitted as a ``for``
  loop with barrier phase / instruction count / private-arena cursor as
  linear expressions of the iteration counter, bounding source size,
* each ``CondBr`` guarded and each load/store buffer-checked exactly
  like the tape; any mismatch *diverts* the whole batch to the tape
  executor mid-step (``rt.divert`` rebuilds the tape's ``env`` from the
  generated function's ``locals()`` and finishes the batch on the
  closure path, including per-group eviction to the scalar executor),
  so results stay bit-identical under divergence.

The generated module is ``compile()``/``exec()``'d once and cached
in-process per ``(kernel IR fingerprint, schedule hash, batch
parameters)``; with ``REPRO_CODEGEN_CACHE_DIR`` set, the sealed source
is also persisted on disk (content-hash validated — a corrupted or
stale artifact is silently recompiled and rewritten).

Generated code never embeds ``Instruction.id`` (a process-global
counter): record tuples reference instructions positionally through the
module's ``__PLAN__`` (block index, instruction index), resolved against
the live :class:`Function` at bind time.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Load,
    Opcode,
    Select,
    Store,
)
from repro.ir.types import AddressSpace, ArrayType, BoolType, IntType, VectorType
from repro.ir.values import Argument, Constant, LocalArray, Value
from repro.runtime.buffers import OFFSET_BITS, Buffer, Memory
from repro.runtime.builtins import WorkItemContext
from repro.runtime.errors import RuntimeLaunchError
from repro.runtime.interpreter import _np_type
from repro.runtime.tape import TapeExecutor, _RecordingExecutor, _Step
from repro.runtime.trace import GroupTrace, TraceSpillStore
from repro.session import events

__all__ = [
    "CODEGEN_VERSION",
    "CodegenExecutor",
    "cache_key",
    "clear_codegen_cache",
    "execute_codegen",
    "function_fingerprint",
    "generate_source",
]

#: bumped whenever the shape of generated code changes — part of every
#: cache key, so stale disk artifacts from older versions never load
CODEGEN_VERSION = 5

#: maximum operator-fusion depth of one emitted expression
_FUSE_DEPTH = 8
#: loop detection: maximum period (steps) and minimum repeats
_MAX_PERIOD = 16
_MIN_REPEATS = 3

_FUSABLE = (BinOp, ICmp, FCmp, Cast, Select, GEP)
_PURE = _FUSABLE + (ExtractElement, InsertElement)
_UNSIGNED_PREDS = (CmpPred.ULT, CmpPred.ULE, CmpPred.UGT, CmpPred.UGE)
_CMP_OPS = {
    CmpPred.EQ: "==", CmpPred.OEQ: "==",
    CmpPred.NE: "!=", CmpPred.ONE: "!=",
    CmpPred.SLT: "<", CmpPred.ULT: "<", CmpPred.OLT: "<",
    CmpPred.SLE: "<=", CmpPred.ULE: "<=", CmpPred.OLE: "<=",
    CmpPred.SGT: ">", CmpPred.UGT: ">", CmpPred.OGT: ">",
    CmpPred.SGE: ">=", CmpPred.UGE: ">=", CmpPred.OGE: ">=",
}
_BINOP_FMT = {
    Opcode.ADD: "({a} + {b})", Opcode.FADD: "({a} + {b})",
    Opcode.SUB: "({a} - {b})", Opcode.FSUB: "({a} - {b})",
    Opcode.MUL: "({a} * {b})", Opcode.FMUL: "({a} * {b})",
    Opcode.FDIV: "({a} / {b})",
    Opcode.SDIV: "_idiv({a}, {b})", Opcode.UDIV: "_idiv({a}, {b})",
    Opcode.SREM: "_irem({a}, {b})", Opcode.UREM: "_irem({a}, {b})",
    Opcode.AND: "({a} & {b})", Opcode.OR: "({a} | {b})",
    Opcode.XOR: "_xor({a}, {b})",
    Opcode.SHL: "_shl({a}, {b})",
    Opcode.ASHR: "_ashr({a}, {b})",
    Opcode.LSHR: "_lshr({a}, {b})",
}

#: runtime helpers emitted into every generated module; each mirrors the
#: corresponding tape/interpreter closure body exactly (C-truncating
#: division, shift-count masking, unsigned reinterpretation by the
#: operand's *runtime* dtype)
_HELPERS = '''\
def _idiv(a, b):
    _sb = _np.where(b == 0, 1, b)
    _q = a // _sb
    _r = a - _q * _sb
    return (_q + ((_r != 0) & ((a < 0) != (_sb < 0)))).astype(a.dtype)

def _irem(a, b):
    return a - _idiv(a, b) * b

def _xor(a, b):
    if a.dtype == bool:
        return a ^ b
    return a ^ b.astype(a.dtype)

def _shl(a, b):
    return a << (b & (a.dtype.itemsize * 8 - 1))

def _ashr(a, b):
    return a >> (b & (a.dtype.itemsize * 8 - 1))

def _lshr(a, b):
    _u = _np.dtype("u%d" % a.dtype.itemsize)
    return (a.view(_u) >> (b & (a.dtype.itemsize * 8 - 1)).view(_u)).view(a.dtype)

def _uvw(a):
    return a.view(_np.dtype("u%d" % a.dtype.itemsize))

def _bc(v, d):
    return v.view(d) if v.dtype.itemsize == d.itemsize else v.astype(d)
'''


# ---------------------------------------------------------------------------
# cache keys
# ---------------------------------------------------------------------------


def function_fingerprint(fn: Function) -> str:
    """Structural digest of a function's IR.

    Stable across processes and recompilations of the same source:
    instruction ids (a process-global counter) never participate —
    operands are referenced positionally (block index, instruction
    index) and constants by (type, value).

    Memoized on the function object (keyed by block/instruction counts
    so a transformed-in-place function is never served a stale digest);
    kernel IR is immutable between pass pipeline and launch.
    """
    shape = (len(fn.blocks), sum(len(b.instructions) for b in fn.blocks))
    cached = getattr(fn, "_codegen_fp", None)
    if cached is not None and cached[0] == shape:
        return cached[1]
    h = hashlib.sha256()
    bidx = {bb: b for b, bb in enumerate(fn.blocks)}
    pos: Dict[Value, Tuple[int, int]] = {}
    for b, bb in enumerate(fn.blocks):
        for i, inst in enumerate(bb.instructions):
            pos[inst] = (b, i)
    aidx = {a: i for i, a in enumerate(fn.args)}
    lidx = {la: i for i, la in enumerate(fn.local_arrays)}

    def ref(v: Value) -> str:
        if isinstance(v, Constant):
            return f"c:{v.type}:{v.value!r}"
        if isinstance(v, Argument):
            return f"a:{aidx[v]}"
        if isinstance(v, LocalArray):
            return f"l:{lidx[v]}"
        p = pos.get(v)
        return f"i:{p[0]}:{p[1]}" if p else f"?:{type(v).__name__}"

    h.update(f"fn:{fn.name}:{len(fn.args)}".encode())
    for a in fn.args:
        h.update(f"arg:{a.type}".encode())
    for la in fn.local_arrays:
        h.update(f"loc:{la.array_type}".encode())
    for b, bb in enumerate(fn.blocks):
        h.update(f"block:{b}".encode())
        for inst in bb.instructions:
            parts = [type(inst).__name__, str(getattr(inst, "type", None))]
            for attr in ("opcode", "pred", "kind", "callee"):
                val = getattr(inst, attr, None)
                if val is not None:
                    parts.append(str(val))
            if isinstance(inst, Alloca):
                parts.append(str(inst.allocated_type))
            if isinstance(inst, GEP):
                parts.append(str(inst.strides()))
            parts.extend(ref(o) for o in inst.operands)
            for succ in (
                inst.successors() if inst.is_terminator else ()
            ):
                parts.append(f"b:{bidx[succ]}")
            h.update(("|".join(parts) + "\n").encode())
    digest = h.hexdigest()
    try:
        fn._codegen_fp = (shape, digest)
    except AttributeError:  # __slots__-restricted Function
        pass
    return digest


def cache_key(
    fn: Function,
    steps: List[_Step],
    n: int,
    lsize: Tuple[int, ...],
    gsize: Tuple[int, ...],
    tape_batch: int,
    collect_trace: bool,
) -> str:
    """Key of one compiled module: IR shape + pilot schedule + launch
    geometry (all of which are folded into the generated source)."""
    h = hashlib.sha256()
    h.update(
        f"v{CODEGEN_VERSION}:{function_fingerprint(fn)}:{n}:"
        f"{lsize}:{gsize}:{tape_batch}:{int(collect_trace)}".encode()
    )
    bidx = {bb: b for b, bb in enumerate(fn.blocks)}
    for step in steps:
        h.update(np.int64(bidx[step.bb]).tobytes())
        h.update(step.mask.tobytes())
        if step.cond is not None:
            h.update(b"c")
            h.update(step.cond.tobytes())
        for succ, m in step.succ:
            h.update(np.int64(bidx[succ]).tobytes())
            h.update(m.tobytes())
    return h.hexdigest()[:32]


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------


class _SourceGen:
    """Emits the generated replay module for one (kernel, schedule)."""

    def __init__(
        self,
        fn: Function,
        steps: List[_Step],
        n: int,
        collect_trace: bool,
        key: str,
    ) -> None:
        self.fn = fn
        self.steps = steps
        self.n = n
        self.collect_trace = collect_trace
        self.key = key
        self.bidx = {bb: b for b, bb in enumerate(fn.blocks)}
        self.ipos: Dict[Value, Tuple[int, int]] = {}
        for b, bb in enumerate(fn.blocks):
            for i, inst in enumerate(bb.instructions):
                self.ipos[inst] = (b, i)
        self.lidx = {la: i for i, la in enumerate(fn.local_arrays)}
        # ground-truth use map (Value.uses can go stale across passes)
        self.n_uses: Dict[Value, int] = {}
        self.use_at: Dict[Value, Tuple[BasicBlock, int]] = {}
        for bb in fn.blocks:
            for i, inst in enumerate(bb.instructions):
                for op in inst.operands:
                    self.n_uses[op] = self.n_uses.get(op, 0) + 1
                    self.use_at[op] = (bb, i)
        self._fuse_plan: Dict[
            BasicBlock, Tuple[set, set, Dict[int, int], Dict[int, int]]
        ] = {}

        self.lines: List[str] = []
        self.indent = "        "
        self.t = 0  # unique temp counter
        self.si = 0
        self.phase = 0
        self.ic = 0
        self.arena = 0
        self.loop: Optional[dict] = None

        self.const_lines: List[str] = []
        self._masks: Dict[bytes, str] = {}
        self._lanes: Dict[bytes, str] = {}
        self._widens: Dict[bytes, str] = {}
        # flat (step, instruction) position of each slot's last store:
        # a slot read past it can alias the slot instead of copying
        self._last_slot_store: Dict[Value, Tuple[int, int]] = {}
        for psi, pstep in enumerate(steps):
            for pj, pinst in enumerate(pstep.bb.instructions):
                if pinst.is_terminator:
                    break
                if isinstance(pinst, Store) and self._is_slot_access(pinst):
                    self._last_slot_store[pinst.ptr] = (psi, pj)
        self._expected: Dict[bytes, str] = {}
        self._consts: Dict[Constant, str] = {}
        self._const_vals: Dict[str, Constant] = {}
        # per-step memo of emitted address terms (names are assigned at
        # most once per step, so equal strings denote equal values)
        self._step_cse: Dict[str, str] = {}
        self._dtypes: Dict[str, str] = {}
        self._comps: Dict[int, str] = {}
        self._laneoffs: Dict[int, str] = {}

        self.entries: Dict[Value, str] = {}
        self.entry_bases: Dict[Value, Tuple[str, str]] = {}
        self.entry_base_lines: List[str] = []
        self.plan_values: Dict[str, Tuple[int, int]] = {}
        self.plan_slots: Dict[str, Tuple[int, int]] = {}
        self._calls: Dict[Call, int] = {}
        self._insts: Dict[Value, int] = {}

    # -- interning ---------------------------------------------------------
    def _tmp(self, prefix: str) -> str:
        self.t += 1
        return f"_{prefix}{self.t}"

    def _mask_name(self, mask: np.ndarray) -> str:
        key = mask.tobytes()
        name = self._masks.get(key)
        if name is None:
            name = f"_m{len(self._masks)}"
            self._masks[key] = name
            self.const_lines.append(
                f"{name} = _np.frombuffer({key!r}, dtype=_np.bool_)"
            )
        return name

    def _lanes_name(self, mask: np.ndarray) -> str:
        key = mask.tobytes()
        name = self._lanes.get(key)
        if name is None:
            name = f"_ln{len(self._lanes)}"
            self._lanes[key] = name
            mname = self._mask_name(mask)
            self.const_lines.append(f"{name} = _lanes[{mname}]")
            self.const_lines.append(f"{name}.setflags(write=False)")
        return name

    def _widen_name(self, mask: np.ndarray) -> str:
        """Gather index widening a masked ``(G, count)`` value to ``(G, N)``.

        Off-mask columns point at position 0 (the first live lane), the
        same safe filler the tape uses, so one fancy-index gather
        replaces an empty/fill/masked-assign triple (three full-width
        passes over the batch).
        """
        key = mask.tobytes()
        name = self._widens.get(key)
        if name is None:
            name = f"_wi{len(self._widens)}"
            self._widens[key] = name
            idx = np.zeros(mask.shape[0], dtype=np.int64)
            idx[mask] = np.arange(int(np.count_nonzero(mask)), dtype=np.int64)
            self.const_lines.append(
                f"{name} = _np.frombuffer({idx.tobytes()!r}, dtype=_np.int64)"
            )
        return name

    def _expected_name(self, row: np.ndarray) -> str:
        key = row.tobytes()
        name = self._expected.get(key)
        if name is None:
            name = f"_e{len(self._expected)}"
            self._expected[key] = name
            self.const_lines.append(
                f"{name} = _np.frombuffer({key!r}, dtype=_np.bool_)"
            )
        return name

    def _dtype_name(self, dt: np.dtype) -> str:
        dt = np.dtype(dt)
        name = self._dtypes.get(dt.name)
        if name is None:
            name = f"_dt{len(self._dtypes)}"
            self._dtypes[dt.name] = name
            self.const_lines.append(f"{name} = _np.dtype({dt.name!r})")
        return name

    def _comp_name(self, count: int) -> str:
        name = self._comps.get(count)
        if name is None:
            name = f"_cp{len(self._comps)}"
            self._comps[count] = name
            self.const_lines.append(
                f"{name} = _np.arange({count}, dtype=_np.int64)"
            )
        return name

    def _laneoff_name(self, size: int) -> str:
        name = self._laneoffs.get(size)
        if name is None:
            name = f"_lo{len(self._laneoffs)}"
            self._laneoffs[size] = name
            self.const_lines.append(f"{name} = _lanes * {size}")
        return name

    def _const_name(self, c: Constant) -> str:
        name = self._consts.get(c)
        if name is None:
            name = f"_c{len(self._consts)}"
            self._consts[c] = name
            self._const_vals[name] = c
            if isinstance(c.type, BoolType):
                self.const_lines.append(
                    f"{name} = _np.full(N, {bool(c.value)!r})"
                )
            else:
                dt = self._dtype_name(_np_type(c.type))
                if isinstance(c.value, float):
                    lit = f"float.fromhex({c.value.hex()!r})"
                else:
                    lit = repr(c.value)
                self.const_lines.append(
                    f"{name} = _np.full(N, {lit}, dtype={dt})"
                )
            self.const_lines.append(f"{name}.setflags(write=False)")
        return name

    # -- plan registration -------------------------------------------------
    def _entry_name(self, v: Value) -> str:
        name = self.entries.get(v)
        if name is None:
            if isinstance(v, Argument):
                name = f"a{v.index}"
            else:
                name = f"loc{self.lidx[v]}"
            self.entries[v] = name
        return name

    def _entry_base(self, v: Value) -> Tuple[str, str]:
        """Hoist an entry pointer's (buffer id, byte offset) split to the
        top of the replay: every access through it then derives offsets
        with a single add instead of an id extraction + subtraction."""
        cached = self.entry_bases.get(v)
        if cached is not None:
            return cached
        ename = self._entry_name(v)
        k = len(self.entry_bases)
        b, o = f"_bb{k}", f"_eo{k}"
        self.entry_base_lines.extend([
            # entry pointers are lane-uniform by construction (args are
            # np.full, local bases broadcast per group): keep one lane
            f"    {o} = _np.asarray({ename})[..., :1]"
            f".astype(_np.int64, copy=False)",
            f"    {b} = int({o}.flat[0]) >> {OFFSET_BITS}",
            f"    {o} = {o} - ({b} << {OFFSET_BITS})",
        ])
        self.entry_bases[v] = (b, o)
        return (b, o)

    def _val_name(self, inst: Value) -> str:
        b, i = self.ipos[inst]
        name = f"v{b}_{i}"
        self.plan_values[name] = (b, i)
        return name

    def _slot_name(self, inst: Alloca) -> str:
        b, i = self.ipos[inst]
        name = f"s{b}_{i}"
        self.plan_slots[name] = (b, i)
        return name

    def _call_ref(self, inst: Call) -> str:
        k = self._calls.setdefault(inst, len(self._calls))
        return f"rt.calls[{k}]"

    def _inst_id_ref(self, inst: Value) -> str:
        t = self._insts.setdefault(inst, len(self._insts))
        return f"_ii[{t}]"

    # -- fusion analysis ---------------------------------------------------
    def _plan_block(
        self, bb: BasicBlock
    ) -> Tuple[set, set, Dict[int, int], Dict[int, int]]:
        """Per-block (structural) decision: which instructions fuse into
        their single consumer, which dead pure ops are skipped, where each
        eviction site re-enters the tape on divert, and which address GEPs
        collapse into their access site.

        A divert at a load/store site re-enters the tape at ``divert_at[s]``
        — the first op of the maximal run of pure instructions immediately
        preceding the site — so every value defined inside that run is
        recomputed by the tape closures and need not be materialized.  The
        fusion hazard is therefore phrased against the divert *entry
        points* rather than the sites themselves: a single-use value may
        stay unmaterialized unless some entry point lies in (def, use]."""
        cached = self._fuse_plan.get(bb)
        if cached is not None:
            return cached
        insts = bb.instructions
        sites: List[int] = []
        cond_sites: List[int] = []
        for i, inst in enumerate(insts):
            if isinstance(inst, (Load, Store)) and not self._is_slot_access(inst):
                sites.append(i)
            elif isinstance(inst, CondBr):
                cond_sites.append(i)
        site_set = set(sites)
        divert_at: Dict[int, int] = {}
        run_start = 0
        for i, inst in enumerate(insts):
            if inst.is_terminator:
                break
            if i in site_set:
                divert_at[i] = run_start
            # slot loads are idempotent re-runs (no record, and slot
            # state cannot change inside the run — slot stores break
            # it), so they extend a pure run; everything else ends it
            if not (
                isinstance(inst, _PURE)
                or (isinstance(inst, Load) and self._is_slot_access(inst))
            ):
                run_start = i + 1
        # the step guard diverts past the last op, so CondBr sites keep
        # themselves as the entry point (blocks fusing the condition)
        entries = [divert_at[s] for s in sites] + cond_sites
        fused: set = set()
        skipped: set = set()
        deferred: Dict[int, int] = {}
        depth: Dict[Value, int] = {}
        for i, inst in enumerate(insts):
            if inst.is_terminator:
                break
            if self.n_uses.get(inst, 0) == 0 and (
                isinstance(inst, _PURE)
                or (
                    isinstance(inst, Alloca)
                    and not isinstance(inst.allocated_type, ArrayType)
                )
                or (
                    isinstance(inst, Call)
                    and inst.callee
                    not in ("barrier", "mem_fence", "printf")
                )
            ):
                skipped.add(i)
                continue
            if not isinstance(inst, _FUSABLE):
                continue
            if self.n_uses.get(inst, 0) != 1:
                continue
            ubb, uidx = self.use_at[inst]
            if ubb is not bb or uidx <= i:
                continue
            if any(i < e <= uidx for e in entries):
                continue
            d = 1 + max(
                (depth.get(op, 0) for op in inst.operands), default=0
            )
            if d > _FUSE_DEPTH:
                continue
            if uidx in site_set and inst is insts[uidx].ptr:
                # an address GEP on a raw entry pointer collapses into its
                # access site: the base-id split is hoisted out of the
                # step, so the site computes byte offsets directly
                if isinstance(inst, GEP) and isinstance(
                    inst.base, (Argument, LocalArray)
                ):
                    depth[inst] = d
                    deferred[uidx] = i
                continue
            depth[inst] = d
            fused.add(i)
        entry = (fused, skipped, divert_at, deferred)
        self._fuse_plan[bb] = entry
        return entry

    @staticmethod
    def _is_slot_access(inst) -> bool:
        ptr = inst.ptr
        return isinstance(ptr, Alloca) and not isinstance(
            ptr.allocated_type, ArrayType
        )

    # -- operand references ------------------------------------------------
    def _ref(self, v: Value, pending: Dict[Value, str]) -> str:
        if isinstance(v, Constant):
            return self._const_name(v)
        if isinstance(v, (Argument, LocalArray)):
            return self._entry_name(v)
        expr = pending.pop(v, None)
        if expr is not None:
            return expr
        return self._val_name(v)

    # -- symbolic step counters (loop bodies) ------------------------------
    def _phase_expr(self) -> str:
        lp = self.loop
        if lp is None or lp["dph"] == 0:
            return str(self.phase)
        off = self.phase - lp["phase0"]
        return f"(_ph + {off})" if off else "_ph"

    def _si_expr(self) -> str:
        lp = self.loop
        if lp is None:
            return str(self.si)
        return f"({lp['si0']} + _it * {lp['p']} + {self.si - lp['si0']})"

    def _ic_expr(self) -> str:
        lp = self.loop
        if lp is None or lp["dic"] == 0:
            return str(self.ic)
        return f"({lp['ic0']} + _it * {lp['dic']} + {self.ic - lp['ic0']})"

    def _arena_expr(self) -> str:
        lp = self.loop
        if lp is None or lp["dar"] == 0:
            return str(self.arena)
        return f"({lp['arena0']} + _it * {lp['dar']} + {self.arena - lp['arena0']})"

    def _divert(self, j: int) -> str:
        ph = self._phase_expr()
        return (
            f"return rt.divert({self._si_expr()}, {j}, {ph}, {ph}, "
            f"{self._ic_expr()}, {self._arena_expr()}, locals())"
        )

    def _emit(self, line: str) -> None:
        self.lines.append(self.indent + line)

    # -- expression builders -----------------------------------------------
    def _binop_expr(self, inst: BinOp, pending) -> str:
        a = self._ref(inst.lhs, pending)
        b = self._ref(inst.rhs, pending)
        return _BINOP_FMT[inst.opcode].format(a=a, b=b)

    def _cmp_expr(self, inst, pending) -> str:
        a = self._ref(inst.operands[0], pending)
        b = self._ref(inst.operands[1], pending)
        op = _CMP_OPS[inst.pred]
        if inst.pred in _UNSIGNED_PREDS:
            return f"(_uvw({a}) {op} _uvw({b}))"
        return f"({a} {op} {b})"

    def _cast_expr(self, inst: Cast, pending) -> str:
        v = self._ref(inst.value, pending)
        kind = inst.kind
        ty = inst.type
        from repro.ir.types import PointerType

        if kind == CastKind.BITCAST:
            if isinstance(ty, PointerType):
                return v
            return f"_bc({v}, {self._dtype_name(_np_type(ty))})"
        if kind in (CastKind.TRUNC, CastKind.SEXT, CastKind.ZEXT):
            dt = self._dtype_name(_np_type(ty))
            src_ty = inst.value.type
            if (
                kind == CastKind.ZEXT
                and isinstance(src_ty, IntType)
                and src_ty.signed
            ):
                return f"_uvw({v}).astype({dt})"
            return f"{v}.astype({dt})"
        if kind in (
            CastKind.SITOFP, CastKind.UITOFP, CastKind.FPEXT, CastKind.FPTRUNC
        ):
            return f"{v}.astype({self._dtype_name(_np_type(ty))})"
        if kind in (CastKind.FPTOSI, CastKind.FPTOUI):
            return f"_np.trunc({v}).astype({self._dtype_name(_np_type(ty))})"
        if kind == CastKind.BOOL_TO_INT:
            return f"{v}.astype({self._dtype_name(_np_type(ty))})"
        if kind == CastKind.INT_TO_BOOL:
            return f"({v} != 0)"
        raise RuntimeLaunchError(f"unknown cast {kind}")  # pragma: no cover

    def _gep_expr(self, inst: GEP, pending) -> str:
        # operands must be referenced in instruction order (pending pops)
        base = self._ref(inst.base, pending)
        terms: List[str] = []
        const_sum = 0
        for idx, stride in zip(inst.indices, inst.strides()):
            if isinstance(idx, Constant):
                const_sum += int(idx.value) * stride
                continue
            g = self._ref(idx, pending)
            term = f"{g}.astype(_np.int64, copy=False)"
            if stride != 1:
                term += f" * {stride}"
            terms.append(term)
        expr = f"{base}.astype(_np.int64, copy=False)"
        if const_sum:
            terms.append(str(const_sum))
        if not terms:
            return expr
        # sum the index terms before adding the base: with a batched
        # (G, N) base and group-invariant (N,) indices this keeps every
        # intermediate at (N,) and pays a single full-width add
        if len(terms) == 1:
            return f"({expr} + {terms[0]})"
        return f"({expr} + ({' + '.join(terms)}))"

    _PEEL_TAIL = re.compile(r"\((.+) ([+-]) (_c\d+)\)\Z")
    _PEEL_HEAD = re.compile(r"\((_c\d+) \+ (.+)\)\Z")

    def _peel_const_adds(self, expr: str) -> Tuple[str, int]:
        """Strip top-level ``+/- <int64 const>`` addends off an emitted
        expression, returning the varying core and the peeled sum.

        Only 64-bit integer constants are peeled: with a 64-bit addend
        the whole add already runs in int64, so reassociating it past
        the stride multiply is exact (no narrower wraparound to lose).
        """
        total = 0
        while True:
            m = self._PEEL_TAIL.fullmatch(expr)
            if m is not None:
                inner, sign, cn = m.group(1), m.group(2), m.group(3)
            else:
                m = self._PEEL_HEAD.fullmatch(expr)
                if m is None:
                    return expr, total
                inner, sign, cn = m.group(2), "+", m.group(1)
            if inner.count("(") != inner.count(")"):
                return expr, total
            c = self._const_vals.get(cn)
            if (
                c is None
                or not isinstance(c.type, IntType)
                or c.type.bits != 64
            ):
                return expr, total
            total += int(c.value) if sign == "+" else -int(c.value)
            expr = inner

    def _cse_term(self, term: str) -> str:
        """Intern an address term for the current step: repeated sites
        (stencil taps off one linear index) then share one computed
        array instead of redoing the int64 arithmetic per access."""
        name = self._step_cse.get(term)
        if name is None:
            name = self._tmp("g")
            self._step_cse[term] = name
            self._emit(f"{name} = {term}")
        return name

    def _elem_shift(self, inst: GEP, elem: int) -> int:
        """log2 of the element size if this access's offsets can be
        computed directly in the element-index domain — every stride and
        constant byte contribution a multiple of the element size — else
        0 (keep the byte-offset path).  Element indexing drops both the
        per-term stride multiply and the final byte->element shift from
        the replay; the byte offsets the trace records need are
        recovered exactly as ``index << shift`` (the base's alignment is
        guarded at the site)."""
        if elem <= 1 or elem & (elem - 1):
            return 0
        for idx, stride in zip(inst.indices, inst.strides()):
            if isinstance(idx, Constant):
                if (int(idx.value) * stride) % elem:
                    return 0
            elif stride % elem:
                return 0
        return elem.bit_length() - 1

    def _gep_offset_expr(
        self,
        inst: GEP,
        boff: str,
        pending,
        mname: Optional[str] = None,
        elem: int = 1,
    ) -> str:
        """Like :meth:`_gep_expr`, but against the hoisted byte offset of
        the entry base — yields in-buffer byte offsets, not addresses.
        With ``mname`` the index operands are sliced to the live lanes
        first, so a halo step pays for its handful of lanes only.  With
        ``elem > 1`` (checked by :meth:`_elem_shift`) strides are divided
        through, yielding element indices instead of byte offsets.

        Full-width sites additionally peel constant int64 addends out of
        each index expression and intern the remaining varying term per
        step: the constants collapse into the ``(G, 1)`` base (one tiny
        add instead of a batch-wide one) and sites sharing a linear
        index reuse one computed term array."""
        terms: List[str] = []
        const_sum = 0
        for idx, stride in zip(inst.indices, inst.strides()):
            if isinstance(idx, Constant):
                const_sum += int(idx.value) * stride // elem
                continue
            g = self._ref(idx, pending)
            if mname is not None:
                g = f"{g}[..., {mname}]"
                term = f"{g}.astype(_np.int64, copy=False)"
                if stride != 1:
                    term += f" * {stride}"
            else:
                g, peeled = self._peel_const_adds(g)
                stride //= elem
                const_sum += peeled * stride
                term = f"{g}.astype(_np.int64, copy=False)"
                if stride != 1:
                    term += f" * {stride}"
                term = self._cse_term(term)
            terms.append(term)
        if not terms:
            return f"({boff} + {const_sum})" if const_sum else boff
        if const_sum:
            boff = f"({boff} + {const_sum})"
        if len(terms) == 1:
            return f"({boff} + {terms[0]})"
        return f"({boff} + ({' + '.join(terms)}))"

    def _select_expr(self, inst: Select, pending) -> str:
        c = self._ref(inst.operands[0], pending)
        tv = self._ref(inst.operands[1], pending)
        fv = self._ref(inst.operands[2], pending)
        if isinstance(inst.type, VectorType):
            return f"_np.where({c}[..., None], {tv}, {fv})"
        return f"_np.where({c}, {tv}, {fv})"

    def _pure_expr(self, inst, pending) -> str:
        if isinstance(inst, BinOp):
            return self._binop_expr(inst, pending)
        if isinstance(inst, (ICmp, FCmp)):
            return self._cmp_expr(inst, pending)
        if isinstance(inst, Cast):
            return self._cast_expr(inst, pending)
        if isinstance(inst, GEP):
            return self._gep_expr(inst, pending)
        if isinstance(inst, Select):
            return self._select_expr(inst, pending)
        raise RuntimeLaunchError(  # pragma: no cover
            f"no expression form for {type(inst).__name__}"
        )

    # -- statement emitters ------------------------------------------------
    @staticmethod
    def _idx_expr(o: str, itemsize: int) -> str:
        # byte offset -> element index; offsets are non-negative, so a
        # right shift matches floor division for power-of-two sizes and
        # is a much cheaper numpy loop than floor_divide
        if itemsize & (itemsize - 1) == 0:
            k = itemsize.bit_length() - 1
            return o if k == 0 else f"({o} >> {k})"
        return f"({o} // {itemsize})"

    def _emit_load(
        self, inst: Load, mask, full, j0, j: int, pending, dv: int,
        pgep: Optional[GEP] = None,
    ) -> None:
        if self._is_slot_access(inst):
            last = self._last_slot_store.get(inst.ptr)
            if self.loop is None and (last is None or last < (self.si, j)):
                # no later store to this slot anywhere in the schedule
                # (and we are outside any emitted loop body, where the
                # flat-position comparison would be meaningless): alias
                # the slot instead of copying it
                self._emit(
                    f"{self._val_name(inst)} = {self._slot_name(inst.ptr)}"
                )
            else:
                self._emit(
                    f"{self._val_name(inst)} = "
                    f"{self._slot_name(inst.ptr)}.copy()"
                )
            return
        ty = inst.type
        space = inst.addrspace
        record = self.collect_trace and space != AddressSpace.PRIVATE
        mname = None if full else self._mask_name(mask)
        # one buffer id per access: subtracting the base leaves pure byte
        # offsets iff every lane shares that id.  For loads only the
        # negative side needs an explicit scan — a lane in a higher
        # buffer (or past this one) lands at an element index >= the view
        # length, so the gather's own bounds check raises and we divert; a
        # store must still divert up front, because a partial fancy-index
        # assignment mutates memory before numpy notices the stray index.
        shift_k = 0
        if pgep is not None:
            # deferred address GEP: the entry's id/offset split is
            # hoisted, so the site adds byte offsets directly
            bname, boff = self._entry_base(pgep.base)
            if full and not isinstance(ty, VectorType):
                shift_k = self._elem_shift(pgep, _np_type(ty).itemsize)
            if full and shift_k:
                # element-index domain: guard the base's alignment (a
                # misaligned base is byte-exact only on the tape path),
                # then derive element indices directly — no stride
                # multiply, no byte->element shift.  The trace record
                # carries ``(indices, shift)`` and the byte offsets are
                # rebuilt bit-exactly when events materialise.
                self._emit(f"if ({boff} & {(1 << shift_k) - 1}).any():")
                self._emit(f"    {self._divert(dv)}")
                eb = self._cse_term(f"({boff} >> {shift_k})")
                a = self._tmp("a")
                self._emit(
                    f"{a} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, eb, pending, elem=1 << shift_k)}"
                    f", (G, N))"
                )
                om = a
            elif full:
                a = self._tmp("a")
                self._emit(
                    f"{a} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, boff, pending)}, (G, N))"
                )
                om = a
            elif not isinstance(ty, VectorType):
                # masked gather: run the address arithmetic over the
                # live lanes only
                nm = int(np.count_nonzero(mask))
                om = self._tmp("om")
                self._emit(
                    f"{om} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, boff, pending, mname)}"
                    f", (G, {nm}))"
                )
                a = om
            else:
                a = self._tmp("a")
                self._emit(
                    f"{a} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, boff, pending)}, (G, N))"
                )
                om = self._tmp("om")
                self._emit(f"{om} = {a}[:, {mname}]")
        else:
            ptr = self._ref(inst.ptr, pending)
            a = self._tmp("a")
            self._emit(f"{a} = _np.broadcast_to({ptr}, (G, N))")
            bname = self._tmp("b")
            if full:
                self._emit(f"{bname} = int({a}.flat[0]) >> {OFFSET_BITS}")
                om = self._tmp("o")
                self._emit(f"{om} = {a} - ({bname} << {OFFSET_BITS})")
            else:
                am = self._tmp("am")
                self._emit(f"{am} = {a}[:, {mname}]")
                self._emit(f"{bname} = int({am}.flat[0]) >> {OFFSET_BITS}")
                om = self._tmp("om")
                self._emit(f"{om} = {am} - ({bname} << {OFFSET_BITS})")
        self._emit(f"if {om}.min() < 0:")
        self._emit(f"    {self._divert(dv)}")
        if record:
            self._emit_record(
                inst, space, False, bname, om, mask, ty.size, shift=shift_k
            )
        vname = self._val_name(inst)
        if isinstance(ty, VectorType):
            el = self._dtype_name(ty.element.numpy_dtype)
            kel = ty.element.numpy_dtype.itemsize
            comp = self._comp_name(ty.count)
            o = om
            if not full:
                # safe-fill: lanes off the mask read the first live
                # lane's address (they are dead, but keep full width)
                sf = self._tmp("sf")
                self._emit(
                    f"{sf} = _np.where({mname}, {a}, {a}[:, {j0}:{j0 + 1}])"
                )
                if pgep is not None:
                    o = sf  # already byte offsets
                else:
                    o = self._tmp("o2")
                    self._emit(f"{o} = {sf} - ({bname} << {OFFSET_BITS})")
            bi = self._tmp("bi")
            self._emit(
                f"{bi} = {self._idx_expr(o, kel)}[..., None] + {comp}"
            )
            self._emit("try:")
            self._emit(f"    {vname} = _mem[{bname}].view({el}).take({bi})")
            self._emit("except IndexError:")
            if record:
                self._emit("    del _rec[-1]")
            self._emit(f"    {self._divert(dv)}")
        else:
            dt = _np_type(ty)
            dn = self._dtype_name(dt)
            # ndarray.take over the flat element view: same values and
            # the same IndexError contract as a fancy index, measurably
            # faster (no advanced-indexing setup per gather)
            self._emit("try:")
            if full:
                idx = om if shift_k else self._idx_expr(om, dt.itemsize)
                self._emit(
                    f"    {vname} = _mem[{bname}].view({dn}).take({idx})"
                )
            else:
                # gather the masked lanes only, then widen by filling
                # with the first lane's value — exactly the safe-fill
                # result (lane j0 is the first set bit, position 0)
                vm = self._tmp("vm")
                self._emit(
                    f"    {vm} = _mem[{bname}].view({dn})"
                    f".take({self._idx_expr(om, dt.itemsize)})"
                )
            self._emit("except IndexError:")
            if record:
                self._emit("    del _rec[-1]")
            self._emit(f"    {self._divert(dv)}")
            if not full:
                self._emit(f"{vname} = {vm}[:, {self._widen_name(mask)}]")

    def _emit_store(
        self, inst: Store, mask, full, j: int, pending, dv: int,
        pgep: Optional[GEP] = None,
    ) -> None:
        val = self._ref(inst.value, pending)
        mname = None if full else self._mask_name(mask)
        if self._is_slot_access(inst):
            # full-mask slot writes skip the boolean fancy index: a
            # broadcast setitem assigns (and casts) the same values
            s = self._slot_name(inst.ptr)
            vec_slot = isinstance(inst.ptr.allocated_type, VectorType)
            val_is_vec = isinstance(inst.value.type, VectorType)
            if full:
                if (
                    self.loop is None
                    and self._last_slot_store.get(inst.ptr) == (self.si, j)
                    and not vec_slot
                    and not val_is_vec
                ):
                    # final full-width write to this slot: rebind to a
                    # (possibly broadcast) view instead of copying into
                    # the backing array — nothing ever writes it again,
                    # and later reads alias the same values
                    self._emit(
                        f"{s} = _np.broadcast_to(_np.asarray({val})"
                        f".astype({s}.dtype, copy=False), {s}.shape)"
                    )
                elif vec_slot and not val_is_vec:
                    self._emit(f"{s}[...] = {val}[..., None]")
                else:
                    self._emit(f"{s}[...] = {val}")
                return
            v = self._tmp("v")
            if vec_slot:
                if val_is_vec:
                    self._emit(f"{v} = _np.broadcast_to({val}, {s}.shape)")
                    self._emit(f"{s}[:, {mname}, :] = {v}[:, {mname}, :]")
                else:
                    self._emit(f"{v} = _np.broadcast_to({val}, {s}.shape[:2])")
                    self._emit(f"{s}[:, {mname}, :] = {v}[:, {mname}, None]")
            else:
                self._emit(f"{v} = _np.broadcast_to({val}, {s}.shape)")
                self._emit(
                    f"{s}[:, {mname}] = "
                    f"{v}[:, {mname}].astype({s}.dtype, copy=False)"
                )
            return
        ty = inst.value.type
        space = inst.addrspace
        record = self.collect_trace and space != AddressSpace.PRIVATE
        shift_k = 0
        if pgep is not None:
            bname, boff = self._entry_base(pgep.base)
            o = self._tmp("o")
            if full and not isinstance(ty, VectorType):
                sdt = _np_type(ty)
                if sdt == np.dtype(bool):
                    sdt = np.dtype(np.uint8)
                shift_k = self._elem_shift(pgep, sdt.itemsize)
            if full and shift_k:
                # element-index domain (see the load path): aligned-base
                # guard, then element indices straight from the raw terms
                self._emit(f"if ({boff} & {(1 << shift_k) - 1}).any():")
                self._emit(f"    {self._divert(dv)}")
                eb = self._cse_term(f"({boff} >> {shift_k})")
                self._emit(
                    f"{o} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, eb, pending, elem=1 << shift_k)}"
                    f", (G, N))"
                )
            elif full:
                self._emit(
                    f"{o} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, boff, pending)}, (G, N))"
                )
            else:
                nm = int(np.count_nonzero(mask))
                self._emit(
                    f"{o} = _np.broadcast_to("
                    f"{self._gep_offset_expr(pgep, boff, pending, mname)}"
                    f", (G, {nm}))"
                )
        else:
            ptr = self._ref(inst.ptr, pending)
            a = self._tmp("a")
            bname = self._tmp("b")
            self._emit(f"{a} = _np.broadcast_to({ptr}, (G, N))")
            if full:
                am = a
            else:
                am = self._tmp("am")
                self._emit(f"{am} = {a}[:, {mname}]")
            self._emit(f"{bname} = int({am}.flat[0]) >> {OFFSET_BITS}")
            o = self._tmp("o")
            self._emit(f"{o} = {am} - ({bname} << {OFFSET_BITS})")
        # two scalar reductions instead of a batch-wide shift + any():
        # min() catches negative offsets, max() anything past the
        # offset field — together exactly the lanes the shift would flag
        # (in the element domain the field is narrower by the shift)
        self._emit(
            f"if {o}.min() < 0"
            f" or (int({o}.max()) >> {OFFSET_BITS - shift_k}) != 0:"
        )
        self._emit(f"    {self._divert(dv)}")
        if record:
            self._emit_record(
                inst, space, True, bname, o, mask, ty.size, shift=shift_k
            )
        if isinstance(ty, VectorType):
            el = self._dtype_name(ty.element.numpy_dtype)
            kel = ty.element.numpy_dtype.itemsize
            comp = self._comp_name(ty.count)
            bi = self._tmp("bi")
            self._emit(
                f"{bi} = {self._idx_expr(o, kel)}[..., None] + {comp}"
            )
            if full:
                self._emit(f"_mem[{bname}].view({el})[{bi}] = {val}")
            else:
                v = self._tmp("v")
                self._emit(
                    f"{v} = _np.broadcast_to({val}, (G, N, {ty.count}))"
                )
                self._emit(
                    f"_mem[{bname}].view({el})[{bi}] = {v}[:, {mname}]"
                )
        else:
            dt = _np_type(ty)
            if dt == np.dtype(bool):
                dt = np.dtype(np.uint8)
            dn = self._dtype_name(dt)
            if full:
                # the setitem broadcasts the (possibly group-uniform)
                # value against the (G, N) index array and casts — the
                # very values the masked assignment would write
                idx = o if shift_k else self._idx_expr(o, dt.itemsize)
                self._emit(
                    f"_mem[{bname}].view({dn})[{idx}]"
                    f" = {val}.astype({dn}, copy=False)"
                )
                return
            v = self._tmp("v")
            if dt == np.dtype(np.uint8) and isinstance(
                inst.value.type, BoolType
            ):
                self._emit(f"{v} = {val}.astype(_np.uint8)")
                self._emit(f"{v} = _np.broadcast_to({v}, (G, N))")
            else:
                self._emit(f"{v} = _np.broadcast_to({val}, (G, N))")
            self._emit(
                f"_mem[{bname}].view({dn})[{self._idx_expr(o, dt.itemsize)}]"
                f" = {v}[:, {mname}].astype({dn}, copy=False)"
            )

    def _emit_record(
        self,
        inst,
        space,
        is_store: bool,
        bname: str,
        offs: str,
        mask,
        elem: int,
        shift: int = 0,
    ) -> None:
        lanes = self._lanes_name(mask)
        # element-domain sites defer the byte conversion out of the
        # replay: the record carries ``(indices, shift)`` and
        # ``split_records`` rebuilds ``indices << shift`` lazily
        off_f = f"({offs}, {shift})" if shift else offs
        self._emit(
            f"_rec.append((_AS.{space.name}, {is_store}) + rt.map_sid({bname})"
            f" + ({off_f}, {lanes}, {elem}, {self._phase_expr()}, "
            f"{self._inst_id_ref(inst)}, _live))"
        )

    def _emit_alloca(self, inst: Alloca) -> None:
        ty = inst.allocated_type
        if isinstance(ty, ArrayType):
            nbytes = ty.size * self.n
            lo = self._laneoff_name(ty.size)
            self._emit(
                f"{self._val_name(inst)} = "
                f"(rt.private_slab({self._arena_expr()}, {nbytes}).base_addr"
                f" + _live * {nbytes})[:, None] + {lo}"
            )
            self.arena += 1
            return
        s = self._slot_name(inst)
        if isinstance(ty, VectorType):
            el = self._dtype_name(ty.element.numpy_dtype)
            self._emit(f"{s} = _np.zeros((G, N, {ty.count}), dtype={el})")
        else:
            dn = self._dtype_name(_np_type(ty))
            self._emit(f"{s} = _np.zeros((G, N), dtype={dn})")

    def _emit_call(self, inst: Call, pending) -> None:
        if inst.callee == "barrier":
            self.phase += 1
            return
        if inst.callee in ("mem_fence", "printf"):
            return
        args = ", ".join(self._ref(a, pending) for a in inst.args)
        self._emit(
            f"{self._val_name(inst)} = "
            f"_eval({self._call_ref(inst)}, [{args}], rt.bctx)"
        )

    def _emit_extract(self, inst: ExtractElement, pending) -> None:
        vname = self._val_name(inst)
        vec = self._ref(inst.vec, pending)
        if isinstance(inst.index, Constant):
            self._emit(f"{vname} = {vec}[..., {int(inst.index.value)}]")
            return
        iv = self._ref(inst.index, pending)
        xv, xi = self._tmp("xv"), self._tmp("xi")
        self._emit(f"{xv}, {xi} = {vec}, {iv}")
        self._emit(f"if {xi}.ndim + 1 > {xv}.ndim:")
        self._emit(
            f"    {xv} = _np.broadcast_to({xv}, {xi}.shape + ({xv}.shape[-1],))"
        )
        self._emit(f"elif {xi}.ndim + 1 < {xv}.ndim:")
        self._emit(f"    {xi} = _np.broadcast_to({xi}, {xv}.shape[:-1])")
        self._emit(
            f"{vname} = _np.take_along_axis({xv}, {xi}[..., None], axis=-1)"
            f"[..., 0]"
        )

    def _emit_insert(self, inst: InsertElement, pending) -> None:
        vname = self._val_name(inst)
        vec = self._ref(inst.vec, pending)
        val = self._ref(inst.value, pending)
        xv, xw = self._tmp("xv"), self._tmp("xw")
        self._emit(f"{xv}, {xw} = {vec}, {val}")
        self._emit(f"if {xw}.ndim + 1 > {xv}.ndim:")
        self._emit(
            f"    {xv} = _np.broadcast_to({xv}, {xw}.shape + ({xv}.shape[-1],))"
        )
        self._emit(f"{xv} = {xv}.copy()")
        if isinstance(inst.index, Constant):
            self._emit(f"{xv}[..., {int(inst.index.value)}] = {xw}")
        else:
            iv = self._ref(inst.index, pending)
            xj = self._tmp("xj")
            self._emit(f"{xj} = _np.broadcast_to({iv}, {xv}.shape[:-1])")
            self._emit(
                f"_np.put_along_axis({xv}, {xj}[..., None], "
                f"_np.broadcast_to({xw}, {xv}.shape[:-1])[..., None], axis=-1)"
            )
        self._emit(f"{vname} = {xv}")

    # -- step / guard ------------------------------------------------------
    def _emit_step(self, step: _Step) -> None:
        bb = step.bb
        mask = step.mask
        full = bool(mask.all())
        j0 = int(mask.argmax())
        fused, skipped, divert_at, deferred = self._plan_block(bb)
        dgeps = set(deferred.values())
        insts = bb.instructions
        pending: Dict[Value, str] = {}
        self._step_cse.clear()
        self.ic += step.weight
        self._emit(f"# s{self.si}: {bb.name}")
        for j, inst in enumerate(insts):
            if inst.is_terminator:
                break
            if j in skipped or j in dgeps:
                continue
            if j in fused:
                pending[inst] = self._pure_expr(inst, pending)
                continue
            if isinstance(inst, Load):
                dg = deferred.get(j)
                self._emit_load(
                    inst, mask, full, j0, j, pending, divert_at.get(j, j),
                    None if dg is None else insts[dg],
                )
            elif isinstance(inst, Store):
                dg = deferred.get(j)
                self._emit_store(
                    inst, mask, full, j, pending, divert_at.get(j, j),
                    None if dg is None else insts[dg],
                )
            elif isinstance(inst, Alloca):
                self._emit_alloca(inst)
            elif isinstance(inst, Call):
                self._emit_call(inst, pending)
            elif isinstance(inst, ExtractElement):
                self._emit_extract(inst, pending)
            elif isinstance(inst, InsertElement):
                self._emit_insert(inst, pending)
            elif isinstance(inst, _FUSABLE):
                self._emit(
                    f"{self._val_name(inst)} = {self._pure_expr(inst, pending)}"
                )
            else:  # pragma: no cover - same coverage as the tape tier
                raise RuntimeLaunchError(
                    f"codegen backend cannot emit {type(inst).__name__}"
                )
        self._emit_guard(step)
        self.si += 1

    def _emit_guard(self, step: _Step) -> None:
        term = step.bb.instructions[-1]
        if not isinstance(term, CondBr) or isinstance(term.cond, Constant):
            return
        cond = self._ref(term.cond, {})
        if step.mask.all():
            ename = self._expected_name(step.cond)
            self._emit(f"if ({cond} != {ename}).any():")
        else:
            mname = self._mask_name(step.mask)
            ename = self._expected_name(step.cond[step.mask])
            self._emit(f"if ({cond}[..., {mname}] != {ename}).any():")
        self._emit(f"    {self._divert(-1)}")

    # -- loop detection ----------------------------------------------------
    def _step_keys(self) -> List[tuple]:
        keys = []
        for step in self.steps:
            keys.append((
                self.bidx[step.bb],
                step.mask.tobytes(),
                step.cond.tobytes() if step.cond is not None else None,
            ))
        return keys

    def _find_loop(self, keys: List[tuple], i: int) -> Optional[Tuple[int, int]]:
        best = None
        for p in range(1, _MAX_PERIOD + 1):
            if i + 2 * p > len(keys):
                break
            r = 1
            while (
                i + (r + 1) * p <= len(keys)
                and keys[i + r * p: i + (r + 1) * p] == keys[i: i + p]
            ):
                r += 1
            if r >= _MIN_REPEATS and p * r >= 8:
                if best is None or p * r > best[0]:
                    best = (p * r, p, r)
        return (best[1], best[2]) if best else None

    def _period_deltas(self, i: int, p: int) -> Tuple[int, int, int]:
        dph = dic = dar = 0
        for step in self.steps[i: i + p]:
            dic += step.weight
            for inst in step.bb.instructions:
                if isinstance(inst, Call) and inst.callee == "barrier":
                    dph += 1
                elif isinstance(inst, Alloca) and isinstance(
                    inst.allocated_type, ArrayType
                ):
                    dar += 1
        return dph, dic, dar

    # -- assembly ----------------------------------------------------------
    def generate(self) -> str:
        keys = self._step_keys()
        i = 0
        while i < len(self.steps):
            found = self._find_loop(keys, i)
            if found is None:
                self._emit_step(self.steps[i])
                i += 1
                continue
            p, r = found
            dph, dic, dar = self._period_deltas(i, p)
            self.loop = {
                "p": p, "dph": dph, "dic": dic, "dar": dar,
                "si0": self.si, "phase0": self.phase,
                "ic0": self.ic, "arena0": self.arena,
            }
            self._emit(f"# loop: steps {i}..{i + p * r - 1}, {r} x {p}")
            self._emit(f"for _it in range({r}):")
            self.indent += "    "
            if dph:
                self._emit(f"_ph = {self.phase} + _it * {dph}")
            for step in self.steps[i: i + p]:
                self._emit_step(step)
            self.indent = self.indent[:-4]
            lp = self.loop
            self.loop = None
            self.si = lp["si0"] + p * r
            self.phase = lp["phase0"] + dph * r
            self.ic = lp["ic0"] + dic * r
            self.arena = lp["arena0"] + dar * r
            i += p * r

        plan = {
            "entries": [
                (
                    "arg" if isinstance(v, Argument) else "local",
                    v.index if isinstance(v, Argument) else self.lidx[v],
                    name,
                )
                for v, name in self.entries.items()
            ],
            "values": self.plan_values,
            "slots": self.plan_slots,
            "calls": [self.ipos[c] for c in self._calls],
            "insts": [self.ipos[v] for v in self._insts],
        }

        out: List[str] = [
            f"# generated by repro.runtime.codegen v{CODEGEN_VERSION}"
            " -- do not edit",
            f"# kernel: {self.fn.name}  key: {self.key}",
            "import numpy as _np",
            "from repro.ir.types import AddressSpace as _AS",
            "from repro.runtime.builtins import eval_builtin as _eval",
            "",
            f"N = {self.n}",
            "_lanes = _np.arange(N, dtype=_np.int64)",
            "",
            _HELPERS,
        ]
        out.extend(self.const_lines)
        out.append("")
        out.append(f"__PLAN__ = {plan!r}")
        out.append("")
        out.append("def _replay(rt):")
        out.append("    _mem = rt.memory.buffers")
        out.append("    _rec = rt.records")
        out.append("    _live = rt.live")
        out.append("    G = len(_live)")
        if self._insts:
            out.append("    _ii = rt.inst_ids")
        names = list(self.entries.values())
        if names:
            out.append(f"    {', '.join(names)}{',' if len(names) == 1 else ''}"
                       " = rt.entry_values()")
        out.extend(self.entry_base_lines)
        out.append('    with _np.errstate(all="ignore"):')
        if self.lines:
            out.extend(self.lines)
        else:
            out.append("        pass")
        out.append("    return None")
        out.append("")
        return "\n".join(out)


def generate_source(
    fn: Function,
    steps: List[_Step],
    n: int,
    collect_trace: bool,
    key: str,
) -> str:
    """Emit the replay module's source for one pilot schedule."""
    return _SourceGen(fn, steps, n, collect_trace, key).generate()


# ---------------------------------------------------------------------------
# module cache (in-process + on-disk artifacts)
# ---------------------------------------------------------------------------

_MODULE_CACHE: Dict[str, Tuple[object, dict, int]] = {}
_MODULE_CACHE_MAX = 128


def clear_codegen_cache() -> None:
    """Drop every in-process compiled module and cached pilot schedule
    (tests; the disk tier is untouched)."""
    _MODULE_CACHE.clear()
    _PILOT_CACHE.clear()


def _seal(source: str) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()
    return f"# repro-codegen sha256:{digest}\n{source}"


def _unseal(sealed: str) -> Optional[str]:
    """Return the validated body, or None when the artifact is corrupt."""
    nl = sealed.find("\n")
    if nl < 0 or not sealed.startswith("# repro-codegen sha256:"):
        return None
    digest = sealed[len("# repro-codegen sha256:"): nl].strip()
    body = sealed[nl + 1:]
    if hashlib.sha256(body.encode()).hexdigest() != digest:
        return None
    return body


def _load_module(source: str, key: str):
    code = compile(source, f"<codegen:{key}>", "exec")
    ns: dict = {}
    exec(code, ns)
    return ns["_replay"], ns["__PLAN__"]


def _artifact_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"cg_{key}.py")


def _obtain_module(
    key: str,
    fn: Function,
    steps: List[_Step],
    n: int,
    collect_trace: bool,
    cache_dir: Optional[str],
) -> Tuple[object, dict, str, int]:
    """Returns ``(replay_fn, plan, tier, source_bytes)`` with ``tier`` one
    of ``"memory"``, ``"disk"`` or ``"compile"``."""
    hit = _MODULE_CACHE.get(key)
    if hit is not None:
        return hit[0], hit[1], "memory", hit[2]

    if cache_dir:
        path = _artifact_path(cache_dir, key)
        try:
            with open(path, encoding="utf-8") as fh:
                body = _unseal(fh.read())
            if body is not None:
                replay, plan = _load_module(body, key)
                _remember(key, replay, plan, len(body))
                return replay, plan, "disk", len(body)
        except Exception:
            # unreadable, corrupt or unloadable artifact: fall through
            # to a fresh compile (which rewrites it)
            pass

    source = generate_source(fn, steps, n, collect_trace, key)
    replay, plan = _load_module(source, key)
    _remember(key, replay, plan, len(source))
    if cache_dir:
        try:
            _publish_artifact(cache_dir, key, source)
        except OSError:
            pass  # the disk tier is best-effort
    return replay, plan, "compile", len(source)


def _publish_artifact(cache_dir: str, key: str, source: str) -> None:
    """Atomically write the sealed artifact: temp file in the cache dir,
    then ``os.replace`` onto the final path.  Whatever fails — the seal,
    the write, the rename — the descriptor is closed and the temp file
    unlinked, so an interrupted publish never leaks an fd or leaves a
    stray ``.cg_*`` file for later runs to trip over."""
    os.makedirs(cache_dir, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".cg_", suffix=".py", dir=cache_dir)
    try:
        try:
            fh = os.fdopen(fd, "w", encoding="utf-8")
        except Exception:
            os.close(fd)
            raise
        with fh:
            fh.write(_seal(source))
        os.replace(tmp, _artifact_path(cache_dir, key))
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass  # replaced: the publish succeeded


def _remember(key: str, replay, plan: dict, size: int) -> None:
    if len(_MODULE_CACHE) >= _MODULE_CACHE_MAX:
        _MODULE_CACHE.pop(next(iter(_MODULE_CACHE)))
    _MODULE_CACHE[key] = (replay, plan, size)


# ---------------------------------------------------------------------------
# pilot schedule cache
# ---------------------------------------------------------------------------


class _PilotTraceFacts:
    __slots__ = ("inst_count", "barriers")

    def __init__(self, inst_count: int, barriers: int) -> None:
        self.inst_count = inst_count
        self.barriers = barriers


class _PilotSchedule:
    """Everything :class:`TapeExecutor` reads off a recording pilot.

    Holds a strong reference to the pilot's :class:`Function` — the
    steps embed that object's IR nodes, so a cache hit is only valid
    when the launch uses the *same* function object (the frontend's
    compile cache makes repeated launches share one).
    """

    __slots__ = (
        "fn", "steps", "n", "trace", "_arena_next", "steps_annotated",
        "module_keys",
    )

    def __init__(self, fn: Function, pilot: _RecordingExecutor) -> None:
        self.fn = fn
        self.steps = pilot.steps
        self.n = pilot.n
        self.trace = (
            _PilotTraceFacts(pilot.trace.inst_count, pilot.trace.barriers)
            if pilot.trace is not None
            else None
        )
        self._arena_next = pilot._arena_next
        # the first executor built from the recording already annotated
        # the steps, and the module key is a pure function of the
        # schedule — both are cached so replays skip the rescan
        self.steps_annotated = True
        self.module_keys: Dict[int, str] = {}


_PILOT_CACHE: Dict[tuple, _PilotSchedule] = {}
_PILOT_CACHE_MAX = 64


def _pilot_cache_key(
    fn: Function,
    lsize: Tuple[int, ...],
    gsize: Tuple[int, ...],
    gid0: Tuple[int, ...],
    collect_trace: bool,
) -> tuple:
    return (function_fingerprint(fn), lsize, gsize, gid0, collect_trace)


def _remember_pilot(key: tuple, sched: _PilotSchedule) -> None:
    if len(_PILOT_CACHE) >= _PILOT_CACHE_MAX:
        _PILOT_CACHE.pop(next(iter(_PILOT_CACHE)))
    _PILOT_CACHE[key] = sched


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class CodegenExecutor(TapeExecutor):
    """Replays batches through the generated module; the tape closures
    are compiled lazily, only when a batch diverts."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs["compile_closures"] = False
        super().__init__(*args, **kwargs)
        self.store: Optional[TraceSpillStore] = None
        self._replay_fn = None
        self._entry_vals: List[Value] = []
        self._env_names: List[Tuple[str, Value]] = []
        self._slot_names: List[Tuple[str, Alloca]] = []
        self.calls: List[Call] = []
        self.inst_ids: Tuple[int, ...] = ()
        self.diverted_batches = 0
        self._diverted = False

    def bind(self, replay_fn, plan: dict) -> None:
        """Resolve the module's positional ``__PLAN__`` against the live
        function (instruction ids differ between processes)."""
        blocks = self.fn.blocks

        def inst_at(b: int, i: int):
            return blocks[b].instructions[i]

        self._replay_fn = replay_fn
        self._entry_vals = [
            self.fn.args[idx] if kind == "arg" else self.fn.local_arrays[idx]
            for kind, idx, _name in plan["entries"]
        ]
        self._env_names = [
            (name, inst_at(b, i)) for name, (b, i) in plan["values"].items()
        ]
        self._slot_names = [
            (name, inst_at(b, i)) for name, (b, i) in plan["slots"].items()
        ]
        self.calls = [inst_at(b, i) for b, i in plan["calls"]]
        self.inst_ids = tuple(inst_at(b, i).id for b, i in plan["insts"])

    # -- hooks called by generated code ------------------------------------
    def entry_values(self) -> List[np.ndarray]:
        env = self.env
        return [env[v] for v in self._entry_vals]

    def map_sid(self, buffer_id: int) -> Tuple[int, int]:
        return self.scratch_map.get(buffer_id, (buffer_id, 0))

    def private_slab(self, k: int, nbytes_per_group: int) -> Buffer:
        return self._private_slab(k, nbytes_per_group)

    def divert(
        self,
        si: int,
        j: int,
        phase: int,
        barriers: int,
        inst_count: int,
        arena_next: int,
        snapshot: Dict[str, object],
    ) -> None:
        """Hand the batch to the tape closures mid-step.

        ``snapshot`` is the generated function's ``locals()``; the plan
        name maps rebuild the tape's ``env``/``slots`` from it, then the
        closures finish the batch starting at step ``si``, op ``j`` (or
        just the guard when ``j`` is -1) — evicting whichever groups
        actually diverge, exactly as a pure tape run would.
        """
        self._diverted = True
        self._compile_closures()
        self.phase = phase
        self.barriers = barriers
        self.inst_count = inst_count
        self.arena_next = arena_next
        env = self.env
        for name, v in self._env_names:
            arr = snapshot.get(name)
            if arr is not None:
                env[v] = arr
        for name, a in self._slot_names:
            arr = snapshot.get(name)
            if arr is not None:
                self.slots[a] = arr
        step = self.steps[si]
        op_start = step.op_pos[j] if j >= 0 else len(step.ops)
        self._run_steps(si, op_start, count_first=False)
        return None

    # -- batched replay ----------------------------------------------------
    def replay_batch(
        self, slot_gids: List[Tuple[int, ...]]
    ) -> Dict[int, Optional[GroupTrace]]:
        self._reset_batch(slot_gids)
        self._diverted = False
        try:
            if len(self.live):
                self._replay_fn(self)
            if self._diverted:
                self.diverted_batches += 1
            if (
                self._diverted
                or self.store is None
                or not self.collect_trace
            ):
                return self._finish_batch()
            # clean batch: hand the raw records to the spill store and
            # defer per-group event splitting to first access
            entries = [
                (int(s), self.slot_gids[int(s)]) for s in self.live
            ]
            self._done.update(self.store.adopt_batch(
                self.records, entries, self.n,
                self.pilot_inst_count, self.pilot_barriers,
            ))
            return self._done
        finally:
            self._cleanup_batch()


def execute_codegen(
    kernel: Function,
    picks: np.ndarray,
    groups_per_dim: Tuple[int, ...],
    gsize: Tuple[int, ...],
    lsize: Tuple[int, ...],
    arg_values: Dict[Argument, object],
    local_buffers: Dict[LocalArray, Buffer],
    local_arg_buffers: Dict[Argument, Buffer],
    memory: Memory,
    private_arena: List[Buffer],
    collect_trace: bool,
    tape_batch: int,
    cache_dir: Optional[str] = None,
    store: Optional[TraceSpillStore] = None,
) -> Tuple[List[GroupTrace], int]:
    """Execute ``picks`` with the codegen backend — the tape pipeline
    with the closure replay swapped for the generated module."""
    ndim = len(gsize)

    def gid_of(flat: int) -> Tuple[int, ...]:
        gid = []
        rem = int(flat)
        for d in range(ndim):
            gid.append(rem % groups_per_dim[d])
            rem //= groups_per_dim[d]
        return tuple(gid)

    gids = [gid_of(p) for p in picks]
    n_lanes = int(np.prod(lsize))

    t0 = time.perf_counter()
    traces: Dict[int, Optional[GroupTrace]] = {}
    work_items = 0

    # a cached pilot schedule skips the recording interpreter entirely;
    # the former pilot group then replays through the module like any
    # other, and the guards evict it if its control flow diverged from
    # the cached schedule — correctness never rests on the cache
    pkey = _pilot_cache_key(kernel, lsize, gsize, gids[0], collect_trace)
    pilot = _PILOT_CACHE.get(pkey)
    if pilot is not None and pilot.fn is not kernel:
        pilot = None
    pilot_cached = pilot is not None

    if not pilot_cached:
        ctx0 = WorkItemContext(gids[0], lsize, gsize)
        pilot_gt = GroupTrace(gids[0], ctx0.n_lanes)
        rec = _RecordingExecutor(
            kernel, ctx0, memory, arg_values, local_buffers,
            local_arg_buffers, pilot_gt, private_arena=private_arena,
        )
        rec.run()
        work_items = ctx0.n_lanes
        if store is not None and collect_trace:
            store.adopt(pilot_gt)
        traces[0] = pilot_gt if collect_trace else None
        pilot = rec

    if len(picks) > 1:
        ex = CodegenExecutor(
            kernel, lsize, gsize, arg_values, local_buffers,
            local_arg_buffers, memory, private_arena, collect_trace, pilot,
        )
        ex.store = store
        if not pilot_cached:
            pilot = _PilotSchedule(kernel, pilot)
            _remember_pilot(pkey, pilot)
        key = pilot.module_keys.get(tape_batch)
        if key is None:
            key = cache_key(
                kernel, ex.steps, ex.n, lsize, gsize, tape_batch,
                collect_trace,
            )
            pilot.module_keys[tape_batch] = key
        replay, plan, tier, src_bytes = _obtain_module(
            key, kernel, ex.steps, ex.n, collect_trace, cache_dir
        )
        ex.bind(replay, plan)
        if tier == "compile":
            events.emit(
                "codegen_compile",
                kernel=kernel.name,
                steps=len(ex.steps),
                source_bytes=src_bytes,
                wall_ms=(time.perf_counter() - t0) * 1e3,
            )
        else:
            events.emit(
                "codegen_cache_hit", kernel=kernel.name, tier=tier, key=key
            )
        if pilot_cached:
            events.emit(
                "codegen_cache_hit", kernel=kernel.name, tier="pilot", key=key
            )
        t1 = time.perf_counter()
        rest = list(range(0 if pilot_cached else 1, len(picks)))
        n_batches = 0
        for lo in range(0, len(rest), tape_batch):
            chunk = rest[lo:lo + tape_batch]
            n_batches += 1
            out = ex.replay_batch([gids[i] for i in chunk])
            if store is not None and collect_trace:
                store.adopt_group_lists(out)
            for slot, gt in out.items():
                traces[chunk[slot]] = gt
            work_items += n_lanes * len(chunk)
        events.emit(
            "codegen_replay",
            kernel=kernel.name,
            groups=len(rest),
            batches=n_batches,
            evicted=ex.evicted,
            wall_ms=(time.perf_counter() - t1) * 1e3,
        )

    for i in range(len(picks)):
        events.emit(
            "group_executed", group_id=list(gids[i]), work_items=n_lanes
        )
    group_traces = (
        [traces[i] for i in range(len(picks))] if collect_trace else []
    )
    return group_traces, work_items
