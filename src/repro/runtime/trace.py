"""Memory traces emitted by the interpreter, consumed by ``repro.perf``.

A trace is organised the way the devices consume it:

* events carry the *per-work-item* byte offsets of one vectorised access
  (that is a warp/wavefront-shaped view — what the GPU coalescing model
  needs);
* each event is stamped with the *barrier phase* it occurred in, so the
  CPU model can re-serialise the access stream the way CPU OpenCL
  runtimes execute a work-group (a loop over work-items *between
  barriers*, per Intel's/Twin Peaks' execution scheme cited in the
  paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.ir.types import AddressSpace


@dataclass
class MemEvent:
    """One vectorised memory access by a work-group."""

    space: AddressSpace
    is_store: bool
    buffer_id: int
    #: byte offsets within the buffer, one per active lane
    offsets: np.ndarray
    #: flat local ids of the active lanes (same length as offsets)
    lanes: np.ndarray
    elem_size: int
    #: barrier phase index within the work-group execution
    phase: int
    inst_id: int

    @property
    def count(self) -> int:
        return len(self.offsets)


@dataclass
class GroupTrace:
    """Everything one work-group did."""

    group_id: Tuple[int, ...]
    work_items: int
    events: List[MemEvent] = field(default_factory=list)
    #: dynamic instruction count summed over work-items
    inst_count: int = 0
    barriers: int = 0
    _fingerprint: Optional[bytes] = field(default=None, repr=False, compare=False)

    def accesses(self, space: Optional[AddressSpace] = None) -> int:
        return sum(e.count for e in self.events if space is None or e.space == space)

    def fingerprint(self) -> bytes:
        """Digest of the group's *relative* access pattern.

        Two groups of a homogeneous kernel touch the same buffers with
        the same per-event shapes, store flags, lane patterns and
        barrier structure — only the base offset into each buffer
        differs.  The fingerprint therefore hashes, per event: the
        buffer's first-appearance slot (not its id), the address
        space, store flag, element size, barrier phase, lane ids, and
        offsets relative to the buffer's minimum offset over the whole
        group — plus the group's work-item/instruction/barrier counts.
        Groups with equal fingerprints produce identical relative
        streams, which the performance models use to reuse simulation
        results (see ``REPRO_PERF_MEMO``).  The digest is cached;
        traces are immutable once the interpreter returns them.
        """
        if self._fingerprint is None:
            base: dict = {}
            for e in self.events:
                if len(e.offsets):
                    lo = int(np.asarray(e.offsets).min())
                    prior = base.get(e.buffer_id)
                    base[e.buffer_id] = lo if prior is None else min(prior, lo)
            slots: dict = {}
            h = hashlib.blake2b(digest_size=16)
            h.update(
                np.array(
                    [self.work_items, self.inst_count, self.barriers], np.int64
                ).tobytes()
            )
            for e in self.events:
                slot = slots.setdefault(e.buffer_id, len(slots))
                h.update(
                    np.array(
                        [slot, int(e.space), int(e.is_store), e.elem_size,
                         e.phase, e.inst_id],
                        np.int64,
                    ).tobytes()
                )
                rel = np.asarray(e.offsets, np.int64) - base.get(e.buffer_id, 0)
                h.update(rel.tobytes())
                h.update(np.asarray(e.lanes, np.int64).tobytes())
            self._fingerprint = h.digest()
        return self._fingerprint

    def serialized(self, spaces: Tuple[AddressSpace, ...]) -> "SerializedStream":
        """Re-serialise events the way a CPU runtime executes the group.

        Between consecutive barriers, work-items run to completion one
        after another; so the per-lane sub-streams of each phase are
        concatenated lane-major.  Returns arrays of (line-addressable)
        byte offsets, buffer ids, sizes and store flags in that order.
        """
        sel = [e for e in self.events if e.space in spaces]
        if not sel:
            empty64 = np.empty(0, np.int64)
            return SerializedStream(
                empty64, empty64.copy(), np.empty(0, np.int32),
                np.empty(0, bool), np.empty(0, np.int8),
            )
        offs = np.concatenate([e.offsets for e in sel])
        lanes = np.concatenate([e.lanes for e in sel])
        bufs = np.concatenate([np.full(e.count, e.buffer_id, np.int64) for e in sel])
        sizes = np.concatenate([np.full(e.count, e.elem_size, np.int32) for e in sel])
        stores = np.concatenate([np.full(e.count, e.is_store, bool) for e in sel])
        spc = np.concatenate(
            [np.full(e.count, int(e.space), np.int8) for e in sel]
        )
        phases = np.concatenate([np.full(e.count, e.phase, np.int64) for e in sel])
        # stable sort by (phase, lane) keeps program order within each
        # lane's phase sub-stream
        order = np.lexsort((lanes, phases))
        return SerializedStream(
            offs[order].astype(np.int64),
            bufs[order],
            sizes[order],
            stores[order],
            spc[order],
        )


@dataclass
class SerializedStream:
    offsets: np.ndarray
    buffer_ids: np.ndarray
    sizes: np.ndarray
    stores: np.ndarray
    spaces: np.ndarray

    def __len__(self) -> int:
        return len(self.offsets)

    def line_ids(self, line_size: int) -> np.ndarray:
        """Globally-unique cache line ids for every access."""
        return (self.buffer_ids << 40) | (self.offsets // line_size)


@dataclass
class KernelTrace:
    """Trace of a launch; may cover only a sample of the work-groups."""

    groups: List[GroupTrace]
    total_groups: int
    local_size: Tuple[int, ...]
    global_size: Tuple[int, ...]

    @property
    def sampled_groups(self) -> int:
        return len(self.groups)

    @property
    def scale(self) -> float:
        """Multiplier extrapolating sampled groups to the full launch."""
        return self.total_groups / max(1, len(self.groups))

    def total_inst_count(self) -> float:
        return self.scale * sum(g.inst_count for g in self.groups)

    def iter_events(self) -> Iterator[MemEvent]:
        for g in self.groups:
            yield from g.events
