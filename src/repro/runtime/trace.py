"""Memory traces emitted by the interpreter, consumed by ``repro.perf``.

A trace is organised the way the devices consume it:

* events carry the *per-work-item* byte offsets of one vectorised access
  (that is a warp/wavefront-shaped view — what the GPU coalescing model
  needs);
* each event is stamped with the *barrier phase* it occurred in, so the
  CPU model can re-serialise the access stream the way CPU OpenCL
  runtimes execute a work-group (a loop over work-items *between
  barriers*, per Intel's/Twin Peaks' execution scheme cited in the
  paper).

Out-of-core traces: a :class:`TraceSpillStore` keeps the resident bytes
of completed event batches under a high-water mark
(``REPRO_TRACE_SPILL_MB``).  Completed segments past the mark are
pickled, compressed and appended to an anonymous temp file; a group's
``events`` then becomes a :class:`LazyEvents` sequence that streams the
segment back on first access (at most the accessed segment plus the
resident tail is ever in RAM).  Consumers are oblivious: ``LazyEvents``
implements the full read-only sequence protocol, and pickling one (for
worker shards) materialises it into a plain list.
"""

from __future__ import annotations

import hashlib
import pickle
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.types import AddressSpace


@dataclass
class MemEvent:
    """One vectorised memory access by a work-group."""

    space: AddressSpace
    is_store: bool
    buffer_id: int
    #: byte offsets within the buffer, one per active lane
    offsets: np.ndarray
    #: flat local ids of the active lanes (same length as offsets)
    lanes: np.ndarray
    elem_size: int
    #: barrier phase index within the work-group execution
    phase: int
    inst_id: int

    @property
    def count(self) -> int:
        return len(self.offsets)


@dataclass
class GroupTrace:
    """Everything one work-group did."""

    group_id: Tuple[int, ...]
    work_items: int
    events: List[MemEvent] = field(default_factory=list)
    #: dynamic instruction count summed over work-items
    inst_count: int = 0
    barriers: int = 0
    _fingerprint: Optional[bytes] = field(default=None, repr=False, compare=False)

    def accesses(self, space: Optional[AddressSpace] = None) -> int:
        return sum(e.count for e in self.events if space is None or e.space == space)

    def iter_events(self) -> Iterator[MemEvent]:
        """Stream this group's events (transparently rehydrating a
        spilled segment — see :class:`TraceSpillStore`)."""
        yield from self.events

    def fingerprint(self) -> bytes:
        """Digest of the group's *relative* access pattern.

        Two groups of a homogeneous kernel touch the same buffers with
        the same per-event shapes, store flags, lane patterns and
        barrier structure — only the base offset into each buffer
        differs.  The fingerprint therefore hashes, per event: the
        buffer's first-appearance slot (not its id), the address
        space, store flag, element size, barrier phase, lane ids, and
        offsets relative to the buffer's minimum offset over the whole
        group — plus the group's work-item/instruction/barrier counts.
        Groups with equal fingerprints produce identical relative
        streams, which the performance models use to reuse simulation
        results (see ``REPRO_PERF_MEMO``).  The digest is cached;
        traces are immutable once the interpreter returns them.
        """
        if self._fingerprint is None:
            base: dict = {}
            for e in self.events:
                if len(e.offsets):
                    lo = int(np.asarray(e.offsets).min())
                    prior = base.get(e.buffer_id)
                    base[e.buffer_id] = lo if prior is None else min(prior, lo)
            slots: dict = {}
            h = hashlib.blake2b(digest_size=16)
            h.update(
                np.array(
                    [self.work_items, self.inst_count, self.barriers], np.int64
                ).tobytes()
            )
            for e in self.events:
                slot = slots.setdefault(e.buffer_id, len(slots))
                h.update(
                    np.array(
                        [slot, int(e.space), int(e.is_store), e.elem_size,
                         e.phase, e.inst_id],
                        np.int64,
                    ).tobytes()
                )
                rel = np.asarray(e.offsets, np.int64) - base.get(e.buffer_id, 0)
                h.update(rel.tobytes())
                h.update(np.asarray(e.lanes, np.int64).tobytes())
            self._fingerprint = h.digest()
        return self._fingerprint

    def serialized(self, spaces: Tuple[AddressSpace, ...]) -> "SerializedStream":
        """Re-serialise events the way a CPU runtime executes the group.

        Between consecutive barriers, work-items run to completion one
        after another; so the per-lane sub-streams of each phase are
        concatenated lane-major.  Returns arrays of (line-addressable)
        byte offsets, buffer ids, sizes and store flags in that order.
        """
        sel = [e for e in self.events if e.space in spaces]
        if not sel:
            empty64 = np.empty(0, np.int64)
            return SerializedStream(
                empty64, empty64.copy(), np.empty(0, np.int32),
                np.empty(0, bool), np.empty(0, np.int8),
            )
        offs = np.concatenate([e.offsets for e in sel])
        lanes = np.concatenate([e.lanes for e in sel])
        bufs = np.concatenate([np.full(e.count, e.buffer_id, np.int64) for e in sel])
        sizes = np.concatenate([np.full(e.count, e.elem_size, np.int32) for e in sel])
        stores = np.concatenate([np.full(e.count, e.is_store, bool) for e in sel])
        spc = np.concatenate(
            [np.full(e.count, int(e.space), np.int8) for e in sel]
        )
        phases = np.concatenate([np.full(e.count, e.phase, np.int64) for e in sel])
        # stable sort by (phase, lane) keeps program order within each
        # lane's phase sub-stream
        order = np.lexsort((lanes, phases))
        return SerializedStream(
            offs[order].astype(np.int64),
            bufs[order],
            sizes[order],
            stores[order],
            spc[order],
        )


@dataclass
class SerializedStream:
    offsets: np.ndarray
    buffer_ids: np.ndarray
    sizes: np.ndarray
    stores: np.ndarray
    spaces: np.ndarray

    def __len__(self) -> int:
        return len(self.offsets)

    def line_ids(self, line_size: int) -> np.ndarray:
        """Globally-unique cache line ids for every access."""
        return (self.buffer_ids << 40) | (self.offsets // line_size)


@dataclass
class KernelTrace:
    """Trace of a launch; may cover only a sample of the work-groups."""

    groups: List[GroupTrace]
    total_groups: int
    local_size: Tuple[int, ...]
    global_size: Tuple[int, ...]

    @property
    def sampled_groups(self) -> int:
        return len(self.groups)

    @property
    def scale(self) -> float:
        """Multiplier extrapolating sampled groups to the full launch."""
        return self.total_groups / max(1, len(self.groups))

    def total_inst_count(self) -> float:
        return self.scale * sum(g.inst_count for g in self.groups)

    def iter_events(self) -> Iterator[MemEvent]:
        for g in self.groups:
            yield from g.events


# ---------------------------------------------------------------------------
# out-of-core trace spill
# ---------------------------------------------------------------------------


def split_records(records: List[tuple], slots: Iterable[int]) -> Dict[int, List[MemEvent]]:
    """Deal a batch's record tuples into per-group event lists.

    ``records`` is the tape/codegen record format: ``(space, is_store,
    buffer_id, scratch_stride, offsets (G, L), lanes (L,), elem_size,
    phase, inst_id, live)`` where ``live`` maps batch rows to slots.
    The offsets entry may also be a lazy ``(element indices (G, L),
    shift)`` pair from the codegen tier's element-domain sites; the
    byte offsets are rebuilt here — outside the timed replay — as
    ``indices << shift``, bit-identical to the eager form.
    One record-outer pass (the same dealing loop for the eager and the
    lazy path, so both produce bit-identical events).
    """
    out: Dict[int, List[MemEvent]] = {int(s): [] for s in slots}
    for (space, is_store, sid, stride, offs, lanes, elem,
         phase, inst_id, live_ref) in records:
        if type(offs) is tuple:
            offs = offs[0] << offs[1]
        rows = list(offs)
        if stride:
            for pos, slot in enumerate(live_ref.tolist()):
                evs = out.get(slot)
                if evs is not None:
                    evs.append(MemEvent(
                        space, is_store, sid, rows[pos] - slot * stride,
                        lanes, elem, phase, inst_id,
                    ))
        else:
            for pos, slot in enumerate(live_ref.tolist()):
                evs = out.get(slot)
                if evs is not None:
                    evs.append(MemEvent(
                        space, is_store, sid, rows[pos],
                        lanes, elem, phase, inst_id,
                    ))
    return out


def _events_nbytes(events: List[MemEvent]) -> int:
    return sum(
        e.offsets.nbytes + e.lanes.nbytes + 160 for e in events
    )


def _records_nbytes(records: List[tuple]) -> int:
    return sum(
        (r[4][0].nbytes if type(r[4]) is tuple else r[4].nbytes)
        + r[5].nbytes + 200
        for r in records
    )


class _Segment:
    """One spillable unit: the events (or raw records) of one batch."""

    __slots__ = ("store", "nbytes", "disk", "resident")

    def __init__(self, store: "TraceSpillStore", nbytes: int) -> None:
        self.store = store
        self.nbytes = nbytes
        #: (offset, compressed length) once written to the spill file
        self.disk: Optional[Tuple[int, int]] = None
        self.resident = True

    def events_for(self, slot: int) -> List[MemEvent]:
        if not self.resident:
            self.store._load(self)
        return self._slot_events(slot)

    def _slot_events(self, slot: int) -> List[MemEvent]:  # pragma: no cover
        raise NotImplementedError

    def _payload(self) -> object:  # pragma: no cover
        raise NotImplementedError

    def _drop(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def _restore(self, payload: object) -> None:  # pragma: no cover
        raise NotImplementedError


class _ListSegment(_Segment):
    """Eagerly split events, keyed by batch slot."""

    __slots__ = ("_events",)

    def __init__(self, store: "TraceSpillStore", events: Dict[int, List[MemEvent]]) -> None:
        self._events = events
        super().__init__(store, sum(_events_nbytes(v) for v in events.values()))

    def _slot_events(self, slot: int) -> List[MemEvent]:
        return self._events[slot]

    def _payload(self) -> object:
        return self._events

    def _drop(self) -> None:
        self._events = None

    def _restore(self, payload: object) -> None:
        self._events = payload


class _BatchSegment(_Segment):
    """Raw record tuples of one batch, split into events on first access.

    This is how the codegen tier keeps event materialisation out of the
    timed launch: the replay loop only appends compact record tuples;
    the per-group :class:`MemEvent` lists are dealt out lazily, by the
    first consumer that actually reads them.
    """

    __slots__ = ("_records", "_slots", "_events")

    def __init__(self, store: "TraceSpillStore", records: List[tuple],
                 slots: List[int]) -> None:
        self._records = records
        self._slots = list(slots)
        self._events: Optional[Dict[int, List[MemEvent]]] = None
        super().__init__(store, _records_nbytes(records))

    def _slot_events(self, slot: int) -> List[MemEvent]:
        if self._events is None:
            self._events = split_records(self._records, self._slots)
        return self._events[slot]

    def _payload(self) -> object:
        return self._records

    def _drop(self) -> None:
        self._records = None
        self._events = None

    def _restore(self, payload: object) -> None:
        self._records = payload


class LazyEvents(Sequence):
    """Read-only view of one group's events inside a spillable segment.

    Quacks like the plain ``List[MemEvent]`` it replaces (``len``,
    iteration, indexing); pickling materialises it into a real list so
    traces shipped between worker processes stay self-contained.
    """

    __slots__ = ("_segment", "_slot")

    def __init__(self, segment: _Segment, slot: int) -> None:
        self._segment = segment
        self._slot = slot

    def _list(self) -> List[MemEvent]:
        return self._segment.events_for(self._slot)

    def __len__(self) -> int:
        return len(self._list())

    def __iter__(self) -> Iterator[MemEvent]:
        return iter(self._list())

    def __getitem__(self, i):
        return self._list()[i]

    def __reduce__(self):
        return (list, (list(self._list()),))


class TraceSpillStore:
    """Bounds the resident bytes of completed trace batches.

    Segments are adopted in completion order; when the running total
    crosses ``limit_bytes``, the oldest resident segments are pickled +
    zlib-compressed into an anonymous :func:`tempfile.TemporaryFile`
    (auto-deleted when the store is garbage collected) and their RAM
    payload is dropped.  Reading a spilled group's events rehydrates
    its segment — and may re-evict others, so steady-state residency
    stays under the mark (each spilled blob is written exactly once;
    re-eviction after a read costs no new I/O).  Every spill step emits
    a ``trace_spill`` event with byte and wall-time fields.
    """

    def __init__(self, limit_bytes: int, kernel: str = "kernel") -> None:
        self.limit_bytes = int(limit_bytes)
        self.kernel = kernel
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.spilled_bytes = 0
        self.spill_count = 0
        self._resident: Dict[_Segment, None] = {}  # insertion-ordered
        self._file = None
        self._closed = False

    def close(self) -> None:
        """Release the spill file (idempotent).

        A launch that raises closes its store explicitly instead of
        waiting for garbage collection — the anonymous spill file is
        unlinked on creation, so the *fd* is the only thing keeping its
        disk space alive, and an aborted launch must not hold it until
        some later collection cycle.  After ``close`` the store refuses
        to rehydrate spilled segments (nothing should read the trace of
        a failed launch).
        """
        self._closed = True
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def closed(self) -> bool:
        return self._closed

    # -- adoption ----------------------------------------------------------
    def adopt(self, gt: Optional[GroupTrace]) -> None:
        """Account one eagerly-built trace (reference / scalar paths)."""
        if gt is not None and isinstance(gt.events, list):
            self.adopt_group_lists({0: gt})

    def adopt_group_lists(self, traces: Dict[int, Optional[GroupTrace]]) -> None:
        """Account one batch of eagerly-split traces as a single segment
        (their events share the batch's offset arrays, so they spill —
        and free — together)."""
        events = {
            slot: gt.events for slot, gt in traces.items()
            if gt is not None and isinstance(gt.events, list)
        }
        if not events:
            return
        seg = _ListSegment(self, events)
        for slot, gt in traces.items():
            if gt is not None and slot in events:
                gt.events = LazyEvents(seg, slot)
        self._track(seg)

    def adopt_batch(
        self,
        records: List[tuple],
        entries: List[Tuple[int, Tuple[int, ...]]],
        work_items: int,
        inst_count: int,
        barriers: int,
    ) -> Dict[int, GroupTrace]:
        """Adopt one codegen batch as raw records; splitting into
        per-group events is deferred to first access.  ``entries`` is
        ``[(batch slot, group id), ...]`` for the surviving groups."""
        seg = _BatchSegment(self, records, [slot for slot, _ in entries])
        out: Dict[int, GroupTrace] = {}
        for slot, gid in entries:
            gt = GroupTrace(gid, work_items)
            gt.inst_count = inst_count
            gt.barriers = barriers
            gt.events = LazyEvents(seg, slot)
            out[slot] = gt
        self._track(seg)
        return out

    def adopt_compressed(self, blob: bytes, nbytes: int) -> _ListSegment:
        """Adopt one already-compressed segment (a worker shard's trace,
        see :func:`compress_group_lists`) without decompressing it.

        The blob — byte-identical to what :meth:`_spill` would have
        written for the same events — goes straight to the spill file as
        a pre-spilled :class:`_ListSegment`; ``nbytes`` is the resident
        size its events will account for once a reader rehydrates them.
        Wrap the segment's slots in :class:`LazyEvents` to expose them.
        """
        if self._closed:
            raise RuntimeError(f"TraceSpillStore for {self.kernel!r} is closed")
        seg = _ListSegment.__new__(_ListSegment)
        seg._events = None
        _Segment.__init__(seg, self, int(nbytes))
        if self._file is None:
            self._file = tempfile.TemporaryFile(prefix="repro-trace-spill-")
        self._file.seek(0, 2)
        seg.disk = (self._file.tell(), len(blob))
        self._file.write(blob)
        seg.resident = False
        self.spilled_bytes += len(blob)
        self.spill_count += 1
        return seg

    # -- residency ---------------------------------------------------------
    def _track(self, seg: _Segment) -> None:
        self._resident[seg] = None
        self.resident_bytes += seg.nbytes
        self._enforce()
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes
        )

    def _enforce(self, protect: Optional[_Segment] = None) -> None:
        if self.resident_bytes <= self.limit_bytes:
            return
        for seg in [s for s in self._resident if s is not protect]:
            if self.resident_bytes <= self.limit_bytes:
                break
            self._spill(seg)

    def _spill(self, seg: _Segment) -> None:
        t0 = time.perf_counter()
        written = 0
        if seg.disk is None:
            blob = zlib.compress(
                pickle.dumps(seg._payload(), protocol=pickle.HIGHEST_PROTOCOL),
                1,
            )
            if self._file is None:
                if self._closed:
                    raise RuntimeError(
                        f"TraceSpillStore for {self.kernel!r} is closed"
                    )
                self._file = tempfile.TemporaryFile(prefix="repro-trace-spill-")
            self._file.seek(0, 2)
            seg.disk = (self._file.tell(), len(blob))
            self._file.write(blob)
            written = len(blob)
        seg._drop()
        seg.resident = False
        del self._resident[seg]
        self.resident_bytes -= seg.nbytes
        self.spilled_bytes += written
        self.spill_count += 1
        from repro.session import events as _events

        _events.emit(
            "trace_spill",
            kernel=self.kernel,
            bytes=written,
            resident_bytes=self.resident_bytes,
            wall_ms=(time.perf_counter() - t0) * 1e3,
        )

    def _load(self, seg: _Segment) -> None:
        if self._file is None:
            raise RuntimeError(
                f"TraceSpillStore for {self.kernel!r} is closed; "
                "spilled trace segments cannot be rehydrated"
            )
        off, length = seg.disk
        self._file.seek(off)
        seg._restore(pickle.loads(zlib.decompress(self._file.read(length))))
        seg.resident = True
        self._resident[seg] = None
        self.resident_bytes += seg.nbytes
        self._enforce(protect=seg)
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes
        )


def compress_group_lists(groups: Sequence[GroupTrace]) -> Tuple[bytes, int]:
    """Serialize one shard's traces into the spill-segment wire format.

    Returns ``(blob, nbytes)``: the blob is exactly what
    :meth:`TraceSpillStore._spill` writes for a :class:`_ListSegment`
    whose slot ``i`` holds ``groups[i]``'s events, so the parent can
    append it to its own spill file via
    :meth:`TraceSpillStore.adopt_compressed` and rehydration yields
    bit-identical :class:`MemEvent` streams.  ``nbytes`` is the resident
    accounting size of the materialised events.
    """
    payload = {slot: list(gt.events) for slot, gt in enumerate(groups)}
    nbytes = sum(_events_nbytes(v) for v in payload.values())
    blob = zlib.compress(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL), 1
    )
    return blob, nbytes
