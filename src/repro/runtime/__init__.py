"""OpenCL platform-model runtime: buffers + NDRange SIMT interpreter.

This is the substitute for a vendor OpenCL runtime.  It executes IR
kernels over an NDRange exactly per the OpenCL execution model —
work-groups of work-items, ``__local`` memory shared per group, barrier
synchronisation — and optionally records the memory trace that the
performance models in :mod:`repro.perf` consume.

Work-items of one work-group are interpreted together, numpy-vectorised
("SIMT"): every IR instruction evaluates to an array over the group's
work-items.  Divergent control flow is handled with lane masks and
reverse-post-order block scheduling, which reconverges masks at CFG join
points for reducible control flow.
"""

from repro.runtime.buffers import Buffer, Memory
from repro.runtime.errors import BarrierDivergenceError, RuntimeLaunchError
from repro.runtime.ndrange import LaunchResult, launch
from repro.runtime.trace import KernelTrace, GroupTrace, MemEvent

__all__ = [
    "Buffer",
    "Memory",
    "BarrierDivergenceError",
    "RuntimeLaunchError",
    "LaunchResult",
    "launch",
    "KernelTrace",
    "GroupTrace",
    "MemEvent",
]
