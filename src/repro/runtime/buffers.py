"""Device memory: buffers and the encoded-pointer scheme.

A runtime pointer is a 64-bit integer ``(buffer_id << OFFSET_BITS) | byte_offset``.
All lanes of a vectorised access share one buffer (bases are uniform within
a work-group), so gathers/scatters decode the buffer once and index its
numpy backing store directly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.runtime.errors import MemoryFault

OFFSET_BITS = 40
OFFSET_MASK = (1 << OFFSET_BITS) - 1

#: pad allocations so any element-size view of the backing store is legal
_PAD = 16


class Buffer:
    """A contiguous allocation in one of the OpenCL memory spaces."""

    def __init__(self, mem: "Memory", buf_id: int, nbytes: int, name: str = "") -> None:
        self.mem = mem
        self.id = buf_id
        self.nbytes = nbytes
        self.name = name
        padded = (nbytes + _PAD - 1) // _PAD * _PAD
        self.data = np.zeros(padded, dtype=np.uint8)
        #: cached dtype views of the backing store
        self._views: Dict[np.dtype, np.ndarray] = {}

    @property
    def base_addr(self) -> int:
        return self.id << OFFSET_BITS

    def view(self, dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        v = self._views.get(dtype)
        if v is None:
            v = self.data.view(dtype)
            self._views[dtype] = v
        return v

    def write(self, arr: np.ndarray, byte_offset: int = 0) -> None:
        raw = np.ascontiguousarray(arr).view(np.uint8).ravel()
        if byte_offset + raw.nbytes > self.nbytes:
            raise MemoryFault(
                f"write of {raw.nbytes} B at offset {byte_offset} exceeds "
                f"buffer {self.name or self.id} ({self.nbytes} B)"
            )
        self.data[byte_offset : byte_offset + raw.nbytes] = raw

    def read(self, dtype: np.dtype, count: Optional[int] = None, byte_offset: int = 0) -> np.ndarray:
        dtype = np.dtype(dtype)
        if count is None:
            count = (self.nbytes - byte_offset) // dtype.itemsize
        start = byte_offset // dtype.itemsize
        return self.view(dtype)[start : start + count].copy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Buffer #{self.id} {self.name!r} {self.nbytes}B>"


class Memory:
    """Registry of all live buffers; decodes encoded pointers."""

    def __init__(self) -> None:
        self.buffers: Dict[int, Buffer] = {}
        self._next_id = 1

    def alloc(self, nbytes: int, name: str = "") -> Buffer:
        buf = Buffer(self, self._next_id, nbytes, name)
        self.buffers[self._next_id] = buf
        self._next_id += 1
        return buf

    def from_array(self, arr: np.ndarray, name: str = "") -> Buffer:
        arr = np.ascontiguousarray(arr)
        buf = self.alloc(arr.nbytes, name)
        buf.write(arr)
        return buf

    def free(self, buf: Buffer) -> None:
        self.buffers.pop(buf.id, None)

    def decode(self, addr: int) -> Buffer:
        buf = self.buffers.get(int(addr) >> OFFSET_BITS)
        if buf is None:
            raise MemoryFault(f"dangling pointer {addr:#x}")
        return buf

    @staticmethod
    def split(addrs: np.ndarray) -> tuple:
        """Vector decode: (uniform buffer id, byte offsets)."""
        ids = addrs >> OFFSET_BITS
        first = int(ids[0]) if len(ids) else 0
        if len(ids) and not (ids == first).all():
            raise MemoryFault("access spans multiple buffers")
        return first, (addrs & OFFSET_MASK).astype(np.int64)
