"""Device memory: buffers and the encoded-pointer scheme.

A runtime pointer is a 64-bit integer ``(buffer_id << OFFSET_BITS) | byte_offset``.
All lanes of a vectorised access share one buffer (bases are uniform within
a work-group), so gathers/scatters decode the buffer once and index its
numpy backing store directly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.runtime.errors import MemoryFault

OFFSET_BITS = 40
OFFSET_MASK = (1 << OFFSET_BITS) - 1

#: pad allocations so any element-size view of the backing store is legal
_PAD = 16


class Buffer:
    """A contiguous allocation in one of the OpenCL memory spaces.

    ``data`` lets a caller hand in an external ``uint8`` backing store of
    at least the padded length — how worker shards mount zero-copy views
    of a :class:`ShmArena` segment instead of private copies.
    """

    def __init__(
        self,
        mem: "Memory",
        buf_id: int,
        nbytes: int,
        name: str = "",
        data: Optional[np.ndarray] = None,
    ) -> None:
        self.mem = mem
        self.id = buf_id
        self.nbytes = nbytes
        self.name = name
        padded = (nbytes + _PAD - 1) // _PAD * _PAD
        if data is None:
            data = np.zeros(padded, dtype=np.uint8)
        elif data.dtype != np.uint8 or len(data) < padded:
            raise ValueError(
                f"external backing for buffer {name or buf_id} must be "
                f">= {padded} uint8 bytes, got {len(data)} x {data.dtype}"
            )
        self.data = data
        #: cached dtype views of the backing store
        self._views: Dict[np.dtype, np.ndarray] = {}

    @property
    def base_addr(self) -> int:
        return self.id << OFFSET_BITS

    def view(self, dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        v = self._views.get(dtype)
        if v is None:
            v = self.data.view(dtype)
            self._views[dtype] = v
        return v

    def write(self, arr: np.ndarray, byte_offset: int = 0) -> None:
        raw = np.ascontiguousarray(arr).view(np.uint8).ravel()
        if byte_offset + raw.nbytes > self.nbytes:
            raise MemoryFault(
                f"write of {raw.nbytes} B at offset {byte_offset} exceeds "
                f"buffer {self.name or self.id} ({self.nbytes} B)"
            )
        self.data[byte_offset : byte_offset + raw.nbytes] = raw

    def read(self, dtype: np.dtype, count: Optional[int] = None, byte_offset: int = 0) -> np.ndarray:
        dtype = np.dtype(dtype)
        if count is None:
            count = (self.nbytes - byte_offset) // dtype.itemsize
        start = byte_offset // dtype.itemsize
        return self.view(dtype)[start : start + count].copy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Buffer #{self.id} {self.name!r} {self.nbytes}B>"


class Memory:
    """Registry of all live buffers; decodes encoded pointers."""

    def __init__(self) -> None:
        self.buffers: Dict[int, Buffer] = {}
        self._next_id = 1

    def alloc(self, nbytes: int, name: str = "") -> Buffer:
        buf = Buffer(self, self._next_id, nbytes, name)
        self.buffers[self._next_id] = buf
        self._next_id += 1
        return buf

    def from_array(self, arr: np.ndarray, name: str = "") -> Buffer:
        arr = np.ascontiguousarray(arr)
        buf = self.alloc(arr.nbytes, name)
        buf.write(arr)
        return buf

    def free(self, buf: Buffer) -> None:
        self.buffers.pop(buf.id, None)

    def decode(self, addr: int) -> Buffer:
        buf = self.buffers.get(int(addr) >> OFFSET_BITS)
        if buf is None:
            raise MemoryFault(f"dangling pointer {addr:#x}")
        return buf

    @staticmethod
    def split(addrs: np.ndarray) -> tuple:
        """Vector decode: (uniform buffer id, byte offsets)."""
        ids = addrs >> OFFSET_BITS
        first = int(ids[0]) if len(ids) else 0
        if len(ids) and not (ids == first).all():
            raise MemoryFault("access spans multiple buffers")
        return first, (addrs & OFFSET_MASK).astype(np.int64)


class ShmArena:
    """Every buffer argument of one launch in a single POSIX shared-memory
    segment.

    The parent publishes the canonical bytes once (``publish``); worker
    shards ``attach`` and mount zero-copy :class:`Buffer` views with the
    parent's buffer ids (``attach_memory``), so every shard's writes land
    directly in the segment.  Work-group independence — the contract the
    differential suite enforces — means shards write disjoint byte
    ranges, so the parent's post-launch merge is a single ``readback``
    copy per buffer instead of per-shard diff application.

    Blocks are laid out at ``_PAD``-aligned offsets in ascending buffer-id
    order, each block the padded length of its buffer, so any element-size
    view of a block is as legal as it is on the private backing store.

    Lifecycle: exactly one process (the parent) owns the name and must
    call ``unlink``; every attachment calls ``close``.  ``close`` with a
    live numpy view swallows the ``BufferError`` — the mapping then lives
    until the views die, which leaks address space, never the segment.
    """

    def __init__(self, shm, layout: Dict[int, tuple], total_bytes: int) -> None:
        self._shm = shm
        #: buffer id -> (offset, nbytes, padded length, name)
        self._layout = layout
        self.total_bytes = total_bytes

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def publish(cls, name: str, buffers: Dict[int, "Buffer"]) -> "ShmArena":
        from multiprocessing import shared_memory

        layout: Dict[int, tuple] = {}
        off = 0
        for buf_id in sorted(buffers):
            buf = buffers[buf_id]
            padded = len(buf.data)
            layout[buf_id] = (off, buf.nbytes, padded, buf.name)
            off += padded  # padded lengths are _PAD multiples -> aligned
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(off, 1))
        arena = cls(shm, layout, off)
        view = np.ndarray((max(off, 1),), dtype=np.uint8, buffer=shm.buf)
        for buf_id, (o, _nb, padded, _name) in layout.items():
            view[o : o + padded] = buffers[buf_id].data[:padded]
        del view
        return arena

    def spec(self) -> dict:
        """Picklable attachment recipe shipped to worker shards."""
        return {
            "name": self._shm.name,
            "layout": self._layout,
            "total": self.total_bytes,
        }

    @classmethod
    def attach(cls, spec: dict) -> "ShmArena":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=spec["name"])
        return cls(shm, spec["layout"], spec["total"])

    def attach_memory(self, mem: "Memory") -> None:
        """Mount one zero-copy :class:`Buffer` per block into ``mem``,
        under the parent's buffer ids."""
        for buf_id in sorted(self._layout):
            off, nbytes, padded, name = self._layout[buf_id]
            data = np.ndarray(
                (padded,), dtype=np.uint8, buffer=self._shm.buf, offset=off
            )
            mem.buffers[buf_id] = Buffer(mem, buf_id, nbytes, name, data=data)

    def readback(self, buffers: Dict[int, "Buffer"]) -> None:
        """Copy every block's final bytes into the parent's canonical
        buffers (only ever called after *all* shards succeeded)."""
        view = np.ndarray(
            (max(self.total_bytes, 1),), dtype=np.uint8, buffer=self._shm.buf
        )
        for buf_id, (off, _nb, padded, _name) in self._layout.items():
            buffers[buf_id].data[:padded] = view[off : off + padded]
        del view

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # a view outlived its launch; see docstring
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already swept by failure cleanup
            pass
