"""Evaluation of OpenCL builtin functions inside the interpreter.

Work-item query builtins are resolved against the executing group's
geometry; math builtins map onto numpy ufuncs (vectorised across the
work-group, per the HPC guidance of computing on whole arrays).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.ir.instructions import Call
from repro.ir.types import FloatType, IntType, VectorType


_UNARY_NUMPY: Dict[str, Callable] = {
    "sqrt": np.sqrt,
    "native_sqrt": np.sqrt,
    "rsqrt": lambda x: 1.0 / np.sqrt(x),
    "native_rsqrt": lambda x: 1.0 / np.sqrt(x),
    "fabs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "exp": np.exp,
    "native_exp": np.exp,
    "exp2": np.exp2,
    "log": np.log,
    "native_log": np.log,
    "log2": np.log2,
    "sin": np.sin,
    "native_sin": np.sin,
    "cos": np.cos,
    "native_cos": np.cos,
    "tan": np.tan,
    "trunc": np.trunc,
    "round": np.round,
    "sign": np.sign,
    "abs": np.abs,
}

_BINARY_NUMPY: Dict[str, Callable] = {
    "fmin": np.minimum,
    "fmax": np.maximum,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
    "native_powr": np.power,
    "fmod": np.fmod,
    "atan2": np.arctan2,
    "hypot": np.hypot,
    "mul24": lambda a, b: a * b,
}


class WorkItemContext:
    """Geometry of the group being executed; lane arrays are precomputed."""

    def __init__(
        self,
        group_id: tuple,
        local_size: tuple,
        global_size: tuple,
    ) -> None:
        ndim = len(local_size)
        self.ndim = ndim
        self.local_size = local_size
        self.global_size = global_size
        self.group_id = group_id
        self.num_groups = tuple(
            global_size[d] // local_size[d] for d in range(ndim)
        )
        n = int(np.prod(local_size))
        self.n_lanes = n
        flat = np.arange(n, dtype=np.int64)
        self.local_ids: List[np.ndarray] = []
        stride = 1
        for d in range(ndim):
            self.local_ids.append((flat // stride) % local_size[d])
            stride *= local_size[d]
        self.global_ids = [
            self.local_ids[d] + group_id[d] * local_size[d] for d in range(ndim)
        ]

    def _dim(self, args: List[np.ndarray]) -> int:
        d = int(np.asarray(args[0]).ravel()[0])
        return d

    def query(self, name: str, args: List[np.ndarray], n: int) -> np.ndarray:
        ones = np.ones(n, dtype=np.int64)
        if name == "get_global_id":
            d = self._dim(args)
            return self.global_ids[d] if d < self.ndim else 0 * ones
        if name == "get_local_id":
            d = self._dim(args)
            return self.local_ids[d] if d < self.ndim else 0 * ones
        if name == "get_group_id":
            d = self._dim(args)
            return (self.group_id[d] if d < self.ndim else 0) * ones
        if name == "get_local_size":
            d = self._dim(args)
            return (self.local_size[d] if d < self.ndim else 1) * ones
        if name == "get_global_size":
            d = self._dim(args)
            return (self.global_size[d] if d < self.ndim else 1) * ones
        if name == "get_num_groups":
            d = self._dim(args)
            return (self.num_groups[d] if d < self.ndim else 1) * ones
        if name == "get_global_offset":
            return 0 * ones
        if name == "get_work_dim":
            return np.full(n, self.ndim, dtype=np.uint32)
        raise KeyError(name)


WORK_ITEM_QUERIES = frozenset(
    {
        "get_global_id",
        "get_local_id",
        "get_group_id",
        "get_local_size",
        "get_global_size",
        "get_num_groups",
        "get_global_offset",
        "get_work_dim",
    }
)


def eval_builtin(inst: Call, args: List[np.ndarray], ctx: WorkItemContext) -> np.ndarray:
    """Evaluate a pure builtin call over the whole work-group."""
    name = inst.callee
    if name in WORK_ITEM_QUERIES:
        return ctx.query(name, args, ctx.n_lanes)

    # vector builtins address the component axis as ``-1`` so the same
    # code serves the serial (lanes, k) and tape-batched (groups, lanes,
    # k) layouts — identical results for the 2-D case
    if name == "splat":
        vty = inst.type
        assert isinstance(vty, VectorType)
        return np.repeat(args[0][..., None], vty.count, axis=-1)
    if name == "convert":
        vty = inst.type
        assert isinstance(vty, VectorType)
        return args[0].astype(vty.element.numpy_dtype)
    if name.startswith("make_"):
        return np.stack(args, axis=-1)
    if name == "dot":
        a, b = args
        with np.errstate(all="ignore"):
            return (a * b).sum(axis=-1)

    with np.errstate(all="ignore"):
        if name in _UNARY_NUMPY:
            out = _UNARY_NUMPY[name](args[0])
        elif name in _BINARY_NUMPY:
            out = _BINARY_NUMPY[name](args[0], args[1])
        elif name in ("mad", "fma", "mad24"):
            out = args[0] * args[1] + args[2]
        elif name == "clamp":
            out = np.clip(args[0], args[1], args[2])
        elif name == "mix":
            out = args[0] + (args[1] - args[0]) * args[2]
        else:
            raise KeyError(f"unknown builtin {name!r}")

    # keep the lane dtype dictated by the instruction's result type
    ty = inst.type
    if isinstance(ty, (IntType, FloatType)):
        out = np.asarray(out).astype(ty.numpy_dtype, copy=False)
    elif isinstance(ty, VectorType):
        out = np.asarray(out).astype(ty.element.numpy_dtype, copy=False)
    return out
