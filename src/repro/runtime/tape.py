"""Tape-compiled, group-batched execution backend for the SIMT interpreter.

The reference path (:mod:`repro.runtime.interpreter`) vectorises over the
*lane* axis but re-runs the block scheduler and per-instruction
``isinstance`` dispatch for every work-group.  All eleven paper apps have
group-uniform control flow, so that per-group cost is pure overhead.
This backend removes it in three moves:

1. **Pilot**: the first picked group runs on the ordinary scheduler
   while a :class:`_RecordingExecutor` records the ``(block, mask)``
   schedule — plus each ``CondBr``'s condition row and each terminator's
   successor masks — as a straight-line tape of :class:`_Step`\\ s.
2. **Compile**: each unique ``(block, mask-pattern)`` is compiled once
   into a list of argument-free Python closures with operand getters,
   dtypes and builtin handlers pre-resolved.  Loop iterations share the
   same closure list; only dynamic state (barrier phase, retired
   instructions, the private-arena cursor) lives on the replayer.
3. **Replay**: the remaining groups execute in batches with a new
   leading *group* axis — every value is ``(G, n_lanes)`` (or
   ``(G, n, k)`` for vectors; group-uniform values stay ``(n,)`` and
   broadcast) — so one numpy op covers the whole batch.  Batched
   ``__local``/private storage lives in per-batch scratch buffers with
   out-of-band ids (``_SCRATCH_BASE``), and batched memory events are
   split back into bit-identical per-group :class:`GroupTrace`\\ s.

Correctness never depends on uniformity: a **divergence guard** after
every taped ``CondBr`` compares each group's condition row (on the
step's active lanes) against the pilot's, and the load/store closures
check that every group resolves the access to the pilot's buffer.  Any
group that disagrees is *evicted*: its partial trace is split out, the
scheduler's pending-dict is reconstructed from the tape prefix, and the
group finishes on the reference scalar path via
:meth:`GroupExecutor.resume_block` — starting at the exact instruction
that diverged, so no side effect is re-applied.

Like the sharded parallel engine (DESIGN.md §9), batching reorders the
side effects of *different* groups; results are bit-identical to serial
execution for kernels whose work-groups are independent — the OpenCL
execution model's own requirement, enforced by the differential suite.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Load,
    Opcode,
    Select,
    Store,
)
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BoolType,
    VectorType,
)
from repro.ir.values import Argument, Constant, LocalArray, Value
from repro.runtime.buffers import OFFSET_BITS, OFFSET_MASK, Buffer, Memory
from repro.runtime.builtins import WorkItemContext, eval_builtin
from repro.runtime.errors import RuntimeLaunchError
from repro.runtime.interpreter import GroupExecutor, _np_type
from repro.runtime.trace import GroupTrace, MemEvent, TraceSpillStore, split_records
from repro.session import events

#: scratch (batch-local) buffer ids start here — far above any id the
#: ordinary allocator hands out, and small enough that ``id << 40``
#: still fits an int64 pointer.  Scratch buffers are registered into
#: ``Memory.buffers`` directly and removed at batch end, so
#: ``Memory._next_id`` is exactly where a serial launch leaves it.
_SCRATCH_BASE = 1 << 22


class _Step:
    """One executed (block, mask) of the pilot's schedule."""

    __slots__ = (
        "bb", "mask", "succ", "cond", "alive_before", "alive_after",
        "weight", "ops", "op_pos", "guard",
    )

    def __init__(self, bb: BasicBlock, mask: np.ndarray) -> None:
        self.bb = bb
        self.mask = mask
        self.succ: List[Tuple[BasicBlock, np.ndarray]] = []
        self.cond: Optional[np.ndarray] = None
        self.alive_before: Optional[np.ndarray] = None
        self.alive_after: Optional[np.ndarray] = None
        self.weight = 0
        self.ops: List = []
        #: instruction index within the block -> position in ``ops``
        self.op_pos: Dict[int, int] = {}
        self.guard = None


class _RecordingExecutor(GroupExecutor):
    """The pilot: the reference executor, plus a schedule tape."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.steps: List[_Step] = []
        self.emit_group_executed = False

    def exec_block(self, bb: BasicBlock, mask: np.ndarray):
        step = _Step(bb, mask.copy())
        self.steps.append(step)
        out = super().exec_block(bb, mask)
        term = bb.instructions[-1]
        if isinstance(term, CondBr):
            step.cond = self.get(term.cond).copy()
        step.succ = [(succ, m.copy()) for succ, m in out]
        step.alive_after = self.alive.copy()
        return out


class _BatchedContext:
    """Mirror of :class:`WorkItemContext` with a leading group axis.

    Group-invariant queries (local ids, sizes) return the same ``(n,)``
    arrays the serial context returns — they broadcast against batched
    operands; per-group queries return ``(G, n)`` int64 arrays.
    """

    def __init__(
        self,
        slot_gids: List[Tuple[int, ...]],
        local_size: Tuple[int, ...],
        global_size: Tuple[int, ...],
    ) -> None:
        ndim = len(local_size)
        self.ndim = ndim
        self.local_size = local_size
        self.global_size = global_size
        self.num_groups = tuple(
            global_size[d] // local_size[d] for d in range(ndim)
        )
        n = int(np.prod(local_size))
        self.n_lanes = n
        flat = np.arange(n, dtype=np.int64)
        self.local_ids: List[np.ndarray] = []
        stride = 1
        for d in range(ndim):
            self.local_ids.append((flat // stride) % local_size[d])
            stride *= local_size[d]
        #: per dimension, the batch's group coordinates, shape (G,)
        self.gcols = [
            np.array([gid[d] for gid in slot_gids], dtype=np.int64)
            for d in range(ndim)
        ]
        self.global_ids = [
            self.local_ids[d][None, :] + self.gcols[d][:, None] * local_size[d]
            for d in range(ndim)
        ]

    def compact(self, keep: np.ndarray) -> None:
        self.gcols = [c[keep] for c in self.gcols]
        self.global_ids = [g[keep] for g in self.global_ids]

    def _dim(self, args: List[np.ndarray]) -> int:
        return int(np.asarray(args[0]).ravel()[0])

    def query(self, name: str, args: List[np.ndarray], n: int) -> np.ndarray:
        ones = np.ones(n, dtype=np.int64)
        if name == "get_global_id":
            d = self._dim(args)
            return self.global_ids[d] if d < self.ndim else 0 * ones
        if name == "get_local_id":
            d = self._dim(args)
            return self.local_ids[d] if d < self.ndim else 0 * ones
        if name == "get_group_id":
            d = self._dim(args)
            if d < self.ndim:
                return self.gcols[d][:, None] * ones
            return 0 * ones
        if name == "get_local_size":
            d = self._dim(args)
            return (self.local_size[d] if d < self.ndim else 1) * ones
        if name == "get_global_size":
            d = self._dim(args)
            return (self.global_size[d] if d < self.ndim else 1) * ones
        if name == "get_num_groups":
            d = self._dim(args)
            return (self.num_groups[d] if d < self.ndim else 1) * ones
        if name == "get_global_offset":
            return 0 * ones
        if name == "get_work_dim":
            return np.full(n, self.ndim, dtype=np.uint32)
        raise KeyError(name)


def _expected_ndim(v: Value) -> int:
    """The batched rank of a value: 3 for vectors, 2 otherwise.

    A smaller observed rank means the value is group-uniform (a plain
    ``(n,)``/``(n, k)`` array shared by every group) — those are never
    compacted and are copied whole into an evicted group's executor.
    """
    return 3 if isinstance(v.type, VectorType) else 2


class TapeExecutor:
    """Compiles the pilot tape and replays it over group batches."""

    def __init__(
        self,
        fn: Function,
        lsize: Tuple[int, ...],
        gsize: Tuple[int, ...],
        arg_values: Dict[Argument, object],
        local_buffers: Dict[LocalArray, Buffer],
        local_arg_buffers: Dict[Argument, Buffer],
        memory: Memory,
        private_arena: List[Buffer],
        collect_trace: bool,
        pilot: _RecordingExecutor,
        compile_closures: bool = True,
    ) -> None:
        self.fn = fn
        self.lsize = lsize
        self.gsize = gsize
        self.arg_values = arg_values
        self.local_buffers = local_buffers
        self.local_arg_buffers = local_arg_buffers
        self.memory = memory
        self.private_arena = private_arena
        self.collect_trace = collect_trace
        self.steps = pilot.steps
        self.n = pilot.n
        self._lane_ids = np.arange(self.n, dtype=np.int64)
        self.pilot_inst_count = pilot.trace.inst_count if pilot.trace else 0
        self.pilot_barriers = pilot.trace.barriers if pilot.trace else 0
        self.pilot_arena_len = pilot._arena_next

        # -- dynamic (per-batch) state, read by the shared closures ------
        self.env: Dict[Value, Optional[np.ndarray]] = {}
        self.slots: Dict[Alloca, np.ndarray] = {}
        #: original batch slot index of each surviving row, ascending
        self.live: np.ndarray = np.empty(0, np.int64)
        self.phase = 0
        self.barriers = 0
        self.inst_count = 0
        self.arena_next = 0
        self.step_idx = 0
        self.records: List[tuple] = []
        self.bctx: Optional[_BatchedContext] = None
        self.slot_gids: List[Tuple[int, ...]] = []
        #: scratch buffer id -> (serial buffer id, per-group byte stride)
        self.scratch_map: Dict[int, Tuple[int, int]] = {}
        self._scratch: List[Buffer] = []
        self._scratch_next = _SCRATCH_BASE
        self._private_slabs: List[Tuple[Buffer, int]] = []
        self._batch_size = 0
        self._done: Dict[int, Optional[GroupTrace]] = {}
        self.evicted = 0

        self._consts: Dict[Constant, np.ndarray] = {}
        self.n_closures = 0
        self._closures_ready = False
        if not getattr(pilot, "steps_annotated", False):
            self._annotate_steps()
        if compile_closures:
            self._compile_closures()

    # -- compilation -------------------------------------------------------
    def _annotate_steps(self) -> None:
        """Static per-step facts: alive masks and instruction weights.

        Cheap and closure-free — the codegen tier needs these to fold
        instruction-count prefixes into generated source without paying
        for closures it only compiles on a divergence handoff.
        """
        alive = np.ones(self.n, dtype=bool)
        weight = {
            bb: sum(
                0 if isinstance(i, (Cast, GEP, Alloca)) else 1
                for i in bb.instructions
            )
            for bb in self.fn.blocks
        }
        for step in self.steps:
            step.alive_before = alive
            alive = step.alive_after
            step.weight = weight[step.bb] * int(step.mask.sum())

    def _compile_closures(self) -> None:
        """Compile each unique (block, mask) into its closure list."""
        if self._closures_ready:
            return
        self._closures_ready = True
        cache: Dict[Tuple[BasicBlock, bytes], Tuple[List, Dict[int, int]]] = {}
        for step in self.steps:
            key = (step.bb, step.mask.tobytes())
            entry = cache.get(key)
            if entry is None:
                entry = cache[key] = self._compile_block(step.bb, step.mask)
                self.n_closures += len(entry[0])
            step.ops, step.op_pos = entry
            term = step.bb.instructions[-1]
            if isinstance(term, CondBr):
                step.guard = (
                    self._getter(term.cond),
                    step.cond[step.mask].copy(),
                    len(step.bb.instructions) - 1,
                )

    def _getter(self, v: Value):
        if isinstance(v, Constant):
            arr = self._consts.get(v)
            if arr is None:
                ty = v.type
                if isinstance(ty, BoolType):
                    arr = np.full(self.n, bool(v.value))
                else:
                    arr = np.full(self.n, v.value, dtype=_np_type(ty))
                arr.setflags(write=False)
                self._consts[v] = arr
            return lambda: arr
        env = self.env
        return lambda: env[v]

    def _compile_block(
        self, bb: BasicBlock, mask: np.ndarray
    ) -> Tuple[List, Dict[int, int]]:
        ops: List = []
        op_pos: Dict[int, int] = {}
        for idx, inst in enumerate(bb.instructions):
            if inst.is_terminator:
                break
            op_pos[idx] = len(ops)
            op = self._compile_inst(inst, mask, bb, idx)
            if op is not None:
                ops.append(op)
        return ops, op_pos

    def _compile_inst(self, inst, mask: np.ndarray, bb: BasicBlock, idx: int):
        env = self.env
        if isinstance(inst, BinOp):
            f = _BINOPS_FACTORY(inst)
            ga, gb = self._getter(inst.lhs), self._getter(inst.rhs)

            def run_binop():
                env[inst] = f(ga(), gb())
            return run_binop
        if isinstance(inst, (ICmp, FCmp)):
            return self._compile_cmp(inst)
        if isinstance(inst, Load):
            return self._compile_load(inst, mask, bb, idx)
        if isinstance(inst, Store):
            return self._compile_store(inst, mask, bb, idx)
        if isinstance(inst, GEP):
            gb_ = self._getter(inst.base)
            pairs = [
                (self._getter(i), s)
                for i, s in zip(inst.indices, inst.strides())
            ]

            def run_gep():
                out = gb_().astype(np.int64)
                for g, s in pairs:
                    out = out + g().astype(np.int64) * s
                env[inst] = out
            return run_gep
        if isinstance(inst, Call):
            return self._compile_call(inst)
        if isinstance(inst, Cast):
            return self._compile_cast(inst)
        if isinstance(inst, Select):
            gc_, gt_, gf_ = (self._getter(o) for o in inst.operands)
            vec = isinstance(inst.type, VectorType)

            def run_select():
                c = gc_()
                if vec:
                    c = c[..., None]
                env[inst] = np.where(c, gt_(), gf_())
            return run_select
        if isinstance(inst, Alloca):
            return self._compile_alloca(inst)
        if isinstance(inst, ExtractElement):
            return self._compile_extract(inst)
        if isinstance(inst, InsertElement):
            return self._compile_insert(inst)
        raise RuntimeLaunchError(
            f"tape backend cannot compile {type(inst).__name__}"
        )  # pragma: no cover

    def _compile_cmp(self, inst):
        env = self.env
        ga = self._getter(inst.operands[0])
        gb = self._getter(inst.operands[1])
        pred = inst.pred
        unsigned = pred in (CmpPred.ULT, CmpPred.ULE, CmpPred.UGT, CmpPred.UGE)
        if pred in (CmpPred.EQ, CmpPred.OEQ):
            f = lambda a, b: a == b  # noqa: E731
        elif pred in (CmpPred.NE, CmpPred.ONE):
            f = lambda a, b: a != b  # noqa: E731
        elif pred in (CmpPred.SLT, CmpPred.ULT, CmpPred.OLT):
            f = lambda a, b: a < b  # noqa: E731
        elif pred in (CmpPred.SLE, CmpPred.ULE, CmpPred.OLE):
            f = lambda a, b: a <= b  # noqa: E731
        elif pred in (CmpPred.SGT, CmpPred.UGT, CmpPred.OGT):
            f = lambda a, b: a > b  # noqa: E731
        elif pred in (CmpPred.SGE, CmpPred.UGE, CmpPred.OGE):
            f = lambda a, b: a >= b  # noqa: E731
        else:  # pragma: no cover
            raise RuntimeLaunchError(f"unknown predicate {pred}")

        def run_cmp():
            a, b = ga(), gb()
            if unsigned:
                udt = np.dtype(f"u{a.dtype.itemsize}")
                a = a.view(udt)
                b = b.view(udt)
            env[inst] = f(a, b)
        return run_cmp

    def _compile_cast(self, inst: Cast):
        env = self.env
        gv = self._getter(inst.value)
        kind = inst.kind
        ty = inst.type
        from repro.ir.types import IntType, PointerType

        if kind == CastKind.BITCAST:
            if isinstance(ty, PointerType):
                def run_bc_ptr():
                    env[inst] = gv()
                return run_bc_ptr
            dt = _np_type(ty)

            def run_bc():
                v = gv()
                env[inst] = v.view(dt) if v.dtype.itemsize == dt.itemsize else v.astype(dt)
            return run_bc
        if kind in (CastKind.TRUNC, CastKind.SEXT, CastKind.ZEXT):
            dt = _np_type(ty)
            src_ty = inst.value.type
            reinterp = (
                kind == CastKind.ZEXT
                and isinstance(src_ty, IntType)
                and src_ty.signed
            )

            def run_intcast():
                v = gv()
                if reinterp:
                    v = v.view(np.dtype(f"u{v.dtype.itemsize}"))
                env[inst] = v.astype(dt)
            return run_intcast
        if kind in (
            CastKind.SITOFP, CastKind.UITOFP, CastKind.FPEXT, CastKind.FPTRUNC
        ):
            dt = _np_type(ty)

            def run_fpcast():
                env[inst] = gv().astype(dt)
            return run_fpcast
        if kind in (CastKind.FPTOSI, CastKind.FPTOUI):
            dt = _np_type(ty)

            def run_fptoint():
                env[inst] = np.trunc(gv()).astype(dt)
            return run_fptoint
        if kind == CastKind.BOOL_TO_INT:
            dt = _np_type(ty)

            def run_b2i():
                env[inst] = gv().astype(dt)
            return run_b2i
        if kind == CastKind.INT_TO_BOOL:
            def run_i2b():
                env[inst] = gv() != 0
            return run_i2b
        raise RuntimeLaunchError(f"unknown cast {kind}")  # pragma: no cover

    def _compile_alloca(self, inst: Alloca):
        env = self.env
        slots = self.slots
        ty = inst.allocated_type
        n = self.n
        if isinstance(ty, ArrayType):
            size = ty.size
            nbytes = size * n
            lane_off = self._lane_ids * size

            def run_alloca_arr():
                k = self.arena_next
                self.arena_next += 1
                buf = self._private_slab(k, nbytes)
                env[inst] = (
                    buf.base_addr + self.live * nbytes
                )[:, None] + lane_off
            return run_alloca_arr
        if isinstance(ty, VectorType):
            dt = ty.element.numpy_dtype
            count = ty.count

            def run_alloca_vec():
                slots[inst] = np.zeros((len(self.live), n, count), dtype=dt)
            return run_alloca_vec
        dt = _np_type(ty)

        def run_alloca():
            slots[inst] = np.zeros((len(self.live), n), dtype=dt)
        return run_alloca

    def _private_slab(self, k: int, nbytes_per_group: int) -> Buffer:
        while k >= len(self._private_slabs):
            buf = self._new_scratch(self._batch_size * nbytes_per_group)
            self._private_slabs.append((buf, nbytes_per_group))
        buf, size = self._private_slabs[k]
        if size != nbytes_per_group:  # pragma: no cover - schedule-fixed
            raise RuntimeLaunchError("private slab size drifted from tape")
        return buf

    def _new_scratch(self, nbytes: int) -> Buffer:
        sid = self._scratch_next
        self._scratch_next += 1
        buf = Buffer(self.memory, sid, nbytes, "tape-scratch")
        self.memory.buffers[sid] = buf
        self._scratch.append(buf)
        return buf

    def _compile_call(self, inst: Call):
        env = self.env
        if inst.callee == "barrier":
            def run_barrier():
                self.phase += 1
                self.barriers += 1
            return run_barrier
        if inst.callee in ("mem_fence", "printf"):
            return None
        getters = [self._getter(a) for a in inst.args]

        def run_call():
            env[inst] = eval_builtin(inst, [g() for g in getters], self.bctx)
        return run_call

    def _compile_extract(self, inst: ExtractElement):
        env = self.env
        gv = self._getter(inst.vec)
        idx = inst.index
        if isinstance(idx, Constant):
            i = int(idx.value)

            def run_extract_c():
                env[inst] = gv()[..., i]
            return run_extract_c
        gi = self._getter(idx)

        def run_extract():
            vec, iv = gv(), gi()
            if iv.ndim + 1 > vec.ndim:
                vec = np.broadcast_to(vec, iv.shape + (vec.shape[-1],))
            elif iv.ndim + 1 < vec.ndim:
                iv = np.broadcast_to(iv, vec.shape[:-1])
            env[inst] = np.take_along_axis(vec, iv[..., None], axis=-1)[..., 0]
        return run_extract

    def _compile_insert(self, inst: InsertElement):
        env = self.env
        gv = self._getter(inst.vec)
        gval = self._getter(inst.value)
        idx = inst.index
        const_i = int(idx.value) if isinstance(idx, Constant) else None
        gi = None if const_i is not None else self._getter(idx)

        def run_insert():
            vec, val = gv(), gval()
            if val.ndim + 1 > vec.ndim:
                vec = np.broadcast_to(vec, val.shape + (vec.shape[-1],))
            vec = vec.copy()
            if const_i is not None:
                vec[..., const_i] = val
            else:
                iv = np.broadcast_to(gi(), vec.shape[:-1])
                np.put_along_axis(
                    vec, iv[..., None],
                    np.broadcast_to(val, vec.shape[:-1])[..., None], axis=-1,
                )
            env[inst] = vec
        return run_insert

    # -- batched loads/stores ---------------------------------------------
    def _batched_addrs(self, gp, G: int) -> np.ndarray:
        addrs = gp()
        if addrs.ndim == 1:
            addrs = np.broadcast_to(addrs, (G, self.n))
        return addrs

    def _compile_load(self, inst: Load, mask: np.ndarray, bb, idx: int):
        env = self.env
        slots = self.slots
        ptr = inst.ptr
        if isinstance(ptr, Alloca) and not isinstance(
            ptr.allocated_type, ArrayType
        ):
            def run_slot_load():
                env[inst] = slots[ptr].copy()
            return run_slot_load

        gp = self._getter(ptr)
        full = bool(mask.all())
        j0 = int(mask.argmax())
        ty = inst.type
        space = inst.addrspace
        record = self.collect_trace and space != AddressSpace.PRIVATE
        lanes = self._lane_ids[mask]
        lanes.setflags(write=False)
        elem = ty.size
        vec = isinstance(ty, VectorType)
        if vec:
            el_dt = ty.element.numpy_dtype
            kel = el_dt.itemsize
            comp = np.arange(ty.count, dtype=np.int64)
        else:
            dt = _np_type(ty)
            isz = dt.itemsize

        def run_load():
            G = len(self.live)
            if not G:
                return
            addrs = self._batched_addrs(gp, G)
            am = addrs if full else addrs[:, mask]
            ids = am >> OFFSET_BITS
            id0 = int(ids.flat[0])
            bad = (ids != id0).any(axis=1)
            if bad.any():
                keep = self._evict(bad, bb, idx, "buffer mismatch")
                if not len(self.live):
                    return
                addrs = addrs[keep]
                am = am[keep]
                G = len(self.live)
            if full:
                offs = (addrs & OFFSET_MASK).astype(np.int64)
                offs_m = offs
            else:
                safe = np.where(mask, addrs, addrs[:, j0:j0 + 1])
                offs = (safe & OFFSET_MASK).astype(np.int64)
                offs_m = (am & OFFSET_MASK).astype(np.int64)
            if record:
                sid, stride = self.scratch_map.get(id0, (id0, 0))
                self.records.append((
                    space, False, sid, stride, offs_m, lanes, elem,
                    self.phase, inst.id, self.live,
                ))
            buf = self.memory.buffers[id0]
            if vec:
                bidx = (offs // kel)[..., None] + comp
                env[inst] = buf.view(el_dt)[bidx]
            else:
                env[inst] = buf.view(dt)[offs // isz]
        return run_load

    def _compile_store(self, inst: Store, mask: np.ndarray, bb, idx: int):
        slots = self.slots
        ptr = inst.ptr
        gval = self._getter(inst.value)
        n = self.n
        if isinstance(ptr, Alloca) and not isinstance(
            ptr.allocated_type, ArrayType
        ):
            vec_slot = isinstance(ptr.allocated_type, VectorType)
            val_is_vec = isinstance(inst.value.type, VectorType)

            def run_slot_store():
                slot = slots[ptr]
                v = gval()
                if vec_slot:
                    if val_is_vec:
                        v = np.broadcast_to(v, slot.shape)
                        slot[:, mask, :] = v[:, mask, :]
                    else:
                        v = np.broadcast_to(v, slot.shape[:2])
                        slot[:, mask, :] = v[:, mask, None]
                else:
                    v = np.broadcast_to(v, slot.shape)
                    slot[:, mask] = v[:, mask].astype(slot.dtype, copy=False)
            return run_slot_store

        gp = self._getter(ptr)
        ty = inst.value.type
        space = inst.addrspace
        record = self.collect_trace and space != AddressSpace.PRIVATE
        lanes = self._lane_ids[mask]
        lanes.setflags(write=False)
        elem = ty.size
        vec = isinstance(ty, VectorType)
        if vec:
            el_dt = ty.element.numpy_dtype
            kel = el_dt.itemsize
            comp = np.arange(ty.count, dtype=np.int64)
            kc = ty.count
        else:
            dt = _np_type(ty)
            to_u8 = dt == np.dtype(bool)
            if to_u8:
                dt = np.dtype(np.uint8)
            isz = dt.itemsize

        def run_store():
            G = len(self.live)
            if not G:
                return
            v = gval()
            addrs = self._batched_addrs(gp, G)
            am = addrs[:, mask]
            ids = am >> OFFSET_BITS
            id0 = int(ids.flat[0])
            bad = (ids != id0).any(axis=1)
            if bad.any():
                keep = self._evict(bad, bb, idx, "buffer mismatch")
                if not len(self.live):
                    return
                am = am[keep]
                if v.ndim >= 2 + int(vec):
                    v = v[keep]
                G = len(self.live)
            offs = (am & OFFSET_MASK).astype(np.int64)
            if record:
                sid, stride = self.scratch_map.get(id0, (id0, 0))
                self.records.append((
                    space, True, sid, stride, offs, lanes, elem,
                    self.phase, inst.id, self.live,
                ))
            buf = self.memory.buffers[id0]
            if vec:
                bidx = (offs // kel)[..., None] + comp
                v = np.broadcast_to(v, (G, n, kc))
                buf.view(el_dt)[bidx] = v[:, mask]
            else:
                if to_u8:
                    v = v.astype(np.uint8)
                v = np.broadcast_to(v, (G, n))
                buf.view(dt)[offs // isz] = v[:, mask].astype(dt, copy=False)
        return run_store

    # -- eviction ----------------------------------------------------------
    def _evict(
        self, bad: np.ndarray, bb: BasicBlock, inst_idx: int, reason: str
    ) -> np.ndarray:
        for r in np.flatnonzero(bad):
            self._evict_one(int(r), bb, inst_idx, reason)
        keep = ~bad
        self._compact(keep)
        return keep

    def _evict_one(
        self, row: int, bb: BasicBlock, inst_idx: int, reason: str
    ) -> None:
        self.evicted += 1
        slot = int(self.live[row])
        gid_t = self.slot_gids[slot]
        step = self.steps[self.step_idx]
        events.emit(
            "tape_evict",
            kernel=self.fn.name,
            group_id=list(gid_t),
            step=self.step_idx,
            reason=f"{reason} in {bb.name}[{inst_idx}]",
        )

        gt: Optional[GroupTrace] = None
        n_prefix = 0
        if self.collect_trace:
            gt = GroupTrace(gid_t, self.n)
            gt.inst_count = self.inst_count
            gt.barriers = self.barriers
            gt.events = self._split_events(slot)
            n_prefix = len(gt.events)

        # reconstruct the scheduler's pending-dict from the tape prefix
        pending: Dict[BasicBlock, np.ndarray] = {
            self.fn.entry: np.ones(self.n, dtype=bool)
        }
        for s in self.steps[: self.step_idx]:
            pending.pop(s.bb, None)
            for succ, m in s.succ:
                if succ in pending:
                    pending[succ] = pending[succ] | m
                elif m.any():
                    pending[succ] = m
        pending.pop(step.bb, None)

        ctx = WorkItemContext(gid_t, self.lsize, self.gsize)
        ex = GroupExecutor(
            self.fn, ctx, self.memory, self.arg_values,
            self.local_buffers, self.local_arg_buffers, gt,
            private_arena=self.private_arena,
        )
        ex.emit_group_executed = False
        ex.phase = self.phase
        ex.alive = step.alive_before.copy()
        ex._arena_next = self.arena_next
        for v, arr in self.env.items():
            if arr is None:
                continue
            ex.values[v] = (
                arr[row].copy() if arr.ndim == _expected_ndim(v) else arr.copy()
            )
        for a, arr in self.slots.items():
            ex.slots[a] = arr[row].copy()
        ex.resume_block(bb, inst_idx, step.mask.copy(), pending)

        if gt is not None:
            # the resume path traced through the scratch local buffers;
            # map those events back onto the serial arena ids
            for e in gt.events[n_prefix:]:
                m = self.scratch_map.get(e.buffer_id)
                if m is not None:
                    sid, stride = m
                    e.buffer_id = sid
                    e.offsets = e.offsets - slot * stride
        self._done[slot] = gt

    def _compact(self, keep: np.ndarray) -> None:
        for v, arr in self.env.items():
            if arr is not None and arr.ndim == _expected_ndim(v):
                self.env[v] = arr[keep]
        for a, arr in self.slots.items():
            self.slots[a] = arr[keep]
        self.live = self.live[keep]
        self.bctx.compact(keep)

    # -- trace splitting ---------------------------------------------------
    def _split_events(self, slot: int) -> List[MemEvent]:
        """Events of one group (the eviction path: records up to now).

        Consecutive records overwhelmingly share the same ``live``
        array object, so the slot's row index is recomputed only when
        the identity changes instead of per record.
        """
        out: List[MemEvent] = []
        last_ref = None
        pos = -1
        for (space, is_store, sid, stride, offs, lanes, elem,
             phase, inst_id, live_ref) in self.records:
            if live_ref is not last_ref:
                last_ref = live_ref
                p = int(np.searchsorted(live_ref, slot))
                pos = p if p < len(live_ref) and live_ref[p] == slot else -1
            if pos < 0:
                continue
            # codegen element-domain records defer the byte conversion
            # as a lazy ``(element indices, shift)`` pair
            if type(offs) is tuple:
                offs = offs[0] << offs[1]
            row = offs[pos]
            out.append(MemEvent(
                space, is_store, sid,
                row - slot * stride if stride else row,
                lanes, elem, phase, inst_id,
            ))
        return out

    def _split_surviving(self) -> None:
        """Split the batch's records into per-survivor GroupTraces.

        One record-outer pass: each record's rows are dealt to the
        groups named by its ``live`` array directly, so no per-group
        index search happens at all (the searchsorted-per-record cost
        of :meth:`_split_events` times the batch size was the single
        hottest part of replay).
        """
        slots = [int(s) for s in self.live]
        per_slot = split_records(self.records, slots)
        for slot in slots:
            gt = GroupTrace(self.slot_gids[slot], self.n)
            gt.inst_count = self.pilot_inst_count
            gt.barriers = self.pilot_barriers
            gt.events = per_slot[slot]
            self._done[slot] = gt

    # -- batched replay ----------------------------------------------------
    def _reset_batch(self, slot_gids: List[Tuple[int, ...]]) -> None:
        """Reset all per-batch state and bind entry values for the batch."""
        G0 = len(slot_gids)
        self.slot_gids = slot_gids
        self._batch_size = G0
        self.live = np.arange(G0, dtype=np.int64)
        self.env.clear()
        self.slots.clear()
        self.records = []
        self.phase = 0
        self.barriers = 0
        self.inst_count = 0
        self.arena_next = 0
        self._done = {}
        self.scratch_map = {}
        self._scratch = []
        self._scratch_next = _SCRATCH_BASE
        self._private_slabs = []
        self.bctx = _BatchedContext(slot_gids, self.lsize, self.gsize)
        n = self.n

        # argument bindings: group-uniform values stay (n,) exactly as
        # the serial executor builds them; per-group local bases get
        # the batch axis
        for arg, v in self.arg_values.items():
            if isinstance(v, Buffer):
                self.env[arg] = np.full(n, v.base_addr, dtype=np.int64)
            else:
                self.env[arg] = np.full(n, v, dtype=_np_type(arg.type))
        for owner, buf in list(self.local_buffers.items()) + list(
            self.local_arg_buffers.items()
        ):
            nbytes = buf.nbytes
            sbuf = self._new_scratch(G0 * nbytes)
            self.scratch_map[sbuf.id] = (buf.id, nbytes)
            bases = sbuf.base_addr + np.arange(G0, dtype=np.int64) * nbytes
            self.env[owner] = np.broadcast_to(bases[:, None], (G0, n))

    def _apply_guard(self, step: _Step) -> None:
        g = step.guard
        if g is None or not len(self.live):
            return
        getter, expected, term_idx = g
        c = getter()
        if c.ndim == 1:
            cm = np.broadcast_to(c, (len(self.live), self.n))[:, step.mask]
        else:
            cm = c[:, step.mask]
        bad = (cm != expected).any(axis=1)
        if bad.any():
            self._evict(bad, step.bb, term_idx, "branch divergence")

    def _run_steps(self, si0: int, op_start: int, count_first: bool) -> None:
        """Run the tape from step ``si0``, entering its op list at
        ``op_start`` (the codegen divert path re-enters mid-step; the
        diverged group's ``inst_count`` already includes that step when
        ``count_first`` is False)."""
        with np.errstate(all="ignore"):
            for si in range(si0, len(self.steps)):
                step = self.steps[si]
                if not len(self.live):
                    break
                self.step_idx = si
                if count_first or si > si0:
                    self.inst_count += step.weight
                ops = step.ops
                for oi in range(op_start if si == si0 else 0, len(ops)):
                    ops[oi]()
                self._apply_guard(step)

    def _finish_batch(self) -> Dict[int, Optional[GroupTrace]]:
        if self.collect_trace:
            self._split_surviving()
        else:
            for slot in self.live:
                self._done[int(slot)] = None
        return self._done

    def _cleanup_batch(self) -> None:
        for buf in self._scratch:
            self.memory.buffers.pop(buf.id, None)
        self._scratch = []
        self._private_slabs = []

    def replay_batch(
        self, slot_gids: List[Tuple[int, ...]]
    ) -> Dict[int, Optional[GroupTrace]]:
        """Run one batch of groups through the tape; returns slot -> trace."""
        self._reset_batch(slot_gids)
        try:
            self._run_steps(0, 0, True)
            return self._finish_batch()
        finally:
            self._cleanup_batch()


def execute_tape(
    kernel: Function,
    picks: np.ndarray,
    groups_per_dim: Tuple[int, ...],
    gsize: Tuple[int, ...],
    lsize: Tuple[int, ...],
    arg_values: Dict[Argument, object],
    local_buffers: Dict[LocalArray, Buffer],
    local_arg_buffers: Dict[Argument, Buffer],
    memory: Memory,
    private_arena: List[Buffer],
    collect_trace: bool,
    tape_batch: int,
    store: Optional[TraceSpillStore] = None,
) -> Tuple[List[GroupTrace], int]:
    """Execute ``picks`` with the tape backend; the drop-in replacement
    for the serial group loop of :func:`repro.runtime.ndrange.launch`.

    Returns ``(group_traces, work_items)`` — traces in pick order when
    ``collect_trace`` — with buffer side effects equivalent to the
    serial loop for group-independent kernels.
    """
    ndim = len(gsize)

    def gid_of(flat: int) -> Tuple[int, ...]:
        gid = []
        rem = int(flat)
        for d in range(ndim):
            gid.append(rem % groups_per_dim[d])
            rem //= groups_per_dim[d]
        return tuple(gid)

    gids = [gid_of(p) for p in picks]

    # pilot: the reference scheduler + schedule recording, on the very
    # serial-arena buffers a reference launch uses (identical trace ids)
    t0 = time.perf_counter()
    ctx0 = WorkItemContext(gids[0], lsize, gsize)
    pilot_gt = GroupTrace(gids[0], ctx0.n_lanes)
    pilot = _RecordingExecutor(
        kernel, ctx0, memory, arg_values, local_buffers, local_arg_buffers,
        pilot_gt, private_arena=private_arena,
    )
    pilot.run()
    work_items = ctx0.n_lanes
    if store is not None and collect_trace:
        store.adopt(pilot_gt)
    traces: Dict[int, Optional[GroupTrace]] = {
        0: pilot_gt if collect_trace else None
    }

    if len(picks) > 1:
        tape = TapeExecutor(
            kernel, lsize, gsize, arg_values, local_buffers,
            local_arg_buffers, memory, private_arena, collect_trace, pilot,
        )
        events.emit(
            "tape_compile",
            kernel=kernel.name,
            steps=len(tape.steps),
            closures=tape.n_closures,
            wall_ms=(time.perf_counter() - t0) * 1e3,
        )
        t1 = time.perf_counter()
        rest = list(range(1, len(picks)))
        n_batches = 0
        for lo in range(0, len(rest), tape_batch):
            chunk = rest[lo:lo + tape_batch]
            n_batches += 1
            out = tape.replay_batch([gids[i] for i in chunk])
            if store is not None and collect_trace:
                store.adopt_group_lists(out)
            for slot, gt in out.items():
                traces[chunk[slot]] = gt
            work_items += ctx0.n_lanes * len(chunk)
        events.emit(
            "tape_replay",
            kernel=kernel.name,
            groups=len(rest),
            batches=n_batches,
            evicted=tape.evicted,
            wall_ms=(time.perf_counter() - t1) * 1e3,
        )

    for i in range(len(picks)):
        events.emit(
            "group_executed", group_id=list(gids[i]), work_items=ctx0.n_lanes
        )
    group_traces = (
        [traces[i] for i in range(len(picks))] if collect_trace else []
    )
    return group_traces, work_items


def _BINOPS_FACTORY(inst: BinOp):
    """Resolve a BinOp's opcode to a two-argument array function once."""
    op = inst.opcode
    ty = inst.type
    if op in (Opcode.ADD, Opcode.FADD):
        return lambda a, b: a + b
    if op in (Opcode.SUB, Opcode.FSUB):
        return lambda a, b: a - b
    if op in (Opcode.MUL, Opcode.FMUL):
        return lambda a, b: a * b
    if op == Opcode.FDIV:
        return lambda a, b: a / b
    if op in (Opcode.SDIV, Opcode.UDIV):
        return lambda a, b: GroupExecutor._int_div(a, b, ty)
    if op in (Opcode.SREM, Opcode.UREM):
        def rem(a, b):
            q = GroupExecutor._int_div(a, b, ty)
            return a - q * b
        return rem
    if op == Opcode.AND:
        return lambda a, b: a & b
    if op == Opcode.OR:
        return lambda a, b: a | b
    if op == Opcode.XOR:
        def xor(a, b):
            if a.dtype == bool:
                return a ^ b
            return a ^ b.astype(a.dtype)
        return xor
    if op == Opcode.SHL:
        return lambda a, b: a << (b & (a.dtype.itemsize * 8 - 1))
    if op == Opcode.ASHR:
        return lambda a, b: a >> (b & (a.dtype.itemsize * 8 - 1))
    if op == Opcode.LSHR:
        def lshr(a, b):
            udt = np.dtype(f"u{a.dtype.itemsize}")
            return (
                a.view(udt) >> (b & (a.dtype.itemsize * 8 - 1)).view(udt)
            ).view(a.dtype)
        return lshr
    raise RuntimeLaunchError(f"unknown opcode {op}")  # pragma: no cover
