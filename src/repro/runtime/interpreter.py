"""The SIMT work-group interpreter.

One :class:`GroupExecutor` runs one work-group.  Every IR value evaluates
to a numpy array over the group's work-items (the "lanes"), so the
interpreter's inner loop is a loop over *instructions*, not work-items —
the per-element work is vectorised, per the scientific-Python guidance.

Divergent control flow uses lane masks.  Pending blocks are scheduled in
reverse post-order (successors visited false-edge-first when computing
the order), which makes masks reconverge at join points and lets loops
drain fully before their exit blocks run — the property the barrier
check relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CastKind,
    CmpPred,
    CondBr,
    ExtractElement,
    FCmp,
    GEP,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Opcode,
    Ret,
    Select,
    Store,
)
from repro.ir.types import (
    AddressSpace,
    ArrayType,
    BoolType,
    FloatType,
    IntType,
    PointerType,
    Type,
    VectorType,
)
from repro.ir.values import Argument, Constant, LocalArray, Value
from repro.runtime.buffers import Buffer, Memory
from repro.runtime.builtins import WORK_ITEM_QUERIES, WorkItemContext, eval_builtin
from repro.runtime.errors import BarrierDivergenceError, RuntimeLaunchError
from repro.runtime.trace import GroupTrace, MemEvent


def _reverse_postorder(fn: Function) -> Dict[BasicBlock, int]:
    """RPO with successors visited in reverse (false edge first).

    This ordering places loop bodies before loop exits, so min-RPO
    scheduling drains a loop completely before running its exit block.

    Iterative (explicit stack of block/successor-iterator frames) so a
    deep single-chain CFG cannot hit python's recursion limit; the
    visit order is exactly the recursive formulation's.
    """
    seen = {fn.entry}
    post: List[BasicBlock] = []
    stack: List[Tuple[BasicBlock, object]] = [
        (fn.entry, iter(reversed(fn.entry.successors())))
    ]
    while stack:
        bb, succs = stack[-1]
        for succ in succs:
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(reversed(succ.successors()))))
                break
        else:
            post.append(bb)
            stack.pop()
    return {bb: i for i, bb in enumerate(reversed(post))}


def _np_type(ty: Type) -> np.dtype:
    if isinstance(ty, (IntType, FloatType)):
        return ty.numpy_dtype
    if isinstance(ty, BoolType):
        return np.dtype(bool)
    if isinstance(ty, PointerType):
        return np.dtype(np.int64)
    raise TypeError(f"no runtime dtype for {ty}")


class GroupExecutor:
    """Executes one work-group of a kernel launch."""

    def __init__(
        self,
        fn: Function,
        ctx: WorkItemContext,
        memory: Memory,
        arg_values: Dict[Argument, object],
        local_buffers: Dict[LocalArray, Buffer],
        local_arg_buffers: Dict[Argument, Buffer],
        trace: Optional[GroupTrace] = None,
        private_arena: Optional[List[Buffer]] = None,
    ) -> None:
        self.fn = fn
        self.ctx = ctx
        self.memory = memory
        self.trace = trace
        self.n = ctx.n_lanes
        self.values: Dict[Value, np.ndarray] = {}
        self.slots: Dict[Alloca, np.ndarray] = {}
        self.phase = 0
        self.alive = np.ones(self.n, dtype=bool)
        #: cleared by the tape backend for executors that only *finish*
        #: a group (pilot replays and eviction resumes), so each group
        #: still produces exactly one ``group_executed`` event
        self.emit_group_executed = True
        self.rpo = _reverse_postorder(fn)
        self._lane_ids = np.arange(self.n, dtype=np.int64)
        #: buffers allocated for private arrays; freed by the launcher
        self.private_buffers: List[Buffer] = []
        #: launcher-owned buffer pool reused across work-groups: the
        #: k-th alloca execution of each group maps to the k-th entry
        #: (zeroed on reuse), so homogeneous groups allocate only once
        self._arena = private_arena
        self._arena_next = 0
        #: retired-instruction weight per block (casts and GEPs fold into
        #: addressing modes on real ISAs and are not counted)
        self._block_weight: Dict[BasicBlock, int] = {
            bb: sum(
                0 if isinstance(i, (Cast, GEP, Alloca)) else 1
                for i in bb.instructions
            )
            for bb in fn.blocks
        }

        for arg, v in arg_values.items():
            if isinstance(v, Buffer):
                self.values[arg] = np.full(self.n, v.base_addr, dtype=np.int64)
            else:
                dt = _np_type(arg.type)
                self.values[arg] = np.full(self.n, v, dtype=dt)
        for arg, buf in local_arg_buffers.items():
            self.values[arg] = np.full(self.n, buf.base_addr, dtype=np.int64)
        for la, buf in local_buffers.items():
            self.values[la] = np.full(self.n, buf.base_addr, dtype=np.int64)

    # -- value access ----------------------------------------------------------
    def get(self, v: Value) -> np.ndarray:
        if isinstance(v, Constant):
            ty = v.type
            if isinstance(ty, BoolType):
                return np.full(self.n, bool(v.value))
            return np.full(self.n, v.value, dtype=_np_type(ty))
        return self.values[v]

    # -- main loop ---------------------------------------------------------------
    def run(self, pending: Optional[Dict[BasicBlock, np.ndarray]] = None) -> None:
        """Drain the block scheduler to completion.

        ``pending`` injects a mid-flight scheduler state instead of the
        fresh ``{entry: alive}`` start — the tape backend uses it to hand
        a work-group evicted from a batched replay back to this scalar
        path without re-running (and re-applying the side effects of)
        the prefix it already executed.
        """
        from repro.session import events

        if pending is None:
            pending = {self.fn.entry: self.alive.copy()}
        rpo = self.rpo
        while pending:
            bb = min(pending, key=lambda b: rpo.get(b, 1 << 30))
            mask = pending.pop(bb) & self.alive
            if not mask.any():
                continue
            out = self.exec_block(bb, mask)
            for succ, m in out:
                if succ in pending:
                    pending[succ] = pending[succ] | m
                elif m.any():
                    pending[succ] = m
        if self.emit_group_executed:
            events.emit(
                "group_executed",
                group_id=list(self.ctx.group_id),
                work_items=self.n,
            )

    def resume_block(
        self,
        bb: BasicBlock,
        start_index: int,
        mask: np.ndarray,
        pending: Dict[BasicBlock, np.ndarray],
    ) -> None:
        """Finish ``bb`` from instruction ``start_index`` on, then drain.

        The tape backend calls this when a group diverges from the taped
        schedule partway through a block: the instructions before
        ``start_index`` already executed (their effects are applied and
        traced), so only the tail is run here — the block's retired-
        instruction weight was accounted when the block started, exactly
        as :meth:`exec_block` would have.
        """
        for inst in bb.instructions[start_index:]:
            if inst.is_terminator:
                for succ, m in self.exec_terminator(inst, mask):
                    if succ in pending:
                        pending[succ] = pending[succ] | m
                    elif m.any():
                        pending[succ] = m
                self.run(pending)
                return
            self.exec_inst(inst, mask)
        raise RuntimeLaunchError(f"block {bb.name} has no terminator")

    def exec_block(self, bb: BasicBlock, mask: np.ndarray):
        if self.trace is not None:
            self.trace.inst_count += self._block_weight[bb] * int(mask.sum())
        for inst in bb.instructions:
            if inst.is_terminator:
                return self.exec_terminator(inst, mask)
            self.exec_inst(inst, mask)
        raise RuntimeLaunchError(f"block {bb.name} has no terminator")

    def exec_terminator(self, inst: Instruction, mask: np.ndarray):
        if isinstance(inst, Br):
            return [(inst.target, mask)]
        if isinstance(inst, CondBr):
            cond = self.get(inst.cond)
            t = mask & cond
            f = mask & ~cond
            return [(inst.if_true, t), (inst.if_false, f)]
        if isinstance(inst, Ret):
            self.alive &= ~mask
            return []
        raise RuntimeLaunchError(f"unknown terminator {inst!r}")

    # -- per-instruction evaluation -------------------------------------------------
    def exec_inst(self, inst: Instruction, mask: np.ndarray) -> None:
        if isinstance(inst, BinOp):
            self.values[inst] = self._binop(inst)
        elif isinstance(inst, (ICmp, FCmp)):
            self.values[inst] = self._cmp(inst)
        elif isinstance(inst, Load):
            self.values[inst] = self._load(inst, mask)
        elif isinstance(inst, Store):
            self._store(inst, mask)
        elif isinstance(inst, GEP):
            self.values[inst] = self._gep(inst)
        elif isinstance(inst, Call):
            self._call(inst, mask)
        elif isinstance(inst, Cast):
            self.values[inst] = self._cast(inst)
        elif isinstance(inst, Select):
            c, t, f = (self.get(o) for o in inst.operands)
            if t.ndim == 2:
                c = c[:, None]
            self.values[inst] = np.where(c, t, f)
        elif isinstance(inst, Alloca):
            self._alloca(inst)
        elif isinstance(inst, ExtractElement):
            vec = self.get(inst.vec)
            idx = inst.index
            if isinstance(idx, Constant):
                self.values[inst] = vec[:, int(idx.value)]
            else:
                iv = self.get(idx)
                self.values[inst] = np.take_along_axis(vec, iv[:, None], axis=1)[:, 0]
        elif isinstance(inst, InsertElement):
            vec = self.get(inst.vec).copy()
            val = self.get(inst.value)
            idx = inst.index
            if isinstance(idx, Constant):
                vec[:, int(idx.value)] = val
            else:
                iv = self.get(idx)
                np.put_along_axis(vec, iv[:, None], val[:, None], axis=1)
            self.values[inst] = vec
        else:  # pragma: no cover
            raise RuntimeLaunchError(f"cannot execute {type(inst).__name__}")

    # -- arithmetic ----------------------------------------------------------------
    def _binop(self, inst: BinOp) -> np.ndarray:
        a = self.get(inst.lhs)
        b = self.get(inst.rhs)
        op = inst.opcode
        with np.errstate(all="ignore"):
            if op in (Opcode.ADD, Opcode.FADD):
                return a + b
            if op in (Opcode.SUB, Opcode.FSUB):
                return a - b
            if op in (Opcode.MUL, Opcode.FMUL):
                return a * b
            if op == Opcode.FDIV:
                return a / b
            if op in (Opcode.SDIV, Opcode.UDIV):
                return self._int_div(a, b, inst.type)
            if op in (Opcode.SREM, Opcode.UREM):
                q = self._int_div(a, b, inst.type)
                return a - q * b
            if op == Opcode.AND:
                return a & b
            if op == Opcode.OR:
                return a | b
            if op == Opcode.XOR:
                if a.dtype == bool:
                    return a ^ b
                return a ^ b.astype(a.dtype)
            if op == Opcode.SHL:
                return a << (b & (a.dtype.itemsize * 8 - 1))
            if op == Opcode.ASHR:
                return a >> (b & (a.dtype.itemsize * 8 - 1))
            if op == Opcode.LSHR:
                udt = np.dtype(f"u{a.dtype.itemsize}")
                return (a.view(udt) >> (b & (a.dtype.itemsize * 8 - 1)).view(udt)).view(
                    a.dtype
                )
        raise RuntimeLaunchError(f"unknown opcode {op}")  # pragma: no cover

    @staticmethod
    def _int_div(a: np.ndarray, b: np.ndarray, ty: Type) -> np.ndarray:
        """C-style truncating integer division (numpy // floors)."""
        safe_b = np.where(b == 0, 1, b)
        q = a // safe_b
        r = a - q * safe_b
        adjust = (r != 0) & ((a < 0) != (safe_b < 0))
        return (q + adjust).astype(a.dtype)

    def _cmp(self, inst) -> np.ndarray:
        a = self.get(inst.operands[0])
        b = self.get(inst.operands[1])
        pred = inst.pred
        if pred in (CmpPred.ULT, CmpPred.ULE, CmpPred.UGT, CmpPred.UGE):
            udt = np.dtype(f"u{a.dtype.itemsize}")
            a = a.view(udt)
            b = b.view(udt)
        with np.errstate(invalid="ignore"):
            if pred in (CmpPred.EQ, CmpPred.OEQ):
                return a == b
            if pred in (CmpPred.NE, CmpPred.ONE):
                return a != b
            if pred in (CmpPred.SLT, CmpPred.ULT, CmpPred.OLT):
                return a < b
            if pred in (CmpPred.SLE, CmpPred.ULE, CmpPred.OLE):
                return a <= b
            if pred in (CmpPred.SGT, CmpPred.UGT, CmpPred.OGT):
                return a > b
            if pred in (CmpPred.SGE, CmpPred.UGE, CmpPred.OGE):
                return a >= b
        raise RuntimeLaunchError(f"unknown predicate {pred}")  # pragma: no cover

    def _cast(self, inst: Cast) -> np.ndarray:
        v = self.get(inst.value)
        kind = inst.kind
        ty = inst.type
        if kind == CastKind.BITCAST:
            if isinstance(ty, PointerType):
                return v  # pointer bitcasts keep the encoded address
            dt = _np_type(ty)
            if v.dtype.itemsize == dt.itemsize:
                return v.view(dt)
            return v.astype(dt)
        if kind in (CastKind.TRUNC, CastKind.SEXT, CastKind.ZEXT):
            src_ty = inst.value.type
            if kind == CastKind.ZEXT and isinstance(src_ty, IntType) and src_ty.signed:
                v = v.view(np.dtype(f"u{v.dtype.itemsize}"))
            return v.astype(_np_type(ty))
        if kind in (CastKind.SITOFP, CastKind.UITOFP, CastKind.FPEXT, CastKind.FPTRUNC):
            return v.astype(_np_type(ty))
        if kind in (CastKind.FPTOSI, CastKind.FPTOUI):
            with np.errstate(all="ignore"):
                return np.trunc(v).astype(_np_type(ty))
        if kind == CastKind.BOOL_TO_INT:
            return v.astype(_np_type(ty))
        if kind == CastKind.INT_TO_BOOL:
            return v != 0
        raise RuntimeLaunchError(f"unknown cast {kind}")  # pragma: no cover

    # -- memory ---------------------------------------------------------------------
    def _alloca(self, inst: Alloca) -> None:
        ty = inst.allocated_type
        if isinstance(ty, ArrayType):
            # real per-work-item memory (addressable with GEP)
            size = ty.size
            nbytes = size * self.n
            if self._arena is not None:
                idx = self._arena_next
                self._arena_next += 1
                if idx < len(self._arena) and len(self._arena[idx].data) == nbytes:
                    buf = self._arena[idx]
                    buf.data[:] = 0  # fresh-allocation semantics
                else:
                    buf = self.memory.alloc(
                        nbytes, f"private:{inst.name or inst.id}"
                    )
                    if idx < len(self._arena):
                        self.memory.free(self._arena[idx])
                        self._arena[idx] = buf
                    else:
                        self._arena.append(buf)
            else:
                buf = self.memory.alloc(nbytes, f"private:{inst.name or inst.id}")
                self.private_buffers.append(buf)
            self.values[inst] = buf.base_addr + self._lane_ids * size
            return
        if isinstance(ty, VectorType):
            self.slots[inst] = np.zeros((self.n, ty.count), dtype=ty.element.numpy_dtype)
        else:
            self.slots[inst] = np.zeros(self.n, dtype=_np_type(ty))
        self.values[inst] = None  # register-allocated slot; loads special-cased

    def _gep(self, inst: GEP) -> np.ndarray:
        addr = self.get(inst.base)
        strides = inst.strides()
        out = addr.astype(np.int64, copy=True)
        for idx, stride in zip(inst.indices, strides):
            iv = self.get(idx)
            out += iv.astype(np.int64) * stride
        return out

    def _slot_for(self, ptr: Value) -> Optional[np.ndarray]:
        if isinstance(ptr, Alloca) and ptr in self.slots:
            return self.slots[ptr]
        return None

    def _load(self, inst: Load, mask: np.ndarray) -> np.ndarray:
        slot = self._slot_for(inst.ptr)
        if slot is not None:
            return slot.copy() if slot.ndim == 2 else slot.copy()
        addrs = self.get(inst.ptr)
        buf_id, offs = Memory.split(np.where(mask, addrs, addrs[mask.argmax()] if mask.any() else 0))
        buf = self.memory.buffers[buf_id]
        ty = inst.type
        self._record(inst, buf_id, offs, mask, is_store=False)
        if isinstance(ty, VectorType):
            dt = ty.element.numpy_dtype
            k = dt.itemsize
            base = offs // k
            lanes = np.arange(ty.count, dtype=np.int64)
            idx = base[:, None] + lanes[None, :]
            return buf.view(dt)[idx]
        dt = _np_type(ty)
        return buf.view(dt)[offs // dt.itemsize]

    def _store(self, inst: Store, mask: np.ndarray) -> None:
        value = self.get(inst.value)
        slot = self._slot_for(inst.ptr)
        if slot is not None:
            if slot.ndim == 2:
                slot[mask, :] = value[mask, :] if value.ndim == 2 else value[mask, None]
            else:
                slot[mask] = np.broadcast_to(value, (self.n,))[mask].astype(
                    slot.dtype, copy=False
                )
            return
        addrs = self.get(inst.ptr)
        sel = addrs[mask]
        if len(sel) == 0:
            return
        buf_id, offs = Memory.split(sel)
        buf = self.memory.buffers[buf_id]
        ty = inst.value.type
        self._record(inst, buf_id, offs, mask, is_store=True, already_masked=True)
        if isinstance(ty, VectorType):
            dt = ty.element.numpy_dtype
            k = dt.itemsize
            idx = (offs // k)[:, None] + np.arange(ty.count, dtype=np.int64)[None, :]
            buf.view(dt)[idx] = value[mask]
            return
        dt = _np_type(ty)
        if dt == np.dtype(bool):
            dt = np.dtype(np.uint8)
            value = value.astype(np.uint8)
        buf.view(dt)[offs // dt.itemsize] = value[mask].astype(dt, copy=False)

    def _record(
        self,
        inst: Instruction,
        buf_id: int,
        offs: np.ndarray,
        mask: np.ndarray,
        is_store: bool,
        already_masked: bool = False,
    ) -> None:
        if self.trace is None:
            return
        space = inst.addrspace  # type: ignore[attr-defined]
        if space == AddressSpace.PRIVATE:
            return  # private slots/arrays model registers/stack; not traced
        lanes = self._lane_ids[mask]
        offsets = offs if already_masked else offs[mask]
        ty = inst.type if isinstance(inst, Load) else inst.value.type  # type: ignore[attr-defined]
        self.trace.events.append(
            MemEvent(
                space=space,
                is_store=is_store,
                buffer_id=buf_id,
                offsets=offsets.copy(),
                lanes=lanes.copy(),
                elem_size=ty.size,
                phase=self.phase,
                inst_id=inst.id,
            )
        )

    # -- calls ------------------------------------------------------------------------
    def _call(self, inst: Call, mask: np.ndarray) -> None:
        if inst.callee == "barrier":
            if not np.array_equal(mask, self.alive):
                # diagnose before touching any state: the failing path
                # must not advance the phase or the trace barrier count
                arrived = self._lane_ids[mask]
                missing = self._lane_ids[self.alive & ~mask]

                def _ids(a: np.ndarray) -> str:
                    shown = ", ".join(str(int(i)) for i in a[:8])
                    return f"{{{shown}{', ...' if a.size > 8 else ''}}}"

                raise BarrierDivergenceError(
                    f"barrier in {self.fn.name} reached by "
                    f"{int(mask.sum())}/{int(self.alive.sum())} live work-items "
                    f"of group {self.ctx.group_id} (phase {self.phase}): "
                    f"arrived={_ids(arrived)} missing={_ids(missing)}",
                    function=self.fn.name,
                    group_id=self.ctx.group_id,
                    phase=self.phase,
                    arrived=arrived.tolist(),
                    missing=missing.tolist(),
                )
            self.phase += 1
            if self.trace is not None:
                self.trace.barriers += 1
            return
        if inst.callee in ("mem_fence", "printf"):
            return
        args = [self.get(a) for a in inst.args]
        self.values[inst] = eval_builtin(inst, args, self.ctx)
