"""NDRange kernel launch: the host-side API of the runtime.

``launch(kernel, global_size, local_size, args=...)`` plays the role of
``clEnqueueNDRangeKernel``: it decomposes the index space into
work-groups, allocates ``__local`` memory per group, executes every group
through the SIMT interpreter, and (optionally) returns a
:class:`~repro.runtime.trace.KernelTrace` for the performance models.

``sample_groups`` limits tracing *and execution* to an evenly spread
subset of work-groups — used by the performance models, which extrapolate
from homogeneous groups (set it only when the output buffers don't
matter).

``workers=N`` shards the launch over N worker processes (contiguous
ranges of the canonical pick list, merged back in shard order); the
result is bit-identical to serial execution for kernels whose
work-groups are independent — the contract enforced by the
differential suite (see :mod:`repro.parallel` and DESIGN.md §9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ir.function import Function
from repro.session import events
from repro.ir.types import AddressSpace, PointerType
from repro.ir.values import Argument, LocalArray
from repro.parallel.engine import resolve_workers
from repro.parallel.sharding import select_groups
from repro.runtime.buffers import Buffer, Memory
from repro.runtime.builtins import WorkItemContext
from repro.runtime.errors import RuntimeLaunchError
from repro.runtime.interpreter import GroupExecutor
from repro.runtime.trace import GroupTrace, KernelTrace

ArgValue = Union[Buffer, int, float, bool]


@dataclass
class LaunchResult:
    trace: Optional[KernelTrace]
    groups_executed: int
    work_items: int


def _normalize(size: Sequence[int]) -> Tuple[int, ...]:
    t = tuple(int(s) for s in size)
    if not 1 <= len(t) <= 3 or any(s <= 0 for s in t):
        raise RuntimeLaunchError(f"bad NDRange size {size}")
    return t


def launch(
    kernel: Function,
    global_size: Sequence[int],
    local_size: Sequence[int],
    args: Dict[str, ArgValue],
    memory: Optional[Memory] = None,
    local_arg_sizes: Optional[Dict[str, int]] = None,
    collect_trace: bool = False,
    sample_groups: Optional[int] = None,
    workers: Optional[int] = None,
    _group_slice: Optional[Tuple[int, int]] = None,
) -> LaunchResult:
    """Execute ``kernel`` over the NDRange.

    ``args`` maps kernel parameter names to :class:`Buffer` objects
    (pointer parameters) or python scalars.  ``local_arg_sizes`` gives
    byte sizes for ``__local`` *pointer parameters* (dynamic local
    memory, set on real OpenCL via ``clSetKernelArg(..., NULL)``).

    ``sample_groups`` must be >= 1; the groups actually executed are an
    evenly spread subset of exactly ``min(sample_groups, total_groups)``
    groups (the linspace picks are strictly increasing once rounded, so
    deduplication never shrinks the subset).  The realised count is
    reported as ``LaunchResult.groups_executed`` and, when tracing, as
    ``KernelTrace.sampled_groups``.

    ``workers`` (default: ``$REPRO_WORKERS``, then 1) shards the
    executed groups over that many processes; results are bit-identical
    to ``workers=1``.  Bad values raise :class:`RuntimeLaunchError`; an
    unavailable pool silently falls back to serial execution.

    ``_group_slice`` is the engine-internal half-open range of the pick
    list a worker shard executes; user code never passes it.

    Local and private (``alloca``) arenas are allocated once and reused
    (re-zeroed) across work-groups — group semantics are identical to a
    fresh allocation per group, without the allocator churn.
    """
    if not kernel.is_kernel:
        raise RuntimeLaunchError(f"{kernel.name} is not a kernel")
    try:
        n_workers = resolve_workers(workers)
    except ValueError as exc:
        raise RuntimeLaunchError(str(exc)) from None
    gsize = _normalize(global_size)
    lsize = _normalize(local_size)
    if len(gsize) != len(lsize):
        raise RuntimeLaunchError("global/local dimensionality mismatch")
    for g, l in zip(gsize, lsize):
        if g % l:
            raise RuntimeLaunchError(
                f"global size {gsize} not divisible by local size {lsize}"
            )

    if memory is None:
        # infer the memory registry from the first buffer argument
        for v in args.values():
            if isinstance(v, Buffer):
                memory = v.mem
                break
        else:
            memory = Memory()

    # bind arguments
    arg_values: Dict[Argument, ArgValue] = {}
    local_ptr_args = []
    for a in kernel.args:
        if a.name not in args:
            if (
                isinstance(a.type, PointerType)
                and a.type.addrspace == AddressSpace.LOCAL
            ):
                local_ptr_args.append(a)
                continue
            raise RuntimeLaunchError(f"missing kernel argument {a.name!r}")
        v = args[a.name]
        if isinstance(a.type, PointerType):
            if a.type.addrspace == AddressSpace.LOCAL:
                local_ptr_args.append(a)
                continue
            if not isinstance(v, Buffer):
                raise RuntimeLaunchError(f"argument {a.name!r} needs a Buffer")
        arg_values[a] = v
    unknown = set(args) - {a.name for a in kernel.args}
    if unknown:
        raise RuntimeLaunchError(f"unknown kernel arguments: {sorted(unknown)}")
    for a in local_ptr_args:
        if not local_arg_sizes or a.name not in local_arg_sizes:
            raise RuntimeLaunchError(
                f"__local pointer argument {a.name!r} needs an entry in local_arg_sizes"
            )

    ndim = len(gsize)
    groups_per_dim = tuple(gsize[d] // lsize[d] for d in range(ndim))
    total_groups = int(np.prod(groups_per_dim))

    # which groups to execute (one shared definition — worker shards
    # recompute the identical pick list from the same inputs)
    try:
        picks = select_groups(total_groups, sample_groups)
    except ValueError as exc:
        raise RuntimeLaunchError(str(exc)) from None

    t_start = time.perf_counter()
    if _group_slice is None:
        events.emit(
            "launch_start",
            kernel=kernel.name,
            global_size=list(gsize),
            local_size=list(lsize),
            total_groups=total_groups,
            workers=n_workers,
        )

    if _group_slice is not None:
        lo, hi = _group_slice
        if not (0 <= lo < hi <= len(picks)):
            raise RuntimeLaunchError(
                f"_group_slice {_group_slice} outside picks [0, {len(picks)})"
            )
        picks = picks[lo:hi]
    elif n_workers > 1:
        from repro.parallel.engine import parallel_launch

        result = parallel_launch(
            kernel, gsize, lsize, args, memory, local_arg_sizes,
            collect_trace, sample_groups, picks, total_groups, n_workers,
        )
        if result is not None:
            events.emit(
                "launch_end",
                kernel=kernel.name,
                groups_executed=result.groups_executed,
                work_items=result.work_items,
                wall_ms=(time.perf_counter() - t_start) * 1e3,
                error="",
            )
            return result
        # pool unavailable or payload not shippable -> serial fallback

    from repro.session import current_session

    session = current_session()
    backend = str(session.get("exec_backend"))

    # out-of-core trace handling: every collected GroupTrace is adopted
    # by a spill store that keeps resident event bytes under
    # $REPRO_TRACE_SPILL_MB, compressing the oldest batches to disk and
    # streaming them back transparently on access
    store = None
    if collect_trace:
        from repro.runtime.trace import TraceSpillStore

        store = TraceSpillStore(
            int(session.get("trace_spill_mb")) * 1024 * 1024,
            kernel=kernel.name,
        )

    # __local and private (alloca) arenas are owned by the launch and
    # reused (re-zeroed) across groups instead of alloc/free per group;
    # the finally block returns them to Memory even when a group faults
    # mid-sweep, so an aborted launch never leaks arena buffers
    local_buffers = local_arg_buffers = None
    private_arena: list = []
    group_traces: list = []
    work_items = 0
    try:
        local_buffers = {
            la: memory.alloc(la.nbytes, f"local:{la.name}")
            for la in kernel.local_arrays
        }
        local_arg_buffers = {
            a: memory.alloc(local_arg_sizes[a.name], f"local:{a.name}")
            for a in local_ptr_args
        }

        if backend == "tape" and len(picks) > 1:
            from repro.runtime.tape import execute_tape

            group_traces, work_items = execute_tape(
                kernel, picks, groups_per_dim, gsize, lsize, arg_values,
                local_buffers, local_arg_buffers, memory, private_arena,
                collect_trace, int(session.get("tape_batch")), store=store,
            )
        elif backend == "codegen" and len(picks) > 1:
            from repro.runtime.codegen import execute_codegen

            cache_dir = session.get("codegen_cache_dir")
            group_traces, work_items = execute_codegen(
                kernel, picks, groups_per_dim, gsize, lsize, arg_values,
                local_buffers, local_arg_buffers, memory, private_arena,
                collect_trace, int(session.get("tape_batch")),
                cache_dir=str(cache_dir) if cache_dir else None, store=store,
            )
        else:
            for i, flat in enumerate(picks):
                gid = []
                rem = int(flat)
                for d in range(ndim):
                    gid.append(rem % groups_per_dim[d])
                    rem //= groups_per_dim[d]
                gid_t = tuple(gid)

                ctx = WorkItemContext(gid_t, lsize, gsize)
                work_items += ctx.n_lanes

                if i:
                    for buf in local_buffers.values():
                        buf.data[:] = 0
                    for buf in local_arg_buffers.values():
                        buf.data[:] = 0

                gt = GroupTrace(gid_t, ctx.n_lanes) if collect_trace else None
                ex = GroupExecutor(
                    kernel, ctx, memory, arg_values, local_buffers,
                    local_arg_buffers, gt, private_arena=private_arena,
                )
                ex.run()
                if gt is not None:
                    if store is not None:
                        store.adopt(gt)
                    group_traces.append(gt)
    except Exception as exc:
        # the trace of a failed launch is never returned: close the
        # spill store now so its anonymous spill fd does not survive
        # until garbage collection (the arenas below are freed the same
        # eager way)
        if store is not None:
            store.close()
        if _group_slice is None:
            events.emit(
                "launch_end",
                kernel=kernel.name,
                groups_executed=0,
                work_items=work_items,
                wall_ms=(time.perf_counter() - t_start) * 1e3,
                error=f"{type(exc).__name__}: {exc}",
            )
        raise
    except BaseException:
        # KeyboardInterrupt/SystemExit: no launch_end event (the launch
        # was interrupted, not failed), but the spill fd still must go
        if store is not None:
            store.close()
        raise
    finally:
        for buf in (local_buffers or {}).values():
            memory.free(buf)
        for buf in (local_arg_buffers or {}).values():
            memory.free(buf)
        for buf in private_arena:
            memory.free(buf)

    trace = (
        KernelTrace(group_traces, total_groups, lsize, gsize) if collect_trace else None
    )
    if _group_slice is None:
        events.emit(
            "launch_end",
            kernel=kernel.name,
            groups_executed=len(picks),
            work_items=work_items,
            wall_ms=(time.perf_counter() - t_start) * 1e3,
            error="",
        )
    return LaunchResult(trace=trace, groups_executed=len(picks), work_items=work_items)
