"""Runtime diagnostics."""

from typing import Optional, Sequence, Tuple


class RuntimeLaunchError(Exception):
    """Bad launch configuration or kernel argument binding."""


class BarrierDivergenceError(Exception):
    """A barrier was reached by only a subset of a work-group's work-items.

    This is undefined behaviour in OpenCL; the interpreter reports it
    instead of hanging like real hardware would.  The structured fields
    say *which* group diverged and which work-items did / did not reach
    the barrier — the analyzer's dynamic divergence findings are built
    from them.
    """

    def __init__(
        self,
        message: str,
        *,
        function: Optional[str] = None,
        group_id: Optional[Tuple[int, ...]] = None,
        phase: Optional[int] = None,
        arrived: Optional[Sequence[int]] = None,
        missing: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(message)
        self.function = function
        self.group_id = tuple(group_id) if group_id is not None else None
        self.phase = phase
        self.arrived = list(arrived) if arrived is not None else None
        self.missing = list(missing) if missing is not None else None


class MemoryFault(Exception):
    """An access outside any allocated buffer."""
