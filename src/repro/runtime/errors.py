"""Runtime diagnostics."""


class RuntimeLaunchError(Exception):
    """Bad launch configuration or kernel argument binding."""


class BarrierDivergenceError(Exception):
    """A barrier was reached by only a subset of a work-group's work-items.

    This is undefined behaviour in OpenCL; the interpreter reports it
    instead of hanging like real hardware would.
    """


class MemoryFault(Exception):
    """An access outside any allocated buffer."""
