"""Differential-equivalence layer: serial vs parallel, field by field.

The parallel engine's contract is *bit-identity*: a sharded launch must
produce exactly the trace, outputs and model cycles a serial launch
produces.  This module is the single arbiter of that contract — the
differential test suite, ``repro bench`` and the matrix harness all
compare through it, so a violation always surfaces as the same readable
"first mismatch" description instead of a deep assertion failure.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.runtime.trace import KernelTrace, MemEvent


class DifferentialMismatch(AssertionError):
    """Serial and parallel executions disagreed (with the field that did)."""


def _event_mismatch(a: MemEvent, b: MemEvent) -> Optional[str]:
    for attr in ("space", "is_store", "buffer_id", "elem_size", "phase", "inst_id"):
        va, vb = getattr(a, attr), getattr(b, attr)
        if va != vb:
            return f"{attr} {va!r} != {vb!r}"
    if not np.array_equal(a.offsets, b.offsets):
        return f"offsets differ (serial {a.offsets!r} vs parallel {b.offsets!r})"
    if not np.array_equal(a.lanes, b.lanes):
        return f"lanes differ (serial {a.lanes!r} vs parallel {b.lanes!r})"
    return None


def trace_mismatch(a: KernelTrace, b: KernelTrace) -> Optional[str]:
    """First difference between two kernel traces, or ``None`` if equal."""
    for attr in ("total_groups", "local_size", "global_size"):
        va, vb = getattr(a, attr), getattr(b, attr)
        if tuple(np.atleast_1d(va)) != tuple(np.atleast_1d(vb)):
            return f"{attr}: {va!r} != {vb!r}"
    if len(a.groups) != len(b.groups):
        return f"group count: {len(a.groups)} != {len(b.groups)}"
    for gi, (ga, gb) in enumerate(zip(a.groups, b.groups)):
        for attr in ("group_id", "work_items", "inst_count", "barriers"):
            va, vb = getattr(ga, attr), getattr(gb, attr)
            if va != vb:
                return f"group[{gi}].{attr}: {va!r} != {vb!r}"
        if len(ga.events) != len(gb.events):
            return (
                f"group[{gi}] {ga.group_id}: event count "
                f"{len(ga.events)} != {len(gb.events)}"
            )
        for ei, (ea, eb) in enumerate(zip(ga.events, gb.events)):
            why = _event_mismatch(ea, eb)
            if why is not None:
                return f"group[{gi}] {ga.group_id} event[{ei}]: {why}"
    return None


def assert_traces_equal(
    serial: KernelTrace, parallel: KernelTrace, context: str = ""
) -> None:
    why = trace_mismatch(serial, parallel)
    if why is not None:
        prefix = f"{context}: " if context else ""
        raise DifferentialMismatch(f"{prefix}trace mismatch at {why}")


def assert_outputs_equal(
    serial: Mapping[str, np.ndarray],
    parallel: Mapping[str, np.ndarray],
    context: str = "",
) -> None:
    """Exact (bitwise) comparison of output buffers — no tolerances."""
    prefix = f"{context}: " if context else ""
    if set(serial) != set(parallel):
        raise DifferentialMismatch(
            f"{prefix}output names {sorted(serial)} != {sorted(parallel)}"
        )
    for name in sorted(serial):
        a, b = serial[name], parallel[name]
        if a.dtype != b.dtype or a.shape != b.shape:
            raise DifferentialMismatch(
                f"{prefix}output {name!r}: {a.dtype}{a.shape} != {b.dtype}{b.shape}"
            )
        if not np.array_equal(a.view(np.uint8), b.view(np.uint8)):
            bad = np.flatnonzero(a.view(np.uint8).ravel() != b.view(np.uint8).ravel())
            raise DifferentialMismatch(
                f"{prefix}output {name!r} differs at {len(bad)} bytes "
                f"(first at byte {int(bad[0])})"
            )


def assert_cycles_equal(
    serial: float, parallel: float, context: str = ""
) -> None:
    if not (serial == parallel):
        prefix = f"{context}: " if context else ""
        raise DifferentialMismatch(
            f"{prefix}cycle counts diverged: serial {serial!r} != parallel {parallel!r}"
        )


def assert_matrix_equal(
    serial: Mapping[str, Mapping[str, float]],
    parallel: Mapping[str, Mapping[str, float]],
    context: str = "",
) -> None:
    """Exact comparison of device->app normalised-performance grids."""
    prefix = f"{context}: " if context else ""
    if set(serial) != set(parallel):
        raise DifferentialMismatch(
            f"{prefix}device sets differ: {sorted(serial)} != {sorted(parallel)}"
        )
    for dev in sorted(serial):
        if set(serial[dev]) != set(parallel[dev]):
            raise DifferentialMismatch(
                f"{prefix}{dev}: app sets differ: "
                f"{sorted(serial[dev])} != {sorted(parallel[dev])}"
            )
        for app, v in serial[dev].items():
            w = parallel[dev][app]
            if v != w:
                raise DifferentialMismatch(
                    f"{prefix}{dev}/{app}: {v!r} != {w!r}"
                )
