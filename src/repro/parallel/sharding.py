"""Deterministic work partitioning for the parallel experiment engine.

Pure functions only — no pools, no processes, no randomness.  ``launch``
shards its canonical pick list into contiguous ranges; workers execute
their range and the merge reassembles the results in canonical group
order *regardless of the order workers finished in*.  Keeping this
logic free of pool mechanics is what makes it property-testable
(``tests/test_parallel_merge_properties.py`` fuzzes it over seeds).

Under the shared-memory plane (``pool_shm``, DESIGN.md §17) only traces
still need this order-restoring merge: shards write their owned output
ranges directly into the published arena, so the buffer "merge" is a
single readback copy — a no-op reassembly of views, not a per-shard
diff application.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def select_groups(total_groups: int, sample_groups=None) -> np.ndarray:
    """The canonical flat-group pick list of a launch.

    With ``sample_groups`` set, the picks are an evenly spread subset of
    exactly ``min(sample_groups, total_groups)`` groups (the linspace
    picks are strictly increasing once rounded, so deduplication never
    shrinks the subset).  This is *the* definition shared by the serial
    loop, every worker shard and the property tests — one formula, so a
    worker can recompute its parent's picks bit-for-bit.
    """
    if sample_groups is not None:
        if sample_groups < 1:
            raise ValueError(f"sample_groups must be >= 1, got {sample_groups}")
        if sample_groups < total_groups:
            return np.unique(
                np.linspace(0, total_groups - 1, sample_groups).round().astype(int)
            )
    return np.arange(total_groups)


def shard_ranges(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``shards`` contiguous ranges.

    Ranges are half-open ``(start, stop)`` index pairs, in order, covering
    every index exactly once, with sizes differing by at most one (larger
    shards first).  Empty ranges are never returned, so the result has
    ``min(shards, n_items)`` entries.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    n_shards = min(shards, n_items)
    bounds = np.linspace(0, n_items, n_shards + 1).round().astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_shards)
        if bounds[i] < bounds[i + 1]
    ]


def describe_span(picks: np.ndarray, lo: int, hi: int) -> str:
    """Human-readable flat-group span of one shard — the range a launch
    error names when that shard's worker fails."""
    return f"flat groups {int(picks[lo])}..{int(picks[hi - 1])} (picks {lo}:{hi})"


def merge_group_traces(shard_results: Sequence[Tuple[int, Sequence]]) -> List:
    """Reassemble per-shard ``GroupTrace`` lists in canonical order.

    ``shard_results`` is a sequence of ``(shard_index, traces)`` pairs in
    *any* order (workers finish when they finish).  Because shards are
    contiguous ranges of the canonical pick list, sorting by shard index
    and concatenating restores exactly the serial trace order.  The sort
    key is the shard index alone — indices are unique by construction,
    so the merge needs no further tie-breaking and no RNG.
    """
    indices = [idx for idx, _ in shard_results]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices in merge: {sorted(indices)}")
    merged: List = []
    for _, traces in sorted(shard_results, key=lambda pair: pair[0]):
        merged.extend(traces)
    return merged
