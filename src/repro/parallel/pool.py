"""The process-wide persistent worker pool.

Every fan-out in the system — sharded launches, the experiment matrix,
search candidate scoring, tune labeling, fuzz campaigns — used to build
its own ``ProcessPoolExecutor`` and tear it down per call, paying the
fork plus a cold interpreter in every worker each time.  This module
owns **one** warm pool for the whole process: the first fan-out forks
it, later fan-outs reuse the same worker processes (and everything warm
inside them: unpickled kernels, the codegen module cache, on-disk
artifact handles), and it is torn down when the session that first
acquired it closes — or at interpreter exit, whichever comes first.

``acquire(n, factory)`` hands out a :class:`WorkerPool` handle:

* with ``pool_persist`` (``$REPRO_POOL_PERSIST``, default on) the handle
  wraps the shared executor; ``release()`` is a no-op.  The pool is
  recycled — old executor shut down, a fresh one forked, a
  ``pool_recycle`` event emitted — when it is broken (a worker died),
  too small for the request, or the factory changed (tests monkeypatch
  their module's ``make_pool``).
* with ``pool_persist=0`` the handle owns a private executor and
  ``release()`` shuts it down — the pre-pool behaviour.

``factory`` is the *caller's* ``make_pool`` reference so the
``pool_fallback`` observability (and the test doubles patched over it)
keep working unchanged; a factory returning ``None`` makes ``acquire``
return ``None`` and the caller falls back to its serial loop.

The module also keeps the fan-out statistics the bench reports:
tasks dispatched, shared-memory bytes published, and per-worker warm
kernel-cache hit/miss counts (keyed by worker pid).
"""

from __future__ import annotations

import atexit
import time
import weakref
from typing import Callable, Dict, Optional

from repro.session import events

__all__ = ["WorkerPool", "acquire", "shutdown_shared", "session_closed",
           "stats", "reset_stats", "note_task", "note_publish"]


class WorkerPool:
    """Handle around one executor; persistent handles share it."""

    def __init__(self, executor, n_workers: int, persistent: bool,
                 factory: Callable) -> None:
        self._executor = executor
        self.n_workers = n_workers
        self.persistent = persistent
        self.factory = factory

    def submit(self, fn, *args, **kwargs):
        return self._executor.submit(fn, *args, **kwargs)

    @property
    def broken(self) -> bool:
        # ProcessPoolExecutor sets _broken once any worker dies; test
        # doubles without the attribute are never considered broken
        return bool(getattr(self._executor, "_broken", False))

    def worker_pids(self) -> tuple:
        """Pids of the live worker processes (empty before first task)."""
        return tuple(sorted(getattr(self._executor, "_processes", {}) or ()))

    def release(self) -> None:
        """Caller is done with this fan-out; persistent pools stay warm."""
        if not self.persistent:
            self._shutdown()

    def _shutdown(self) -> None:
        shutdown = getattr(self._executor, "shutdown", None)
        if shutdown is not None:
            shutdown(wait=True, cancel_futures=True)


#: the shared pool (persistent mode), created by the first fan-out
_SHARED: Optional[WorkerPool] = None
#: weakref to the Session whose close() tears the shared pool down
_OWNER: Optional["weakref.ref"] = None
_ATEXIT_REGISTERED = False

#: fan-out statistics for `repro bench` (see module docstring)
_STATS: Dict[str, object] = {}


def reset_stats() -> None:
    global _STATS
    _STATS = {
        "tasks": 0,
        "shm_bytes_published": 0,
        # worker pid -> {"tasks", "kernel_cache_hits", "kernel_cache_misses"}
        "per_worker": {},
    }


reset_stats()


def stats() -> Dict[str, object]:
    """A snapshot of the fan-out counters (deep enough to mutate safely)."""
    return {
        "tasks": _STATS["tasks"],
        "shm_bytes_published": _STATS["shm_bytes_published"],
        "per_worker": {pid: dict(c) for pid, c in _STATS["per_worker"].items()},
    }


def note_task(pid: int, kernel_cache_hit: Optional[bool] = None) -> None:
    _STATS["tasks"] += 1
    per = _STATS["per_worker"].setdefault(
        pid, {"tasks": 0, "kernel_cache_hits": 0, "kernel_cache_misses": 0}
    )
    per["tasks"] += 1
    if kernel_cache_hit is True:
        per["kernel_cache_hits"] += 1
    elif kernel_cache_hit is False:
        per["kernel_cache_misses"] += 1


def note_publish(nbytes: int) -> None:
    _STATS["shm_bytes_published"] += int(nbytes)


def _persist_default() -> bool:
    from repro.session import current_session

    return bool(current_session().get("pool_persist"))


def _claim_owner() -> None:
    """The first session to acquire the shared pool owns its teardown."""
    global _OWNER
    if _OWNER is not None and _OWNER() is not None:
        return
    from repro.session import current_session

    _OWNER = weakref.ref(current_session())


def acquire(n_workers: int, factory: Callable,
            persist: Optional[bool] = None) -> Optional[WorkerPool]:
    """A pool handle sized for ``n_workers``, or ``None`` (serial fallback,
    already observed by ``factory``)."""
    global _SHARED, _ATEXIT_REGISTERED
    if persist is None:
        persist = _persist_default()
    if not persist:
        executor = factory(n_workers)
        if executor is None:
            return None
        return WorkerPool(executor, n_workers, persistent=False, factory=factory)

    pool = _SHARED
    if pool is not None:
        reason = None
        if pool.broken:
            reason = "worker died"
        elif pool.n_workers < n_workers:
            reason = f"grow {pool.n_workers} -> {n_workers}"
        elif pool.factory is not factory:
            reason = "pool factory changed"
        if reason is None:
            return pool
        events.emit("pool_recycle", reason=reason, workers=n_workers)
        pool._shutdown()
        _SHARED = None

    t0 = time.perf_counter()
    executor = factory(n_workers)
    if executor is None:
        return None
    _SHARED = WorkerPool(executor, n_workers, persistent=True, factory=factory)
    _claim_owner()
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_shared)
        _ATEXIT_REGISTERED = True
    events.emit(
        "pool_start",
        workers=n_workers,
        wall_ms=(time.perf_counter() - t0) * 1e3,
    )
    return _SHARED


def shutdown_shared() -> None:
    """Tear down the shared pool (session close, atexit, tests)."""
    global _SHARED, _OWNER
    pool, _SHARED = _SHARED, None
    _OWNER = None
    if pool is not None:
        pool._shutdown()


def session_closed(session) -> None:
    """Hook for ``Session.close``: the owning session takes the pool
    down with it; any other session closing leaves it warm."""
    if _OWNER is not None and _OWNER() is session:
        shutdown_shared()
