"""Zero-copy shared-memory execution plane for sharded kernel launches.

A launch fans its canonical pick list out over the process-wide warm
worker pool (:mod:`repro.parallel.pool`).  With ``pool_shm``
(``$REPRO_POOL_SHM``, default on) the data plane is shared memory:

* **buffers out**: every argument buffer is published once into a
  single :class:`~repro.runtime.buffers.ShmArena` segment; each worker
  attaches zero-copy numpy views under the parent's buffer ids and
  writes its owned groups' output ranges *in place*.  Work-group
  independence — the contract the differential suite enforces — makes
  those writes disjoint, so the parent's merge is one ``readback`` copy
  per buffer instead of per-shard sparse-diff application.
* **traces back**: a worker serializes its completed ``GroupTrace``
  batch into the exact compressed raw-segment format the parent's
  :class:`~repro.runtime.trace.TraceSpillStore` spills
  (:func:`~repro.runtime.trace.compress_group_lists`), ships it through
  a per-shard shared-memory segment, and the parent adopts the blob
  straight into its own spill file (``adopt_compressed``) — groups
  rehydrate lazily, bit-identical, bounded by ``$REPRO_TRACE_SPILL_MB``.
* **warm workers**: each worker keeps the kernels it has unpickled,
  keyed by payload hash under a *generation* counter derived from the
  execution config — a config change invalidates the warm state, a
  repeated launch of the same kernel skips the unpickle and, because
  the kernel object persists, hits the content-keyed codegen module
  cache and fingerprint memo from the previous task.

``$REPRO_POOL_SHM=0`` keeps the historical shared-nothing plane (every
buffer pickled into every shard, sparse byte-diffs merged in shard
order — deterministic even for kernels whose work-groups overlap
writes) while still running on the persistent pool.

Determinism contract (DESIGN.md §9, §17): for kernels whose work-groups
are independent the merged result is bit-identical to a serial launch —
same event streams, same buffer ids, same output bytes, same model
cycles.  ``__local`` arena buffer ids appear in traces, so workers
replicate the parent's allocation sequence by starting from the
parent's ``_next_id``.

Failure contract: problems *setting up* the pool, the payload or the
arena fall back to serial execution — observably: a ``pool_fallback``
event naming the underlying exception is emitted on the session bus,
and when no sink is attached a :class:`PoolFallbackWarning` is issued
instead, so the degradation is never silent.  A worker failing
*mid-shard* raises :class:`RuntimeLaunchError` naming the flat group
range that failed — never a raw ``multiprocessing`` traceback; every
outstanding shard is drained first and every shared-memory segment is
unlinked on *all* exit paths (success, worker crash, interrupt).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.parallel import pool as worker_pool
from repro.parallel.sharding import describe_span, merge_group_traces, shard_ranges
from repro.runtime.errors import RuntimeLaunchError
from repro.session import events

#: environment default for every ``workers=None`` entry point; setting
#: ``REPRO_WORKERS=1`` is the global escape hatch that forces serial
#: execution everywhere without touching call sites (registered in
#: :mod:`repro.session.config` as the ``workers`` variable)
WORKERS_ENV = "REPRO_WORKERS"


class PoolFallbackWarning(RuntimeWarning):
    """A parallel launch silently degraded to serial execution."""


def _observe_fallback(where: str, reason: str, error: str = "") -> None:
    """Make a serial fallback observable: event if a sink listens,
    ``warnings.warn`` otherwise (never both, never neither)."""
    if events.bus_active():
        events.emit("pool_fallback", where=where, reason=reason, error=error)
    else:
        detail = f" ({error})" if error else ""
        warnings.warn(
            f"parallel execution fell back to serial in {where}: "
            f"{reason}{detail}",
            PoolFallbackWarning,
            stacklevel=3,
        )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalise a ``workers`` argument to an ``int >= 1``.

    ``None`` falls back to the session's ``workers`` setting
    (``$REPRO_WORKERS``, a ``--config`` file, ...), then to 1 (serial).
    Anything that is not a positive integer — including bools and
    numeric strings passed programmatically — raises ``ValueError``;
    callers in the runtime wrap that into ``RuntimeLaunchError``.
    """
    if workers is None:
        from repro.session import current_session

        return current_session().get("workers")
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be a positive integer or None, got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def make_pool(n_workers: int) -> Optional[ProcessPoolExecutor]:
    """A process pool, or ``None`` when one cannot be created here.

    Prefers the cheap ``fork`` start method where the platform offers
    it.  Pool-creation failures (restricted sandboxes, missing
    semaphores) are a *fallback* condition, not an error — callers run
    serially instead; the failure is reported as a ``pool_fallback``
    event (or a :class:`PoolFallbackWarning` when nobody listens).

    Callers should not use this directly for fan-outs any more: go
    through :func:`repro.parallel.pool.acquire` (passing this function,
    or a module-local alias of it, as the factory) so the persistent
    warm pool is reused instead of forked per call.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
    except Exception as exc:
        _observe_fallback(
            "make_pool",
            "process pool unavailable",
            f"{type(exc).__name__}: {exc}",
        )
        return None


# ---------------------------------------------------------------------------
# launch-level sharding
# ---------------------------------------------------------------------------

#: monotonically increasing launch token suffix (per parent process) —
#: shared-memory segment names are ``{token}a`` (arena) and
#: ``{token}t{shard}`` (per-shard trace blob), deterministic so failure
#: cleanup can sweep them without having heard back from the workers
_TOKEN_SEQ = 0


def _next_token() -> str:
    global _TOKEN_SEQ
    _TOKEN_SEQ += 1
    return f"repro-{os.getpid()}-{_TOKEN_SEQ}"


def _shard_config(session) -> Dict[str, object]:
    """The execution config a shard must replicate (the session object
    itself never crosses the process boundary)."""
    cfg: Dict[str, object] = {
        "exec_backend": str(session.get("exec_backend")),
        "tape_batch": int(session.get("tape_batch")),
        "trace_spill_mb": int(session.get("trace_spill_mb")),
    }
    cache_dir = session.get("codegen_cache_dir")
    if cache_dir:
        cfg["codegen_cache_dir"] = str(cache_dir)
    return cfg


def _generation(cfg: Dict[str, object]) -> str:
    """Warm-state generation: changes iff the shard-relevant config does."""
    return hashlib.sha1(repr(sorted(cfg.items())).encode()).hexdigest()[:12]


#: per-worker warm state: kernels already unpickled this generation.
#: Living at module level in the forked worker process, it survives
#: across tasks; a generation change (new execution config) drops it.
_WARM: Dict[str, object] = {"generation": None, "kernels": {}}


def _warm_kernel(generation: str, sha: str, blob: bytes):
    warm = _WARM
    if warm["generation"] != generation:
        warm["generation"] = generation
        warm["kernels"] = {}
    kernel = warm["kernels"].get(sha)
    hit = kernel is not None
    if not hit:
        kernel = pickle.loads(blob)
        warm["kernels"][sha] = kernel
    return kernel, hit


def _run_shard(p: dict, kernel, lo: int, hi: int, arena) -> dict:
    """Execute picks[lo:hi] against a freshly mounted Memory.

    Everything that holds a view into the arena lives inside this frame,
    so the caller can close the attachment the moment it returns.
    """
    from repro.runtime.buffers import Buffer, Memory
    from repro.runtime.ndrange import launch
    from repro.runtime.trace import compress_group_lists
    from repro.session import Session

    mem = Memory()
    before: Dict[int, np.ndarray] = {}
    if arena is not None:
        arena.attach_memory(mem)
    else:
        for buf_id in sorted(p["buffers"]):
            nbytes, name, raw = p["buffers"][buf_id]
            buf = Buffer(mem, buf_id, nbytes, name)
            data = np.frombuffer(raw, dtype=np.uint8)
            buf.data[: len(data)] = data
            mem.buffers[buf_id] = buf
        before = {
            buf_id: mem.buffers[buf_id].data.copy() for buf_id in p["buffers"]
        }
    # arena allocations must consume the very ids the parent's serial
    # loop would have handed out — they appear in LOCAL trace events
    mem._next_id = p["next_id"]

    args = {
        name: mem.buffers[value] if kind == "buf" else value
        for name, (kind, value) in p["args"].items()
    }

    with Session(**p["cfg"]).activate():
        res = launch(
            kernel,
            p["global_size"],
            p["local_size"],
            args,
            memory=mem,
            local_arg_sizes=p["local_arg_sizes"],
            collect_trace=p["collect_trace"],
            sample_groups=p["sample_groups"],
            workers=1,
            _group_slice=(lo, hi),
        )

    out: dict = {
        "work_items": res.work_items,
        "groups_executed": res.groups_executed,
        "next_id": mem._next_id,
        "trace": None,
    }
    if res.trace is not None:
        groups = res.trace.groups
        blob, nbytes = compress_group_lists(groups)
        out["trace"] = {
            "blob": blob,
            "nbytes": nbytes,
            "metas": [
                (gt.group_id, gt.work_items, gt.inst_count, gt.barriers)
                for gt in groups
            ],
        }
    if arena is None:
        diffs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for buf_id, prev in before.items():
            data = mem.buffers[buf_id].data
            changed = np.flatnonzero(data != prev)
            if len(changed):
                diffs[buf_id] = (changed, data[changed].copy())
        out["diffs"] = diffs
    # break the Buffer <-> Memory cycle so arena views die with this
    # frame by refcount (not a later gc pass) and the caller's close()
    # can unmap the segment immediately
    for buf in mem.buffers.values():
        buf.data = None
        buf._views.clear()
    mem.buffers.clear()
    return out


def _launch_shard(
    common_bytes: bytes,
    kernel_blob: bytes,
    kernel_sha: str,
    generation: str,
    arena_spec: Optional[dict],
    trace_seg_name: Optional[str],
    shard_index: int,
    lo: int,
    hi: int,
    submitted: float,
) -> dict:
    """Worker entry point: one shard of one launch.

    Returns a result dict, or an ``{"error": ...}`` dict — exceptions
    are shipped back as text so the parent can raise a launch error
    with the failing group range instead of a multiprocessing dump.
    """
    t_entry = time.monotonic()
    try:
        p = pickle.loads(common_bytes)
        kernel, cache_hit = _warm_kernel(generation, kernel_sha, kernel_blob)

        arena = None
        if arena_spec is not None:
            from repro.runtime.buffers import ShmArena

            arena = ShmArena.attach(arena_spec)
        try:
            out = _run_shard(p, kernel, lo, hi, arena)
        finally:
            if arena is not None:
                # only the view-holding frame above has returned; the
                # parent owns the name and does the unlink
                arena.close()

        tr = out["trace"]
        if tr is not None and trace_seg_name is not None:
            blob = tr.pop("blob")
            try:
                from multiprocessing import shared_memory

                seg = shared_memory.SharedMemory(
                    name=trace_seg_name, create=True, size=max(len(blob), 1)
                )
                seg.buf[: len(blob)] = blob
                seg.close()
                tr["shm"] = (trace_seg_name, len(blob))
            except Exception:
                tr["blob"] = blob  # pipe fallback: segment unavailable
        out.update(
            shard=shard_index,
            pid=os.getpid(),
            kernel_cache_hit=cache_hit,
            dispatch_ms=(t_entry - submitted) * 1e3,
            wall_ms=(time.monotonic() - t_entry) * 1e3,
        )
        return out
    except Exception as exc:
        return {
            "shard": shard_index,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def _receive(fut):
    """Result of one shard future (seam for interrupt-injection tests)."""
    return fut.result()


def _fetch_trace_blob(tr: dict) -> bytes:
    """The shard's compressed trace blob, from its shared-memory segment
    (consumed: the segment is unlinked here) or inline from the pipe."""
    if "shm" in tr:
        from multiprocessing import shared_memory

        name, length = tr["shm"]
        seg = shared_memory.SharedMemory(name=name)
        try:
            blob = bytes(seg.buf[:length])
        finally:
            seg.close()
            seg.unlink()
        return blob
    return tr["blob"]


def _adopt_shard_trace(store, tr: dict) -> List:
    """Rebuild one shard's GroupTrace list around a lazily-loaded
    segment adopted into the parent's spill store."""
    from repro.runtime.trace import GroupTrace, LazyEvents

    seg = store.adopt_compressed(_fetch_trace_blob(tr), tr["nbytes"])
    groups = []
    for slot, (gid, work_items, inst_count, barriers) in enumerate(tr["metas"]):
        gt = GroupTrace(tuple(gid), work_items)
        gt.inst_count = inst_count
        gt.barriers = barriers
        gt.events = LazyEvents(seg, slot)
        groups.append(gt)
    return groups


def _sweep_trace_segments(token: str, n_shards: int) -> None:
    """Best-effort unlink of every shard trace segment this launch may
    have created (names are deterministic, so a crashed or interrupted
    worker's segment is swept without having heard from it)."""
    from multiprocessing import shared_memory

    for i in range(n_shards):
        try:
            seg = shared_memory.SharedMemory(name=f"{token}t{i}")
        except FileNotFoundError:
            continue
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        seg.close()


def parallel_launch(
    kernel,
    global_size: Tuple[int, ...],
    local_size: Tuple[int, ...],
    args: Dict[str, object],
    memory,
    local_arg_sizes: Optional[Dict[str, int]],
    collect_trace: bool,
    sample_groups: Optional[int],
    picks: np.ndarray,
    total_groups: int,
    workers: int,
):
    """Run a launch sharded over ``workers`` processes.

    Returns a ``LaunchResult`` bit-identical to the serial one, or
    ``None`` when the pool or payload is unavailable (the caller then
    falls through to its serial loop).  Worker failures mid-shard raise
    :class:`RuntimeLaunchError` with the failing flat group range.
    """
    from repro.runtime.buffers import Buffer, ShmArena
    from repro.runtime.ndrange import LaunchResult
    from repro.runtime.trace import KernelTrace, TraceSpillStore
    from repro.session import current_session

    session = current_session()

    buffers_by_id: Dict[int, Buffer] = {}
    arg_spec: Dict[str, Tuple[str, object]] = {}
    for name, value in args.items():
        if isinstance(value, Buffer):
            # keyed by id so aliased arguments stay aliased in the worker
            buffers_by_id[value.id] = value
            arg_spec[name] = ("buf", value.id)
        else:
            arg_spec[name] = ("scalar", value)

    cfg = _shard_config(session)
    use_shm = bool(session.get("pool_shm"))
    common = {
        "global_size": global_size,
        "local_size": local_size,
        "args": arg_spec,
        "local_arg_sizes": dict(local_arg_sizes) if local_arg_sizes else None,
        "collect_trace": collect_trace,
        "sample_groups": sample_groups,
        "next_id": memory._next_id,
        "cfg": cfg,
        "buffers": None
        if use_shm
        else {
            buf_id: (buf.nbytes, buf.name, buf.data.tobytes())
            for buf_id, buf in buffers_by_id.items()
        },
    }
    try:
        kernel_blob = pickle.dumps(kernel, protocol=pickle.HIGHEST_PROTOCOL)
        common_bytes = pickle.dumps(common, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable payload -> serial fallback
        _observe_fallback(
            "serialize_launch",
            "launch payload not picklable",
            f"{type(exc).__name__}: {exc}",
        )
        return None
    kernel_sha = hashlib.sha256(kernel_blob).hexdigest()
    generation = _generation(cfg)

    ranges = shard_ranges(len(picks), workers)
    if len(ranges) < 2:
        # structural, not a failure: too few groups to shard — still
        # emit the event (no warning) so traces explain the serial run
        if events.bus_active():
            events.emit(
                "pool_fallback",
                where="shard_ranges",
                reason=f"only {len(picks)} group pick(s); nothing to shard",
                error="",
            )
        return None

    pool = worker_pool.acquire(len(ranges), factory=make_pool)
    if pool is None:
        return None

    token = _next_token()
    arena = None
    if use_shm:
        t0 = time.perf_counter()
        try:
            arena = ShmArena.publish(f"{token}a", buffers_by_id)
        except Exception as exc:
            # restricted /dev/shm: keep the launch parallel on the
            # pickled-copy plane instead of giving up on the pool
            _observe_fallback(
                "shm_publish",
                "shared-memory arena unavailable; using pickled buffers",
                f"{type(exc).__name__}: {exc}",
            )
            use_shm = False
            common["buffers"] = {
                buf_id: (buf.nbytes, buf.name, buf.data.tobytes())
                for buf_id, buf in buffers_by_id.items()
            }
            common_bytes = pickle.dumps(
                common, protocol=pickle.HIGHEST_PROTOCOL
            )
        else:
            events.emit(
                "shm_publish",
                kernel=kernel.name,
                buffers=len(buffers_by_id),
                bytes=arena.total_bytes,
                wall_ms=(time.perf_counter() - t0) * 1e3,
            )
            worker_pool.note_publish(arena.total_bytes)

    events.emit(
        "launch_sharded",
        kernel=kernel.name,
        shards=len(ranges),
        workers=workers,
    )

    arena_spec = arena.spec() if arena is not None else None
    store = None
    try:
        futures = [
            (
                pool.submit(
                    _launch_shard,
                    common_bytes,
                    kernel_blob,
                    kernel_sha,
                    generation,
                    arena_spec,
                    f"{token}t{i}" if use_shm else None,
                    i,
                    lo,
                    hi,
                    time.monotonic(),
                ),
                i,
                lo,
                hi,
            )
            for i, (lo, hi) in enumerate(ranges)
        ]

        # gather: drain *every* future before raising, so no worker is
        # still touching the arena — or about to create a trace segment
        # — when the finally block sweeps the shared-memory names
        outcome = []
        interrupt: Optional[BaseException] = None
        for fut, i, lo, hi in futures:
            if interrupt is not None:
                try:
                    fut.result()
                except BaseException:
                    pass
                continue
            try:
                outcome.append((i, lo, hi, _receive(fut), None))
            except (KeyboardInterrupt, SystemExit) as exc:
                # Ctrl-C is never rewritten into a launch failure
                interrupt = exc
            except BaseException as exc:
                outcome.append((i, lo, hi, None, exc))
        if interrupt is not None:
            raise interrupt

        for i, lo, hi, r, exc in outcome:
            if exc is not None:
                # pool-level death (BrokenProcessPool, pickling, ...)
                raise RuntimeLaunchError(
                    f"parallel launch worker for shard {i} "
                    f"({describe_span(picks, lo, hi)}) died: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if "error" in r:
                raise RuntimeLaunchError(
                    f"parallel launch worker for shard {i} "
                    f"({describe_span(picks, lo, hi)}) failed: {r['error']}\n"
                    f"{r['traceback']}"
                )

        results = sorted((r for _, _, _, r, _ in outcome), key=lambda r: r["shard"])
        for (i, lo, hi, r, _exc) in outcome:
            events.emit(
                "pool_task",
                kernel=kernel.name,
                shard=i,
                groups=hi - lo,
                dispatch_ms=r["dispatch_ms"],
                wall_ms=r["wall_ms"],
            )
            worker_pool.note_task(r["pid"], r.get("kernel_cache_hit"))

        # canonical-order merge: traces reassembled in shard order; under
        # shm the buffer merge is the arena readback (shards wrote their
        # owned ranges in place), otherwise diffs apply in shard order,
        # matching serial last-writer-wins
        trace = None
        if collect_trace:
            store = TraceSpillStore(
                int(session.get("trace_spill_mb")) * 1024 * 1024,
                kernel=kernel.name,
            )
            groups = merge_group_traces(
                [(r["shard"], _adopt_shard_trace(store, r["trace"])) for r in results]
            )
            trace = KernelTrace(groups, total_groups, local_size, global_size)
        if arena is not None:
            arena.readback(memory.buffers)
        else:
            for r in results:
                for buf_id, (idx, vals) in r["diffs"].items():
                    memory.buffers[buf_id].data[idx] = vals
        # every worker allocated the same arena sequence; keep the
        # parent's id counter where a serial launch would have left it
        memory._next_id = max(
            memory._next_id, max(r["next_id"] for r in results)
        )
        return LaunchResult(
            trace=trace,
            groups_executed=sum(r["groups_executed"] for r in results),
            work_items=sum(r["work_items"] for r in results),
        )
    except BaseException:
        # the trace of a failed launch is never returned: release the
        # spill fd now, not at some later collection cycle
        if store is not None:
            store.close()
        raise
    finally:
        if arena is not None:
            arena.close()
            arena.unlink()
        if use_shm:
            _sweep_trace_segments(token, len(ranges))
        pool.release()
