"""Shared-nothing process-pool execution for sharded kernel launches.

Each worker receives one pickled payload — the kernel IR, every argument
buffer's bytes, the launch geometry and the parent ``Memory``'s next
buffer id — rebuilds a private :class:`~repro.runtime.buffers.Memory`
with the *same buffer ids* the parent would have used, and runs a
contiguous range of the canonical pick list through the ordinary serial
``launch`` path (so arena reuse, zeroing semantics and event recording
are the very code serial execution uses).  It ships back its
``GroupTrace`` list plus a sparse byte-diff of every argument buffer;
the parent reassembles traces and buffer writes in shard order.

Determinism contract (see DESIGN.md §9): for kernels whose work-groups
are independent — the OpenCL execution model's own requirement — the
merged result is bit-identical to a serial launch: same event streams,
same buffer ids, same output bytes, same model cycles.  ``__local``
arena buffer ids appear in traces, so workers replicate the parent's
allocation sequence by starting from the parent's ``_next_id``;
private (``alloca``) accesses are never traced, so their ids cannot
leak into results.

Failure contract: problems *setting up* the pool (or unpicklable
payloads) fall back to serial execution — observably: a ``pool_fallback``
event naming the underlying exception is emitted on the session bus,
and when no sink is attached a :class:`PoolFallbackWarning` is issued
instead, so the degradation is never silent.  A worker failing
*mid-shard* raises :class:`RuntimeLaunchError` naming the flat group
range that failed — never a raw ``multiprocessing`` traceback.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.sharding import merge_group_traces, shard_ranges
from repro.runtime.errors import RuntimeLaunchError
from repro.session import events

#: environment default for every ``workers=None`` entry point; setting
#: ``REPRO_WORKERS=1`` is the global escape hatch that forces serial
#: execution everywhere without touching call sites (registered in
#: :mod:`repro.session.config` as the ``workers`` variable)
WORKERS_ENV = "REPRO_WORKERS"


class PoolFallbackWarning(RuntimeWarning):
    """A parallel launch silently degraded to serial execution."""


def _observe_fallback(where: str, reason: str, error: str = "") -> None:
    """Make a serial fallback observable: event if a sink listens,
    ``warnings.warn`` otherwise (never both, never neither)."""
    if events.bus_active():
        events.emit("pool_fallback", where=where, reason=reason, error=error)
    else:
        detail = f" ({error})" if error else ""
        warnings.warn(
            f"parallel execution fell back to serial in {where}: "
            f"{reason}{detail}",
            PoolFallbackWarning,
            stacklevel=3,
        )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Normalise a ``workers`` argument to an ``int >= 1``.

    ``None`` falls back to the session's ``workers`` setting
    (``$REPRO_WORKERS``, a ``--config`` file, ...), then to 1 (serial).
    Anything that is not a positive integer — including bools and
    numeric strings passed programmatically — raises ``ValueError``;
    callers in the runtime wrap that into ``RuntimeLaunchError``.
    """
    if workers is None:
        from repro.session import current_session

        return current_session().get("workers")
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be a positive integer or None, got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def make_pool(n_workers: int) -> Optional[ProcessPoolExecutor]:
    """A process pool, or ``None`` when one cannot be created here.

    Prefers the cheap ``fork`` start method where the platform offers
    it.  Pool-creation failures (restricted sandboxes, missing
    semaphores) are a *fallback* condition, not an error — callers run
    serially instead; the failure is reported as a ``pool_fallback``
    event (or a :class:`PoolFallbackWarning` when nobody listens).
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
    except Exception as exc:
        _observe_fallback(
            "make_pool",
            "process pool unavailable",
            f"{type(exc).__name__}: {exc}",
        )
        return None


# ---------------------------------------------------------------------------
# launch-level sharding
# ---------------------------------------------------------------------------


def _serialize_launch(
    kernel,
    global_size: Tuple[int, ...],
    local_size: Tuple[int, ...],
    args: Dict[str, object],
    memory,
    local_arg_sizes: Optional[Dict[str, int]],
    collect_trace: bool,
    sample_groups: Optional[int],
) -> bytes:
    """One payload for every shard of a launch (pickled exactly once)."""
    from repro.runtime.buffers import Buffer
    from repro.session import current_session

    session = current_session()

    buffers: Dict[int, Tuple[int, str, bytes]] = {}
    arg_spec: Dict[str, Tuple[str, object]] = {}
    for name, value in args.items():
        if isinstance(value, Buffer):
            # keyed by id so aliased arguments stay aliased in the worker
            buffers[value.id] = (value.nbytes, value.name, value.data.tobytes())
            arg_spec[name] = ("buf", value.id)
        else:
            arg_spec[name] = ("scalar", value)
    payload = {
        "kernel": kernel,
        "global_size": global_size,
        "local_size": local_size,
        "buffers": buffers,
        "args": arg_spec,
        "local_arg_sizes": dict(local_arg_sizes) if local_arg_sizes else None,
        "collect_trace": collect_trace,
        "sample_groups": sample_groups,
        "next_id": memory._next_id,
        # shards must run the parent's execution backend: the session
        # object itself never crosses the process boundary
        "exec_backend": str(session.get("exec_backend")),
        "tape_batch": int(session.get("tape_batch")),
        "trace_spill_mb": int(session.get("trace_spill_mb")),
        "codegen_cache_dir": session.get("codegen_cache_dir"),
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _launch_shard(payload_bytes: bytes, shard_index: int, lo: int, hi: int) -> dict:
    """Worker: execute picks[lo:hi] of the payload's launch.

    Returns a result dict, or an ``{"error": ...}`` dict — exceptions
    are shipped back as text so the parent can raise a launch error
    with the failing group range instead of a multiprocessing dump.
    """
    try:
        from repro.runtime.buffers import Buffer
        from repro.runtime.ndrange import launch

        p = pickle.loads(payload_bytes)
        from repro.runtime.buffers import Memory

        mem = Memory()
        for buf_id in sorted(p["buffers"]):
            nbytes, name, raw = p["buffers"][buf_id]
            buf = Buffer(mem, buf_id, nbytes, name)
            data = np.frombuffer(raw, dtype=np.uint8)
            buf.data[: len(data)] = data
            mem.buffers[buf_id] = buf
        # arena allocations must consume the very ids the parent's serial
        # loop would have handed out — they appear in LOCAL trace events
        mem._next_id = p["next_id"]

        args = {
            name: mem.buffers[value] if kind == "buf" else value
            for name, (kind, value) in p["args"].items()
        }
        before = {buf_id: mem.buffers[buf_id].data.copy() for buf_id in p["buffers"]}

        from repro.session import Session

        shard_cfg = {
            "exec_backend": p["exec_backend"],
            "tape_batch": p["tape_batch"],
            "trace_spill_mb": p["trace_spill_mb"],
        }
        if p["codegen_cache_dir"]:
            shard_cfg["codegen_cache_dir"] = p["codegen_cache_dir"]
        with Session(**shard_cfg).activate():
            res = launch(
                p["kernel"],
                p["global_size"],
                p["local_size"],
                args,
                memory=mem,
                local_arg_sizes=p["local_arg_sizes"],
                collect_trace=p["collect_trace"],
                sample_groups=p["sample_groups"],
                workers=1,
                _group_slice=(lo, hi),
            )

        diffs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for buf_id, prev in before.items():
            data = mem.buffers[buf_id].data
            changed = np.flatnonzero(data != prev)
            if len(changed):
                diffs[buf_id] = (changed, data[changed].copy())
        return {
            "shard": shard_index,
            "traces": res.trace.groups if res.trace is not None else None,
            "work_items": res.work_items,
            "groups_executed": res.groups_executed,
            "diffs": diffs,
            "next_id": mem._next_id,
        }
    except Exception as exc:
        return {
            "shard": shard_index,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


def parallel_launch(
    kernel,
    global_size: Tuple[int, ...],
    local_size: Tuple[int, ...],
    args: Dict[str, object],
    memory,
    local_arg_sizes: Optional[Dict[str, int]],
    collect_trace: bool,
    sample_groups: Optional[int],
    picks: np.ndarray,
    total_groups: int,
    workers: int,
):
    """Run a launch sharded over ``workers`` processes.

    Returns a ``LaunchResult`` bit-identical to the serial one, or
    ``None`` when the pool or payload is unavailable (the caller then
    falls through to its serial loop).  Worker failures mid-shard raise
    :class:`RuntimeLaunchError` with the failing flat group range.
    """
    from repro.runtime.ndrange import LaunchResult
    from repro.runtime.trace import KernelTrace

    try:
        payload = _serialize_launch(
            kernel, global_size, local_size, args, memory,
            local_arg_sizes, collect_trace, sample_groups,
        )
    except Exception as exc:  # unpicklable payload -> serial fallback
        _observe_fallback(
            "serialize_launch",
            "launch payload not picklable",
            f"{type(exc).__name__}: {exc}",
        )
        return None

    ranges = shard_ranges(len(picks), workers)
    if len(ranges) < 2:
        # structural, not a failure: too few groups to shard — still
        # emit the event (no warning) so traces explain the serial run
        if events.bus_active():
            events.emit(
                "pool_fallback",
                where="shard_ranges",
                reason=f"only {len(picks)} group pick(s); nothing to shard",
                error="",
            )
        return None

    pool = make_pool(len(ranges))
    if pool is None:
        return None

    def group_span(lo: int, hi: int) -> str:
        return f"flat groups {int(picks[lo])}..{int(picks[hi - 1])} (picks {lo}:{hi})"

    events.emit(
        "launch_sharded",
        kernel=kernel.name,
        shards=len(ranges),
        workers=workers,
    )
    results = []
    with pool:
        futures = [
            (pool.submit(_launch_shard, payload, i, lo, hi), i, lo, hi)
            for i, (lo, hi) in enumerate(ranges)
        ]
        for fut, i, lo, hi in futures:
            try:
                r = fut.result()
            except Exception as exc:
                # pool-level death (BrokenProcessPool, pickling, ...);
                # KeyboardInterrupt/SystemExit propagate untouched so
                # Ctrl-C is never rewritten into a launch failure
                raise RuntimeLaunchError(
                    f"parallel launch worker for shard {i} "
                    f"({group_span(lo, hi)}) died: {type(exc).__name__}: {exc}"
                ) from exc
            if "error" in r:
                raise RuntimeLaunchError(
                    f"parallel launch worker for shard {i} "
                    f"({group_span(lo, hi)}) failed: {r['error']}\n"
                    f"{r['traceback']}"
                )
            results.append(r)

    results.sort(key=lambda r: r["shard"])

    # canonical-order merge: traces first, then buffer diffs in shard
    # order (ascending group ids), matching serial last-writer-wins
    trace = None
    if collect_trace:
        groups = merge_group_traces([(r["shard"], r["traces"]) for r in results])
        trace = KernelTrace(groups, total_groups, local_size, global_size)
    for r in results:
        for buf_id, (idx, vals) in r["diffs"].items():
            memory.buffers[buf_id].data[idx] = vals
    # every worker allocated the same arena sequence; keep the parent's
    # id counter where a serial launch would have left it
    memory._next_id = max(memory._next_id, max(r["next_id"] for r in results))

    return LaunchResult(
        trace=trace,
        groups_executed=sum(r["groups_executed"] for r in results),
        work_items=sum(r["work_items"] for r in results),
    )
