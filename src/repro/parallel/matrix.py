"""Case-level fan-out over the paper's experiment matrix.

The experiment matrix — Table IV, Fig. 10, the extension-GPU scoring —
is embarrassingly parallel: traces are device-independent, so the unit
of work is one *application* (both variants traced once, then scored on
every requested device).  ``run_matrix`` fans those cases out over the
process-wide warm pool (:mod:`repro.parallel.pool`); each case is
computed shared-nothing from its arguments, but the worker *processes*
persist across calls, so a worker's compile and codegen caches stay
warm between cases and between consecutive matrices.  The parent
assembles the grid in the deterministic ``apps``/``devices`` input
order, so serial and parallel results are bit-identical floats.

A case whose worker dies of *pool infrastructure* trouble (broken
pool, lost worker, pickling) is retried serially in the parent
(``retries`` per case, default 1) — one bad fork never loses the
matrix.  Deterministic kernel-execution failures
(:class:`RuntimeLaunchError`, :class:`MemoryFault`,
:class:`BarrierDivergenceError`) are *not* retried — a serial rerun
would fail identically — and re-raise as :class:`RuntimeLaunchError`;
``KeyboardInterrupt``/``SystemExit`` always propagate.  ``workers=1``,
``$REPRO_WORKERS=1`` or an unavailable pool all degrade to the plain
serial loop.

``python -m repro.cli matrix --workers 4`` is the command-line entry.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel import pool as worker_pool
from repro.parallel.engine import make_pool, resolve_workers
from repro.runtime.errors import (
    BarrierDivergenceError,
    MemoryFault,
    RuntimeLaunchError,
)
from repro.session import events

#: classification threshold of the paper's Table IV (±5 %)
DEFAULT_THRESHOLD = 0.05


def _matrix_case(
    app_id: str, devices: Tuple[str, ...], scale: str
) -> Tuple[str, Dict[str, float]]:
    """One case: trace both variants of ``app_id``, score every device.

    Runs identically in a worker process and in the parent (the serial
    path and the per-case retry), which is what makes the differential
    comparison exact.
    """
    from repro.experiments import normalized_perf

    return app_id, {dev: normalized_perf(app_id, dev, scale) for dev in devices}


@dataclass
class MatrixResult:
    """The (device × app) normalised-performance grid plus run metadata."""

    scale: str
    workers: int
    apps: List[str]
    devices: List[str]
    #: device -> app -> cycles_with / cycles_without
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: app -> reason, for cases recomputed serially after a worker failure
    retried: Dict[str, str] = field(default_factory=dict)

    @property
    def cases(self) -> int:
        return len(self.apps) * len(self.devices)

    def classify_all(self, threshold: float = DEFAULT_THRESHOLD) -> Dict[str, Dict[str, str]]:
        from repro.perf.timing import classify

        return {
            dev: {app: classify(v, threshold) for app, v in per_app.items()}
            for dev, per_app in self.values.items()
        }

    def table4_counts(self, threshold: float = DEFAULT_THRESHOLD) -> Dict[str, Dict[str, int]]:
        """Per-device gain/loss/similar counts (the paper's Table IV)."""
        out: Dict[str, Dict[str, int]] = {}
        for dev, verdicts in self.classify_all(threshold).items():
            counts = {"gain": 0, "loss": 0, "similar": 0}
            for verdict in verdicts.values():
                counts[verdict] += 1
            out[dev] = counts
        return out


def run_matrix(
    apps: Optional[Sequence[str]] = None,
    devices: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    scale: str = "bench",
    retries: int = 1,
) -> MatrixResult:
    """Score ``apps`` × ``devices`` with ``workers`` parallel cases.

    Defaults reproduce the paper's Table IV: the 11 Table III apps on
    the three CPU devices.  Pass GPU device names for the
    extension-GPU matrix.  Results are bit-identical for any worker
    count.
    """
    from repro.apps.registry import TABLE_ORDER, get_app
    from repro.perf.devices import CPU_DEVICES, DEVICES

    app_ids = list(apps) if apps is not None else list(TABLE_ORDER)
    dev_names = tuple(devices) if devices is not None else tuple(CPU_DEVICES)
    for app_id in app_ids:
        get_app(app_id)  # unknown ids fail before any work is fanned out
    for dev in dev_names:
        if dev not in DEVICES:
            raise KeyError(f"unknown device {dev!r}; known: {sorted(DEVICES)}")

    n_workers = resolve_workers(workers)
    result = MatrixResult(
        scale=scale, workers=n_workers, apps=app_ids, devices=list(dev_names)
    )
    t0 = time.perf_counter()
    events.emit(
        "matrix_start",
        apps=list(app_ids),
        devices=list(dev_names),
        workers=n_workers,
    )

    per_app: Dict[str, Dict[str, float]] = {}
    pool = worker_pool.acquire(
        min(n_workers, len(app_ids)), factory=make_pool
    ) if (n_workers > 1 and len(app_ids) > 1) else None
    if pool is not None:
        try:
            futures = {
                app_id: pool.submit(_matrix_case, app_id, dev_names, scale)
                for app_id in app_ids
            }
            for app_id in app_ids:  # input order, not completion order
                try:
                    _, vals = futures[app_id].result()
                except (RuntimeLaunchError, MemoryFault, BarrierDivergenceError) as exc:
                    # deterministic kernel-execution failure: a serial
                    # retry would fail identically — surface it instead
                    # of burning a retry on it
                    raise RuntimeLaunchError(
                        f"matrix case {app_id!r} failed deterministically "
                        f"({type(exc).__name__}: {exc}); not retrying"
                    ) from exc
                except Exception as exc:
                    # pool infrastructure failure (broken pool, lost
                    # worker, pickling): recompute serially in the parent;
                    # KeyboardInterrupt/SystemExit propagate untouched
                    if retries <= 0:
                        raise
                    result.retried[app_id] = f"{type(exc).__name__}: {exc}"
                    events.emit(
                        "matrix_case_retried",
                        app=app_id,
                        reason=result.retried[app_id],
                    )
                    _, vals = _matrix_case(app_id, dev_names, scale)
                per_app[app_id] = vals
        finally:
            pool.release()
    else:
        for app_id in app_ids:
            _, vals = _matrix_case(app_id, dev_names, scale)
            per_app[app_id] = vals

    events.emit(
        "matrix_end",
        cases=result.cases,
        wall_ms=(time.perf_counter() - t0) * 1e3,
    )

    result.values = {
        dev: {app_id: per_app[app_id][dev] for app_id in app_ids}
        for dev in dev_names
    }
    return result


# ---------------------------------------------------------------------------
# ``repro matrix`` command line
# ---------------------------------------------------------------------------

_DEVICE_SETS = ("cpu", "gpu", "all")


def _parse_devices(spec: str) -> Tuple[str, ...]:
    from repro.perf.devices import CPU_DEVICES, DEVICES, GPU_DEVICES

    if spec == "cpu":
        return tuple(CPU_DEVICES)
    if spec == "gpu":
        return tuple(GPU_DEVICES)
    if spec == "all":
        return tuple(DEVICES)
    return tuple(d.strip() for d in spec.split(",") if d.strip())


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro matrix",
        description="Run the (app x device) experiment matrix, optionally "
        "fanned out over worker processes (results are bit-identical "
        "to the serial run).",
    )
    p.add_argument("--apps", default=None,
                   help="comma-separated app ids (default: the Table III rows)")
    p.add_argument("--devices", default="cpu",
                   help="'cpu', 'gpu', 'all', or comma-separated device names")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel cases (default: $REPRO_WORKERS, then 1)")
    p.add_argument("--scale", default="bench", help="problem scale")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="gain/loss threshold (paper: 0.05)")
    p.add_argument("--json", dest="json_path", default=None,
                   help="also write the grid to this JSON file")
    p.add_argument("--config", default=None,
                   help="JSON session config file (see repro.session.config)")
    p.add_argument("--trace-out", default=None,
                   help="write structured events as JSONL to this path")
    args = p.parse_args(argv)

    from repro.reporting import ascii_table, normalized_perf_table
    from repro.session import session_from_flags

    apps = (
        [a.strip() for a in args.apps.split(",") if a.strip()]
        if args.apps else None
    )
    with session_from_flags(args.config, args.trace_out):
        result = run_matrix(
            apps=apps,
            devices=_parse_devices(args.devices),
            workers=args.workers,
            scale=args.scale,
        )

    print(normalized_perf_table(result.values, result.apps))
    print()
    counts = result.table4_counts(args.threshold)
    rows = [
        [dev, c["gain"], c["loss"], c["similar"]] for dev, c in counts.items()
    ]
    totals = {"gain": 0, "loss": 0, "similar": 0}
    for c in counts.values():
        for k in totals:
            totals[k] += c[k]
    rows.append(["TOTAL", totals["gain"], totals["loss"], totals["similar"]])
    print(ascii_table(
        ["device", "gain", "loss", "similar"], rows,
        title=f"Table IV distribution ({result.cases} cases, "
        f"threshold {args.threshold:.0%}, workers={result.workers})",
    ))
    for app_id, reason in result.retried.items():
        print(f"# retried {app_id} serially after worker failure: {reason}",
              file=sys.stderr)

    if args.json_path:
        with open(args.json_path, "w") as f:
            json.dump(
                {
                    "scale": result.scale,
                    "workers": result.workers,
                    "values": result.values,
                    "counts": counts,
                    "retried": result.retried,
                },
                f, indent=2, sort_keys=True,
            )
            f.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
