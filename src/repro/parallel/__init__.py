"""Sharded parallel experiment engine (DESIGN.md §9).

Two levels of sharding, one determinism contract:

* **work-group shards** — ``launch(..., workers=N)`` splits the
  canonical pick list into contiguous ranges executed by shared-nothing
  worker processes and merges traces and buffer writes back in shard
  order (:mod:`repro.parallel.engine`, :mod:`repro.parallel.sharding`);
* **experiment cases** — :func:`run_matrix` fans the (app × device)
  grid of Table IV / Fig. 10 / the extension-GPU scoring out over a
  pool, one application per case (:mod:`repro.parallel.matrix`).

Every fan-out shares one process-wide *persistent* worker pool
(:mod:`repro.parallel.pool`, ``$REPRO_POOL_PERSIST``) and, for sharded
launches, a zero-copy shared-memory data plane
(``$REPRO_POOL_SHM``, DESIGN.md §17).

Both levels are required to be *bit-identical* to serial execution;
:mod:`repro.parallel.diff` is the differential layer that enforces it.
``REPRO_WORKERS=1`` forces everything serial.
"""

from repro.parallel.diff import (
    DifferentialMismatch,
    assert_cycles_equal,
    assert_matrix_equal,
    assert_outputs_equal,
    assert_traces_equal,
    trace_mismatch,
)
from repro.parallel.engine import WORKERS_ENV, make_pool, resolve_workers
from repro.parallel.matrix import MatrixResult, run_matrix
from repro.parallel.pool import WorkerPool, acquire, shutdown_shared
from repro.parallel.sharding import merge_group_traces, select_groups, shard_ranges

__all__ = [
    "DifferentialMismatch",
    "MatrixResult",
    "WORKERS_ENV",
    "WorkerPool",
    "acquire",
    "assert_cycles_equal",
    "assert_matrix_equal",
    "assert_outputs_equal",
    "assert_traces_equal",
    "make_pool",
    "merge_group_traces",
    "resolve_workers",
    "run_matrix",
    "select_groups",
    "shard_ranges",
    "shutdown_shared",
    "trace_mismatch",
]
