"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Simple fixed-width table (used by benchmarks and examples)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt(cells[0]))
    out.append(sep)
    out.extend(fmt(r) for r in cells[1:])
    return "\n".join(out)


def bar_series(values: Mapping[str, float], width: int = 40, ref: float = 1.0) -> str:
    """ASCII bar chart of normalised performance (the Fig. 2/10 look).

    Bars are scaled so that ``ref`` (= 1.0, parity) sits mid-scale; a
    marker shows the parity line.
    """
    if not values:
        return "(empty)"
    vmax = max(max(values.values()), ref * 1.2)
    lines = []
    label_w = max(len(k) for k in values)
    for name, v in values.items():
        n = int(round(v / vmax * width))
        ref_pos = int(round(ref / vmax * width))
        bar = ["#"] * n + [" "] * (width - n)
        if 0 <= ref_pos < width:
            bar[ref_pos] = "|" if bar[ref_pos] == " " else "+"
        lines.append(f"{name.ljust(label_w)} [{''.join(bar)}] {v:5.2f}")
    return "\n".join(lines)


def normalized_perf_table(
    per_device: Mapping[str, Mapping[str, float]],
    app_order: Sequence[str],
) -> str:
    """Figure-10-style table: one column per device, one row per app."""
    headers = ["app"] + list(per_device)
    rows = []
    for app in app_order:
        rows.append([app] + [f"{per_device[d][app]:.3f}" for d in per_device])
    return ascii_table(headers, rows, title="normalised performance (np > 1: removing local memory wins)")
