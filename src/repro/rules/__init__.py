"""First-class rewrite rules over kernel IR.

The paper's transformation — reversing the ``GL -> LS ... barrier ... LL``
software-cache pattern — is *one* semantics-preserving rewrite, and its
own evaluation shows it wins only a third of the time.  This package
makes "a rewrite" a first-class object (:class:`RewriteRule`): an
applicability probe, an in-place ``apply``, a named legality arbiter and
static cost features, so the pipeline-search engine
(:mod:`repro.search`) can compose and score *sequences* of rewrites
instead of hard-coding one heuristic.

Shipping rules:

* :class:`~repro.rules.grover.DisableLocalMemoryRule` (``grover``) — the
  paper's pass, ported bit-identically from the registered ``grover``
  pass body;
* :class:`~repro.rules.padding.LocalArrayPaddingRule`
  (``pad-local-arrays``) — pad the innermost dimension of multi-D
  ``__local`` arrays to break shared-memory bank conflicts;
* :class:`~repro.rules.barriers.BarrierEliminationRule`
  (``eliminate-barriers``) — drop barriers the static race analyzer
  proves redundant (single-phase staging, no cross-item dependence);
* :class:`~repro.rules.hoist.GlobalLoadHoistRule`
  (``hoist-global-loads``) — hoist loop-invariant global loads into the
  loop preheader, across barrier phases.

Every rule is also registered as a named pass in
:data:`repro.session.passes.PASS_REGISTRY`, so ``PassManager`` pipelines
and ``repro passes`` see them uniformly.
"""

from repro.rules.base import (
    RULE_REGISTRY,
    RewriteRule,
    RuleContext,
    get_rule,
    register_rule,
    rule_names,
)
from repro.rules.barriers import BarrierEliminationRule
from repro.rules.grover import DisableLocalMemoryRule
from repro.rules.hoist import GlobalLoadHoistRule
from repro.rules.padding import LocalArrayPaddingRule

__all__ = [
    "RULE_REGISTRY",
    "RewriteRule",
    "RuleContext",
    "get_rule",
    "register_rule",
    "rule_names",
    "DisableLocalMemoryRule",
    "LocalArrayPaddingRule",
    "BarrierEliminationRule",
    "GlobalLoadHoistRule",
]
