"""Barrier elimination: drop synchronisation the analyzer proves redundant.

A ``barrier(CLK_LOCAL_MEM_FENCE)`` orders the staging phase against the
consuming phase.  When the staging is *single-phase* — every work-item
reads back only the local bytes it wrote itself, or the phases touch
disjoint index boxes — the barrier orders nothing, yet still costs a
full work-group round-trip in both the interpreter schedule and the perf
models.

Legality is decided counterfactually by the static race analyzer: for
each barrier, the rule analyzes a copy of the kernel with that barrier
erased and removes the real one only if the copy is provably free of
races and barrier divergence with **zero undecided access pairs** — an
undecided pair means the analyzer could not prove the barrier redundant,
so it stays.  This is the same arbiter that vets the Grover rewrite,
applied per rewrite site instead of per kernel.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import is_barrier
from repro.rules.base import RewriteRule, RuleContext, base_features, register_rule

__all__ = ["BarrierEliminationRule"]


def _barrier_positions(fn: Function) -> List[Tuple[int, int]]:
    """(block index, instruction index) of every barrier, in layout order."""
    out: List[Tuple[int, int]] = []
    for bi, bb in enumerate(fn.blocks):
        for ii, inst in enumerate(bb.instructions):
            if is_barrier(inst):
                out.append((bi, ii))
    return out


def _provably_clean(fn: Function, geometry) -> bool:
    """Race-free, divergence-free, and *fully decided* — the bar a
    counterfactual kernel must clear before its barrier may go."""
    from repro.analysis import analyze_divergence, analyze_races_static
    from repro.analysis.model import AnalysisReport

    report = AnalysisReport(fn.name, tuple(geometry) if geometry else None)
    analyze_races_static(fn, geometry, report)
    analyze_divergence(fn, report)
    return (
        not report.races
        and not report.divergences
        and report.pairs_undecided == 0
    )


class BarrierEliminationRule(RewriteRule):
    """Remove barriers whose absence the race analyzer proves harmless."""

    name = "eliminate-barriers"
    description = (
        "remove barriers proven redundant by the static race analyzer "
        "(single-phase staging; rewrites = barriers removed)"
    )
    legality_arbiter = "counterfactual-race-analysis"
    legality = (
        "a barrier goes only if the kernel with it erased analyzes "
        "race-free and divergence-free with zero undecided access pairs "
        "(per-site application of the Grover veto arbiter)"
    )

    def probe(self, fn: Function, ctx: RuleContext) -> bool:
        return fn.is_kernel and bool(_barrier_positions(fn))

    def apply(self, fn: Function, ctx: RuleContext) -> int:
        if not fn.is_kernel:
            return 0
        geometry = ctx.geometry(fn)
        removed = 0
        # each removal shifts later positions: rescan after every hit
        changed = True
        while changed:
            changed = False
            for bi, ii in _barrier_positions(fn):
                trial = copy.deepcopy(fn)
                trial.blocks[bi].instructions[ii].erase_from_parent()
                if not _provably_clean(trial, geometry):
                    continue
                fn.blocks[bi].instructions[ii].erase_from_parent()
                removed += 1
                changed = True
                break
        return removed

    def cost_features(self, fn: Function, ctx: RuleContext) -> Dict[str, int]:
        feats = base_features(fn)
        feats["barrier_sites"] = len(_barrier_positions(fn))
        return feats


register_rule(BarrierEliminationRule())
