"""Local-array padding: break shared-memory bank conflicts.

GPU scratchpads are banked; a column walk through a ``[R][C]`` local
array whose row stride is a multiple of the bank-line size hits the same
banks over and over and serialises (the perf model charges exactly this:
``GPUModel`` derives per-access conflict degrees from ``offset % banks``).
The classic fix is to pad the innermost dimension by one element so the
row stride becomes coprime with the bank count.

Legality is a pure shape argument, arbitrated by the affine analysis the
race analyzer is built on: padding only re-maps addresses, so it is
semantics-preserving iff **every** access to the array indexes every
dimension in bounds — an out-of-range inner index (``lm[0][C]`` reaching
into row 1) would alias differently after padding.  The rule therefore
requires each use to be a full-rank GEP whose per-dimension indices are
affine in work-item ids with provable bounds inside the dimension extent
over the work-group box; anything weaker (opaque indices, flattened
addressing, missing geometry) rejects the array.

The padded kernel's *outputs* are bit-identical; its local-access trace
intentionally differs — fewer modelled conflict cycles is the payoff the
pipeline search scores.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import GEP
from repro.ir.types import ArrayType
from repro.ir.values import LocalArray
from repro.rules.base import RewriteRule, RuleContext, base_features, register_rule

__all__ = ["LocalArrayPaddingRule", "BANK_LINE_BYTES"]

#: a row stride that is a multiple of this many bytes maps successive
#: rows onto the same banks on every modelled device (16 and 32 banks
#: x 4-byte words) — the shapes worth padding
BANK_LINE_BYTES = 64


def _innermost(at: ArrayType) -> ArrayType:
    while isinstance(at.element, ArrayType):
        at = at.element
    return at


def _pad_innermost(at: ArrayType) -> ArrayType:
    if isinstance(at.element, ArrayType):
        return ArrayType(_pad_innermost(at.element), at.count)
    return ArrayType(at.element, at.count + 1)


def _index_bounds(
    expr, geometry: Optional[Tuple[int, ...]]
) -> Optional[Tuple[Fraction, Fraction]]:
    """Min/max of an affine index over the work-group box, or ``None``
    when the expression mentions anything but work-item ids."""
    from repro.core.linexpr import ONE

    lo = hi = expr.coeff(ONE)
    for sym in expr.symbols():
        if sym == ONE:
            continue
        if sym[0] != "lid":
            return None
        if geometry is None or sym[1] >= len(geometry):
            return None
        span = Fraction(geometry[sym[1]] - 1)
        c = expr.coeff(sym)
        if c < 0:
            lo += c * span
        else:
            hi += c * span
    return lo, hi


class LocalArrayPaddingRule(RewriteRule):
    """Pad the innermost dimension of conflict-prone local arrays by one."""

    name = "pad-local-arrays"
    description = (
        "pad the innermost dimension of multi-D __local arrays whose row "
        "stride aliases scratchpad banks (rewrites = arrays padded)"
    )
    legality_arbiter = "affine-bounds"
    legality = (
        "every access must be a full-rank GEP with per-dimension indices "
        "affine in lid and provably in bounds over the work-group box "
        "(padding re-maps addresses; an out-of-range index would alias)"
    )

    def probe(self, fn: Function, ctx: RuleContext) -> bool:
        return fn.is_kernel and any(
            isinstance(la.array_type.element, ArrayType)
            for la in fn.local_arrays
        )

    def apply(self, fn: Function, ctx: RuleContext) -> int:
        if not fn.is_kernel:
            return 0
        from repro.core.affine import AffineContext

        affine = None
        geometry = ctx.geometry(fn)
        padded = 0
        for i, la in enumerate(list(fn.local_arrays)):
            at = la.array_type
            if not isinstance(at.element, ArrayType):
                continue  # 1-D: flat addressing, nothing to pad
            inner = _innermost(at)
            if (inner.count * inner.element.size) % BANK_LINE_BYTES != 0:
                continue  # rows already stride across banks
            if affine is None:
                affine = AffineContext(fn)
            if not self._all_accesses_bounded(la, affine, geometry):
                continue
            new = LocalArray(_pad_innermost(at), la.name)
            la.replace_all_uses_with(new)
            fn.local_arrays[i] = new
            padded += 1
        return padded

    @staticmethod
    def _all_accesses_bounded(la: LocalArray, affine, geometry) -> bool:
        dims = la.array_type.dims()
        for user, idx in la.uses:
            if not isinstance(user, GEP) or idx != 0:
                return False  # escapes into a call/store: cannot reason
            if len(user.indices) != len(dims):
                return False  # partial-rank (flattened) addressing
            for dim, value in zip(dims, user.indices):
                bounds = _index_bounds(affine.to_linexpr(value), geometry)
                if bounds is None:
                    return False
                lo, hi = bounds
                if lo < 0 or hi > dim - 1:
                    return False
        return True

    def cost_features(self, fn: Function, ctx: RuleContext) -> Dict[str, int]:
        feats = base_features(fn)
        feats["multi_dim_local_arrays"] = sum(
            1
            for la in fn.local_arrays
            if isinstance(la.array_type.element, ArrayType)
        )
        feats["bank_aliasing_arrays"] = sum(
            1
            for la in fn.local_arrays
            if isinstance(la.array_type.element, ArrayType)
            and (
                _innermost(la.array_type).count
                * _innermost(la.array_type).element.size
            )
            % BANK_LINE_BYTES
            == 0
        )
        return feats


register_rule(LocalArrayPaddingRule())
