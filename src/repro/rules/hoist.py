"""Loop-invariant global-load hoisting across barrier phases.

The generic LICM pass (``repro.ir.passes``) deliberately never hoists
memory loads — it cannot prove a global buffer unchanged around the
loop.  This rule adds exactly the missing case: a ``__global`` load
inside a loop whose address is loop-invariant and whose underlying
buffer is **never stored to anywhere in the kernel** is the same value
on every iteration, barriers included — re-reading it each trip (often
on both sides of a staging barrier) buys nothing and costs a modelled
memory transaction per iteration.

Legality:

* the root object is a kernel argument with no store to it in the whole
  function — in this runtime's memory model distinct root objects never
  alias (each argument binds its own buffer), which is the same
  object-granular reasoning the race analyzer applies, so no barrier or
  other work-item can change the loaded bytes;
* the address chain is loop-invariant (moving the in-loop pure address
  instructions to the preheader preserves every computed value);
* the load executes on every iteration (its block dominates every back
  edge), so hoisting only changes *when* the first read happens, not
  whether it happens — the one residual caveat is a zero-trip loop,
  where the hoisted load performs a read the original skipped; the
  address is still the in-bounds address of iteration one, and the
  pipeline search's differential runner is the final output arbiter.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.candidates import base_object
from repro.ir.cfg import dominators, natural_loops
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Cast,
    GEP,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
)
from repro.ir.types import AddressSpace
from repro.ir.values import Argument
from repro.rules.base import RewriteRule, RuleContext, base_features, register_rule

__all__ = ["GlobalLoadHoistRule"]

#: in-loop instruction kinds the address chain may pass through (pure,
#: reorderable value computation — never loads, stores, calls)
_PURE_CHAIN = (BinOp, Cast, GEP, ICmp, Select)


def _stored_arguments(fn: Function) -> Set[Argument]:
    out: Set[Argument] = set()
    for inst in fn.instructions():
        if isinstance(inst, Store):
            root = base_object(inst.ptr)
            if isinstance(root, Argument):
                out.add(root)
    return out


def _invariant_chain(value, loop) -> List[Instruction] | None:
    """The in-loop pure instructions ``value`` depends on, in hoistable
    (operands-first) order — or ``None`` if the chain leaves the pure
    fragment (a load, call, or side effect makes it loop-varying)."""
    chain: List[Instruction] = []
    seen: Set[Instruction] = set()

    def visit(v) -> bool:
        if not isinstance(v, Instruction):
            return True  # argument / constant / local array: invariant
        if v.parent is None or not loop.contains(v.parent):
            return True  # defined outside the loop
        if v in seen:
            return True
        if not isinstance(v, _PURE_CHAIN):
            return False
        if not all(visit(op) for op in v.operands):
            return False
        seen.add(v)
        chain.append(v)
        return True

    return chain if visit(value) else None


class GlobalLoadHoistRule(RewriteRule):
    """Hoist loop-invariant loads of never-written global buffers."""

    name = "hoist-global-loads"
    description = (
        "hoist loop-invariant global loads of never-stored buffers into "
        "the loop preheader (rewrites = loads hoisted)"
    )
    legality_arbiter = "invariance + dominance"
    legality = (
        "root argument never stored to in the kernel (object-granular "
        "non-aliasing, as the race analyzer reasons), address chain "
        "loop-invariant, and the load dominates every back edge"
    )

    def probe(self, fn: Function, ctx: RuleContext) -> bool:
        if not fn.is_kernel or not natural_loops(fn):
            return False
        return any(
            isinstance(inst, Load) and inst.addrspace == AddressSpace.GLOBAL
            for inst in fn.instructions()
        )

    def apply(self, fn: Function, ctx: RuleContext) -> int:
        if not fn.is_kernel:
            return 0
        loops = natural_loops(fn)
        if not loops:
            return 0
        doms = dominators(fn)
        stored = _stored_arguments(fn)
        hoisted = 0
        for loop in loops:  # innermost first: hoist out one level at a time
            pre = loop.preheader
            if pre is None or pre.terminator is None:
                continue
            latches = [
                bb for bb in fn.blocks
                if loop.contains(bb) and loop.header in bb.successors()
            ]
            for bb in [b for b in fn.blocks if loop.contains(b)]:
                for inst in list(bb.instructions):
                    if not isinstance(inst, Load):
                        continue
                    if inst.addrspace != AddressSpace.GLOBAL:
                        continue
                    root = base_object(inst.ptr)
                    if not isinstance(root, Argument) or root in stored:
                        continue
                    if not all(
                        latch is bb or bb in doms.get(latch, ())
                        for latch in latches
                    ):
                        continue  # conditionally executed: leave it
                    chain = _invariant_chain(inst.ptr, loop)
                    if chain is None:
                        continue
                    anchor = pre.terminator
                    for dep in chain:
                        dep.parent.instructions.remove(dep)
                        dep.parent = None
                        pre.insert_before(anchor, dep)
                    inst.parent.instructions.remove(inst)
                    inst.parent = None
                    pre.insert_before(anchor, inst)
                    hoisted += 1
        return hoisted

    def cost_features(self, fn: Function, ctx: RuleContext) -> Dict[str, int]:
        feats = base_features(fn)
        loops = natural_loops(fn)
        feats["loops"] = len(loops)
        feats["in_loop_global_loads"] = sum(
            1
            for loop in loops
            for bb in loop.body
            for inst in bb.instructions
            if isinstance(inst, Load) and inst.addrspace == AddressSpace.GLOBAL
        )
        return feats


register_rule(GlobalLoadHoistRule())
