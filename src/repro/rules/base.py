"""The :class:`RewriteRule` protocol and the rule registry.

A rewrite rule is a semantics-preserving IR transformation packaged with
everything a search engine needs to reason about it:

* ``probe(fn, ctx)`` — a cheap, read-only applicability test (is the
  pattern even present?);
* ``apply(fn, ctx)`` — the in-place transformation; returns the rewrite
  count (0 = nothing matched, the function is unchanged);
* ``legality_arbiter`` / ``legality`` — the *name* and one-line
  description of the independent check that guards the rule.  Every
  rule is gated by the static race/divergence analyzer exactly as the
  Grover pass is: either the rule consults it internally per rewrite
  site (``eliminate-barriers``), or the analyzer vets the whole kernel
  around the application (:meth:`RewriteRule.veto`, mirroring
  ``Session.disable_local_memory``'s ``$REPRO_ANALYZE`` gate);
* ``cost_features(fn, ctx)`` — deterministic static features of the
  kernel as the rule sees it (local bytes, barrier count, ...), the
  inputs a learned cost model would train on.

Rules are stateless and deterministic: applying the same rule to the
same IR under the same :class:`RuleContext` always performs the same
rewrites — the property the beam-search determinism test pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Load, is_barrier
from repro.ir.types import AddressSpace

__all__ = [
    "RULE_REGISTRY",
    "RewriteRule",
    "RuleContext",
    "get_rule",
    "register_rule",
    "rule_names",
]


@dataclass(frozen=True)
class RuleContext:
    """Launch-time facts a rule may consult while transforming.

    ``local_size`` is the work-group geometry of the launch the search
    is optimising for; rules that must bound thread-varying indices
    (padding) need it.  ``geometry(fn)`` falls back to the kernel's
    declared ``reqd_work_group_size`` so standalone ``PassManager`` runs
    still get exact reasoning when the kernel pins its own geometry.
    """

    local_size: Optional[Tuple[int, ...]] = None

    def geometry(self, fn: Function) -> Optional[Tuple[int, ...]]:
        if self.local_size is not None:
            return tuple(self.local_size)
        if fn.reqd_work_group_size is not None:
            return tuple(fn.reqd_work_group_size)
        return None


class RewriteRule:
    """Base class of all rewrite rules (see module docstring)."""

    #: stable registry/pipeline name (also the pass name)
    name: str = ""
    #: one-line description (shown by ``repro passes``)
    description: str = ""
    #: short name of the legality arbiter guarding the rule
    legality_arbiter: str = ""
    #: one-line description of what that arbiter checks
    legality: str = ""

    # -- protocol -------------------------------------------------------------
    def probe(self, fn: Function, ctx: RuleContext) -> bool:
        """Cheap, read-only: could ``apply`` rewrite anything here?"""
        raise NotImplementedError

    def apply(self, fn: Function, ctx: RuleContext) -> int:
        """Transform ``fn`` in place; returns the rewrite count."""
        raise NotImplementedError

    def cost_features(self, fn: Function, ctx: RuleContext) -> Dict[str, int]:
        """Deterministic static features of ``fn`` (sorted-key dict)."""
        return base_features(fn)

    # -- the analyzer gate ----------------------------------------------------
    def veto(self, fn: Function, ctx: RuleContext, stage: str) -> None:
        """Raise :class:`~repro.analysis.RaceDetected` on a decided race
        or barrier divergence — the same independent arbiter that vets
        ``Session.disable_local_memory`` (undecided pairs do not block;
        they void the guarantee, which callers surface separately)."""
        from repro.analysis import RaceDetected, analyze_kernel

        report = analyze_kernel(fn, ctx.geometry(fn))
        blocking = report.races + report.divergences
        if blocking:
            raise RaceDetected(
                f"rule {self.name!r} veto ({stage}) for kernel {fn.name!r}: "
                + "; ".join(f.render() for f in blocking)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RewriteRule {self.name}>"


def base_features(fn: Function) -> Dict[str, int]:
    """Rule-independent static features shared by every rule."""
    loads_local = loads_global = stores_local = stores_global = barriers = 0
    from repro.ir.instructions import Store

    for inst in fn.instructions():
        if is_barrier(inst):
            barriers += 1
        elif isinstance(inst, Load):
            if inst.addrspace == AddressSpace.LOCAL:
                loads_local += 1
            elif inst.addrspace == AddressSpace.GLOBAL:
                loads_global += 1
        elif isinstance(inst, Store):
            if inst.addrspace == AddressSpace.LOCAL:
                stores_local += 1
            elif inst.addrspace == AddressSpace.GLOBAL:
                stores_global += 1
    return {
        "barriers": barriers,
        "global_loads": loads_global,
        "global_stores": stores_global,
        "local_arrays": len(fn.local_arrays),
        "local_bytes": sum(la.nbytes for la in fn.local_arrays),
        "local_loads": loads_local,
        "local_stores": stores_local,
    }


#: every registered rule by name (insertion-ordered)
RULE_REGISTRY: Dict[str, RewriteRule] = {}


def register_rule(rule: RewriteRule) -> RewriteRule:
    """Register a rule instance (and fail loudly on duplicates)."""
    if not rule.name:
        raise ValueError("rules must carry a non-empty name")
    if rule.name in RULE_REGISTRY:
        raise ValueError(f"rule {rule.name!r} already registered")
    RULE_REGISTRY[rule.name] = rule
    return rule


def get_rule(name: str) -> RewriteRule:
    rule = RULE_REGISTRY.get(name)
    if rule is None:
        raise KeyError(f"unknown rule {name!r}; known: {sorted(RULE_REGISTRY)}")
    return rule


def rule_names() -> Tuple[str, ...]:
    """Registry names in registration order (the search's action set)."""
    return tuple(RULE_REGISTRY)
