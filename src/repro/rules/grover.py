"""The paper's pass as a rewrite rule.

``apply`` is the registered ``grover`` pass body, verbatim: the port
must be bit-identical on every app (the golden-report suite pins this),
so the rule adds only metadata — the probe, the legality-arbiter name
and the cost features — around the exact historical call.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.rules.base import RewriteRule, RuleContext, base_features, register_rule

__all__ = ["DisableLocalMemoryRule"]


def _uses_local(fn: Function) -> bool:
    from repro.ir.types import AddressSpace, PointerType

    return bool(fn.local_arrays) or any(
        isinstance(a.type, PointerType)
        and a.type.addrspace == AddressSpace.LOCAL
        for a in fn.args
    )


class DisableLocalMemoryRule(RewriteRule):
    """Reverse the ``GL -> LS ... barrier ... LL`` software-cache pattern."""

    name = "grover"
    description = (
        "the paper's pass: reverse the software-cache pattern and disable "
        "local memory (rewrites = local loads redirected to global)"
    )
    legality_arbiter = "eq3-invertibility + race/divergence veto"
    legality = (
        "per-array Eq. 3 index invertibility (unique, integral writer "
        "solution), with the static race/divergence analyzer as the "
        "independent $REPRO_ANALYZE arbiter around the whole rewrite"
    )

    def probe(self, fn: Function, ctx: RuleContext) -> bool:
        return fn.is_kernel and _uses_local(fn)

    def apply(self, fn: Function, ctx: RuleContext) -> int:
        from repro.core.grover import GroverPass

        if not fn.is_kernel:
            return 0
        if not _uses_local(fn):
            return 0  # nothing to disable — makes the pass idempotent
        report = GroverPass(allow_partial=True).run(fn)
        return sum(len(r.lls) for r in report.transformed)

    def cost_features(self, fn: Function, ctx: RuleContext) -> Dict[str, int]:
        feats = base_features(fn)
        feats["candidate_arrays"] = len(fn.local_arrays)
        return feats


register_rule(DisableLocalMemoryRule())
