"""Unit tests for the OpenCL-C preprocessor."""

import pytest

from repro.frontend.errors import FrontendError
from repro.frontend.preprocess import (
    find_kernels,
    preprocess,
    run_directives,
    strip_comments,
    translate_qualifiers,
)


class TestStripComments:
    def test_line_comments(self):
        assert strip_comments("int x; // hi\nint y;") == "int x; \nint y;"

    def test_block_comments_preserve_lines(self):
        src = "a /* one\ntwo */ b"
        out = strip_comments(src)
        assert out == "a \n b"

    def test_unterminated_block(self):
        with pytest.raises(FrontendError, match="unterminated"):
            strip_comments("a /* oops")

    def test_string_literals_untouched(self):
        assert strip_comments('x = "// not a comment";') == 'x = "// not a comment";'

    def test_char_literal_with_escape(self):
        assert strip_comments(r"c = '\''; // q") == r"c = '\''; "


class TestDirectives:
    def test_object_macro(self):
        out, macros = run_directives("#define N 16\nint a[N];")
        assert "int a[16];" in out
        assert macros["N"] == "16"

    def test_macro_in_macro(self):
        out, _ = run_directives("#define A 4\n#define B (A+1)\nx = B;")
        assert "x = (4+1);" in out

    def test_undef(self):
        out, macros = run_directives("#define N 16\n#undef N\nint N;")
        assert "int N;" in out
        assert "N" not in macros

    def test_token_boundaries(self):
        out, _ = run_directives("#define N 16\nint NN = N;")
        assert "int NN = 16;" in out

    def test_function_like_macro_expansion(self):
        out, _ = run_directives("#define SQ(x) ((x)*(x))\ny = SQ(a + 1);")
        assert "((a + 1))*((a + 1))" in out.replace("(  ", "(")

    def test_sdk_style_tile_macro(self):
        src = (
            "#define BS 16\n"
            "#define AS(i, j) As[(i)*BS + (j)]\n"
            "x = AS(ty, k);"
        )
        out, _ = run_directives(src)
        assert "As[((ty))*16 + ((k))]" in out

    def test_function_macro_wrong_arity(self):
        with pytest.raises(FrontendError, match="expects"):
            run_directives("#define F(a, b) a+b\nx = F(1);")

    def test_function_macro_nested_call_args(self):
        out, _ = run_directives("#define F(a) (a)\nx = F(g(1, 2));")
        assert "((g(1, 2)))" in out

    def test_function_macro_undef(self):
        out, _ = run_directives("#define F(a) (a)\n#undef F\nx = F;")
        assert "x = F;" in out

    def test_name_without_parens_not_expanded(self):
        out, _ = run_directives("#define F(a) (a)\nint Fx = 1; g = h;")
        assert "int Fx = 1;" in out

    def test_ifdef_taken_and_skipped(self):
        src = "#define HAVE\n#ifdef HAVE\nint a;\n#else\nint b;\n#endif"
        out, _ = run_directives(src)
        assert "int a;" in out and "int b;" not in out

    def test_ifndef(self):
        out, _ = run_directives("#ifndef MISSING\nint a;\n#endif")
        assert "int a;" in out

    def test_nested_conditionals(self):
        src = (
            "#define A\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
        )
        out, _ = run_directives(src)
        assert "int y;" in out and "int x;" not in out

    def test_if_expression(self):
        out, _ = run_directives("#define N 8\n#if N > 4\nint big;\n#endif")
        assert "int big;" in out

    def test_if_defined(self):
        out, _ = run_directives("#define X 1\n#if defined(X)\nint a;\n#endif")
        assert "int a;" in out

    def test_unterminated_if(self):
        with pytest.raises(FrontendError, match="unterminated"):
            run_directives("#ifdef A\nint x;")

    def test_else_without_if(self):
        with pytest.raises(FrontendError, match="#else"):
            run_directives("#else")

    def test_host_defines_merged(self):
        out, _ = run_directives("int a[BLOCK];", defines={"BLOCK": 32})
        assert "int a[32];" in out

    def test_pragma_and_include_ignored(self):
        out, _ = run_directives("#pragma unroll\n#include <x.h>\nint a;")
        assert "int a;" in out

    def test_builtin_macros(self):
        out, _ = run_directives("barrier(CLK_LOCAL_MEM_FENCE);")
        assert "barrier(1);" in out

    def test_line_continuation(self):
        out, _ = run_directives("#define N \\\n 16\nint a[N];")
        assert "int a[16];" in out


class TestQualifiers:
    def test_global_to_volatile(self):
        assert "volatile float" in translate_qualifiers("__global float* p")

    def test_local_to_atomic(self):
        assert "_Atomic float" in translate_qualifiers("__local float lm[4];")

    def test_constant(self):
        out = translate_qualifiers("__constant float* w")
        assert "volatile const" in out

    def test_private_and_access_quals_dropped(self):
        out = translate_qualifiers("__private int x; __read_only int y;")
        assert "__private" not in out and "__read_only" not in out

    def test_kernel_marker_stripped(self):
        assert "__kernel" not in translate_qualifiers("__kernel void f()")


class TestKernelDetection:
    def test_finds_kernel_names(self):
        src = "__kernel void foo(__global int* p) {}\n__kernel void bar(void) {}"
        assert find_kernels(src) == ["foo", "bar"]

    def test_helper_functions_not_kernels(self):
        src = "float helper(float x) { return x; }\n__kernel void k(void) {}"
        assert find_kernels(src) == ["k"]

    def test_preprocess_requires_kernel(self):
        with pytest.raises(FrontendError, match="no __kernel"):
            preprocess("void f(void) {}")


class TestFullPreprocess:
    def test_end_to_end(self):
        from tests.conftest import MT_SOURCE

        result = preprocess(MT_SOURCE)
        assert result.kernel_names == ["transpose"]
        assert "__kernel" not in result.text
        assert "__local" not in result.text
        assert "_Atomic float lm[16][16]" in result.text
        assert "typedef" in result.text  # prelude present
