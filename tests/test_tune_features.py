"""Feature extraction for the autotuner: reuse histograms against a
naive stack-distance reference, entropy bounds, deterministic static
and candidate vectors, and the fixed-order projection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import compile_kernel
from repro.runtime import Memory, launch
from repro.session import Session
from repro.tune.features import (
    REUSE_BUCKETS,
    _entropy,
    _reuse_histogram,
    app_candidate_features,
    app_kernel_context,
    static_features,
    trace_features,
    vectorize,
)

# ---------------------------------------------------------------------------
# reuse-distance histogram vs a naive sequential LRU-stack reference
# ---------------------------------------------------------------------------


def _naive_histogram(lines):
    """The textbook O(n·d) stack walk the vectorised version must match:
    distance = number of distinct lines since the previous access to the
    same line (0 = immediate repeat), cold = never seen before."""
    stack = []  # most-recent-first, distinct lines
    dists = []
    for line in lines:
        line = int(line)
        if line in stack:
            d = stack.index(line)
            stack.remove(line)
        else:
            d = None
        dists.append(d)
        stack.insert(0, line)

    n = len(lines)
    out = {}
    prev = 0
    for hi in REUSE_BUCKETS:
        c = sum(1 for d in dists if d is not None and d < hi)
        out[f"trace:reuse:lt{hi}"] = (c - prev) / n
        prev = c
    far = sum(1 for d in dists if d is not None and d >= REUSE_BUCKETS[-1])
    out["trace:reuse:far"] = far / n
    out["trace:reuse:cold"] = sum(1 for d in dists if d is None) / n
    return out


@pytest.mark.parametrize("seed,alphabet", [(0, 8), (1, 100), (2, 700)])
def test_reuse_histogram_matches_naive_stack_walk(seed, alphabet):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, alphabet, size=600).astype(np.int64)
    got = _reuse_histogram(lines)
    want = _naive_histogram(lines)
    assert set(got) == set(want)
    for k in want:
        assert got[k] == pytest.approx(want[k], abs=1e-12), k
    # the histogram is a distribution over every access
    assert sum(got.values()) == pytest.approx(1.0)


def test_reuse_histogram_edge_streams():
    # an empty stream is all-zero, not NaN
    empty = _reuse_histogram(np.array([], dtype=np.int64))
    assert set(empty.values()) == {0.0}
    # an immediately-repeated line is pure distance-0 reuse
    rep = _reuse_histogram(np.array([7, 7, 7, 7], dtype=np.int64))
    assert rep["trace:reuse:lt1"] == pytest.approx(0.75)
    assert rep["trace:reuse:cold"] == pytest.approx(0.25)
    # a never-repeating stream is pure cold misses
    cold = _reuse_histogram(np.arange(16, dtype=np.int64))
    assert cold["trace:reuse:cold"] == 1.0


def test_entropy_bounds():
    assert _entropy(np.array([], dtype=np.int64)) == 0.0
    assert _entropy(np.array([3, 3, 3], dtype=np.int64)) == 0.0
    # uniform over 16 distinct lines: maximal, normalized to 1
    assert _entropy(np.arange(16, dtype=np.int64)) == pytest.approx(1.0)
    skewed = _entropy(np.array([0] * 15 + [1], dtype=np.int64))
    assert 0.0 < skewed < 1.0


# ---------------------------------------------------------------------------
# static + trace features
# ---------------------------------------------------------------------------

_SOURCE = r"""
__kernel void k(__global float* out, __global const float* in)
{
    __local float tile[16];
    int li = get_local_id(0);
    int gi = get_global_id(0);
    tile[li] = in[gi];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (li < 8) {
        out[gi] = tile[li] + tile[15 - li];
    } else {
        out[gi] = tile[li];
    }
}
"""


def _traced():
    kernel = compile_kernel(_SOURCE)
    mem = Memory()
    inb = mem.from_array(np.arange(64, dtype=np.float32), "in")
    outb = mem.alloc(64 * 4, "out")
    with Session(env={}).activate():
        res = launch(kernel, (64,), (16,), {"in": inb, "out": outb},
                     memory=mem, collect_trace=True)
    return kernel, res.trace


def test_static_features_are_deterministic_and_complete():
    a = static_features(compile_kernel(_SOURCE), (16,))
    b = static_features(compile_kernel(_SOURCE), (16,))
    assert a == b
    for key in ("ir:blocks", "ir:insts", "ir:cond_branches"):
        assert key in a and a[key] > 0
    # every registered rule contributed its cost features
    from repro.rules import rule_names
    for name in rule_names():
        assert any(k.startswith(f"rule:{name}:") for k in a), name


def test_trace_features_describe_the_mixed_kernel():
    _, trace = _traced()
    f = trace_features(trace)
    # the kernel touches both spaces and has one barrier → two phases
    assert 0.0 < f["trace:local_fraction"] < 1.0
    assert f["trace:barriers"] == 1.0
    assert f["trace:phases"] == 2.0
    assert f["trace:accesses"] > 0
    # the `li < 8` branch makes some events partially active
    assert f["trace:divergent_fraction"] > 0.0
    assert 0.0 < f["trace:mean_active_fraction"] <= 1.0
    # features are reproducible from an identical launch
    _, trace2 = _traced()
    assert trace_features(trace2) == f


# ---------------------------------------------------------------------------
# candidate assembly (app level)
# ---------------------------------------------------------------------------


def test_candidate_features_pipeline_and_device_encoding():
    from repro.perf.devices import DEVICES

    ctx = app_kernel_context("NVD-MT")
    feats, rewrites = app_candidate_features(
        ctx, "NVD-MT", ("pad-local-arrays",), "test", "Fermi"
    )
    assert rewrites == (1,)
    assert feats["pipe:len"] == 1.0
    assert feats["pipe:pad-local-arrays"] == 1.0
    assert feats["pipe:rewrites:pad-local-arrays"] == 1.0
    assert feats["pipe:rewrites_total"] == 1.0
    # exactly one device bit set, and Fermi is a GPU
    assert sum(feats[f"dev:{d}"] for d in DEVICES) == 1.0
    assert feats["dev:Fermi"] == 1.0 and feats["dev:is_gpu"] == 1.0
    # baseline statics ride along under base:, candidate statics as ir:,
    # and the deltas connect them
    assert any(k.startswith("base:") for k in feats)
    for k, v in feats.items():
        if k.startswith("delta:"):
            assert v == pytest.approx(
                feats[f"ir:{k[6:]}"] - feats[f"base:{k[6:]}"]
            )

    # the same candidate on a CPU differs only in the device block
    cpu, _ = app_candidate_features(
        ctx, "NVD-MT", ("pad-local-arrays",), "test", "SNB"
    )
    diff = {k for k in feats if feats[k] != cpu[k]}
    assert diff == {"dev:Fermi", "dev:SNB", "dev:is_gpu"}


def test_vectorize_projects_onto_the_model_order():
    v = vectorize({"a": 1.0, "c": 3.0, "extra": 9.0}, ["a", "b", "c"])
    np.testing.assert_array_equal(v, np.array([1.0, 0.0, 3.0]))
    assert v.dtype == np.float64


def test_candidate_features_reject_nothing_silently():
    """Every feature value must be a finite float — NaN/inf would
    poison the tree's threshold comparisons silently."""
    ctx = app_kernel_context("NVD-MT")
    feats, _ = app_candidate_features(ctx, "NVD-MT", (), "test", "Fermi")
    for k, v in feats.items():
        assert np.isfinite(v), k
